// Framed, checksummed snapshot container (ts_ckpt).
//
// A snapshot is a flat sequence of frames:
//
//   frame := u32 payload_len (LE) | u32 crc32c(payload) (LE) | payload
//
// Every payload starts with a one-byte tag (header / open fragment / counter
// chunk / store session / footer — see checkpoint.cc). The per-frame CRC plus
// a mandatory footer frame make damage detectable at frame granularity: a
// torn write truncates the file mid-frame or drops the footer, a bit flip
// fails exactly one CRC, and either way the reader reports the file invalid
// instead of loading partial state. Writers never expose a partial file at
// all: bytes go to "<path>.tmp", are fsync'd, and the temp file is atomically
// renamed over the final name (rename(2) within one directory is atomic).
//
// The encode helpers are little-endian regardless of host order so snapshot
// files are portable across machines.
#ifndef SRC_CKPT_SNAPSHOT_IO_H_
#define SRC_CKPT_SNAPSHOT_IO_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace ts {

// --- Primitive little-endian encoding into a byte buffer ---

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
// u32 length + raw bytes.
void PutBytes(std::string* out, std::string_view bytes);

// Cursor-based decoding; every Get* returns false on underflow and leaves the
// cursor untouched, so a corrupt payload can never read out of bounds.
struct ByteCursor {
  std::string_view data;
  size_t pos = 0;

  size_t remaining() const { return data.size() - pos; }
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetBytes(std::string_view* bytes);
};

// --- Frame layer ---

// Frames larger than this are rejected on read (and never written): a
// corrupted length field must not ask the reader to allocate gigabytes.
inline constexpr size_t kMaxFramePayloadBytes = 64u << 20;

// Appends one frame (length + CRC32C + payload) to *out.
void AppendFrame(std::string* out, std::string_view payload);

// Walks frames of a raw snapshot buffer, validating length bounds and CRCs.
class FrameParser {
 public:
  explicit FrameParser(std::string_view data) : data_(data) {}

  // Advances to the next frame. Returns true and sets *payload on success;
  // false at clean end-of-buffer OR on damage — distinguish with ok():
  // a parse that stops before consuming everything, or that ever saw a bad
  // length/CRC, is not ok.
  bool Next(std::string_view* payload);

  // True while no framing violation has been seen.
  bool ok() const { return ok_; }
  // True once every byte has been consumed by valid frames.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Writes `bytes` to "<path>.tmp", fsyncs, and atomically renames to `path`.
// Returns false (and removes the temp file) on any I/O error. The
// initializer-list overload concatenates its parts in order — snapshot
// writers use it to stream a large pre-encoded section between the header
// and footer without assembling one contiguous buffer.
bool WriteFileAtomic(const std::string& path, std::string_view bytes);
bool WriteFileAtomic(const std::string& path,
                     std::initializer_list<std::string_view> parts);

// Reads a whole file. Returns false if it cannot be opened/read.
bool ReadFile(const std::string& path, std::string* out);

}  // namespace ts

#endif  // SRC_CKPT_SNAPSHOT_IO_H_
