#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <utility>

#include "src/ckpt/snapshot_io.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

constexpr char kMagic[] = "TSCKPT";  // 6 bytes, no NUL.
constexpr size_t kMagicLen = 6;
constexpr char kTagHeader = 'H';
constexpr char kTagOpen = 'O';
constexpr char kTagCounters = 'C';
constexpr char kTagStore = 'S';
constexpr char kTagTemplates = 'T';
constexpr char kTagFooter = 'E';
constexpr size_t kCounterChunk = 4096;  // Counter entries per 'C' frame.

void AppendRecords(const std::vector<LogRecord>& records, std::string* payload,
                   std::string* scratch) {
  PutU32(payload, static_cast<uint32_t>(records.size()));
  for (const auto& r : records) {
    scratch->clear();
    AppendWireFormat(r, scratch);
    PutBytes(payload, *scratch);
  }
}

bool ParseRecords(ByteCursor* cursor, std::vector<LogRecord>* records) {
  uint32_t n = 0;
  if (!cursor->GetU32(&n)) {
    return false;
  }
  records->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view line;
    if (!cursor->GetBytes(&line)) {
      return false;
    }
    auto parsed = ParseWireFormat(line);
    if (!parsed) {
      return false;  // A record that no longer parses is damage, not input.
    }
    records->push_back(std::move(*parsed));
  }
  return true;
}

}  // namespace

void StoreFrameEncoder::Append(const Session& session, std::string* out) {
  payload_.clear();
  payload_.push_back(kTagStore);
  PutBytes(&payload_, session.id);
  PutU32(&payload_, session.fragment_index);
  PutU64(&payload_, session.first_epoch);
  PutU64(&payload_, session.last_epoch);
  PutU64(&payload_, session.closed_at);
  AppendRecords(session.records, &payload_, &scratch_);
  AppendFrame(out, payload_);
}

void OpenFrameEncoder::Append(std::string_view id, EventTime last_time,
                              const std::vector<LogRecord>& records,
                              std::string* out) {
  payload_.clear();
  payload_.push_back(kTagOpen);
  PutBytes(&payload_, id);
  PutU64(&payload_, static_cast<uint64_t>(last_time));
  AppendRecords(records, &payload_, &scratch_);
  AppendFrame(out, payload_);
}

void EncodeSnapshotParts(const CheckpointState& state, uint64_t open_count,
                         uint64_t store_count, std::string* head,
                         std::string* tail) {
  head->clear();
  tail->clear();
  std::string payload;
  std::string scratch;
  uint64_t frames = 0;

  payload.push_back(kTagHeader);
  payload.append(kMagic, kMagicLen);
  PutU32(&payload, kCheckpointVersion);
  PutU64(&payload, state.resume_offset);
  PutU64(&payload, state.stream);
  PutU64(&payload, static_cast<uint64_t>(state.ingest_watermark));
  PutU64(&payload, state.records);
  PutU64(&payload, state.parse_failures);
  PutU64(&payload, state.store_inserted);
  PutU64(&payload, state.store_evicted);
  PutU64(&payload, state.closers.open.size() + open_count);
  PutU64(&payload, state.closers.next_fragment.size());
  PutU64(&payload, state.store_sessions.size() + store_count);
  PutU64(&payload, state.has_miner ? 1 : 0);
  AppendFrame(head, payload);
  ++frames;

  if (state.has_miner) {
    const TemplateMinerState& miner = state.miner;
    payload.clear();
    payload.push_back(kTagTemplates);
    PutU32(&payload, miner.next_template_id);
    PutU64(&payload, miner.catch_all_hits);
    PutU64(&payload, miner.payloads_mined);
    PutU64(&payload, miner.nodes.size());
    for (const auto& node : miner.nodes) {
      PutU32(&payload, node.parent);
      PutU32(&payload, node.bucket);
      PutU32(&payload, (node.wild ? 1u : 0u) | (node.leaf ? 2u : 0u));
      PutBytes(&payload, node.token);
    }
    PutU64(&payload, miner.groups.size());
    for (const auto& group : miner.groups) {
      PutU32(&payload, group.node);
      PutU32(&payload, group.template_id);
      PutU64(&payload, group.hits);
      PutU32(&payload, static_cast<uint32_t>(group.tokens.size()));
      for (const auto& token : group.tokens) {
        PutBytes(&payload, token);
      }
      PutBytes(&payload,
               std::string_view(
                   reinterpret_cast<const char*>(group.wildcard.data()),
                   group.wildcard.size()));
    }
    AppendFrame(head, payload);
    ++frames;
  }

  for (const auto& fragment : state.closers.open) {
    payload.clear();
    payload.push_back(kTagOpen);
    PutBytes(&payload, fragment.id);
    PutU64(&payload, static_cast<uint64_t>(fragment.last_time));
    AppendRecords(fragment.records, &payload, &scratch);
    AppendFrame(head, payload);
    ++frames;
  }

  for (size_t base = 0; base < state.closers.next_fragment.size();
       base += kCounterChunk) {
    const size_t n =
        std::min(kCounterChunk, state.closers.next_fragment.size() - base);
    payload.clear();
    payload.push_back(kTagCounters);
    PutU32(&payload, static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      const auto& [id, next] = state.closers.next_fragment[base + i];
      PutBytes(&payload, id);
      PutU32(&payload, next);
    }
    AppendFrame(head, payload);
    ++frames;
  }

  StoreFrameEncoder store_encoder;
  for (const auto& session : state.store_sessions) {
    store_encoder.Append(session, head);
    ++frames;
  }
  frames += open_count + store_count;

  payload.clear();
  payload.push_back(kTagFooter);
  PutU64(&payload, frames);
  AppendFrame(tail, payload);
}

std::string EncodeSnapshot(const CheckpointState& state) {
  std::string head;
  std::string tail;
  EncodeSnapshotParts(state, 0, 0, &head, &tail);
  head.append(tail);
  return head;
}

bool DecodeStoreFramePayload(std::string_view payload, Session* out) {
  if (payload.empty() || payload[0] != kTagStore) {
    return false;
  }
  ByteCursor cursor{payload, 1};
  std::string_view id;
  if (!cursor.GetBytes(&id) || !cursor.GetU32(&out->fragment_index) ||
      !cursor.GetU64(&out->first_epoch) || !cursor.GetU64(&out->last_epoch) ||
      !cursor.GetU64(&out->closed_at) ||
      !ParseRecords(&cursor, &out->records) || cursor.remaining() != 0) {
    return false;
  }
  out->id = std::string(id);
  return true;
}

bool DecodeSnapshot(std::string_view bytes, CheckpointState* state) {
  FrameParser parser(bytes);
  std::string_view payload;

  if (!parser.Next(&payload) || payload.empty() ||
      payload[0] != kTagHeader) {
    return false;
  }
  ByteCursor header{payload, 1};
  if (header.remaining() < kMagicLen ||
      payload.compare(header.pos, kMagicLen, kMagic) != 0) {
    return false;
  }
  header.pos += kMagicLen;
  uint32_t version = 0;
  uint64_t watermark = 0, n_open = 0, n_counters = 0, n_store = 0;
  uint64_t n_templates = 0;
  if (!header.GetU32(&version) || version != kCheckpointVersion ||
      !header.GetU64(&state->resume_offset) || !header.GetU64(&state->stream) ||
      !header.GetU64(&watermark) || !header.GetU64(&state->records) ||
      !header.GetU64(&state->parse_failures) ||
      !header.GetU64(&state->store_inserted) ||
      !header.GetU64(&state->store_evicted) || !header.GetU64(&n_open) ||
      !header.GetU64(&n_counters) || !header.GetU64(&n_store) ||
      !header.GetU64(&n_templates) || n_templates > 1 ||
      header.remaining() != 0) {
    return false;
  }
  state->ingest_watermark = static_cast<EventTime>(watermark);

  uint64_t frames = 1;
  bool footer_seen = false;
  uint64_t footer_frames = 0;
  while (parser.Next(&payload)) {
    if (footer_seen || payload.empty()) {
      return false;  // Frames after the footer, or an empty payload.
    }
    ByteCursor cursor{payload, 1};
    switch (payload[0]) {
      case kTagOpen: {
        LiveCloserState::OpenFragment fragment;
        std::string_view id;
        uint64_t last_time = 0;
        if (!cursor.GetBytes(&id) || !cursor.GetU64(&last_time) ||
            !ParseRecords(&cursor, &fragment.records) ||
            cursor.remaining() != 0) {
          return false;
        }
        fragment.id = std::string(id);
        fragment.last_time = static_cast<EventTime>(last_time);
        state->closers.open.push_back(std::move(fragment));
        break;
      }
      case kTagCounters: {
        uint32_t n = 0;
        if (!cursor.GetU32(&n)) {
          return false;
        }
        for (uint32_t i = 0; i < n; ++i) {
          std::string_view id;
          uint32_t next = 0;
          if (!cursor.GetBytes(&id) || !cursor.GetU32(&next)) {
            return false;
          }
          state->closers.next_fragment.emplace_back(std::string(id), next);
        }
        if (cursor.remaining() != 0) {
          return false;
        }
        break;
      }
      case kTagStore: {
        Session session;
        if (!DecodeStoreFramePayload(payload, &session)) {
          return false;
        }
        state->store_sessions.push_back(std::move(session));
        break;
      }
      case kTagTemplates: {
        if (state->has_miner) {
          return false;  // At most one 'T' frame.
        }
        TemplateMinerState& miner = state->miner;
        uint64_t n_nodes = 0, n_groups = 0;
        if (!cursor.GetU32(&miner.next_template_id) ||
            !cursor.GetU64(&miner.catch_all_hits) ||
            !cursor.GetU64(&miner.payloads_mined) ||
            !cursor.GetU64(&n_nodes)) {
          return false;
        }
        miner.nodes.reserve(n_nodes);
        for (uint64_t i = 0; i < n_nodes; ++i) {
          TemplateMinerState::NodeRec node;
          uint32_t flags = 0;
          std::string_view token;
          if (!cursor.GetU32(&node.parent) || !cursor.GetU32(&node.bucket) ||
              !cursor.GetU32(&flags) || flags > 3 ||
              !cursor.GetBytes(&token)) {
            return false;
          }
          node.wild = (flags & 1u) != 0;
          node.leaf = (flags & 2u) != 0;
          node.token = std::string(token);
          miner.nodes.push_back(std::move(node));
        }
        if (!cursor.GetU64(&n_groups)) {
          return false;
        }
        miner.groups.reserve(n_groups);
        for (uint64_t i = 0; i < n_groups; ++i) {
          TemplateMinerState::GroupRec group;
          uint32_t n_tokens = 0;
          if (!cursor.GetU32(&group.node) ||
              !cursor.GetU32(&group.template_id) ||
              !cursor.GetU64(&group.hits) || !cursor.GetU32(&n_tokens)) {
            return false;
          }
          group.tokens.reserve(n_tokens);
          for (uint32_t j = 0; j < n_tokens; ++j) {
            std::string_view token;
            if (!cursor.GetBytes(&token)) {
              return false;
            }
            group.tokens.emplace_back(token);
          }
          std::string_view wildcard;
          if (!cursor.GetBytes(&wildcard) || wildcard.size() != n_tokens) {
            return false;
          }
          group.wildcard.assign(wildcard.begin(), wildcard.end());
          miner.groups.push_back(std::move(group));
        }
        if (cursor.remaining() != 0) {
          return false;
        }
        state->has_miner = true;
        break;
      }
      case kTagFooter: {
        if (!cursor.GetU64(&footer_frames) || cursor.remaining() != 0) {
          return false;
        }
        footer_seen = true;
        continue;  // Not counted in `frames`; must be the last frame.
      }
      default:
        return false;  // Unknown tag.
    }
    ++frames;
  }
  // The parser must have consumed every byte through valid frames, the footer
  // must exist, and every section the header promised must be present.
  return parser.AtEnd() && footer_seen && footer_frames == frames &&
         state->closers.open.size() == n_open &&
         state->closers.next_fragment.size() == n_counters &&
         state->store_sessions.size() == n_store &&
         (state->has_miner ? 1u : 0u) == n_templates;
}

}  // namespace ts
