// AsyncCheckpointer: keeps periodic snapshots off the ingest hot path.
//
// A synchronous CaptureLiveCheckpoint + Checkpointer::Write costs O(live
// state) on the ingest thread — deep-copying the SessionStore, wire-
// serializing every record, CRC-framing and fsyncing the file — which makes
// the ingest thread the pipeline's critical path the moment snapshots are
// enabled (fig5_live_scaling measured >90% throughput loss at a 16k-record
// cadence). This class splits the work along LivePipeline's two-phase
// barrier instead:
//
//   ingest thread   MaybeCheckpoint(): one BeginCheckpoint (seals a barrier
//                   batch per shard, no waiting) and a hand-off — microseconds.
//   shard workers   pause at the barrier while the writer brings its state up
//                   to the barrier (blocked, not spinning; queued batches
//                   drain afterwards).
//   writer thread   CollectCheckpoint(): waits for the pause, then (a)
//                   serializes the open fragments straight into framed 'O'
//                   bytes via the zero-copy visitor — one pass, no deep copy
//                   of the usually-dominant open section — and (b) advances
//                   an incremental cache of encoded store frames: only
//                   sessions inserted since the previous snapshot are
//                   serialized (store entries are immutable, so cached frames
//                   never go stale; evicted ones fall off the cache front).
//                   After releasing the shards it streams header + sections +
//                   footer to disk, so the O(state) work left per snapshot is
//                   a single file write, and none of it touches the measured
//                   threads.
//
// At most one snapshot is in flight; cadence ticks that land while one is
// being written are skipped and counted (the next due tick retakes them).
// Drain() blocks until in-flight work is durable and MUST be called before
// LivePipeline::Finish(): an uncollected ticket would leave the shard
// workers paused forever. The destructor drains and joins.
//
// Degraded mode: when the disk misbehaves (ENOSPC, EIO, failed fsync) the
// writer retries the barrier + file write with bounded jittered exponential
// backoff, then — still failing — drops that snapshot and waits for the next
// cadence tick. The ingest thread never stalls: MaybeCheckpoint keeps
// skipping while the retry loop holds in_flight_. The episode is fully
// counted (ckpt_write_failures / ckpt_degraded / ckpt_degraded_entries /
// ckpt_snapshots_dropped) and clears itself on the first successful write —
// recovery needs no operator action, only a healed disk. Each retry rebuilds
// the snapshot file from the retained source state via Checkpointer::Write
// (a brand-new tmp fd), never by re-fsyncing an old fd — the fsyncgate rule.
#ifndef SRC_CKPT_ASYNC_CHECKPOINTER_H_
#define SRC_CKPT_ASYNC_CHECKPOINTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/analytics/session_store.h"
#include "src/ckpt/checkpointer.h"
#include "src/common/rng.h"
#include "src/core/live_pipeline.h"

namespace ts {

class AsyncCheckpointer {
 public:
  struct Options {
    uint64_t stream = 0;
    uint64_t base_records = 0;         // Counters carried over from the
    uint64_t base_parse_failures = 0;  // snapshot this process restored.
    // Runs on the writer thread after the shards resume, immediately before
    // the snapshot file is written. The tiered store hooks its cold tier's
    // FlushPending() in here: every eviction that happened before this
    // snapshot's barrier is durable in a cold segment by the time the
    // snapshot exists, so a restore can never lose an evicted session. May
    // block; it delays only the (off-critical-path) file write. Returning
    // false means the durability barrier failed (e.g. the cold tier cannot
    // spill): the snapshot MUST NOT be published, so the attempt aborts and
    // is retried/dropped like a failed file write.
    std::function<bool()> before_write;
    // Degraded-mode knobs: per-snapshot write attempts (>= 1) and the base
    // backoff between them (doubled per retry, jittered, capped at ~2s).
    int write_retry_limit = 3;
    int64_t write_retry_backoff_ms = 50;
  };

  // All pointees must outlive this object. The Checkpointer must not be
  // written to by any other thread between construction and Drain().
  AsyncCheckpointer(Checkpointer* checkpointer, LivePipeline* pipeline,
                    const SessionStore* store, const Options& options);
  ~AsyncCheckpointer();  // Drains and joins.

  AsyncCheckpointer(const AsyncCheckpointer&) = delete;
  AsyncCheckpointer& operator=(const AsyncCheckpointer&) = delete;

  // Ingest thread. Starts a snapshot when the Checkpointer's interval is due
  // and none is in flight; `resume_offset` is the count of records fed so far
  // (SocketIngestSource::records_received(), after the polled batch has been
  // fully fed and flushed). Returns true if one started.
  bool MaybeCheckpoint(uint64_t resume_offset);

  // Like MaybeCheckpoint but ignores the timer — for callers with their own
  // cadence (benches, tests). Still skips when a snapshot is in flight.
  bool RequestCheckpoint(uint64_t resume_offset);

  // Blocks until no snapshot is in flight (the last Write has returned).
  void Drain();

  // Ingest-thread accessors (same thread that calls MaybeCheckpoint).
  uint64_t snapshots_started() const { return started_; }
  uint64_t snapshots_skipped_busy() const { return skipped_busy_; }

  // Degraded-mode accessors — safe from any thread (relaxed atomics).
  uint64_t write_failures() const {
    return write_failures_.load(std::memory_order_relaxed);
  }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  uint64_t degraded_entries() const {
    return degraded_entries_.load(std::memory_order_relaxed);
  }
  uint64_t snapshots_dropped() const {
    return snapshots_dropped_.load(std::memory_order_relaxed);
  }

  // ckpt_* degraded-mode gauges: write_failures, degraded (0/1),
  // degraded_entries, snapshots_dropped. Complements the base gauges
  // Checkpointer::RegisterMetrics already exposes under the same prefix.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "ckpt_") const;

 private:
  void WriterLoop();

  Checkpointer* const checkpointer_;
  LivePipeline* const pipeline_;
  const SessionStore* const store_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  LivePipeline::CheckpointTicket ticket_;  // Pending hand-off to the writer.
  uint64_t ticket_resume_offset_ = 0;
  bool in_flight_ = false;  // Begin happened, Write not yet returned.
  bool stop_ = false;
  uint64_t started_ = 0;       // Ingest-thread-owned.
  uint64_t skipped_busy_ = 0;  // Ingest-thread-owned.

  // Open-section buffer (writer-thread-owned): framed 'O' bytes of the
  // current snapshot, refilled during each pause. Members (with the encoders)
  // so their capacity survives across snapshots — steady state allocates
  // nothing proportional to the open set.
  std::string open_frames_;
  OpenFrameEncoder open_encoder_;
  StoreFrameEncoder store_encoder_;

  // Incremental store-frame cache (writer-thread-owned): encoded 'S' frames
  // for the live entries with insertion seq in [cached_oldest_seq_,
  // cached_next_seq_), stored at [cached_front_, size) of cached_frames_ with
  // one size per frame in cached_frame_sizes_.
  std::string cached_frames_;
  std::deque<uint32_t> cached_frame_sizes_;
  size_t cached_front_ = 0;
  uint64_t cached_oldest_seq_ = 0;
  uint64_t cached_next_seq_ = 0;

  // Degraded-mode state. The rng is writer-thread-only (backoff jitter);
  // its seed is fixed so retry timing is as reproducible as everything else.
  std::atomic<uint64_t> write_failures_{0};
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> degraded_entries_{0};
  std::atomic<uint64_t> snapshots_dropped_{0};
  Rng backoff_rng_{0x636b707462616b6full};  // "ckptbako"

  std::thread writer_;
};

}  // namespace ts

#endif  // SRC_CKPT_ASYNC_CHECKPOINTER_H_
