// CheckpointState: everything a killed sessionizer needs to resume
// exactly-once, and its (de)serialization to the framed snapshot format.
//
// A snapshot is barrier-aligned: it is taken at an arrival-stream position N
// (the resume offset) where every shard has processed exactly the first N
// records and every session that closes at or below the barrier watermark has
// been inserted into the store. The state is therefore a pure function of the
// arrival prefix (the live pipeline's determinism contract), and restarting
// from it plus replaying records [N, ...) via the log server's
// "TS1 <stream> <offset>" hello reproduces a crash-free run byte-for-byte.
//
// Frame layout (see snapshot_io.h for the frame container):
//
//   'H' header   magic "TSCKPT", version, resume offset, watermark, counters,
//                section counts (used to detect missing frames)
//   'O' open     one open session fragment (id, last_time, records as wire
//                format lines) — one frame per fragment
//   'C' counters a chunk of (session id -> next fragment index) entries
//   'S' store    one stored session (id, fragment, epochs, records) — one
//                frame per session, oldest-inserted first
//   'T' templates the template-miner dictionary (src/parse) at the barrier —
//                at most one frame, present only when mining is enabled, so
//                a restore reproduces the exact template ids for the replayed
//                suffix
//   'E' footer   total frame count; its presence proves the file is complete
//
// Records travel as text wire-format lines (the same canonical bytes the
// transport uses), so the snapshot round-trips exactly for anything that
// arrived off the wire.
#ifndef SRC_CKPT_CHECKPOINT_H_
#define SRC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/analytics/session_store.h"
#include "src/core/live_pipeline.h"
#include "src/core/session.h"

namespace ts {

// Version 2 added the template-frame count to the header and the 'T' frame.
// Older snapshots fail validation and are skipped (a cold start), which is
// correct — the log server replays from offset 0.
inline constexpr uint32_t kCheckpointVersion = 2;

struct CheckpointState {
  // Ingest position: records consumed from the log server at the barrier —
  // the offset the restart's hello resumes from.
  uint64_t resume_offset = 0;
  // Which server-side stream partition the offset refers to.
  uint64_t stream = 0;
  // Global prefix-max event-time watermark at the barrier.
  EventTime ingest_watermark = 0;
  // Counter continuity for the restarted process's gauges and report.
  uint64_t records = 0;          // Parsed records up to the barrier.
  uint64_t parse_failures = 0;
  uint64_t store_inserted = 0;   // SessionStore lifetime counters.
  uint64_t store_evicted = 0;

  LiveCloserState closers;        // Open fragments + fragment numbering.
  std::vector<Session> store_sessions;  // Insertion order, oldest first.
  // Template-miner dictionary at the barrier ('T' frame; mining runs only).
  bool has_miner = false;
  TemplateMinerState miner;
};

// Encodes single stored sessions as framed 'S' records — byte-identical to
// what EncodeSnapshot emits for a `store_sessions` entry. Reuses its scratch
// buffers across calls. Lets AsyncCheckpointer serialize straight off the
// live store (and cache the frames incrementally) instead of deep-copying
// every session into a CheckpointState.
class StoreFrameEncoder {
 public:
  void Append(const Session& session, std::string* out);

 private:
  std::string payload_;
  std::string scratch_;
};

// Same idea for open fragments: emits one framed 'O' record, byte-identical
// to what EncodeSnapshot emits for a `closers.open` entry. Feeds straight off
// LiveCloser::VisitOpenFragments during the barrier pause, so the open
// section — usually the bulk of a live snapshot — is serialized exactly once,
// with no intermediate deep copy.
class OpenFrameEncoder {
 public:
  void Append(std::string_view id, EventTime last_time,
              const std::vector<LogRecord>& records, std::string* out);

 private:
  std::string payload_;
  std::string scratch_;
};

// Serializes `state` into framed snapshot bytes.
std::string EncodeSnapshot(const CheckpointState& state);

// Split encoding for writers that already hold the big sections as encoded
// frames: `open_count` 'O' frames (OpenFrameEncoder) and `store_count` 'S'
// frames (StoreFrameEncoder), logically appended after any
// `state.closers.open` / `state.store_sessions` (which are encoded into
// `head` as usual). The concatenation head | <open frames> | <store frames> |
// tail is byte-equivalent to EncodeSnapshot on an equivalent state — the
// decoder accepts section frames in any order — but the (potentially tens of
// MB) sections never pass through another assembly buffer:
// Checkpointer::Write streams the spans straight to the file.
void EncodeSnapshotParts(const CheckpointState& state, uint64_t open_count,
                         uint64_t store_count, std::string* head,
                         std::string* tail);

// Strict full validation + decode. Returns false — leaving *state unspecified
// but never crashing or reading out of bounds — on any damage: bad magic or
// version, CRC mismatch, truncation at or inside any frame, section counts
// that disagree with the frames present, unparseable embedded records, a
// missing footer, or trailing bytes after it.
bool DecodeSnapshot(std::string_view bytes, CheckpointState* state);

// Decodes one 'S' frame payload (tag byte included) back into a Session —
// the exact inverse of StoreFrameEncoder::Append's payload. Returns false on
// any damage without reading out of bounds; *out is unspecified on failure.
// Exported for the cold tier (src/store), the snapshot container's second
// consumer: cold segments are sequences of these same frames.
bool DecodeStoreFramePayload(std::string_view payload, Session* out);

}  // namespace ts

#endif  // SRC_CKPT_CHECKPOINT_H_
