// Checkpointer: durable snapshot rotation and recovery for the live
// sessionizer (ts_ckpt).
//
// Write side: each Write() serializes a CheckpointState to
// "<dir>/ckpt-<seq>.snap" (monotonically increasing sequence numbers) via
// temp-file + fsync + atomic rename, then prunes all but the newest `retain`
// snapshots. A crash at any instant therefore leaves the directory holding
// only complete, individually verifiable snapshot files plus at most one
// ignorable ".tmp".
//
// Read side: RestoreLatest() walks snapshots newest-first, fully validating
// each (every frame CRC, section counts, footer) and returns the first valid
// one. Damaged snapshots — truncated at or inside any frame boundary,
// bit-flipped anywhere — are counted as fallbacks and skipped, never loaded
// partially and never fatal: with every snapshot damaged the sessionizer
// simply starts cold from offset 0, which is correct (just slower) because
// the log server replays from any offset.
//
// Thread model: Write and RestoreLatest must be externally serialized — one
// caller thread at a time (the ingest thread, or AsyncCheckpointer's writer
// thread, whose Drain() provides the hand-off back to ingest for the final
// synchronous snapshot). The metrics accessors are safe from any thread
// (relaxed atomics), which is what RegisterMetrics relies on.
#ifndef SRC_CKPT_CHECKPOINTER_H_
#define SRC_CKPT_CHECKPOINTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/metrics_registry.h"

namespace ts {

struct CheckpointerOptions {
  std::string dir;      // Created (one level) if missing.
  size_t retain = 3;    // Newest snapshots kept on disk (>= 1).
  // Steady-time cadence for ShouldCheckpoint(); 0 disables the timer (the
  // caller then decides cadence itself, e.g. every N records in benches).
  int64_t interval_ms = 2000;
};

struct RestoreResult {
  bool restored = false;     // A valid snapshot was loaded into *state.
  uint64_t fallbacks = 0;    // Damaged snapshots skipped on the way.
  std::string path;          // The snapshot that won (empty if none).
};

class Checkpointer {
 public:
  explicit Checkpointer(const CheckpointerOptions& options);

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  // True once interval_ms has elapsed since the last Write (or construction).
  bool ShouldCheckpoint() const;

  // Serializes, writes atomically, rotates retention. Returns false on I/O
  // failure (the previous snapshots are untouched and recovery still works).
  bool Write(const CheckpointState& state);

  // Same, but the big sections arrive pre-encoded: `open_count` 'O' frames
  // (OpenFrameEncoder bytes, serialized during the barrier pause) and
  // `store_count` 'S' frames (StoreFrameEncoder bytes, the incremental
  // cache), streamed to the file between header and footer —
  // AsyncCheckpointer's path. `state` must carry no `closers.open` of its
  // own, and no `store_sessions` unless they precede the cached ones in
  // insertion order.
  bool Write(const CheckpointState& state, std::string_view open_frames,
             uint64_t open_count, std::string_view store_frames,
             uint64_t store_count);

  // Restores the newest fully valid snapshot, if any.
  RestoreResult RestoreLatest(CheckpointState* state);

  // ckpt_* gauges: last_snapshot_bytes, last_snapshot_age_ms,
  // last_snapshot_duration_us, snapshots, snapshot_failures, restores,
  // fallbacks, last_resume_offset, prune_failures. The registry must not
  // outlive this object.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "ckpt_") const;

  const std::string& dir() const { return options_.dir; }
  uint64_t snapshots_taken() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  uint64_t last_snapshot_bytes() const {
    return last_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }
  uint64_t prune_failures() const {
    return prune_failures_.load(std::memory_order_relaxed);
  }

  // Lists the sequence numbers of snapshots currently on disk, ascending.
  std::vector<uint64_t> ListSnapshots() const;
  // Path for a given sequence number ("<dir>/ckpt-<020llu>.snap").
  std::string SnapshotPath(uint64_t seq) const;

 private:
  int64_t NowSteadyMs() const;

  CheckpointerOptions options_;
  uint64_t next_seq_ = 1;  // Continues above any pre-existing snapshot.
  std::atomic<int64_t> last_write_steady_ms_{0};
  std::atomic<uint64_t> last_bytes_{0};
  std::atomic<int64_t> last_duration_us_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> snapshot_failures_{0};
  std::atomic<uint64_t> restores_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> last_resume_offset_{0};
  std::atomic<uint64_t> prune_failures_{0};
};

}  // namespace ts

#endif  // SRC_CKPT_CHECKPOINTER_H_
