// Glue between the Checkpointer and the live pipeline objects: one call to
// capture a barrier-aligned CheckpointState from a running
// LivePipeline + SessionStore, and one to restore it into freshly
// constructed ones. Shared by tools/ts_sessionize, the crash-recovery
// conformance suite, and bench/fig5_live_scaling's checkpoint-overhead mode.
#ifndef SRC_CKPT_LIVE_CHECKPOINT_H_
#define SRC_CKPT_LIVE_CHECKPOINT_H_

#include <utility>

#include "src/analytics/session_store.h"
#include "src/ckpt/checkpoint.h"
#include "src/core/live_pipeline.h"

namespace ts {

// Captures a consistent snapshot. Must run on the ingest thread (it drives
// the pipeline barrier), with `resume_offset` equal to the count of records
// already fed — i.e. after the polled batch has been fully fed and flushed,
// pass SocketIngestSource::records_received(). The store export happens
// after the barrier completes, so it contains exactly the sessions closed by
// the arrival prefix [0, resume_offset).
// Copies the store's sessions and insert/evict counters into `state`. Must
// run at a moment when no sink call can fire — on the ingest thread right
// after a synchronous CaptureCheckpoint (no post-barrier batches exist yet),
// or inside CollectCheckpoint's while_paused hook (every shard is parked at
// the barrier) — so the copy holds exactly the sessions closed by the
// barrier prefix.
inline void ExportStoreSection(const SessionStore& store,
                               CheckpointState* state) {
  const SessionStore::Stats stats = store.stats();
  state->store_inserted = stats.inserted;
  state->store_evicted = stats.evicted;
  state->store_sessions.reserve(stats.sessions);
  store.ForEachSession(
      [state](const Session& s) { state->store_sessions.push_back(s); });
}

// Merges a collected PipelineCheckpoint into `state` (counters, watermark,
// closer state). Base counters from a restored snapshot are the caller's to
// add on top.
inline void FillFromPipelineCheckpoint(PipelineCheckpoint&& pipeline_state,
                                       CheckpointState* state) {
  state->ingest_watermark = pipeline_state.ingest_watermark;
  state->records = pipeline_state.records;
  state->parse_failures = pipeline_state.parse_failures;
  state->closers = std::move(pipeline_state.closers);
  state->has_miner = pipeline_state.has_miner;
  state->miner = std::move(pipeline_state.miner);
}

inline CheckpointState CaptureLiveCheckpoint(LivePipeline* pipeline,
                                             const SessionStore& store,
                                             uint64_t resume_offset,
                                             uint64_t stream = 0) {
  CheckpointState state;
  state.resume_offset = resume_offset;
  state.stream = stream;
  FillFromPipelineCheckpoint(pipeline->CaptureCheckpoint(), &state);
  ExportStoreSection(store, &state);
  return state;
}

// Restores a snapshot into a fresh store + pipeline. Must run before the
// pipeline's first Feed*/Flush and before query-server insert observers can
// fire meaningfully (restored sessions do not re-notify subscribers).
inline void RestoreLiveCheckpoint(CheckpointState&& state,
                                  LivePipeline* pipeline,
                                  SessionStore* store) {
  store->ImportSnapshot(std::move(state.store_sessions), state.store_inserted,
                        state.store_evicted);
  PipelineCheckpoint pipeline_state;
  pipeline_state.ingest_watermark = state.ingest_watermark;
  pipeline_state.closers = std::move(state.closers);
  pipeline_state.has_miner = state.has_miner;
  pipeline_state.miner = std::move(state.miner);
  pipeline->RestoreCheckpoint(std::move(pipeline_state));
}

}  // namespace ts

#endif  // SRC_CKPT_LIVE_CHECKPOINT_H_
