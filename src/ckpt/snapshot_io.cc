#include "src/ckpt/snapshot_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/crc32c.h"
#include "src/fault/fs_fault.h"

namespace ts {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out->append(b, sizeof(b));
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out->append(b, sizeof(b));
}

void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

bool ByteCursor::GetU32(uint32_t* v) {
  if (remaining() < 4) {
    return false;
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  pos += 4;
  *v = out;
  return true;
}

bool ByteCursor::GetU64(uint64_t* v) {
  if (remaining() < 8) {
    return false;
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i])) << (8 * i);
  }
  pos += 8;
  *v = out;
  return true;
}

bool ByteCursor::GetBytes(std::string_view* bytes) {
  const size_t saved = pos;
  uint32_t len = 0;
  if (!GetU32(&len) || remaining() < len) {
    pos = saved;
    return false;
  }
  *bytes = data.substr(pos, len);
  pos += len;
  return true;
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload));
  out->append(payload);
}

bool FrameParser::Next(std::string_view* payload) {
  if (!ok_ || pos_ == data_.size()) {
    return false;
  }
  ByteCursor cursor{data_, pos_};
  uint32_t len = 0, crc = 0;
  if (!cursor.GetU32(&len) || !cursor.GetU32(&crc)) {
    ok_ = false;  // Truncated mid frame header.
    return false;
  }
  if (len > kMaxFramePayloadBytes || cursor.remaining() < len) {
    ok_ = false;  // Hostile length or truncated payload.
    return false;
  }
  const std::string_view body = data_.substr(cursor.pos, len);
  if (Crc32c(body) != crc) {
    ok_ = false;  // Bit damage inside the frame.
    return false;
  }
  pos_ = cursor.pos + len;
  *payload = body;
  return true;
}

bool WriteFileAtomic(const std::string& path, std::string_view bytes) {
  return WriteFileAtomic(path, {bytes});
}

bool WriteFileAtomic(const std::string& path,
                     std::initializer_list<std::string_view> parts) {
  const std::string tmp = path + ".tmp";
  if (FsFaultOnOpen(tmp.c_str(), /*for_write=*/true).kind ==
      FsFaultAction::Kind::kFail) {
    return false;
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  for (std::string_view bytes : parts) {
    size_t off = 0;
    while (off < bytes.size()) {
      size_t want = bytes.size() - off;
      const FsFaultAction fault = FsFaultOnWrite(tmp.c_str(), want);
      if (fault.kind == FsFaultAction::Kind::kFail) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
      }
      if (fault.kind == FsFaultAction::Kind::kClamp) {
        want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
      }
      const ssize_t n = ::write(fd, bytes.data() + off, want);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
      }
      FsFaultOnIoBytes(static_cast<uint64_t>(n));
      off += static_cast<size_t>(n);
    }
  }
  // fsync before rename: the rename must never land ahead of the data, or a
  // power cut could leave a fully named, partially persisted snapshot — the
  // one failure mode the CRC framing alone cannot rank newest-first around.
  // On any fsync failure — injected or real — the fd is poison (fsyncgate):
  // the page cache may have dropped the dirty pages, so discard fd and tmp
  // and let the caller rebuild from source state. Never retry fsync here.
  if (FsFaultOnFsync(tmp.c_str()).kind == FsFaultAction::Kind::kFail) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (FsFaultOnRename(tmp.c_str(), path.c_str()).kind ==
      FsFaultAction::Kind::kFail) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  if (FsFaultOnOpen(path.c_str(), /*for_write=*/false).kind ==
      FsFaultAction::Kind::kFail) {
    return false;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  out->clear();
  char buf[64 << 10];
  while (true) {
    size_t want = sizeof(buf);
    const FsFaultAction fault =
        FsFaultOnPread(path.c_str(), want, static_cast<uint64_t>(out->size()));
    if (fault.kind == FsFaultAction::Kind::kFail) {
      ::close(fd);
      return false;
    }
    if (fault.kind == FsFaultAction::Kind::kClamp) {
      want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
    }
    const ssize_t n = ::read(fd, buf, want);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    FsFaultOnIoBytes(static_cast<uint64_t>(n));
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace ts
