#include "src/ckpt/checkpointer.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/ckpt/snapshot_io.h"
#include "src/fault/fs_fault.h"

namespace ts {
namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".snap";

// Parses "ckpt-<digits>.snap" -> seq; false for anything else (including the
// ".tmp" a crashed writer may leave behind).
bool ParseSnapshotName(const char* name, uint64_t* seq) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  const size_t len = std::strlen(name);
  if (len <= prefix_len + suffix_len ||
      std::strncmp(name, kPrefix, prefix_len) != 0 ||
      std::strcmp(name + len - suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < len - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

Checkpointer::Checkpointer(const CheckpointerOptions& options)
    : options_(options) {
  options_.retain = std::max<size_t>(1, options_.retain);
  ::mkdir(options_.dir.c_str(), 0755);  // EEXIST is fine.
  for (uint64_t seq : ListSnapshots()) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
  last_write_steady_ms_.store(NowSteadyMs(), std::memory_order_relaxed);
}

int64_t Checkpointer::NowSteadyMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Checkpointer::ShouldCheckpoint() const {
  if (options_.interval_ms <= 0) {
    return false;
  }
  return NowSteadyMs() -
             last_write_steady_ms_.load(std::memory_order_relaxed) >=
         options_.interval_ms;
}

std::string Checkpointer::SnapshotPath(uint64_t seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%020" PRIu64 "%s", kPrefix, seq,
                kSuffix);
  return options_.dir + "/" + name;
}

std::vector<uint64_t> Checkpointer::ListSnapshots() const {
  std::vector<uint64_t> seqs;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return seqs;
  }
  while (dirent* entry = ::readdir(dir)) {
    uint64_t seq = 0;
    if (ParseSnapshotName(entry->d_name, &seq)) {
      seqs.push_back(seq);
    }
  }
  ::closedir(dir);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool Checkpointer::Write(const CheckpointState& state) {
  return Write(state, std::string_view(), 0, std::string_view(), 0);
}

bool Checkpointer::Write(const CheckpointState& state,
                         std::string_view open_frames, uint64_t open_count,
                         std::string_view store_frames,
                         uint64_t store_count) {
  const int64_t start_ms = NowSteadyMs();
  const auto start = std::chrono::steady_clock::now();
  std::string head;
  std::string tail;
  EncodeSnapshotParts(state, open_count, store_count, &head, &tail);
  const size_t total_bytes =
      head.size() + open_frames.size() + store_frames.size() + tail.size();
  const std::string path = SnapshotPath(next_seq_);
  if (!WriteFileAtomic(path, {std::string_view(head), open_frames,
                              store_frames, std::string_view(tail)})) {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ++next_seq_;
  // Prune beyond the retention window, oldest first. Failures here are
  // harmless (an extra snapshot on disk) but counted, and retried naturally:
  // the leftover shows up in the next rotation's ListSnapshots().
  std::vector<uint64_t> seqs = ListSnapshots();
  while (seqs.size() > options_.retain) {
    const std::string victim = SnapshotPath(seqs.front());
    if (FsFaultOnUnlink(victim.c_str()).kind == FsFaultAction::Kind::kFail ||
        ::unlink(victim.c_str()) != 0) {
      prune_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    seqs.erase(seqs.begin());
  }
  const int64_t duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  last_bytes_.store(total_bytes, std::memory_order_relaxed);
  last_duration_us_.store(duration_us, std::memory_order_relaxed);
  last_resume_offset_.store(state.resume_offset, std::memory_order_relaxed);
  last_write_steady_ms_.store(start_ms, std::memory_order_relaxed);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

RestoreResult Checkpointer::RestoreLatest(CheckpointState* state) {
  RestoreResult result;
  std::vector<uint64_t> seqs = ListSnapshots();
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    const std::string path = SnapshotPath(*it);
    std::string bytes;
    *state = CheckpointState{};
    if (ReadFile(path, &bytes) && DecodeSnapshot(bytes, state)) {
      result.restored = true;
      result.path = path;
      break;
    }
    // Damaged or unreadable: fall back to the previous snapshot.
    ++result.fallbacks;
  }
  if (!result.restored) {
    *state = CheckpointState{};  // Cold start from offset 0.
  }
  fallbacks_.fetch_add(result.fallbacks, std::memory_order_relaxed);
  if (result.restored) {
    restores_.fetch_add(1, std::memory_order_relaxed);
    last_resume_offset_.store(state->resume_offset, std::memory_order_relaxed);
  }
  return result;
}

void Checkpointer::RegisterMetrics(MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->Register(prefix + "last_snapshot_bytes", [this] {
    return static_cast<int64_t>(last_bytes_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "last_snapshot_age_ms", [this] {
    return NowSteadyMs() -
           last_write_steady_ms_.load(std::memory_order_relaxed);
  });
  registry->Register(prefix + "last_snapshot_duration_us", [this] {
    return last_duration_us_.load(std::memory_order_relaxed);
  });
  registry->Register(prefix + "snapshots", [this] {
    return static_cast<int64_t>(snapshots_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "snapshot_failures", [this] {
    return static_cast<int64_t>(
        snapshot_failures_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "restores", [this] {
    return static_cast<int64_t>(restores_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "fallbacks", [this] {
    return static_cast<int64_t>(fallbacks_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "last_resume_offset", [this] {
    return static_cast<int64_t>(
        last_resume_offset_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "prune_failures", [this] {
    return static_cast<int64_t>(
        prune_failures_.load(std::memory_order_relaxed));
  });
}

}  // namespace ts
