#include "src/ckpt/async_checkpointer.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/ckpt/live_checkpoint.h"

namespace ts {

AsyncCheckpointer::AsyncCheckpointer(Checkpointer* checkpointer,
                                     LivePipeline* pipeline,
                                     const SessionStore* store,
                                     const Options& options)
    : checkpointer_(checkpointer),
      pipeline_(pipeline),
      store_(store),
      options_(options) {
  writer_ = std::thread([this] { WriterLoop(); });
}

AsyncCheckpointer::~AsyncCheckpointer() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !in_flight_; });
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
}

bool AsyncCheckpointer::MaybeCheckpoint(uint64_t resume_offset) {
  if (!checkpointer_->ShouldCheckpoint()) {
    return false;
  }
  return RequestCheckpoint(resume_offset);
}

bool AsyncCheckpointer::RequestCheckpoint(uint64_t resume_offset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_) {
      ++skipped_busy_;
      return false;
    }
  }
  // BeginCheckpoint outside mu_: it is ingest-thread-only API and the writer
  // never touches the pipeline before it receives a ticket.
  LivePipeline::CheckpointTicket ticket = pipeline_->BeginCheckpoint();
  if (ticket == nullptr) {
    return false;  // Pipeline already finished.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket_ = std::move(ticket);
    ticket_resume_offset_ = resume_offset;
    in_flight_ = true;
  }
  ++started_;
  cv_.notify_all();
  return true;
}

void AsyncCheckpointer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !in_flight_; });
}

void AsyncCheckpointer::WriterLoop() {
  for (;;) {
    LivePipeline::CheckpointTicket ticket;
    uint64_t resume_offset = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || ticket_ != nullptr; });
      if (ticket_ == nullptr) {
        return;  // stop_ with nothing pending; Drain guarantees this order.
      }
      ticket = std::move(ticket_);
      resume_offset = ticket_resume_offset_;
    }
    CheckpointState state;
    state.resume_offset = resume_offset;
    state.stream = options_.stream;
    open_frames_.clear();  // Keeps capacity from the previous snapshot.
    uint64_t open_count = 0;
    PipelineCheckpoint pipeline_state = pipeline_->CollectCheckpoint(
        ticket,
        [this, &state] {
          // Shards are paused: bring the incremental store-frame cache up to
          // the barrier. Only sessions inserted since the previous snapshot
          // get serialized (stored sessions are immutable and insertion seqs
          // are consecutive, so cached frames stay valid forever); evicted
          // ones fall off the cache front. Amortized cost per snapshot is
          // O(new sessions), not O(store).
          const SessionStore::Stats stats = store_->stats();
          state.store_inserted = stats.inserted;
          state.store_evicted = stats.evicted;
          const SessionStore::SeqWindow window = store_->ForEachSessionSince(
              cached_next_seq_, [this](const Session& s) {
                const size_t before = cached_frames_.size();
                store_encoder_.Append(s, &cached_frames_);
                cached_frame_sizes_.push_back(
                    static_cast<uint32_t>(cached_frames_.size() - before));
              });
          // Drop frames for entries evicted since the last snapshot. Only
          // seqs below the previous cache end ever had frames — an entry both
          // inserted and evicted between snapshots never entered the cache —
          // so the drop is bounded by it, not by window.oldest alone.
          const uint64_t drop_to = std::min(window.oldest, cached_next_seq_);
          while (cached_oldest_seq_ < drop_to &&
                 !cached_frame_sizes_.empty()) {
            cached_front_ += cached_frame_sizes_.front();
            cached_frame_sizes_.pop_front();
            ++cached_oldest_seq_;
          }
          cached_oldest_seq_ = window.oldest;
          cached_next_seq_ = window.next;
        },
        // Open fragments mutate between snapshots, so they cannot be cached
        // like store frames — but the visitor serializes each one exactly
        // once, straight into the output buffer, skipping the deep copy (and
        // its per-fragment allocations) ExportState would make.
        [this, &open_count](const std::string& id, EventTime last_time,
                            const std::vector<LogRecord>& records) {
          open_encoder_.Append(id, last_time, records, &open_frames_);
          ++open_count;
        });
    FillFromPipelineCheckpoint(std::move(pipeline_state), &state);
    state.records += options_.base_records;
    state.parse_failures += options_.base_parse_failures;
    // Reclaim the dead prefix once it dominates the buffer; outside the
    // pause, so the memmove races nothing.
    if (cached_front_ > (1u << 20) && cached_front_ > cached_frames_.size() / 2) {
      cached_frames_.erase(0, cached_front_);
      cached_front_ = 0;
    }
    // Shards are running again; framing CRCs were paid incrementally at cache
    // append time, and the cached section streams straight to the file —
    // fsync + rotation happen here, concurrently with normal processing.
    //
    // Disk trouble never reaches the ingest thread: each failed attempt (a
    // false durability barrier or a failed Write) is counted, retried after
    // jittered exponential backoff, and — past the retry limit — the snapshot
    // is dropped; the next cadence tick starts a fresh one. Every retry goes
    // back through Checkpointer::Write, which re-encodes the retained state
    // into a brand-new tmp fd: after a failed fsync the old fd and its tmp
    // file are already discarded (fsyncgate), never re-fsynced.
    const int retry_limit = options_.write_retry_limit < 1
                                ? 1
                                : options_.write_retry_limit;
    bool wrote = false;
    for (int attempt = 0; attempt < retry_limit; ++attempt) {
      const bool barrier_ok =
          !options_.before_write || options_.before_write();
      if (barrier_ok &&
          checkpointer_->Write(
              state, open_frames_, open_count,
              std::string_view(cached_frames_).substr(cached_front_),
              cached_frame_sizes_.size())) {
        wrote = true;
        break;
      }
      write_failures_.fetch_add(1, std::memory_order_relaxed);
      if (!degraded_.exchange(true, std::memory_order_relaxed)) {
        degraded_entries_.fetch_add(1, std::memory_order_relaxed);
      }
      if (attempt + 1 >= retry_limit) {
        break;
      }
      const int64_t base = std::min<int64_t>(
          options_.write_retry_backoff_ms << std::min(attempt, 5), 2000);
      const int64_t sleep_ms =
          base + static_cast<int64_t>(
                     backoff_rng_.NextBelow(static_cast<uint64_t>(base) + 1));
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                   [this] { return stop_; });
    }
    if (wrote) {
      degraded_.store(false, std::memory_order_relaxed);  // Disk healed.
    } else {
      snapshots_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = false;
    }
    cv_.notify_all();
  }
}

void AsyncCheckpointer::RegisterMetrics(MetricsRegistry* registry,
                                        const std::string& prefix) const {
  registry->Register(prefix + "write_failures", [this] {
    return static_cast<int64_t>(
        write_failures_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "degraded", [this] {
    return degraded_.load(std::memory_order_relaxed) ? int64_t{1}
                                                     : int64_t{0};
  });
  registry->Register(prefix + "degraded_entries", [this] {
    return static_cast<int64_t>(
        degraded_entries_.load(std::memory_order_relaxed));
  });
  registry->Register(prefix + "snapshots_dropped", [this] {
    return static_cast<int64_t>(
        snapshots_dropped_.load(std::memory_order_relaxed));
  });
}

}  // namespace ts
