// TemplateMiner: online log-template mining for unstructured payload text
// (ts_parse). The paper's pipeline assumes structured records, but real
// datacenter logs are mostly free text; USTEP and KELP (PAPERS.md) show that
// an evolving search/grouping tree can learn stable templates incrementally
// from the stream. This is that layer: each payload is tokenized and routed
//
//   token-count bucket  →  leading-token levels  →  leaf template groups
//
// through a bounded tree. Internal levels descend by the literal token at
// positions 0..max_depth-1; tokens that look variable (they contain a digit)
// or that would exceed a node's branch budget route through a shared "<*>"
// edge, which is what caps fan-out under high-cardinality keys. Each leaf
// holds up to max_groups_per_leaf template groups; a payload joins the most
// similar group at or above similarity_threshold (ties to the lowest
// template id), promoting every mismatching position to a wildcard, or
// founds a new group with a fresh id. When the leaf is full the payload is
// force-merged into the best group (the merge half of the node budget) so
// the structure never grows past its caps; template id 0 is the reserved
// catch-all for payloads the budget cannot place (empty, overlong, or the
// tree is at max_nodes with no path).
//
// Determinism contract: the miner's entire state — the tree, every group,
// every assigned template id — is a pure function of the sequence of
// payloads fed so far. Same payload prefix ⇒ same ids, same extracted
// variables, same Export() bytes, on any machine and across crash/restore
// (Import() of an Export() taken at position N, then feeding payloads
// [N, ...), is byte-identical to the uninterrupted run). The live pipeline
// relies on this: it mines on the single ingest thread in arrival order, so
// the rewritten records are identical for every worker count.
//
// Bounded memory: nodes (internal + leaf) never exceed max_nodes and each
// leaf never exceeds max_groups_per_leaf groups; everything else is O(1)
// per payload. node_count() is the budget gauge.
//
// Thread model: plain single-threaded object; callers that share one across
// threads wrap it in their own lock (LivePipeline does).
#ifndef SRC_PARSE_TEMPLATE_MINER_H_
#define SRC_PARSE_TEMPLATE_MINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ts {

struct TemplateMinerOptions {
  size_t max_depth = 2;            // Leading-token levels below the bucket.
  size_t max_children = 16;        // Literal branches per node before "<*>".
  size_t max_nodes = 2048;         // Total tree nodes (internal + leaf).
  size_t max_groups_per_leaf = 8;  // Template groups per leaf.
  size_t max_tokens = 64;          // Longer payloads go to the catch-all.
  double similarity_threshold = 0.5;  // Matching fraction required to join.
};

// One template as seen by TEMPLATES queries and gauges.
struct TemplateInfo {
  uint32_t id = 0;
  uint64_t hits = 0;
  std::string text;  // Tokens joined by spaces, wildcards as "<*>".
};

// Serializable miner state: the flattened tree (pre-order, parents before
// children) plus every leaf's groups. Export() and Import() round-trip it
// exactly; ts_ckpt carries it as the snapshot's 'T' frame.
struct TemplateMinerState {
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  struct NodeRec {
    uint32_t parent = kNoParent;  // Index into `nodes`; kNoParent for roots.
    uint32_t bucket = 0;          // Token-count bucket (root nodes only).
    std::string token;            // Edge token from the parent ("" for roots).
    bool wild = false;            // Reached via the "<*>" edge.
    bool leaf = false;
    bool operator==(const NodeRec&) const = default;
  };
  struct GroupRec {
    uint32_t node = 0;  // Index of the owning leaf in `nodes`.
    uint32_t template_id = 0;
    uint64_t hits = 0;
    std::vector<std::string> tokens;  // Promoted positions hold "".
    std::vector<uint8_t> wildcard;    // Parallel to tokens; 1 = "<*>".
    bool operator==(const GroupRec&) const = default;
  };

  uint32_t next_template_id = 1;  // 0 is the reserved catch-all.
  uint64_t catch_all_hits = 0;
  uint64_t payloads_mined = 0;
  std::vector<NodeRec> nodes;
  std::vector<GroupRec> groups;
  bool operator==(const TemplateMinerState&) const = default;
};

class TemplateMiner {
 public:
  explicit TemplateMiner(const TemplateMinerOptions& options = {});
  ~TemplateMiner();
  TemplateMiner(const TemplateMiner&) = delete;
  TemplateMiner& operator=(const TemplateMiner&) = delete;

  // Mines one payload: learns/updates its template and returns the stable
  // template id. When `vars` is non-null it receives the variable tokens
  // (the payload's tokens at the template's wildcard positions; the whole
  // payload for the catch-all). The views point into `payload`.
  uint32_t Mine(std::string_view payload,
                std::vector<std::string_view>* vars = nullptr);

  // Mines `payload` and appends its compact structured form to *out:
  // "#<id>" followed by " <var>" per extracted variable. This is the
  // template-encoded payload the live path stores in place of the raw text.
  uint32_t MineAndRewrite(std::string_view payload, std::string* out);

  // Per-template (id, hits, text), catch-all included when hit, sorted by id.
  std::vector<TemplateInfo> Snapshot() const;

  TemplateMinerState Export() const;
  // Replaces the miner's state. Returns false (leaving the miner empty) if
  // the state is structurally invalid — out-of-range parents, children
  // before parents, groups on non-leaves, or mismatched token/wildcard
  // lengths.
  bool Import(const TemplateMinerState& state);

  const TemplateMinerOptions& options() const { return options_; }
  size_t node_count() const { return node_count_; }
  // Learned template groups (the catch-all, if hit, counts as one more in
  // Snapshot() but not here).
  size_t template_count() const { return group_count_; }
  uint64_t payloads_mined() const { return payloads_mined_; }
  uint64_t catch_all_hits() const { return catch_all_hits_; }

 private:
  struct Group {
    uint32_t template_id = 0;
    uint64_t hits = 0;
    std::vector<std::string> tokens;
    std::vector<uint8_t> wildcard;
  };
  struct Node {
    // Literal edges, ordered — deterministic Export() traversal.
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
    std::unique_ptr<Node> wild;  // The shared "<*>" edge.
    std::vector<Group> groups;   // Leaf only.
    bool leaf = false;
  };

  void Clear();
  // Descends/creates the path for `tokens`; nullptr when the node budget is
  // exhausted before a leaf exists.
  Node* Descend(const std::vector<std::string_view>& tokens);
  uint32_t MineInLeaf(Node* leaf, const std::vector<std::string_view>& tokens,
                      std::vector<std::string_view>* vars);

  TemplateMinerOptions options_;
  std::map<uint32_t, std::unique_ptr<Node>> roots_;  // Token-count buckets.
  size_t node_count_ = 0;
  size_t group_count_ = 0;
  uint32_t next_template_id_ = 1;
  uint64_t catch_all_hits_ = 0;
  uint64_t payloads_mined_ = 0;
  std::vector<std::string_view> scratch_tokens_;
  std::vector<std::string_view> scratch_vars_;
};

}  // namespace ts

#endif  // SRC_PARSE_TEMPLATE_MINER_H_
