#include "src/parse/template_miner.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace ts {
namespace {

// Variable-looking tokens (anything containing a digit: counters, ids,
// latencies, addresses) route through the "<*>" edge and are pre-wildcarded
// in new groups — the USTEP heuristic that keeps high-cardinality values out
// of the tree's branch tables.
bool IsVarToken(std::string_view token) {
  for (const char c : token) {
    if (c >= '0' && c <= '9') {
      return true;
    }
  }
  return false;
}

void TokenizeInto(std::string_view payload,
                  std::vector<std::string_view>* tokens) {
  tokens->clear();
  size_t pos = 0;
  while (pos < payload.size()) {
    const size_t space = payload.find(' ', pos);
    const size_t end = space == std::string_view::npos ? payload.size() : space;
    if (end > pos) {
      tokens->push_back(payload.substr(pos, end - pos));
    }
    pos = end + 1;
  }
}

}  // namespace

TemplateMiner::TemplateMiner(const TemplateMinerOptions& options)
    : options_(options) {
  options_.max_nodes = std::max<size_t>(1, options_.max_nodes);
  options_.max_tokens = std::max<size_t>(1, options_.max_tokens);
}

TemplateMiner::~TemplateMiner() = default;

void TemplateMiner::Clear() {
  roots_.clear();
  node_count_ = 0;
  group_count_ = 0;
  next_template_id_ = 1;
  catch_all_hits_ = 0;
  payloads_mined_ = 0;
}

TemplateMiner::Node* TemplateMiner::Descend(
    const std::vector<std::string_view>& tokens) {
  // Every payload in one bucket has the same token count, so the leaf depth
  // min(max_depth, count) is a bucket constant and leaf flags stay coherent.
  const uint32_t bucket = static_cast<uint32_t>(tokens.size());
  const size_t depth = std::min(options_.max_depth, tokens.size());
  Node* node;
  const auto it = roots_.find(bucket);
  if (it != roots_.end()) {
    node = it->second.get();
  } else {
    if (node_count_ >= options_.max_nodes) {
      return nullptr;
    }
    auto created = std::make_unique<Node>();
    created->leaf = depth == 0;
    node = created.get();
    roots_.emplace(bucket, std::move(created));
    ++node_count_;
  }
  for (size_t d = 0; d < depth; ++d) {
    const bool child_leaf = d + 1 == depth;
    const std::string_view token = tokens[d];
    Node* next = nullptr;
    if (!IsVarToken(token)) {
      const auto child = node->children.find(token);
      if (child != node->children.end()) {
        next = child->second.get();
      } else if (node->children.size() < options_.max_children &&
                 node_count_ < options_.max_nodes) {
        auto created = std::make_unique<Node>();
        created->leaf = child_leaf;
        next = created.get();
        node->children.emplace(std::string(token), std::move(created));
        ++node_count_;
      }
    }
    if (next == nullptr) {
      // Variable-looking token, a full branch table, or no literal budget:
      // the shared wildcard edge absorbs the fan-out.
      if (node->wild == nullptr) {
        if (node_count_ >= options_.max_nodes) {
          return nullptr;
        }
        node->wild = std::make_unique<Node>();
        node->wild->leaf = child_leaf;
        ++node_count_;
      }
      next = node->wild.get();
    }
    node = next;
  }
  return node;
}

uint32_t TemplateMiner::MineInLeaf(Node* leaf,
                                   const std::vector<std::string_view>& tokens,
                                   std::vector<std::string_view>* vars) {
  // Most similar group: matching non-wildcard positions over token count,
  // first (lowest-id) group winning ties.
  size_t best = leaf->groups.size();
  size_t best_matches = 0;
  for (size_t i = 0; i < leaf->groups.size(); ++i) {
    const Group& g = leaf->groups[i];
    if (g.tokens.size() != tokens.size()) {
      continue;
    }
    size_t matches = 0;
    for (size_t j = 0; j < tokens.size(); ++j) {
      if (g.wildcard[j] == 0 && g.tokens[j] == tokens[j]) {
        ++matches;
      }
    }
    if (best == leaf->groups.size() || matches > best_matches) {
      best = i;
      best_matches = matches;
    }
  }
  const double needed =
      options_.similarity_threshold * static_cast<double>(tokens.size());
  const bool join =
      best < leaf->groups.size() && static_cast<double>(best_matches) >= needed;
  if (!join) {
    if (leaf->groups.size() < options_.max_groups_per_leaf) {
      // Found a new template; variable-looking tokens start as wildcards.
      Group g;
      g.template_id = next_template_id_++;
      g.tokens.reserve(tokens.size());
      g.wildcard.reserve(tokens.size());
      for (const std::string_view token : tokens) {
        if (IsVarToken(token)) {
          g.tokens.emplace_back();
          g.wildcard.push_back(1);
        } else {
          g.tokens.emplace_back(token);
          g.wildcard.push_back(0);
        }
      }
      leaf->groups.push_back(std::move(g));
      ++group_count_;
      best = leaf->groups.size() - 1;
    } else if (best == leaf->groups.size()) {
      // A full leaf whose groups all have a different token count (possible
      // only through Import of foreign state) has nowhere to merge.
      ++catch_all_hits_;
      if (vars != nullptr) {
        vars->insert(vars->end(), tokens.begin(), tokens.end());
      }
      return 0;
    }
    // else: the leaf is at its group budget — merge into the most similar
    // group, promoting every mismatch below.
  }
  Group& g = leaf->groups[best];
  for (size_t j = 0; j < tokens.size(); ++j) {
    if (g.wildcard[j] == 0 && g.tokens[j] != tokens[j]) {
      g.wildcard[j] = 1;
      g.tokens[j].clear();
    }
  }
  ++g.hits;
  if (vars != nullptr) {
    for (size_t j = 0; j < tokens.size(); ++j) {
      if (g.wildcard[j] != 0) {
        vars->push_back(tokens[j]);
      }
    }
  }
  return g.template_id;
}

uint32_t TemplateMiner::Mine(std::string_view payload,
                             std::vector<std::string_view>* vars) {
  ++payloads_mined_;
  if (vars != nullptr) {
    vars->clear();
  }
  TokenizeInto(payload, &scratch_tokens_);
  if (scratch_tokens_.empty() || scratch_tokens_.size() > options_.max_tokens ||
      options_.max_groups_per_leaf == 0) {
    ++catch_all_hits_;
    if (vars != nullptr && !payload.empty()) {
      vars->push_back(payload);
    }
    return 0;
  }
  Node* leaf = Descend(scratch_tokens_);
  if (leaf == nullptr) {
    // Node budget exhausted before a leaf existed for this shape.
    ++catch_all_hits_;
    if (vars != nullptr) {
      vars->push_back(payload);
    }
    return 0;
  }
  return MineInLeaf(leaf, scratch_tokens_, vars);
}

uint32_t TemplateMiner::MineAndRewrite(std::string_view payload,
                                       std::string* out) {
  scratch_vars_.clear();
  const uint32_t id = Mine(payload, &scratch_vars_);
  out->push_back('#');
  out->append(std::to_string(id));
  for (const std::string_view v : scratch_vars_) {
    out->push_back(' ');
    out->append(v);
  }
  return id;
}

std::vector<TemplateInfo> TemplateMiner::Snapshot() const {
  std::vector<TemplateInfo> out;
  out.reserve(group_count_ + 1);
  if (catch_all_hits_ > 0) {
    out.push_back({0, catch_all_hits_, "<*>"});
  }
  // Recursive walk; depth is bounded by max_depth + 1.
  const std::function<void(const Node&)> visit = [&](const Node& node) {
    for (const Group& g : node.groups) {
      TemplateInfo info;
      info.id = g.template_id;
      info.hits = g.hits;
      for (size_t j = 0; j < g.tokens.size(); ++j) {
        if (j > 0) {
          info.text.push_back(' ');
        }
        info.text.append(g.wildcard[j] != 0 ? std::string_view("<*>")
                                            : std::string_view(g.tokens[j]));
      }
      out.push_back(std::move(info));
    }
    for (const auto& [token, child] : node.children) {
      visit(*child);
    }
    if (node.wild != nullptr) {
      visit(*node.wild);
    }
  };
  for (const auto& [bucket, root] : roots_) {
    visit(*root);
  }
  std::sort(out.begin(), out.end(),
            [](const TemplateInfo& a, const TemplateInfo& b) {
              return a.id < b.id;
            });
  return out;
}

TemplateMinerState TemplateMiner::Export() const {
  TemplateMinerState state;
  state.next_template_id = next_template_id_;
  state.catch_all_hits = catch_all_hits_;
  state.payloads_mined = payloads_mined_;
  state.nodes.reserve(node_count_);
  state.groups.reserve(group_count_);
  // Pre-order (parents before children): buckets ascending, literal children
  // in map order, the wildcard child last — a deterministic flattening.
  const std::function<void(const Node&, uint32_t, uint32_t, const std::string&,
                           bool)>
      visit = [&](const Node& node, uint32_t parent, uint32_t bucket,
                  const std::string& token, bool wild) {
        const uint32_t index = static_cast<uint32_t>(state.nodes.size());
        TemplateMinerState::NodeRec rec;
        rec.parent = parent;
        rec.bucket = bucket;
        rec.token = token;
        rec.wild = wild;
        rec.leaf = node.leaf;
        state.nodes.push_back(std::move(rec));
        for (const Group& g : node.groups) {
          TemplateMinerState::GroupRec grec;
          grec.node = index;
          grec.template_id = g.template_id;
          grec.hits = g.hits;
          grec.tokens = g.tokens;
          grec.wildcard = g.wildcard;
          state.groups.push_back(std::move(grec));
        }
        for (const auto& [child_token, child] : node.children) {
          visit(*child, index, 0, child_token, false);
        }
        if (node.wild != nullptr) {
          visit(*node.wild, index, 0, std::string(), true);
        }
      };
  for (const auto& [bucket, root] : roots_) {
    visit(*root, TemplateMinerState::kNoParent, bucket, std::string(), false);
  }
  return state;
}

bool TemplateMiner::Import(const TemplateMinerState& state) {
  Clear();
  std::vector<Node*> by_index;
  by_index.reserve(state.nodes.size());
  for (const auto& rec : state.nodes) {
    auto created = std::make_unique<Node>();
    created->leaf = rec.leaf;
    Node* node = created.get();
    if (rec.parent == TemplateMinerState::kNoParent) {
      if (!roots_.emplace(rec.bucket, std::move(created)).second) {
        Clear();
        return false;
      }
    } else {
      if (rec.parent >= by_index.size()) {
        Clear();
        return false;  // Parents must precede children.
      }
      Node* parent = by_index[rec.parent];
      if (parent->leaf) {
        Clear();
        return false;
      }
      if (rec.wild) {
        if (parent->wild != nullptr) {
          Clear();
          return false;
        }
        parent->wild = std::move(created);
      } else if (!parent->children.emplace(rec.token, std::move(created))
                      .second) {
        Clear();
        return false;
      }
    }
    by_index.push_back(node);
  }
  node_count_ = state.nodes.size();
  for (const auto& grec : state.groups) {
    if (grec.node >= by_index.size() || !by_index[grec.node]->leaf ||
        grec.tokens.size() != grec.wildcard.size()) {
      Clear();
      return false;
    }
    Group g;
    g.template_id = grec.template_id;
    g.hits = grec.hits;
    g.tokens = grec.tokens;
    g.wildcard = grec.wildcard;
    by_index[grec.node]->groups.push_back(std::move(g));
  }
  group_count_ = state.groups.size();
  next_template_id_ = state.next_template_id;
  catch_all_hits_ = state.catch_all_hits;
  payloads_mined_ = state.payloads_mined;
  return true;
}

}  // namespace ts
