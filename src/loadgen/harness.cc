#include "src/loadgen/harness.h"

#include <utility>
#include <vector>

namespace ts {

ConsumerHarness::ConsumerHarness(const HarnessOptions& options)
    : options_(options) {
  SessionStore::Options store_options;
  store_options.max_bytes = options_.store_bytes;
  store_ = std::make_shared<SessionStore>(store_options);
  metrics_ = std::make_shared<MetricsRegistry>();

  LivePipelineOptions pipe_options;
  pipe_options.workers = options_.workers;
  pipe_options.inactivity_ns = options_.inactivity_ns;
  pipe_options.queue_capacity = options_.queue_capacity;
  pipe_options.shed_policy = options_.shed_policy;
  pipe_options.shed_open_bytes = options_.shed_open_bytes;
  pipe_options.shed_stall_limit_ms = options_.shed_stall_limit_ms;
  pipeline_ = std::make_unique<LivePipeline>(
      pipe_options,
      [this](Session&& s) { store_->Insert(std::move(s)); });
  pipeline_->RegisterMetrics(metrics_.get());
  LivePipeline* pipe = pipeline_.get();
  metrics_->Register("ingest_records", [pipe] {
    return static_cast<int64_t>(pipe->records());
  });
}

ConsumerHarness::~ConsumerHarness() {
  Join();
  Stop();
}

bool ConsumerHarness::Start(uint16_t upstream_port) {
  QueryServerOptions qopts;
  query_server_ =
      std::make_unique<QueryServer>(qopts, store_, metrics_);
  if (!query_server_->Start()) {
    return false;
  }
  serve_thread_ = std::thread([this] { query_server_->Run(); });
  consume_thread_ =
      std::thread([this, upstream_port] { ConsumeLoop(upstream_port); });
  return true;
}

uint16_t ConsumerHarness::query_port() const { return query_server_->port(); }

void ConsumerHarness::ConsumeLoop(uint16_t upstream_port) {
  SocketIngestOptions in_options;
  in_options.port = upstream_port;
  in_options.max_records_per_poll = options_.max_records_per_poll;
  SocketIngestSource source(in_options);
  std::vector<std::string> lines;
  bool done = false;
  while (!done) {
    lines.clear();
    const auto poll = source.PollLines(&lines, /*timeout_ms=*/200);
    for (auto& l : lines) {
      pipeline_->FeedLine(std::move(l));
    }
    lines_received_.store(source.records_received(),
                          std::memory_order_relaxed);
    if (poll == SocketIngestSource::Poll::kEndOfStream) {
      done = true;
    } else if (poll == SocketIngestSource::Poll::kFailed) {
      transport_failed_.store(true);
      done = true;
    } else {
      pipeline_->Flush();
    }
  }
  pipeline_->Finish();
}

void ConsumerHarness::Join() {
  if (joined_) {
    return;
  }
  joined_ = true;
  if (consume_thread_.joinable()) {
    consume_thread_.join();
  }
}

void ConsumerHarness::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  if (query_server_ != nullptr) {
    query_server_->Stop();
  }
  if (serve_thread_.joinable()) {
    serve_thread_.join();
  }
}

ConsumerHarness::Accounting ConsumerHarness::GetAccounting() const {
  Accounting a;
  a.received = lines_received_.load(std::memory_order_relaxed);
  a.parsed = pipeline_->records();
  a.parse_failures = pipeline_->parse_failures();
  a.blank_lines = pipeline_->blank_lines();
  a.records_emitted = pipeline_->records_emitted();
  a.open_records = pipeline_->open_records();
  a.shed_records = pipeline_->shed_records();
  a.shed_fragments = pipeline_->shed_fragments();
  a.shed_lines = pipeline_->shed_lines();
  return a;
}

}  // namespace ts
