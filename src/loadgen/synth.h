// Synthetic TS1 wire-trace synthesis for the load generator.
//
// The synthesizer maintains a pool of concurrent session slots. Each scheduled
// record is assigned to a slot by a Zipf draw over slot ranks (hot sessions
// get most of the traffic), and a slot retires after `records_per_session`
// records — its session then goes idle and the consumer's watermark closes it
// one inactivity window later. A retired slot is immediately replaced by a
// fresh session id, so the number of concurrently active sessions stays
// constant while session ids churn.
//
// Hot-shard skew: with hot_session_fraction > 0, that fraction of new session
// ids is rejection-sampled so SipHash24(id) % shards == hot_shard — the exact
// routing hash LivePipeline uses — concentrating load on one shard worker the
// way a popular tenant would.
//
// Event time in each record is its *intended send time* (plus a fixed
// origin). The consumer's watermark then tracks the load clock, which is what
// makes close latency measured from intended send time meaningful.
#ifndef SRC_LOADGEN_SYNTH_H_
#define SRC_LOADGEN_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_util.h"

namespace ts {

struct SynthOptions {
  uint64_t seed = 1;
  size_t concurrent_sessions = 256;  // Slot-pool size.
  size_t records_per_session = 20;   // Records before a slot retires.
  double session_skew = 1.1;         // Zipf skew over slot ranks.
  uint32_t num_services = 64;
  double service_skew = 1.1;         // Zipf skew over service ids.
  uint32_t num_hosts = 16;
  size_t payload_bytes = 48;         // Approximate payload padding.
  // Hot-shard targeting (0 disables): fraction of *new sessions* pinned to
  // `hot_shard` out of `shards` SipHash partitions.
  double hot_session_fraction = 0.0;
  size_t shards = 1;
  size_t hot_shard = 0;
};

struct SynthRecord {
  std::string line;         // Full wire line, no trailing newline.
  bool retires_session = false;  // This was the session's last record.
  std::string session_id;   // Set when retires_session.
};

class SessionSynth {
 public:
  explicit SessionSynth(const SynthOptions& options);

  // Synthesizes the record intended for `intended_ns` (offset from run start).
  void NextRecord(int64_t intended_ns, SynthRecord* out);

  // A record for the dedicated drain session: advances event time without
  // touching the slot pool. Sent after the main schedule so the consumer's
  // watermark passes every retired session's close-eligibility time.
  void DrainRecord(int64_t intended_ns, SynthRecord* out);

  uint64_t sessions_started() const { return sessions_started_; }
  uint64_t sessions_retired() const { return sessions_retired_; }
  uint64_t records() const { return records_; }
  uint64_t hot_sessions() const { return hot_sessions_; }

  // Event-time origin added to every intended offset (keeps times positive
  // and away from the watermark's zero start).
  static constexpr int64_t kEventOrigin = kNanosPerSecond;

 private:
  struct Slot {
    std::string id;
    size_t sent = 0;
  };

  void ResetSlot(Slot* slot);
  std::string NewSessionId();
  void BuildLine(int64_t intended_ns, const std::string& session_id,
                 size_t seq, bool first, bool last, std::string* line);

  SynthOptions options_;
  Rng rng_;
  ZipfSampler slot_sampler_;
  ZipfSampler service_sampler_;
  std::vector<Slot> slots_;
  uint64_t next_session_ = 0;
  uint64_t sessions_started_ = 0;
  uint64_t sessions_retired_ = 0;
  uint64_t records_ = 0;
  uint64_t hot_sessions_ = 0;
  uint64_t drain_seq_ = 0;
  std::string payload_pad_;
};

}  // namespace ts

#endif  // SRC_LOADGEN_SYNTH_H_
