// LoadGenerator: open-loop paced TS1 server + close-latency subscriber.
//
// Topology (mirrors ts_log_server's role so the consumer is unchanged):
//
//   ts_loadgen ──TS1──► ts_sessionize --connect --serve ──query──► subscriber
//        ▲  (paced wire lines)                      (SUBSCRIBE)        │
//        └──────────────── close timestamps ───────────────────────────┘
//
// The generator listens, accepts one consumer, answers its "TS1 <stream>
// <offset>" hello, and then streams synthetic records on a fixed open-loop
// schedule (src/loadgen/arrival.h). The schedule never waits for the socket:
// when the consumer (or TCP) falls behind, records accumulate in a local
// backlog and each record's *send lateness* — wire time minus intended time —
// is recorded instead of silently shifting the schedule. That, plus measuring
// close latency from intended send time, is the coordinated-omission
// discipline (see docs/LOADGEN.md).
//
// Close latency: when a session's last record is scheduled, the session is
// armed in a tracker; a subscriber thread attached to the consumer's query
// port timestamps the matching SUBSCRIBE push. Reported both as
//   close latency  = observed − intended(last record)      (what a user sees)
//   close reaction = close latency − inactivity window     (system overhead)
// since a watermark close cannot happen before the inactivity window elapses.
#ifndef SRC_LOADGEN_LOAD_GENERATOR_H_
#define SRC_LOADGEN_LOAD_GENERATOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/latency_recorder.h"
#include "src/common/time_util.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/synth.h"
#include "src/net/net_util.h"

namespace ts {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read from port() after Listen().
  double rate_per_s = 50'000;
  double duration_s = 5;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  SynthOptions synth;
  // Must match the consumer's inactivity window: sizes the post-schedule
  // drain tail (so the watermark passes every retired session) and the
  // close-reaction offset.
  int64_t inactivity_ns = kNanosPerSecond;
  // Pin SO_SNDBUF so overload shows up as measurable local backlog instead of
  // vanishing into a kernel buffer the size of the experiment.
  int send_buf_bytes = 256 << 10;
  size_t replay_ring = 1 << 16;  // Lines kept for reconnect resume.
  int accept_wait_ms = 15'000;   // Max wait for the consumer to connect.
  int drain_wait_ms = 30'000;    // Max wait for pending closes after the run.
  // Close-latency subscriber (0 = generate only, no latency measurement).
  std::string sub_host = "127.0.0.1";
  uint16_t sub_port = 0;
  int sub_attach_wait_ms = 15'000;
  bool quiet = false;
};

struct LoadGenReport {
  bool ok = false;
  std::string error;
  uint64_t records_sent = 0;  // Scheduled records put on the wire.
  uint64_t bytes_sent = 0;
  uint64_t sessions_started = 0;
  uint64_t sessions_retired = 0;   // Sessions whose close was armed.
  uint64_t closes_observed = 0;    // Armed sessions seen closing.
  uint64_t closes_missing = 0;     // Armed but never observed.
  uint64_t closes_unmatched = 0;   // Pushes for unarmed ids (pool leftovers,
                                   // early fragments, drain session).
  uint64_t subscriber_dropped = 0; // Server-reported #DROPPED total.
  uint64_t hot_sessions = 0;
  double goal_rate = 0;
  double achieved_rate = 0;        // records_sent / pacing wall time.
  double wall_s = 0;               // Pacing phase only (excludes drain).
  size_t peak_backlog_bytes = 0;   // Largest local unsent backlog.
  LatencyRecorder send_lateness;   // Wire time − intended time, per record.
  LatencyRecorder close_latency;   // Observed close − intended last send.
  LatencyRecorder close_reaction;  // close_latency − inactivity window.
};

// Arms retired sessions on the pacing thread; resolves them on the
// subscriber thread. Latencies are computed against the shared steady-clock
// origin set once before pacing starts.
class CloseTracker {
 public:
  void SetOrigin(int64_t t0_steady_ns, int64_t inactivity_ns);
  void Arm(const std::string& id, int64_t intended_last_ns);
  // True when `id` was armed; fills both latencies and disarms it.
  bool Resolve(const std::string& id, int64_t now_steady_ns,
               int64_t* latency_ns, int64_t* reaction_ns);
  size_t pending() const;

 private:
  mutable std::mutex mu_;
  int64_t t0_ = 0;
  int64_t inactivity_ns_ = 0;
  std::unordered_map<std::string, int64_t> armed_;  // id -> intended_last.
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenOptions& options);

  // Binds the TS1 listen socket. port() is valid afterwards.
  bool Listen();
  uint16_t port() const { return port_; }

  // The consumer's query port is usually discovered only after the consumer
  // has connected to us (it binds its query server after its ingest side);
  // set it any time before Run().
  void SetSubscriber(const std::string& host, uint16_t port) {
    options_.sub_host = host;
    options_.sub_port = port;
  }

  // Blocking: accepts the consumer, paces the full schedule plus drain tail,
  // waits for pending closes, sends #EOS. Runs the subscriber on an internal
  // thread when sub_port != 0. Call once.
  LoadGenReport Run();

 private:
  struct Conn;

  bool AcceptConsumer(Conn* conn, uint64_t* resume_offset);

  LoadGenOptions options_;
  FdGuard listen_fd_;
  uint16_t port_ = 0;
};

}  // namespace ts

#endif  // SRC_LOADGEN_LOAD_GENERATOR_H_
