#include "src/loadgen/synth.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/siphash.h"
#include "src/common/status.h"

namespace ts {

SessionSynth::SessionSynth(const SynthOptions& options)
    : options_(options),
      rng_(options.seed),
      slot_sampler_(std::max<size_t>(1, options.concurrent_sessions),
                    options.session_skew),
      service_sampler_(std::max<uint32_t>(1, options.num_services),
                       options.service_skew) {
  TS_CHECK(options_.records_per_session >= 1);
  TS_CHECK(options_.shards >= 1);
  TS_CHECK(options_.hot_shard < options_.shards);
  slots_.resize(std::max<size_t>(1, options_.concurrent_sessions));
  for (auto& slot : slots_) {
    ResetSlot(&slot);
  }
  payload_pad_.assign(
      options_.payload_bytes > 24 ? options_.payload_bytes - 24 : 0, 'x');
}

std::string SessionSynth::NewSessionId() {
  ++sessions_started_;
  const bool hot = options_.hot_session_fraction > 0 &&
                   rng_.NextBool(options_.hot_session_fraction);
  char buf[48];
  for (uint64_t attempt = 0;; ++attempt) {
    const uint64_t n = next_session_++;
    std::snprintf(buf, sizeof(buf), "lg-%08" PRIx64, n);
    if (!hot) {
      return buf;
    }
    // Rejection-sample until the id lands on the hot SipHash partition —
    // expected `shards` attempts, same hash the pipeline routes by.
    if (SipHash24(std::string_view(buf)) % options_.shards ==
        options_.hot_shard) {
      ++hot_sessions_;
      return buf;
    }
  }
}

void SessionSynth::ResetSlot(Slot* slot) {
  slot->id = NewSessionId();
  slot->sent = 0;
}

void SessionSynth::BuildLine(int64_t intended_ns,
                             const std::string& session_id, size_t seq,
                             bool first, bool last, std::string* line) {
  const uint32_t service =
      static_cast<uint32_t>(service_sampler_.Sample(rng_));
  const uint32_t host =
      static_cast<uint32_t>(rng_.NextBelow(std::max<uint32_t>(1, options_.num_hosts)));
  const char* kind = first ? "START" : (last ? "END" : "ANNOT");
  char txn[24];
  if (first || last) {
    std::snprintf(txn, sizeof(txn), "1");
  } else {
    std::snprintf(txn, sizeof(txn), "1-%zu", seq);
  }
  char head[160];
  const int n = std::snprintf(
      head, sizeof(head), "%lld|%s|%s|svc-%u|h-%u|%s|op=%zu ",
      static_cast<long long>(kEventOrigin + intended_ns), session_id.c_str(),
      txn, service, host, kind, seq);
  line->assign(head, static_cast<size_t>(n));
  line->append(payload_pad_);
}

void SessionSynth::NextRecord(int64_t intended_ns, SynthRecord* out) {
  Slot& slot = slots_[slot_sampler_.Sample(rng_)];
  const bool first = slot.sent == 0;
  const bool last = slot.sent + 1 >= options_.records_per_session;
  BuildLine(intended_ns, slot.id, slot.sent, first, last, &out->line);
  ++slot.sent;
  ++records_;
  out->retires_session = last;
  if (last) {
    out->session_id = slot.id;
    ++sessions_retired_;
    ResetSlot(&slot);
  } else {
    out->session_id.clear();
  }
}

void SessionSynth::DrainRecord(int64_t intended_ns, SynthRecord* out) {
  BuildLine(intended_ns, "lg-drain", drain_seq_ == 0 ? 0 : 1 + drain_seq_,
            drain_seq_ == 0, false, &out->line);
  ++drain_seq_;
  ++records_;
  out->retires_session = false;
  out->session_id.clear();
}

}  // namespace ts
