#include "src/loadgen/arrival.h"

#include <cmath>

#include "src/common/status.h"

namespace ts {

ArrivalSchedule::ArrivalSchedule(ArrivalProcess process, double rate_per_s,
                                 uint64_t seed)
    : process_(process), gap_ns_(1e9 / rate_per_s), rng_(seed) {
  TS_CHECK(rate_per_s > 0);
}

int64_t ArrivalSchedule::NextNs() {
  ++count_;
  if (process_ == ArrivalProcess::kUniform) {
    // Computed from the record index, not accumulated, so rounding error
    // cannot drift the achieved rate over long runs.
    return static_cast<int64_t>(
        std::llround(static_cast<double>(count_) * gap_ns_));
  }
  next_ns_ += rng_.NextExponential(gap_ns_);
  return static_cast<int64_t>(next_ns_);
}

}  // namespace ts
