#include "src/loadgen/load_generator.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "src/query/query_client.h"

namespace ts {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

void CloseTracker::SetOrigin(int64_t t0_steady_ns, int64_t inactivity_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  t0_ = t0_steady_ns;
  inactivity_ns_ = inactivity_ns;
}

void CloseTracker::Arm(const std::string& id, int64_t intended_last_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[id] = intended_last_ns;
}

bool CloseTracker::Resolve(const std::string& id, int64_t now_steady_ns,
                           int64_t* latency_ns, int64_t* reaction_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(id);
  if (it == armed_.end()) {
    return false;
  }
  const int64_t latency = now_steady_ns - (t0_ + it->second);
  *latency_ns = latency < 0 ? 0 : latency;
  const int64_t reaction = latency - inactivity_ns_;
  *reaction_ns = reaction < 0 ? 0 : reaction;
  armed_.erase(it);
  return true;
}

size_t CloseTracker::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return armed_.size();
}

struct LoadGenerator::Conn {
  FdGuard fd;
};

LoadGenerator::LoadGenerator(const LoadGenOptions& options)
    : options_(options) {}

bool LoadGenerator::Listen() {
  const int fd = ListenTcp(options_.host, options_.port, &port_);
  if (fd < 0) {
    return false;
  }
  listen_fd_ = FdGuard(fd);
  return true;
}

bool LoadGenerator::AcceptConsumer(Conn* conn, uint64_t* resume_offset) {
  const int64_t deadline = SteadyNowNanos() +
                           int64_t{options_.accept_wait_ms} * 1'000'000;
  pollfd pfd{listen_fd_.get(), POLLIN, 0};
  for (;;) {
    const int64_t left_ms = (deadline - SteadyNowNanos()) / 1'000'000;
    if (left_ms <= 0) {
      return false;
    }
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(left_ms, 200)));
    if (rc < 0 && errno != EINTR) {
      return false;
    }
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (cfd < 0) {
        continue;
      }
      conn->fd = FdGuard(cfd);
      break;
    }
  }
  SetNoDelay(conn->fd.get());
  SetNonBlocking(conn->fd.get());
  if (options_.send_buf_bytes > 0) {
    SetSendBufferSize(conn->fd.get(), options_.send_buf_bytes);
  }
  // Read the "TS1 <stream> <offset>\n" hello.
  std::string hello;
  const int64_t hello_deadline = SteadyNowNanos() + 5'000'000'000;
  pollfd cpfd{conn->fd.get(), POLLIN, 0};
  while (hello.find('\n') == std::string::npos) {
    if (SteadyNowNanos() > hello_deadline || hello.size() > 256) {
      return false;
    }
    cpfd.revents = 0;
    if (::poll(&cpfd, 1, 100) <= 0) {
      continue;
    }
    char buf[64];
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      return false;
    }
    if (n > 0) {
      hello.append(buf, static_cast<size_t>(n));
    }
  }
  unsigned long long stream = 0;
  unsigned long long offset = 0;
  if (std::sscanf(hello.c_str(), "TS1 %llu %llu", &stream, &offset) != 2) {
    return false;
  }
  *resume_offset = offset;
  return true;
}

LoadGenReport LoadGenerator::Run() {
  LoadGenReport report;
  report.goal_rate = options_.rate_per_s;

  Conn conn;
  uint64_t resume = 0;
  if (!AcceptConsumer(&conn, &resume)) {
    report.error = "no consumer connected (accept/hello timed out)";
    return report;
  }
  if (resume != 0) {
    report.error = "consumer asked to resume mid-stream on first connect";
    return report;
  }

  // --- Close-latency subscriber -------------------------------------------
  CloseTracker tracker;
  std::atomic<bool> sub_stop{false};
  std::atomic<bool> sub_attached{false};
  std::atomic<bool> sub_failed{false};
  std::atomic<uint64_t> closes_observed{0};
  std::atomic<uint64_t> closes_unmatched{0};
  std::atomic<uint64_t> sub_dropped{0};
  LatencyRecorder sub_latency;
  LatencyRecorder sub_reaction;
  std::thread sub_thread;
  if (options_.sub_port != 0) {
    sub_thread = std::thread([&] {
      std::optional<QueryClient> client;
      const int64_t attach_deadline =
          SteadyNowNanos() + int64_t{options_.sub_attach_wait_ms} * 1'000'000;
      while (!sub_stop.load(std::memory_order_relaxed)) {
        QueryClientOptions qopts;
        qopts.host = options_.sub_host;
        qopts.port = options_.sub_port;
        qopts.connect_timeout_ms = 500;
        client.emplace(qopts);
        if (client->Connect() && client->Subscribe()) {
          break;
        }
        client.reset();
        if (SteadyNowNanos() > attach_deadline) {
          sub_failed.store(true);
          return;
        }
        SleepMs(100);
      }
      sub_attached.store(true);
      Session s;
      uint64_t dropped = 0;
      while (client.has_value()) {
        const auto ev = client->Next(&s, &dropped, 100);
        sub_dropped.store(client->total_dropped(), std::memory_order_relaxed);
        if (ev == QueryClient::Event::kSession) {
          int64_t latency = 0;
          int64_t reaction = 0;
          if (tracker.Resolve(s.id, SteadyNowNanos(), &latency, &reaction)) {
            sub_latency.Record(latency);
            sub_reaction.Record(reaction);
            closes_observed.fetch_add(1, std::memory_order_relaxed);
          } else {
            closes_unmatched.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (ev == QueryClient::Event::kClosed ||
                   ev == QueryClient::Event::kError) {
          break;
        } else if (sub_stop.load(std::memory_order_relaxed)) {
          break;
        }
      }
    });
    // Attach before the first record: a close pushed before the subscription
    // exists is invisible, which would bias the percentiles optimistically.
    while (!sub_attached.load() && !sub_failed.load()) {
      SleepMs(10);
    }
    if (sub_failed.load()) {
      report.error = "subscriber failed to attach to query port";
      sub_stop.store(true);
      sub_thread.join();
      return report;
    }
  }

  // --- Open-loop pacing ----------------------------------------------------
  SessionSynth synth(options_.synth);
  ArrivalSchedule schedule(options_.arrival, options_.rate_per_s,
                           options_.synth.seed * 0x9E3779B97F4A7C15ULL + 1);
  const int64_t run_ns =
      static_cast<int64_t>(options_.duration_s * 1e9);
  // Drain tail: a few low-rate records on a dedicated session after the main
  // schedule, advancing event time past every retired session's
  // close-eligibility point (last record + inactivity) so the consumer's
  // watermark can close them. Without this, sessions retiring near the end of
  // the run would hang open and never produce a latency sample.
  std::vector<int64_t> drain_times;
  {
    const int64_t gap =
        std::max<int64_t>(options_.inactivity_ns / 4, 10 * kNanosPerMilli);
    const int64_t end = run_ns + options_.inactivity_ns + 2 * gap;
    for (int64_t t = run_ns + gap; t <= end; t += gap) {
      drain_times.push_back(t);
    }
  }

  std::string outbuf;
  size_t head = 0;             // outbuf[head..) is unsent.
  uint64_t appended_abs = 0;   // Bytes ever appended.
  uint64_t flushed_abs = 0;    // Bytes ever written to the socket.
  uint64_t main_end_abs = 0;   // appended_abs after the last main record.
  int64_t main_flushed_at = -1;  // Wall offset when main_end_abs hit the wire.
  std::deque<std::pair<int64_t, uint64_t>> inflight;  // (intended, end abs).
  std::deque<std::string> ring;  // Recent lines for reconnect replay.
  uint64_t ring_base = 0;        // Line index of ring.front().
  uint64_t lines_appended = 0;
  bool conn_ok = true;

  const int64_t t0 = SteadyNowNanos();
  tracker.SetOrigin(t0, options_.inactivity_ns);

  auto append_line = [&](const std::string& line, int64_t intended,
                         bool track) {
    outbuf += line;
    outbuf += '\n';
    appended_abs += line.size() + 1;
    if (track) {
      inflight.emplace_back(intended, appended_abs);
    }
    ring.push_back(line);
    ++lines_appended;
    while (ring.size() > options_.replay_ring) {
      ring.pop_front();
      ++ring_base;
    }
  };

  auto reconnect = [&]() -> bool {
    conn.fd = FdGuard();
    uint64_t offset = 0;
    Conn fresh;
    if (!AcceptConsumer(&fresh, &offset)) {
      return false;
    }
    if (offset < ring_base || offset > lines_appended) {
      return false;  // Resume point fell out of the replay ring.
    }
    conn.fd = std::move(fresh.fd);
    // Rebuild the backlog from the ring; lateness bookkeeping restarts (the
    // replayed records' original lateness samples were already taken or are
    // abandoned — reconnects are a robustness path, not a measured one).
    outbuf.clear();
    head = 0;
    inflight.clear();
    appended_abs = 0;
    flushed_abs = 0;
    for (uint64_t i = offset - ring_base; i < ring.size(); ++i) {
      outbuf += ring[i];
      outbuf += '\n';
    }
    appended_abs = outbuf.size();
    main_end_abs = 0;  // Achieved-rate bookkeeping is void after a reconnect.
    main_flushed_at = -2;
    return true;
  };

  auto try_flush = [&]() -> bool {
    while (head < outbuf.size()) {
      const ssize_t n = ::send(conn.fd.get(), outbuf.data() + head,
                               outbuf.size() - head, MSG_NOSIGNAL);
      if (n > 0) {
        head += static_cast<size_t>(n);
        flushed_abs += static_cast<uint64_t>(n);
        report.bytes_sent += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    if (head > (1u << 20) && head * 2 > outbuf.size()) {
      outbuf.erase(0, head);
      head = 0;
    }
    const int64_t now_rel = SteadyNowNanos() - t0;
    while (!inflight.empty() && inflight.front().second <= flushed_abs) {
      report.send_lateness.Record(
          std::max<int64_t>(0, now_rel - inflight.front().first));
      inflight.pop_front();
    }
    if (main_flushed_at == -1 && main_end_abs > 0 &&
        flushed_abs >= main_end_abs) {
      main_flushed_at = now_rel;
    }
    report.peak_backlog_bytes =
        std::max(report.peak_backlog_bytes, outbuf.size() - head);
    return true;
  };

  SynthRecord rec;
  int64_t next_intended = schedule.NextNs();
  size_t drain_idx = 0;
  bool all_emitted = false;
  while (conn_ok) {
    const int64_t now = SteadyNowNanos() - t0;
    // Emit everything due by `now` — on schedule, never gated on the socket.
    int64_t next_due = -1;
    for (;;) {
      if (next_intended < run_ns) {
        if (next_intended > now) {
          next_due = next_intended;
          break;
        }
        synth.NextRecord(next_intended, &rec);
        if (rec.retires_session) {
          tracker.Arm(rec.session_id, next_intended);
        }
        append_line(rec.line, next_intended, true);
        ++report.records_sent;
        next_intended = schedule.NextNs();
        if (next_intended >= run_ns) {
          main_end_abs = appended_abs;
        }
      } else if (drain_idx < drain_times.size()) {
        if (main_end_abs == 0 && main_flushed_at == -1) {
          main_end_abs = appended_abs;  // Main schedule emitted zero records.
        }
        if (drain_times[drain_idx] > now) {
          next_due = drain_times[drain_idx];
          break;
        }
        synth.DrainRecord(drain_times[drain_idx], &rec);
        append_line(rec.line, drain_times[drain_idx], false);
        ++drain_idx;
      } else {
        all_emitted = true;
        break;
      }
    }
    if (!try_flush()) {
      conn_ok = reconnect();
      continue;
    }
    if (all_emitted && head >= outbuf.size()) {
      break;
    }
    // Sleep to the next scheduled record (capped at 1ms so flushes keep
    // draining a backlog); when a backlog exists, wait for writability
    // instead so a freed socket resumes the flush immediately.
    int64_t wait_ms = 1;
    if (all_emitted) {
      wait_ms = 5;
    } else if (next_due > 0) {
      wait_ms = std::max<int64_t>(0, (next_due - (SteadyNowNanos() - t0)) /
                                         1'000'000);
      wait_ms = std::min<int64_t>(wait_ms, 1);
    }
    if (head < outbuf.size()) {
      pollfd pfd{conn.fd.get(), POLLOUT, 0};
      ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(wait_ms, 1)));
    } else if (wait_ms > 0) {
      SleepMs(wait_ms);
    } else {
      std::this_thread::yield();
    }
  }

  if (!conn_ok) {
    report.error = "consumer connection lost and reconnect failed";
  }

  // --- Post-run: wait for pending closes, then end the stream --------------
  if (conn_ok && options_.sub_port != 0) {
    const int64_t wait_deadline =
        SteadyNowNanos() + int64_t{options_.drain_wait_ms} * 1'000'000;
    size_t last_pending = tracker.pending();
    int64_t last_change = SteadyNowNanos();
    const int64_t stable_ns =
        std::max<int64_t>(2 * options_.inactivity_ns, 2 * kNanosPerSecond);
    while (tracker.pending() > 0 && SteadyNowNanos() < wait_deadline) {
      SleepMs(50);
      const size_t p = tracker.pending();
      if (p != last_pending) {
        last_pending = p;
        last_change = SteadyNowNanos();
      } else if (SteadyNowNanos() - last_change > stable_ns) {
        break;  // Stuck (e.g. subscriber drops under overload) — stop waiting.
      }
    }
  }
  if (conn_ok) {
    std::string eos = "#EOS\n";
    const int64_t eos_deadline = SteadyNowNanos() + 5'000'000'000;
    size_t off = 0;
    while (off < eos.size() && SteadyNowNanos() < eos_deadline) {
      const ssize_t n = ::send(conn.fd.get(), eos.data() + off,
                               eos.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR) {
        break;
      } else {
        SleepMs(1);
      }
    }
  }

  if (sub_thread.joinable()) {
    sub_stop.store(true);
    sub_thread.join();
    report.close_latency.Merge(sub_latency);
    report.close_reaction.Merge(sub_reaction);
  }

  report.sessions_started = synth.sessions_started();
  report.sessions_retired = synth.sessions_retired();
  report.hot_sessions = synth.hot_sessions();
  report.closes_observed = closes_observed.load();
  report.closes_unmatched = closes_unmatched.load();
  report.subscriber_dropped = sub_dropped.load();
  report.closes_missing = tracker.pending();
  const int64_t pace_wall =
      main_flushed_at > 0 ? main_flushed_at
                          : (SteadyNowNanos() - t0);
  report.wall_s = static_cast<double>(pace_wall) / 1e9;
  report.achieved_rate =
      report.wall_s > 0
          ? static_cast<double>(report.records_sent) / report.wall_s
          : 0;
  report.ok = report.error.empty();
  return report;
}

}  // namespace ts
