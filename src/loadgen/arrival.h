// Open-loop arrival schedules (ts_loadgen).
//
// An open-loop generator decides *when* each record is sent from the schedule
// alone — never from the server's responses. The schedule is therefore fixed
// before the run starts (conceptually; here it is generated lazily but
// depends only on the seed), and a slow server cannot slow it down. That is
// the property that makes latency measured from the *intended* send time free
// of coordinated omission: a stall inflates the latency of every record
// scheduled during it, exactly as real clients would experience.
#ifndef SRC_LOADGEN_ARRIVAL_H_
#define SRC_LOADGEN_ARRIVAL_H_

#include <cstdint>

#include "src/common/rng.h"

namespace ts {

enum class ArrivalProcess {
  kUniform,  // Fixed inter-arrival gap: rate_per_s, no burstiness.
  kPoisson,  // Exponential gaps: memoryless bursts at the same mean rate.
};

// Yields the intended send time of each successive record, in nanoseconds
// from the start of the run. Monotone non-decreasing; deterministic per seed.
class ArrivalSchedule {
 public:
  ArrivalSchedule(ArrivalProcess process, double rate_per_s, uint64_t seed);

  // Intended offset of the next record. The first record is due at ~one gap.
  int64_t NextNs();

  uint64_t emitted() const { return count_; }

 private:
  ArrivalProcess process_;
  double gap_ns_;  // Mean inter-arrival gap.
  Rng rng_;
  uint64_t count_ = 0;
  double next_ns_ = 0;  // Poisson accumulator.
};

}  // namespace ts

#endif  // SRC_LOADGEN_ARRIVAL_H_
