// ConsumerHarness: the full live consumer stack in-process, for the loadgen
// self-check (`ts_loadgen --quick`) and bench/overload_study. Mirrors what
// `ts_sessionize --connect --serve` runs as a separate process:
//
//   SocketIngestSource ─► LivePipeline (N shards) ─► SessionStore ─► QueryServer
//
// so a LoadGenerator pointed at `upstream_port` exercises the same TCP ingest
// path, watermark closes, and SUBSCRIBE fan-out the real deployment has —
// just without process boundaries, which lets the caller read the pipeline's
// exact-accounting counters directly.
#ifndef SRC_LOADGEN_HARNESS_H_
#define SRC_LOADGEN_HARNESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "src/analytics/session_store.h"
#include "src/core/live_pipeline.h"
#include "src/net/socket_ingest.h"
#include "src/query/query_server.h"

namespace ts {

struct HarnessOptions {
  size_t workers = 2;
  int64_t inactivity_ns = kNanosPerSecond;
  size_t queue_capacity = 64;
  ShedPolicy shed_policy = ShedPolicy::kNone;
  size_t shed_open_bytes = 32ull << 20;
  int64_t shed_stall_limit_ms = 100;
  size_t store_bytes = 256ull << 20;
  // Bound per-poll ingest batches so a slow pipeline backpressures the
  // socket instead of buffering unbounded lines in the poll loop.
  size_t max_records_per_poll = 4096;
};

class ConsumerHarness {
 public:
  explicit ConsumerHarness(const HarnessOptions& options);
  ~ConsumerHarness();

  // Connects to the upstream TS1 server and starts the consume + serve
  // threads. Returns false if the query server failed to bind.
  bool Start(uint16_t upstream_port);

  uint16_t query_port() const;

  // Waits until the upstream stream ends (EOS) and the pipeline has finished
  // (all open fragments flushed). The query server keeps serving until Stop().
  void Join();
  void Stop();

  LivePipeline* pipeline() { return pipeline_.get(); }
  SessionStore* store() { return store_.get(); }
  uint64_t lines_received() const {
    return lines_received_.load(std::memory_order_relaxed);
  }
  bool transport_failed() const { return transport_failed_.load(); }

  // Exact-accounting snapshot. After Join(), Reconciles() must hold:
  //   received == parsed + parse_failures + blank_lines + shed_lines
  //   parsed   == records_emitted + open_records + shed_records
  // (`records_in == stored + shed` from the ISSUE, at record granularity —
  // after Finish, open_records is 0 and every emitted record is in the sink.)
  struct Accounting {
    uint64_t received = 0;
    uint64_t parsed = 0;
    uint64_t parse_failures = 0;
    uint64_t blank_lines = 0;
    uint64_t records_emitted = 0;
    uint64_t open_records = 0;
    uint64_t shed_records = 0;
    uint64_t shed_fragments = 0;
    uint64_t shed_lines = 0;
    bool Reconciles() const {
      return received == parsed + parse_failures + blank_lines + shed_lines &&
             parsed == records_emitted + open_records + shed_records;
    }
  };
  Accounting GetAccounting() const;

 private:
  void ConsumeLoop(uint16_t upstream_port);

  HarnessOptions options_;
  std::shared_ptr<SessionStore> store_;
  std::shared_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<LivePipeline> pipeline_;
  std::unique_ptr<QueryServer> query_server_;
  std::thread consume_thread_;
  std::thread serve_thread_;
  std::atomic<uint64_t> lines_received_{0};
  std::atomic<bool> transport_failed_{false};
  bool joined_ = false;
  bool stopped_ = false;
};

}  // namespace ts

#endif  // SRC_LOADGEN_HARNESS_H_
