#include "src/log/record.h"

#include "src/common/siphash.h"

namespace ts {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanStart:
      return "START";
    case EventKind::kSpanEnd:
      return "END";
    case EventKind::kAnnotation:
      return "ANNOT";
  }
  return "UNKNOWN";
}

uint64_t SessionHash(const std::string& session_id) {
  return SipHash24(session_id);
}

}  // namespace ts
