// Text wire format for log records.
//
// The paper's replayer emits records "in their original text format over a TCP
// socket" (§5); TS re-parses them on ingest, so parse cost is part of the input
// fraction shown in Figure 7b. The format is one record per line:
//
//   <time_ns>|<session_id>|<txn_id>|svc-<service>|h-<host>|<kind>|<payload>
//
// e.g.  599859123|XKSHSKCBA53U088FXGE7LD8|26-3-11-5-1|svc-204|h-17|ANNOT|q=BOS...
#ifndef SRC_LOG_WIRE_FORMAT_H_
#define SRC_LOG_WIRE_FORMAT_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/log/record.h"

namespace ts {

// Serializes `record` as a single line (no trailing newline), appending to `out`.
void AppendWireFormat(const LogRecord& record, std::string* out);

std::string ToWireFormat(const LogRecord& record);

// Parses one line. Returns nullopt on any malformed field; the caller counts and
// skips such records, mirroring how a real pipeline tolerates corrupt log lines.
std::optional<LogRecord> ParseWireFormat(std::string_view line);

// Per-field validators, shared between ParseWireFormat and the zero-copy
// MaterializeRecord path (src/log/record_view.h) so the two can never drift:
// both accept exactly these field grammars.
namespace wire {

// Whole-field int64 (from_chars; leading '-' allowed, no trailing bytes).
std::optional<int64_t> ParseI64(std::string_view s);

// `prefix` followed by a whole-field uint32; field must be strictly longer
// than the prefix.
std::optional<uint32_t> ParsePrefixedU32(std::string_view s,
                                         std::string_view prefix);

// "START" / "END" / "ANNOT", exact.
std::optional<EventKind> ParseKind(std::string_view s);

}  // namespace wire

}  // namespace ts

#endif  // SRC_LOG_WIRE_FORMAT_H_
