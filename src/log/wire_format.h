// Text wire format for log records.
//
// The paper's replayer emits records "in their original text format over a TCP
// socket" (§5); TS re-parses them on ingest, so parse cost is part of the input
// fraction shown in Figure 7b. The format is one record per line:
//
//   <time_ns>|<session_id>|<txn_id>|svc-<service>|h-<host>|<kind>|<payload>
//
// e.g.  599859123|XKSHSKCBA53U088FXGE7LD8|26-3-11-5-1|svc-204|h-17|ANNOT|q=BOS...
#ifndef SRC_LOG_WIRE_FORMAT_H_
#define SRC_LOG_WIRE_FORMAT_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/log/record.h"

namespace ts {

// Serializes `record` as a single line (no trailing newline), appending to `out`.
void AppendWireFormat(const LogRecord& record, std::string* out);

std::string ToWireFormat(const LogRecord& record);

// Parses one line. Returns nullopt on any malformed field; the caller counts and
// skips such records, mirroring how a real pipeline tolerates corrupt log lines.
std::optional<LogRecord> ParseWireFormat(std::string_view line);

}  // namespace ts

#endif  // SRC_LOG_WIRE_FORMAT_H_
