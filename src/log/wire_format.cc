#include "src/log/wire_format.h"

#include <charconv>
#include <cstring>

namespace ts {
namespace {

constexpr char kSep = '|';

// Extracts the next '|'-separated field from `rest`, advancing it. The final
// field (payload) consumes the remainder.
std::optional<std::string_view> NextField(std::string_view* rest) {
  if (rest->empty()) {
    return std::nullopt;
  }
  const size_t pos = rest->find(kSep);
  if (pos == std::string_view::npos) {
    std::string_view field = *rest;
    *rest = std::string_view();
    return field;
  }
  std::string_view field = rest->substr(0, pos);
  rest->remove_prefix(pos + 1);
  return field;
}

// Appends the decimal form of `v` without allocating a temporary (the
// std::to_string it replaces showed up as the top encode cost in profiles;
// this path runs per record in digests, checkpoints, and exchange frames).
template <typename Int>
void AppendInt(Int v, std::string* out) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(ptr - buf));
}

}  // namespace

namespace wire {

std::optional<int64_t> ParseI64(std::string_view s) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<uint32_t> ParsePrefixedU32(std::string_view s,
                                         std::string_view prefix) {
  if (s.size() <= prefix.size() || s.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  s.remove_prefix(prefix.size());
  uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<EventKind> ParseKind(std::string_view s) {
  if (s == "START") {
    return EventKind::kSpanStart;
  }
  if (s == "END") {
    return EventKind::kSpanEnd;
  }
  if (s == "ANNOT") {
    return EventKind::kAnnotation;
  }
  return std::nullopt;
}

}  // namespace wire

void AppendWireFormat(const LogRecord& record, std::string* out) {
  AppendInt(record.time, out);
  out->push_back(kSep);
  out->append(record.session_id);
  out->push_back(kSep);
  record.txn_id.AppendTo(out);
  out->push_back(kSep);
  out->append("svc-");
  AppendInt(record.service, out);
  out->push_back(kSep);
  out->append("h-");
  AppendInt(record.host, out);
  out->push_back(kSep);
  out->append(EventKindName(record.kind));
  out->push_back(kSep);
  out->append(record.payload);
}

std::string ToWireFormat(const LogRecord& record) {
  std::string out;
  out.reserve(64 + record.session_id.size() + record.payload.size());
  AppendWireFormat(record, &out);
  return out;
}

std::optional<LogRecord> ParseWireFormat(std::string_view line) {
  std::string_view rest = line;

  auto time_field = NextField(&rest);
  auto session_field = NextField(&rest);
  auto txn_field = NextField(&rest);
  auto svc_field = NextField(&rest);
  auto host_field = NextField(&rest);
  auto kind_field = NextField(&rest);
  // Remainder (possibly empty) is the payload.
  if (!time_field || !session_field || !txn_field || !svc_field || !host_field ||
      !kind_field) {
    return std::nullopt;
  }

  auto time = wire::ParseI64(*time_field);
  auto txn = TxnId::Parse(*txn_field);
  auto svc = wire::ParsePrefixedU32(*svc_field, "svc-");
  auto host = wire::ParsePrefixedU32(*host_field, "h-");
  auto kind = wire::ParseKind(*kind_field);
  if (!time || !txn || !svc || !host || !kind || session_field->empty()) {
    return std::nullopt;
  }

  LogRecord record;
  record.time = *time;
  record.session_id = std::string(*session_field);
  record.txn_id = std::move(*txn);
  record.service = *svc;
  record.host = *host;
  record.kind = *kind;
  record.payload = std::string(rest);
  return record;
}

}  // namespace ts
