#include "src/log/record_view.h"

#include <cstring>

#include "src/log/swar_scan.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

constexpr char kSep = '|';

template <size_t (*Scan)(std::string_view, char, size_t*, size_t)>
RecordView ScanWith(std::string_view line) {
  RecordView view;
  view.line = line;
  size_t seps[RecordView::kMaxSeps];
  view.sep_count = static_cast<uint8_t>(
      Scan(line, kSep, seps, RecordView::kMaxSeps));
  for (size_t i = 0; i < view.sep_count; ++i) {
    view.sep[i] = static_cast<uint32_t>(seps[i]);
  }
  return view;
}

// Shape check mirroring six NextField calls in ParseWireFormat:
//  - ≥6 separators: all six fields exist (any may be empty), payload follows.
//  - exactly 5: the text after the fifth separator, if nonempty, is the kind
//    field and the payload is empty; if empty, the sixth NextField fails.
//  - fewer: some NextField ran out of input.
// On success writes the six field views; payload comes from the view.
bool ExtractFields(const RecordView& view, std::string_view fields[6],
                   std::string_view* payload) {
  if (view.sep_count == RecordView::kMaxSeps) {
    for (size_t i = 0; i < 6; ++i) {
      fields[i] = view.field(i);
    }
    *payload = view.payload();
    return true;
  }
  if (view.sep_count == 5) {
    std::string_view tail = view.line.substr(view.sep[4] + 1);
    if (tail.empty()) {
      return false;
    }
    for (size_t i = 0; i < 5; ++i) {
      fields[i] = view.field(i);
    }
    fields[5] = tail;
    *payload = view.line.substr(view.line.size());  // Empty, non-null data.
    return true;
  }
  return false;
}

}  // namespace

RecordView ScanRecord(std::string_view line) {
  return ScanWith<&ScanSeparators>(line);
}

RecordView ScanRecordScalar(std::string_view line) {
  return ScanWith<&ScanSeparatorsScalar>(line);
}

bool ExtractRouteKey(const RecordView& view, EventTime* time,
                     std::string_view* session_id) {
  if (view.sep_count < 2) {
    return false;
  }
  const size_t p0 = view.sep[0];
  const size_t p1 = view.sep[1];
  if (p0 == 0 || p1 == p0 + 1) {
    return false;
  }
  // Unsigned accumulation: wraps (defined) instead of signed overflow on
  // absurd digit runs; identical to the historical value for any time that
  // fits in int64, which is all the watermark contract ever promised.
  uint64_t t = 0;
  for (size_t i = 0; i < p0; ++i) {
    const char c = view.line[i];
    if (c < '0' || c > '9') {
      return false;
    }
    t = t * 10 + static_cast<uint64_t>(c - '0');
  }
  *time = static_cast<EventTime>(t);
  *session_id = view.line.substr(p0 + 1, p1 - p0 - 1);
  return true;
}

size_t PayloadOffset(const RecordView& view) {
  if (view.sep_count < RecordView::kMaxSeps) {
    return std::string_view::npos;
  }
  return view.sep[5] + 1;
}

bool FieldInterner::Lookup(std::string_view field, uint32_t* out) {
  // NUL bytes would alias the zero padding in the packed key; such fields
  // never parse anyway, so they take (and fail) the direct path.
  const bool cacheable =
      field.size() <= sizeof(uint64_t) &&
      std::memchr(field.data(), '\0', field.size()) == nullptr;
  uint64_t key = 0;
  if (cacheable) {
    std::memcpy(&key, field.data(), field.size());
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      *out = it->second;
      return true;
    }
  }
  auto parsed = wire::ParsePrefixedU32(field, prefix_);
  if (!parsed) {
    return false;
  }
  if (cacheable) {
    cache_.emplace(key, *parsed);
  }
  *out = *parsed;
  return true;
}

bool MaterializeRecord(const RecordView& view, InternerPair* interners,
                       LogRecord* out) {
  std::string_view fields[6];
  std::string_view payload;
  if (!ExtractFields(view, fields, &payload)) {
    return false;
  }
  auto time = wire::ParseI64(fields[0]);
  if (!time || fields[1].empty()) {
    return false;
  }
  uint32_t svc = 0;
  uint32_t host = 0;
  if (interners != nullptr) {
    if (!interners->svc.Lookup(fields[3], &svc) ||
        !interners->host.Lookup(fields[4], &host)) {
      return false;
    }
  } else {
    auto svc_parsed = wire::ParsePrefixedU32(fields[3], "svc-");
    auto host_parsed = wire::ParsePrefixedU32(fields[4], "h-");
    if (!svc_parsed || !host_parsed) {
      return false;
    }
    svc = *svc_parsed;
    host = *host_parsed;
  }
  auto kind = wire::ParseKind(fields[5]);
  if (!kind) {
    return false;
  }
  auto txn = TxnId::Parse(fields[2]);
  if (!txn) {
    return false;
  }
  out->time = *time;
  out->session_id.assign(fields[1].data(), fields[1].size());
  out->txn_id = std::move(*txn);
  out->service = svc;
  out->host = host;
  out->kind = *kind;
  out->payload.assign(payload.data(), payload.size());
  return true;
}

}  // namespace ts
