// The unit of zero-copy transfer from the ingest edge into the pipeline.
//
// A LineBlock is a batch of framed lines whose bytes live in a shared ingest
// arena: the framer writes recv() bytes (and any partial-line carry) into the
// arena and emits views. The pipeline re-slices those views into per-shard
// batches that keep the arena alive by reference; when the last batch drains,
// the block's bytes go away wholesale (docs/INGEST.md).
#ifndef SRC_LOG_RECORD_BATCH_H_
#define SRC_LOG_RECORD_BATCH_H_

#include <string_view>
#include <vector>

#include "src/common/arena.h"

namespace ts {

struct LineBlock {
  // Backing storage for every view in `lines`. May be shared with the
  // producer's still-filling arena; holders only read.
  ArenaRef arena;
  // One entry per framed line, newline stripped (CR too), in arrival order.
  // Entries may be empty (blank line on the wire).
  std::vector<std::string_view> lines;
  // True when the source reconnected since the previous block: per-connection
  // state downstream (interning dictionaries) must reset before these lines.
  bool connection_reset = false;

  bool empty() const { return lines.empty(); }
  void clear() {
    arena.reset();
    lines.clear();
    connection_reset = false;
  }
};

}  // namespace ts

#endif  // SRC_LOG_RECORD_BATCH_H_
