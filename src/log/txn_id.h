// Hierarchical transaction identifiers.
//
// The paper's logging infrastructure assigns IDs that reflect call nesting: a
// record for transaction "26-3-11-5-1" is the 1st child of the 5th child of ... of
// root transaction 26 within its session (§2.1). The sessionizer exploits this to
// rebuild trace trees without needing explicit parent pointers, and to infer
// missing interior nodes ("transaction ID of 2-10 implies there is a root
// transaction 2 and nine other siblings", §2.3).
#ifndef SRC_LOG_TXN_ID_H_
#define SRC_LOG_TXN_ID_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ts {

class TxnId {
 public:
  TxnId() = default;
  explicit TxnId(std::vector<uint32_t> path) : path_(std::move(path)) {}

  // Parses "26-3-11-5-1". Returns nullopt on empty input, non-numeric components,
  // or component overflow.
  static std::optional<TxnId> Parse(std::string_view s);

  std::string ToString() const;

  // Appends the "26-3-11-5-1" form to `out` without temporaries (hot on the
  // wire-encode path).
  void AppendTo(std::string* out) const;

  bool empty() const { return path_.empty(); }
  size_t depth() const { return path_.size(); }
  bool IsRoot() const { return path_.size() == 1; }

  // The root transaction index (first component). Requires !empty().
  uint32_t root() const { return path_.front(); }

  // Index among siblings (last component). Requires !empty().
  uint32_t sibling_index() const { return path_.back(); }

  // Parent ID (one component shorter). Requires depth() >= 2.
  TxnId Parent() const;

  // Root-level ID (just the first component). Requires !empty().
  TxnId Root() const;

  // True when this ID is a strict ancestor of `other` (proper prefix).
  bool IsAncestorOf(const TxnId& other) const;

  const std::vector<uint32_t>& path() const { return path_; }

  // Total order: lexicographic over components; used for deterministic tree
  // layout and as map keys.
  auto operator<=>(const TxnId& other) const = default;

 private:
  std::vector<uint32_t> path_;
};

// Hash suitable for unordered containers.
struct TxnIdHash {
  size_t operator()(const TxnId& id) const;
};

}  // namespace ts

#endif  // SRC_LOG_TXN_ID_H_
