// The log record data model.
//
// Each record carries the producer's local event time, the correlators injected by
// the tracing middleware (session ID + hierarchical transaction ID), the service
// and host that emitted it, the event kind (span start / span end / annotation),
// and an opaque application payload (§2.1, §3).
#ifndef SRC_LOG_RECORD_H_
#define SRC_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "src/common/time_util.h"
#include "src/log/txn_id.h"

namespace ts {

enum class EventKind : uint8_t {
  kSpanStart = 0,
  kSpanEnd = 1,
  kAnnotation = 2,
};

const char* EventKindName(EventKind kind);

struct LogRecord {
  EventTime time = 0;       // Producer-local event time, ns since trace origin.
  std::string session_id;   // Correlator assigned at request entry.
  TxnId txn_id;             // Hierarchical position within the session.
  uint32_t service = 0;     // Emitting service instance.
  uint32_t host = 0;        // Emitting machine.
  EventKind kind = EventKind::kAnnotation;
  std::string payload;      // Application-specific fields, opaque to TS.

  // Approximate in-memory footprint, used by buffer accounting (Figure 8).
  size_t MemoryFootprint() const {
    return sizeof(LogRecord) + session_id.capacity() + payload.capacity() +
           txn_id.path().capacity() * sizeof(uint32_t);
  }
};

// Session identifiers route records through the Exchange PACT; the paper applies
// SipHash-2-4 to the session ID (§4.2).
uint64_t SessionHash(const std::string& session_id);

}  // namespace ts

#endif  // SRC_LOG_RECORD_H_
