#include "src/log/swar_scan.h"

namespace ts {

size_t FindByte(const char* data, size_t size, char needle) {
  const uint64_t pattern = swar::Broadcast(needle);
  size_t i = 0;
  // 8-byte strides over the body. memcpy loads keep this legal at any
  // alignment; the compiler lowers them to single movq/ldr instructions.
  while (i + 8 <= size) {
    const uint64_t mask = swar::HasZeroByte(swar::Load64(data + i) ^ pattern);
    if (mask != 0) {
      return i + swar::FirstLane(mask);
    }
    i += 8;
  }
  for (; i < size; ++i) {
    if (data[i] == needle) {
      return i;
    }
  }
  return size;
}

size_t FindByteScalar(const char* data, size_t size, char needle) {
  for (size_t i = 0; i < size; ++i) {
    if (data[i] == needle) {
      return i;
    }
  }
  return size;
}

size_t ScanSeparators(std::string_view line, char sep, size_t* seps,
                      size_t max_seps) {
  const uint64_t pattern = swar::Broadcast(sep);
  const char* data = line.data();
  const size_t size = line.size();
  size_t found = 0;
  size_t i = 0;
  while (i + 8 <= size) {
    // Exact mask: draining several matches per word needs every lane
    // trustworthy, not just the first (see ZeroByteMask vs HasZeroByte).
    uint64_t mask = swar::ZeroByteMask(swar::Load64(data + i) ^ pattern);
    // Drain every match in this word; typically at most one per 8 bytes.
    while (mask != 0) {
      seps[found++] = i + swar::FirstLane(mask);
      if (found == max_seps) {
        return found;
      }
      mask &= mask - 1;  // Clear the lowest set bit (that lane's high bit).
    }
    i += 8;
  }
  for (; i < size; ++i) {
    if (data[i] == sep) {
      seps[found++] = i;
      if (found == max_seps) {
        return found;
      }
    }
  }
  return found;
}

size_t ScanSeparatorsScalar(std::string_view line, char sep, size_t* seps,
                            size_t max_seps) {
  size_t found = 0;
  for (size_t i = 0; i < line.size() && found < max_seps; ++i) {
    if (line[i] == sep) {
      seps[found++] = i;
    }
  }
  return found;
}

}  // namespace ts
