#include "src/log/txn_id.h"

#include <charconv>

#include "src/common/status.h"

namespace ts {

std::optional<TxnId> TxnId::Parse(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  std::vector<uint32_t> path;
  size_t start = 0;
  while (start <= s.size()) {
    size_t dash = s.find('-', start);
    if (dash == std::string_view::npos) {
      dash = s.size();
    }
    if (dash == start) {
      return std::nullopt;  // Empty component ("1--2", leading/trailing dash).
    }
    uint32_t value = 0;
    const char* first = s.data() + start;
    const char* last = s.data() + dash;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      return std::nullopt;
    }
    path.push_back(value);
    if (dash == s.size()) {
      break;
    }
    start = dash + 1;
  }
  return TxnId(std::move(path));
}

std::string TxnId::ToString() const {
  std::string out;
  AppendTo(&out);
  return out;
}

void TxnId::AppendTo(std::string* out) const {
  char buf[12];  // u32 max is 10 digits.
  for (size_t i = 0; i < path_.size(); ++i) {
    if (i > 0) {
      out->push_back('-');
    }
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), path_[i]);
    out->append(buf, static_cast<size_t>(ptr - buf));
  }
}

TxnId TxnId::Parent() const {
  TS_CHECK(path_.size() >= 2);
  return TxnId(std::vector<uint32_t>(path_.begin(), path_.end() - 1));
}

TxnId TxnId::Root() const {
  TS_CHECK(!path_.empty());
  return TxnId({path_.front()});
}

bool TxnId::IsAncestorOf(const TxnId& other) const {
  if (path_.size() >= other.path_.size()) {
    return false;
  }
  for (size_t i = 0; i < path_.size(); ++i) {
    if (path_[i] != other.path_[i]) {
      return false;
    }
  }
  return true;
}

size_t TxnIdHash::operator()(const TxnId& id) const {
  // FNV-1a over the components; adequate for in-process container use.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t c : id.path()) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace ts
