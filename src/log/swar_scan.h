// SWAR (SIMD-within-a-register) byte scanning for the ingest hot path.
//
// The wire format is '\n'-framed lines of '|'-separated fields, so ingest
// spends its time finding two byte values in large recv buffers. These
// helpers scan 8 bytes per step using the classic Mycroft has-zero trick:
//
//   haszero(v) = (v - 0x0101..01) & ~v & 0x8080..80
//
// applied to v XOR broadcast(needle). Loads go through memcpy so unaligned
// buffer starts are fine on every target; the scalar variants are the
// reference the property/fuzz suites compare against byte-for-byte.
#ifndef SRC_LOG_SWAR_SCAN_H_
#define SRC_LOG_SWAR_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ts {

// First offset of `needle` in [data, data+size), or `size` if absent.
// SWAR fast path; equivalent to FindByteScalar on every input.
size_t FindByte(const char* data, size_t size, char needle);

// Byte-at-a-time reference implementation.
size_t FindByteScalar(const char* data, size_t size, char needle);

// Offsets (relative to the start of `line`) of the first `max_seps`
// occurrences of `sep` in `line`, written to `seps`. Returns how many were
// found (≤ max_seps). The wire format keys off the first 6 '|' bytes only —
// payload bytes after the 6th separator are never split — so callers cap the
// scan instead of scanning the whole payload.
size_t ScanSeparators(std::string_view line, char sep, size_t* seps,
                      size_t max_seps);

// Scalar reference for ScanSeparators.
size_t ScanSeparatorsScalar(std::string_view line, char sep, size_t* seps,
                            size_t max_seps);

namespace swar {

inline uint64_t Broadcast(char b) {
  return 0x0101010101010101ULL * static_cast<uint8_t>(b);
}

// Nonzero iff some byte of `v` is zero. The lowest set bit marks the FIRST
// zero lane exactly, but subtraction borrows can flag spurious lanes above
// it — only FirstLane() of this mask is trustworthy, never the other lanes.
inline uint64_t HasZeroByte(uint64_t v) {
  return (v - 0x0101010101010101ULL) & ~v & 0x8080808080808080ULL;
}

// Exact variant: the high bit of lane i is set iff byte i of `v` is zero,
// for every lane. One op more than HasZeroByte; required when draining
// multiple matches from a single word.
inline uint64_t ZeroByteMask(uint64_t v) {
  const uint64_t low7 = 0x7f7f7f7f7f7f7f7fULL;
  return ~(((v & low7) + low7) | v | low7);
}

// Unaligned-safe little-endian 8-byte load.
inline uint64_t Load64(const char* p) {
  uint64_t v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

// Index (0..7) of the lowest matching lane in a HasZeroByte mask.
// Little-endian: the lowest-addressed byte is the least-significant lane.
inline size_t FirstLane(uint64_t mask) {
  return static_cast<size_t>(__builtin_ctzll(mask)) >> 3;
}

}  // namespace swar
}  // namespace ts

#endif  // SRC_LOG_SWAR_SCAN_H_
