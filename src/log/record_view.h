// Zero-copy view of one wire-format line, plus the single point where a view
// becomes an owning LogRecord.
//
// A RecordView is the columnar ingest representation: the line bytes live in
// an ingest arena (see src/common/arena.h) and the view carries the offsets
// of the first six '|' separators, found once by the SWAR scanner on the
// ingest thread. Shard workers read fields through the accessors and parse
// numerics lazily in MaterializeRecord — nothing between recv() and the
// closer copies line bytes. Views are only valid while the batch holding the
// arena reference is alive; nobody may keep one past batch drain
// (docs/INGEST.md).
//
// Parity contract: MaterializeRecord(Scan(line)) must accept exactly the
// lines ParseWireFormat(line) accepts and produce an identical LogRecord —
// the property suite and fuzz_line_scanner enforce this byte-for-byte.
#ifndef SRC_LOG_RECORD_VIEW_H_
#define SRC_LOG_RECORD_VIEW_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

struct RecordView {
  static constexpr size_t kMaxSeps = 6;

  std::string_view line;  // Whole line, no trailing newline.
  // Offsets of the first ≤6 '|' bytes. Payload bytes may contain '|'; only
  // the first six ever delimit, so the scan stops there.
  uint32_t sep[kMaxSeps] = {0, 0, 0, 0, 0, 0};
  uint8_t sep_count = 0;

  // Field accessors are only meaningful up to sep_count; callers follow the
  // same shape checks MaterializeRecord applies.
  std::string_view field(size_t i) const {
    const size_t begin = i == 0 ? 0 : sep[i - 1] + 1;
    const size_t end = i < sep_count ? sep[i] : line.size();
    return line.substr(begin, end - begin);
  }
  // Payload: everything past the sixth separator (requires sep_count == 6).
  std::string_view payload() const { return line.substr(sep[5] + 1); }
};

// Builds a view via the SWAR separator scan. `line` must not contain '\n'
// (the framer already split on it) and must be < 4GiB (framer caps lines at
// 1MiB). ScanRecordScalar is the byte-at-a-time reference.
RecordView ScanRecord(std::string_view line);
RecordView ScanRecordScalar(std::string_view line);

// Route-key extraction over a pre-scanned view: the event time (first field,
// all digits, wrap-around accumulation) and the session id (second field).
// Same accept/reject behavior the pre-view ingest used, now shared by both
// the line and block paths so routing cannot diverge between them.
bool ExtractRouteKey(const RecordView& view, EventTime* time,
                     std::string_view* session_id);

// Offset of the payload field, or npos when the line has < 6 separators
// (malformed; template mining skips it deterministically).
size_t PayloadOffset(const RecordView& view);

// Per-connection dictionary memoizing one prefixed field → id parse
// ("svc-204" → 204 under prefix "svc-"). The prefix is fixed at construction
// so a field cached under one prefix can never satisfy a lookup under
// another (a swapped-field line must keep failing exactly like the scalar
// parser). Content-addressed over the raw field bytes — same bytes always
// map to the same id — so it is semantically a pure cache: clearing it at
// any moment, in particular on reconnect when a new producer may renumber
// its services, cannot change any output, only cold-start cost. Fields
// longer than 8 bytes or containing NUL skip the cache and parse directly.
class FieldInterner {
 public:
  explicit FieldInterner(std::string_view prefix) : prefix_(prefix) {}

  // Memoized parse of `field` as prefix+u32. Returns false when the field
  // does not parse; failures are not cached (they stay rare and re-fail
  // identically).
  bool Lookup(std::string_view field, uint32_t* out);

  void Clear() { cache_.clear(); }
  size_t size() const { return cache_.size(); }

 private:
  std::string_view prefix_;
  // Key = field bytes (≤8) packed little-endian into a uint64, zero-padded.
  // The length is implied by the padding: NUL-containing fields are excluded
  // from the cache, so padding zeros are unambiguous.
  std::unordered_map<uint64_t, uint32_t> cache_;
};

// Both dictionaries a connection needs; cleared together on reconnect.
struct InternerPair {
  FieldInterner svc{"svc-"};
  FieldInterner host{"h-"};
  void Clear() {
    svc.Clear();
    host.Clear();
  }
};

// The single materialization point: validates the view with semantics
// byte-identical to ParseWireFormat and copies the surviving fields into an
// owning LogRecord. Returns false on exactly the lines ParseWireFormat
// rejects. `interners` may be null (uncached numeric parse).
bool MaterializeRecord(const RecordView& view, InternerPair* interners,
                       LogRecord* out);

}  // namespace ts

#endif  // SRC_LOG_RECORD_VIEW_H_
