#include "src/fault/scripted_disk_injector.h"

#include <algorithm>
#include <cerrno>

namespace ts {
namespace {

FsFaultAction Fail(int error) {
  FsFaultAction action;
  action.kind = FsFaultAction::Kind::kFail;
  action.error = error;
  return action;
}

FsFaultAction Clamp(size_t max_bytes) {
  FsFaultAction action;
  action.kind = FsFaultAction::Kind::kClamp;
  action.max_bytes = max_bytes;
  return action;
}

bool IsDiskEvent(FaultType type) {
  switch (type) {
    case FaultType::kEnospc:
    case FaultType::kEio:
    case FaultType::kShortWrite:
    case FaultType::kFsyncFail:
    case FaultType::kRenameFail:
    case FaultType::kTornWrite:
      return true;
    case FaultType::kKill:
    case FaultType::kPartial:
    case FaultType::kStall:
    case FaultType::kEagain:
    case FaultType::kEintr:
    case FaultType::kRefuse:
    case FaultType::kCorrupt:
    case FaultType::kTruncate:
      return false;
  }
  return false;
}

}  // namespace

ScriptedDiskInjector::ScriptedDiskInjector(FaultPlan plan)
    : plan_(std::move(plan)) {}

void ScriptedDiskInjector::DrainArmedLocked() {
  while (next_ < plan_.events.size()) {
    const FaultEvent& event = plan_.events[next_];
    if (!IsDiskEvent(event.type)) {
      // Network events are no-ops on this surface. Skip them eagerly so
      // events[next_] is always a disk event and the torn-write boundary
      // check never stares at a transport kill.
      ++next_;
      continue;
    }
    if (bytes_ < event.at) {
      return;
    }
    const uint64_t arg = std::max<uint64_t>(event.arg, 1);
    switch (event.type) {
      case FaultType::kEnospc:
        enospc_left_ += arg;
        break;
      case FaultType::kEio:
        eio_left_ += arg;
        break;
      case FaultType::kShortWrite:
        short_write_pending_ = arg;
        break;
      case FaultType::kFsyncFail:
        fsync_fail_left_ += arg;
        break;
      case FaultType::kRenameFail:
        rename_fail_left_ += arg;
        break;
      case FaultType::kTornWrite:
        torn_fail_pending_ = true;
        break;
      default:
        break;
    }
    ++next_;
  }
}

FsFaultAction ScriptedDiskInjector::OnWrite(const char* path, size_t len) {
  (void)path;
  std::lock_guard<std::mutex> lock(mu_);
  DrainArmedLocked();
  if (torn_fail_pending_) {
    // The tear already landed (the previous write was clamped to end exactly
    // at the event offset); this attempt is the EIO that follows it.
    torn_fail_pending_ = false;
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    return Fail(EIO);
  }
  if (enospc_left_ > 0) {
    --enospc_left_;
    enospc_failures_.fetch_add(1, std::memory_order_relaxed);
    return Fail(ENOSPC);
  }
  if (eio_left_ > 0) {
    --eio_left_;
    eio_failures_.fetch_add(1, std::memory_order_relaxed);
    return Fail(EIO);
  }
  if (short_write_pending_ > 0) {
    const size_t max_bytes = static_cast<size_t>(std::max<uint64_t>(
        std::min<uint64_t>(short_write_pending_, len), 1));
    short_write_pending_ = 0;
    short_writes_.fetch_add(1, std::memory_order_relaxed);
    return Clamp(max_bytes);
  }
  // Byte-exact tears: never let a write cross the tear offset; clamp it to
  // end exactly there so the next attempt dies on the boundary.
  if (next_ < plan_.events.size()) {
    const FaultEvent& event = plan_.events[next_];
    if (event.type == FaultType::kTornWrite && bytes_ + len > event.at) {
      return Clamp(static_cast<size_t>(event.at - bytes_));
    }
  }
  return {};
}

FsFaultAction ScriptedDiskInjector::OnFsync(const char* path) {
  (void)path;
  std::lock_guard<std::mutex> lock(mu_);
  DrainArmedLocked();
  if (fsync_fail_left_ > 0) {
    --fsync_fail_left_;
    fsync_failures_.fetch_add(1, std::memory_order_relaxed);
    return Fail(EIO);
  }
  return {};
}

FsFaultAction ScriptedDiskInjector::OnRename(const char* from,
                                             const char* to) {
  (void)from;
  (void)to;
  std::lock_guard<std::mutex> lock(mu_);
  DrainArmedLocked();
  if (rename_fail_left_ > 0) {
    --rename_fail_left_;
    rename_failures_.fetch_add(1, std::memory_order_relaxed);
    return Fail(EIO);
  }
  return {};
}

FsFaultAction ScriptedDiskInjector::OnPread(const char* path, size_t len,
                                            uint64_t offset) {
  (void)path;
  (void)len;
  (void)offset;
  std::lock_guard<std::mutex> lock(mu_);
  DrainArmedLocked();
  if (eio_left_ > 0) {
    --eio_left_;
    eio_failures_.fetch_add(1, std::memory_order_relaxed);
    return Fail(EIO);
  }
  return {};
}

void ScriptedDiskInjector::OnIoBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_ += n;
}

DiskFaultCountersSnapshot ScriptedDiskInjector::counters() const {
  DiskFaultCountersSnapshot s;
  s.enospc_failures = enospc_failures_.load(std::memory_order_relaxed);
  s.eio_failures = eio_failures_.load(std::memory_order_relaxed);
  s.short_writes = short_writes_.load(std::memory_order_relaxed);
  s.fsync_failures = fsync_failures_.load(std::memory_order_relaxed);
  s.rename_failures = rename_failures_.load(std::memory_order_relaxed);
  s.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  return s;
}

void ScriptedDiskInjector::RegisterMetrics(MetricsRegistry* registry,
                                           const std::string& prefix) const {
  auto gauge = [registry, &prefix](const std::string& name,
                                   const std::atomic<uint64_t>* counter) {
    registry->Register(prefix + name, [counter] {
      return static_cast<int64_t>(counter->load(std::memory_order_relaxed));
    });
  };
  gauge("enospc_failures", &enospc_failures_);
  gauge("eio_failures", &eio_failures_);
  gauge("short_writes", &short_writes_);
  gauge("fsync_failures", &fsync_failures_);
  gauge("rename_failures", &rename_failures_);
  gauge("torn_writes", &torn_writes_);
}

}  // namespace ts
