#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/common/rng.h"

namespace ts {
namespace {

struct TypeName {
  FaultType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {FaultType::kKill, "kill"},
    {FaultType::kPartial, "partial"},
    {FaultType::kStall, "stall"},
    {FaultType::kEagain, "eagain"},
    {FaultType::kEintr, "eintr"},
    {FaultType::kRefuse, "refuse"},
    {FaultType::kCorrupt, "corrupt"},
    {FaultType::kTruncate, "truncate"},
    {FaultType::kEnospc, "enospc"},
    {FaultType::kEio, "eio"},
    {FaultType::kShortWrite, "shortwrite"},
    {FaultType::kFsyncFail, "fsyncfail"},
    {FaultType::kRenameFail, "renamefail"},
    {FaultType::kTornWrite, "tornwrite"},
};

bool TypeFromName(const std::string& name, FaultType* type) {
  for (const auto& entry : kTypeNames) {
    if (name == entry.name) {
      *type = entry.type;
      return true;
    }
  }
  return false;
}

void SortEvents(std::vector<FaultEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

}  // namespace

const char* FaultTypeName(FaultType type) {
  for (const auto& entry : kTypeNames) {
    if (entry.type == type) {
      return entry.name;
    }
  }
  return "unknown";
}

FaultProfile FaultProfile::Mild(uint64_t stream_bytes) {
  FaultProfile p;
  p.stream_bytes = stream_bytes;
  p.kills = 2;
  p.partials = 0;
  p.stalls = 2;
  p.eagain_storms = 0;
  p.eintr_storms = 0;
  p.refusals = 0;
  return p;
}

FaultProfile FaultProfile::Aggressive(uint64_t stream_bytes) {
  FaultProfile p;
  p.stream_bytes = stream_bytes;
  p.kills = 4;
  p.partials = 4;
  p.stalls = 3;
  p.eagain_storms = 2;
  p.eintr_storms = 2;
  p.refusals = 2;
  return p;
}

FaultProfile FaultProfile::Corrupting(uint64_t stream_bytes) {
  FaultProfile p = Aggressive(stream_bytes);
  p.corrupts = 3;
  return p;
}

FaultProfile FaultProfile::DiskMild(uint64_t stream_bytes) {
  FaultProfile p;
  p.stream_bytes = stream_bytes;
  p.kills = 0;
  p.partials = 0;
  p.stalls = 0;
  p.eagain_storms = 0;
  p.eintr_storms = 0;
  p.refusals = 0;
  p.enospc_windows = 1;
  p.eios = 1;
  p.fsync_fails = 1;
  return p;
}

FaultProfile FaultProfile::DiskAggressive(uint64_t stream_bytes) {
  FaultProfile p = DiskMild(stream_bytes);
  p.enospc_windows = 2;
  p.eios = 2;
  p.short_writes = 2;
  p.fsync_fails = 2;
  p.rename_fails = 2;
  p.torn_writes = 1;
  return p;
}

bool FaultPlan::ResolveProfile(const std::string& name, uint64_t stream_bytes,
                               FaultProfile* out) {
  if (name == "mild") {
    *out = FaultProfile::Mild(stream_bytes);
  } else if (name == "aggressive") {
    *out = FaultProfile::Aggressive(stream_bytes);
  } else if (name == "corrupting") {
    *out = FaultProfile::Corrupting(stream_bytes);
  } else if (name == "disk-mild") {
    *out = FaultProfile::DiskMild(stream_bytes);
  } else if (name == "disk-aggressive") {
    *out = FaultProfile::DiskAggressive(stream_bytes);
  } else {
    return false;
  }
  return true;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, const std::string& profile_name,
                              const FaultProfile& profile) {
  FaultPlan plan;
  plan.seed = seed;
  plan.profile = profile_name;
  Rng rng(seed ^ 0x7473666175ull);  // "tsfau": decorrelate from other users.
  const uint64_t span = std::max<uint64_t>(profile.stream_bytes, 1);
  auto at = [&] { return rng.NextBelow(span); };
  auto arg_in = [&](uint64_t max) { return 1 + rng.NextBelow(std::max<uint64_t>(max, 1)); };
  auto add = [&](FaultType type, int count, uint64_t max_arg) {
    for (int i = 0; i < count; ++i) {
      plan.events.push_back(
          {type, at(), max_arg == 0 ? 0 : arg_in(max_arg)});
    }
  };
  add(FaultType::kKill, profile.kills, 0);
  add(FaultType::kPartial, profile.partials, profile.max_partial_bytes);
  add(FaultType::kStall, profile.stalls, profile.max_stall_ms);
  add(FaultType::kEagain, profile.eagain_storms, profile.max_storm_len);
  add(FaultType::kEintr, profile.eintr_storms, profile.max_storm_len);
  add(FaultType::kRefuse, profile.refusals, 2);
  add(FaultType::kCorrupt, profile.corrupts, profile.max_corrupt_bytes);
  add(FaultType::kTruncate, profile.truncates, profile.max_partial_bytes);
  // Disk events draw after all network events, so adding them leaves every
  // network-profile plan byte-identical (add() touches the rng only when
  // count > 0, and the network presets keep all disk counts at zero).
  add(FaultType::kEnospc, profile.enospc_windows, profile.max_enospc_len);
  add(FaultType::kEio, profile.eios, 2);
  add(FaultType::kShortWrite, profile.short_writes, profile.max_partial_bytes);
  add(FaultType::kFsyncFail, profile.fsync_fails, 1);
  add(FaultType::kRenameFail, profile.rename_fails, 1);
  add(FaultType::kTornWrite, profile.torn_writes, 0);
  SortEvents(&plan.events);
  return plan;
}

std::string FaultPlan::ToText() const {
  std::string out = "# ts_fault plan v1\n";
  out += "seed " + std::to_string(seed) + "\n";
  out += "profile " + profile + "\n";
  for (const auto& event : events) {
    out += FaultTypeName(event.type);
    out += " at=" + std::to_string(event.at);
    if (event.arg != 0) {
      out += " arg=" + std::to_string(event.arg);
    }
    out += "\n";
  }
  return out;
}

bool FaultPlan::Parse(const std::string& text, FaultPlan* plan,
                      std::string* error) {
  *plan = FaultPlan{};
  plan->profile = "manual";
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "seed") {
      if (!(fields >> plan->seed)) {
        return fail("seed wants a number");
      }
      continue;
    }
    if (head == "profile") {
      if (!(fields >> plan->profile)) {
        return fail("profile wants a name");
      }
      continue;
    }
    FaultEvent event;
    if (!TypeFromName(head, &event.type)) {
      return fail("unknown event type '" + head + "'");
    }
    std::string field;
    bool have_at = false;
    while (fields >> field) {
      unsigned long long value = 0;
      if (std::sscanf(field.c_str(), "at=%llu", &value) == 1) {
        event.at = value;
        have_at = true;
      } else if (std::sscanf(field.c_str(), "arg=%llu", &value) == 1) {
        event.arg = value;
      } else {
        return fail("unknown field '" + field + "'");
      }
    }
    if (!have_at) {
      return fail("event without at=");
    }
    plan->events.push_back(event);
  }
  SortEvents(&plan->events);
  return true;
}

}  // namespace ts
