// FsFaultInjector: the seam through which ts_fault attacks the filesystem.
//
// The durability layers (ts_ckpt's snapshot writer/reader, ts_store's cold
// segments) consult an optional process-global FsFaultInjector immediately
// before each file syscall — open, write, fsync, rename, pread, unlink. The
// injector may let the call proceed, clamp a write to fewer bytes (a short
// write), or fail it with a chosen errno (ENOSPC windows, EIO, a failed
// fsync). Production installs no injector: every hook is one relaxed atomic
// load and a branch on null, so the disabled path costs nothing measurable
// (held to the fig5 perf gate like the transport hooks).
//
// Like fault_injector.h, this header is interface-only on purpose: ts_ckpt
// and ts_store include it without linking ts_fault, and ts_fault (plans, the
// scripted disk injector) stays free to link whatever it wants — no
// dependency cycle.
//
// Unlike the transport hooks — one injector per socket, one thread each —
// file I/O happens on several threads at once (the async checkpoint writer,
// the cold-tier spill thread, query-serving preads), and the hooked call
// sites are free functions with no object to carry a pointer through. The
// injector is therefore installed process-wide (InstallFsFaultInjector) and
// MUST be internally thread-safe. Installation is a plain pointer store: it
// is safe to install/uninstall at any time, but the injector object may only
// be destroyed after every thread that might consult it has quiesced.
#ifndef SRC_FAULT_FS_FAULT_H_
#define SRC_FAULT_FS_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ts {

// What the injector wants done to one file-I/O attempt.
struct FsFaultAction {
  enum class Kind {
    kProceed,  // Run the syscall unmodified.
    kClamp,    // Writes only: move at most max_bytes (a short write).
    kFail,     // Skip the syscall; behave as if it failed with `error`.
  };
  Kind kind = Kind::kProceed;
  size_t max_bytes = 0;  // kClamp only.
  int error = 0;         // kFail only: ENOSPC, EIO, EDQUOT, ...
};

class FsFaultInjector {
 public:
  virtual ~FsFaultInjector() = default;

  // Before open(2). `for_write` distinguishes the tmp-file create of an
  // atomic write from a read-side open.
  virtual FsFaultAction OnOpen(const char* path, bool for_write) {
    (void)path;
    (void)for_write;
    return {};
  }

  // Before each write(2) of `len` pending bytes.
  virtual FsFaultAction OnWrite(const char* path, size_t len) {
    (void)path;
    (void)len;
    return {};
  }

  // Before fsync(2). A kFail here models the fsyncgate failure mode: the
  // page cache may have dropped the dirty pages, so the caller must discard
  // the fd and rebuild from source state — never retry fsync on the same fd.
  virtual FsFaultAction OnFsync(const char* path) {
    (void)path;
    return {};
  }

  // Before rename(2) — the publish step of every atomic write.
  virtual FsFaultAction OnRename(const char* from, const char* to) {
    (void)from;
    (void)to;
    return {};
  }

  // Before pread(2)/read(2)-shaped calls of `len` bytes at `offset`.
  virtual FsFaultAction OnPread(const char* path, size_t len,
                                uint64_t offset) {
    (void)path;
    (void)len;
    (void)offset;
    return {};
  }

  // Before unlink(2) (snapshot prune, stale-tmp cleanup).
  virtual FsFaultAction OnUnlink(const char* path) {
    (void)path;
    return {};
  }

  // Bytes a hooked syscall actually moved; drives byte-offset triggers.
  virtual void OnIoBytes(uint64_t n) { (void)n; }
};

namespace fs_fault_internal {
// C++20 inline variable: one process-wide slot across all TUs.
inline std::atomic<FsFaultInjector*> g_injector{nullptr};
}  // namespace fs_fault_internal

inline void InstallFsFaultInjector(FsFaultInjector* injector) {
  fs_fault_internal::g_injector.store(injector, std::memory_order_release);
}

inline FsFaultInjector* InstalledFsFaultInjector() {
  return fs_fault_internal::g_injector.load(std::memory_order_acquire);
}

// Scoped install for tests: installs on construction, uninstalls on
// destruction. Declare it after the injector and before (or around) the
// objects doing I/O, so uninstall precedes injector destruction.
class ScopedFsFaultInjector {
 public:
  explicit ScopedFsFaultInjector(FsFaultInjector* injector) {
    InstallFsFaultInjector(injector);
  }
  ~ScopedFsFaultInjector() { InstallFsFaultInjector(nullptr); }
  ScopedFsFaultInjector(const ScopedFsFaultInjector&) = delete;
  ScopedFsFaultInjector& operator=(const ScopedFsFaultInjector&) = delete;
};

// Hook helpers: branch-on-null wrappers so call sites stay one line and the
// disabled path never takes a virtual call.
inline FsFaultAction FsFaultOnOpen(const char* path, bool for_write) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnOpen(path, for_write);
}
inline FsFaultAction FsFaultOnWrite(const char* path, size_t len) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnWrite(path, len);
}
inline FsFaultAction FsFaultOnFsync(const char* path) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnFsync(path);
}
inline FsFaultAction FsFaultOnRename(const char* from, const char* to) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnRename(from, to);
}
inline FsFaultAction FsFaultOnPread(const char* path, size_t len,
                                    uint64_t offset) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnPread(path, len, offset);
}
inline FsFaultAction FsFaultOnUnlink(const char* path) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  return f == nullptr ? FsFaultAction{} : f->OnUnlink(path);
}
inline void FsFaultOnIoBytes(uint64_t n) {
  FsFaultInjector* f = InstalledFsFaultInjector();
  if (f != nullptr) {
    f->OnIoBytes(n);
  }
}

}  // namespace ts

#endif  // SRC_FAULT_FS_FAULT_H_
