#include "src/fault/scripted_injector.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

namespace ts {
namespace {

void SleepMs(uint64_t ms) {
  if (ms > 0) {
    ::poll(nullptr, 0, static_cast<int>(ms));
  }
}

FaultAction Fail(int error) {
  FaultAction action;
  action.kind = FaultAction::Kind::kFail;
  action.error = error;
  return action;
}

FaultAction Clamp(size_t max_bytes) {
  FaultAction action;
  action.kind = FaultAction::Kind::kClamp;
  action.max_bytes = max_bytes;
  return action;
}

}  // namespace

ScriptedInjector::ScriptedInjector(FaultPlan plan) : plan_(std::move(plan)) {}

void ScriptedInjector::OnIoBytes(uint64_t n) { bytes_ += n; }

FaultAction ScriptedInjector::OnIo(size_t len) {
  while (true) {
    if (eagain_left_ > 0) {
      --eagain_left_;
      eagains_.fetch_add(1, std::memory_order_relaxed);
      return Fail(EAGAIN);
    }
    if (eintr_left_ > 0) {
      --eintr_left_;
      eintrs_.fetch_add(1, std::memory_order_relaxed);
      return Fail(EINTR);
    }
    if (next_ >= plan_.events.size()) {
      return {};
    }
    const FaultEvent& event = plan_.events[next_];
    if (bytes_ < event.at) {
      // Byte-exact kills: never let an I/O cross the kill offset; clamp it
      // to end exactly there so the *next* attempt dies on the boundary.
      if (event.type == FaultType::kKill && bytes_ + len > event.at) {
        return Clamp(static_cast<size_t>(event.at - bytes_));
      }
      return {};
    }
    ++next_;
    switch (event.type) {
      case FaultType::kKill:
        kills_.fetch_add(1, std::memory_order_relaxed);
        return Fail(ECONNRESET);
      case FaultType::kPartial:
        partials_.fetch_add(1, std::memory_order_relaxed);
        return Clamp(static_cast<size_t>(
            event.arg == 0 ? 1 : std::min<uint64_t>(event.arg, len)));
      case FaultType::kStall:
        stalls_.fetch_add(1, std::memory_order_relaxed);
        SleepMs(event.arg);
        continue;
      case FaultType::kEagain:
        eagain_left_ = event.arg;
        continue;
      case FaultType::kEintr:
        eintr_left_ = event.arg;
        continue;
      case FaultType::kRefuse:
        refusals_left_ += event.arg;
        continue;
      case FaultType::kCorrupt:
        corrupt_left_ += event.arg;
        continue;
      case FaultType::kTruncate:
        continue;  // Proxy-only; a scripted injector cannot un-receive bytes.
      case FaultType::kEnospc:
      case FaultType::kEio:
      case FaultType::kShortWrite:
      case FaultType::kFsyncFail:
      case FaultType::kRenameFail:
      case FaultType::kTornWrite:
        continue;  // Disk events; the transport injector consumes them as
                   // no-ops so one plan can drive both surfaces.
    }
  }
}

FaultAction ScriptedInjector::OnSend(size_t len) { return OnIo(len); }

FaultAction ScriptedInjector::OnRecv(size_t len) { return OnIo(len); }

void ScriptedInjector::OnRecvData(char* data, size_t len) {
  while (corrupt_left_ > 0 && len > 0) {
    // Flip a bit, but never fabricate a frame boundary: corruption must
    // mangle records, not invent new ones.
    const char flipped = static_cast<char>(*data ^ 0x20);
    *data = flipped == '\n' ? 'N' : flipped;
    ++data;
    --len;
    --corrupt_left_;
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ScriptedInjector::DrainNonIoEvents() {
  while (next_ < plan_.events.size()) {
    const FaultEvent& event = plan_.events[next_];
    if (bytes_ < event.at) {
      return;
    }
    switch (event.type) {
      case FaultType::kStall:
        stalls_.fetch_add(1, std::memory_order_relaxed);
        SleepMs(event.arg);
        break;
      case FaultType::kRefuse:
        refusals_left_ += event.arg;
        break;
      case FaultType::kCorrupt:
        corrupt_left_ += event.arg;
        break;
      case FaultType::kTruncate:
        break;
      case FaultType::kEnospc:
      case FaultType::kEio:
      case FaultType::kShortWrite:
      case FaultType::kFsyncFail:
      case FaultType::kRenameFail:
      case FaultType::kTornWrite:
        break;  // Disk events are no-ops on the transport surface.
      default:
        return;  // I/O-shaped events wait for the next OnSend/OnRecv.
    }
    ++next_;
  }
}

bool ScriptedInjector::OnConnect() {
  DrainNonIoEvents();
  if (refusals_left_ > 0) {
    --refusals_left_;
    refused_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ScriptedInjector::OnPollTick() { DrainNonIoEvents(); }

FaultCountersSnapshot ScriptedInjector::counters() const {
  FaultCountersSnapshot s;
  s.kills = kills_.load(std::memory_order_relaxed);
  s.partials = partials_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.eagain_failures = eagains_.load(std::memory_order_relaxed);
  s.eintr_failures = eintrs_.load(std::memory_order_relaxed);
  s.refusals = refused_.load(std::memory_order_relaxed);
  s.corrupted_bytes = corrupted_.load(std::memory_order_relaxed);
  return s;
}

void ScriptedInjector::RegisterMetrics(MetricsRegistry* registry,
                                       const std::string& prefix) const {
  auto gauge = [registry, &prefix](const std::string& name,
                                   const std::atomic<uint64_t>* counter) {
    registry->Register(prefix + name, [counter] {
      return static_cast<int64_t>(counter->load(std::memory_order_relaxed));
    });
  };
  gauge("kills", &kills_);
  gauge("partials", &partials_);
  gauge("stalls", &stalls_);
  gauge("eagain_failures", &eagains_);
  gauge("eintr_failures", &eintrs_);
  gauge("refusals", &refused_);
  gauge("corrupted_bytes", &corrupted_);
}

}  // namespace ts
