// ScriptedDiskInjector: executes the disk events of a FaultPlan through the
// FsFaultInjector hooks (src/fault/fs_fault.h).
//
// The same seeded plan that drives the transport injectors drives this one:
// events arm when the cumulative hooked disk-byte cursor (bytes moved by
// writes + preads, fed through OnIoBytes) crosses their `at` offset. Network
// events in the plan are consumed as no-ops, mirroring how ScriptedInjector
// skips disk events — one grammar, one seed→schedule function, two surfaces.
//
// Event semantics on this surface:
//   kEnospc      the next `arg` write attempts fail ENOSPC (writes only —
//                a full volume still reads fine), then the window heals.
//   kEio         the next `arg` write/pread attempts fail EIO.
//   kShortWrite  the next write is clamped to `arg` bytes.
//   kFsyncFail   the next `arg` fsync attempts fail EIO.
//   kRenameFail  the next `arg` rename attempts fail EIO.
//   kTornWrite   byte-exact: the write crossing offset `at` is clamped to
//                end exactly there, and the next write attempt fails EIO.
// A finite plan means the disk naturally "heals" once every event is spent.
//
// Unlike the per-socket transport injectors this object is consulted from
// several threads at once (the async checkpoint writer, the cold-tier spill
// thread, query-serving preads), so the schedule state is mutex-guarded.
// Counters are relaxed atomics readable without the lock.
#ifndef SRC_FAULT_SCRIPTED_DISK_INJECTOR_H_
#define SRC_FAULT_SCRIPTED_DISK_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/metrics_registry.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fs_fault.h"

namespace ts {

// Counter snapshot for assertions and failure reports.
struct DiskFaultCountersSnapshot {
  uint64_t enospc_failures = 0;
  uint64_t eio_failures = 0;
  uint64_t short_writes = 0;
  uint64_t fsync_failures = 0;
  uint64_t rename_failures = 0;
  uint64_t torn_writes = 0;
};

class ScriptedDiskInjector : public FsFaultInjector {
 public:
  explicit ScriptedDiskInjector(FaultPlan plan);

  FsFaultAction OnWrite(const char* path, size_t len) override;
  FsFaultAction OnFsync(const char* path) override;
  FsFaultAction OnRename(const char* from, const char* to) override;
  FsFaultAction OnPread(const char* path, size_t len,
                        uint64_t offset) override;
  void OnIoBytes(uint64_t n) override;

  DiskFaultCountersSnapshot counters() const;

  // Exposes the counters as gauges: <prefix>enospc_failures, ... Defaults
  // to the fault_disk_ family next to the transport fault_* gauges.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "fault_disk_") const;

 private:
  // Pops every event armed at the current cursor into the pending windows.
  // Caller holds mu_.
  void DrainArmedLocked();

  const FaultPlan plan_;

  mutable std::mutex mu_;
  size_t next_ = 0;      // Next unexecuted plan event.
  uint64_t bytes_ = 0;   // Cumulative hooked disk bytes (writes + preads).
  uint64_t enospc_left_ = 0;
  uint64_t eio_left_ = 0;
  uint64_t fsync_fail_left_ = 0;
  uint64_t rename_fail_left_ = 0;
  uint64_t short_write_pending_ = 0;  // Clamp width; 0 = none pending.
  bool torn_fail_pending_ = false;    // Post-tear EIO still owed.

  std::atomic<uint64_t> enospc_failures_{0};
  std::atomic<uint64_t> eio_failures_{0};
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> fsync_failures_{0};
  std::atomic<uint64_t> rename_failures_{0};
  std::atomic<uint64_t> torn_writes_{0};
};

}  // namespace ts

#endif  // SRC_FAULT_SCRIPTED_DISK_INJECTOR_H_
