// ScriptedInjector: executes a FaultPlan through the FaultInjector hooks.
//
// The injector tracks the cumulative bytes its hooks have allowed through
// (fed back by OnIoBytes) and fires each plan event once that counter
// reaches the event's `at` offset. Kill events are byte-exact: an I/O that
// would cross the kill offset is first clamped to end exactly on it, and the
// next attempt fails with ECONNRESET — so a test can sever a connection
// precisely on a record boundary, or precisely mid-record, and replay that
// severing from the plan text forever.
//
// Storm events (EAGAIN/EINTR) fail the next `arg` attempts; refusal events
// veto the next `arg` connect attempts; stall events sleep at whichever hook
// first observes them armed (I/O, connect, or the event-loop tick); corrupt
// events XOR-flip the first `arg` bytes of the next received chunk.
// kTruncate events are proxy-only and ignored here — see fault_plan.h.
//
// Single-threaded, like every FaultInjector. Fault counters are relaxed
// atomics so a MetricsRegistry on another thread may sample them.
#ifndef SRC_FAULT_SCRIPTED_INJECTOR_H_
#define SRC_FAULT_SCRIPTED_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/metrics_registry.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"

namespace ts {

// Plain-value snapshot of the faults actually delivered.
struct FaultCountersSnapshot {
  uint64_t kills = 0;
  uint64_t partials = 0;
  uint64_t stalls = 0;
  uint64_t eagain_failures = 0;
  uint64_t eintr_failures = 0;
  uint64_t refusals = 0;
  uint64_t corrupted_bytes = 0;
  uint64_t total() const {
    return kills + partials + stalls + eagain_failures + eintr_failures +
           refusals + corrupted_bytes;
  }
};

class ScriptedInjector : public FaultInjector {
 public:
  explicit ScriptedInjector(FaultPlan plan);

  FaultAction OnSend(size_t len) override;
  FaultAction OnRecv(size_t len) override;
  void OnRecvData(char* data, size_t len) override;
  bool OnConnect() override;
  void OnPollTick() override;
  void OnIoBytes(uint64_t n) override;

  const FaultPlan& plan() const { return plan_; }
  uint64_t bytes_allowed() const { return bytes_; }
  // Events consumed so far (fired or armed into storm/refusal state).
  size_t events_fired() const { return next_; }
  FaultCountersSnapshot counters() const;

  // Registers <prefix>kills, <prefix>stalls, ... gauges (thread-safe reads).
  // The registry must not outlive the injector.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "fault_") const;

 private:
  // Shared body of OnSend/OnRecv.
  FaultAction OnIo(size_t len);
  // Fires armed non-I/O events (stalls, refusal/corruption arming). Stops at
  // the first armed event that must fail or clamp an I/O attempt.
  void DrainNonIoEvents();

  FaultPlan plan_;
  size_t next_ = 0;      // First plan event not yet consumed.
  uint64_t bytes_ = 0;   // Cumulative bytes allowed through the hooks.
  uint64_t eagain_left_ = 0;
  uint64_t eintr_left_ = 0;
  uint64_t refusals_left_ = 0;
  uint64_t corrupt_left_ = 0;

  std::atomic<uint64_t> kills_{0};
  std::atomic<uint64_t> partials_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> eagains_{0};
  std::atomic<uint64_t> eintrs_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> corrupted_{0};
};

}  // namespace ts

#endif  // SRC_FAULT_SCRIPTED_INJECTOR_H_
