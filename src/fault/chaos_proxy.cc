#include "src/fault/chaos_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ts {
namespace {

constexpr int kPollTickMs = 100;
constexpr size_t kChunkBytes = 64 << 10;

void SleepMs(uint64_t ms) {
  if (ms > 0) {
    ::poll(nullptr, 0, static_cast<int>(ms));
  }
}

void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
}

// Plain blocking connect; the proxy has nothing better to do while its
// upstream is unreachable.
int ConnectBlocking(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Deterministic byte corruption that never fabricates a frame boundary.
char CorruptByte(char c) {
  const char flipped = static_cast<char>(c ^ 0x20);
  return flipped == '\n' ? 'N' : flipped;
}

}  // namespace

ChaosProxy::ChaosProxy(const ChaosProxyOptions& options) : options_(options) {}

ChaosProxy::~ChaosProxy() = default;

bool ChaosProxy::Start() {
  listen_fd_ = FdGuard(ListenTcp(options_.listen_host, options_.listen_port,
                                 &port_));
  return listen_fd_.valid();
}

void ChaosProxy::Stop() { stop_.store(true, std::memory_order_release); }

void ChaosProxy::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    if (::poll(&pfd, 1, kPollTickMs) <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // Arm any refusal events scheduled before this point in the stream. A
    // kill/truncate that came due right at the old connection's end lands
    // here instead: sever the fresh connection before any traffic flows.
    bool kill_now = false;
    uint64_t drop = 0;
    (void)ArmedBudget(0, &kill_now, &drop);
    if (kill_now) {
      kills_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (refusals_left_ > 0) {
      --refusals_left_;
      refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetBlocking(fd);
    connections_.fetch_add(1, std::memory_order_relaxed);
    ServeOne(fd);
  }
}

void ChaosProxy::ServeOne(int client_fd) {
  FdGuard client(client_fd);
  FdGuard upstream(
      ConnectBlocking(options_.upstream_host, options_.upstream_port));
  if (!upstream.valid()) {
    return;  // Client sees a drop and retries; maybe upstream comes back.
  }
  char buf[kChunkBytes];
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{client.get(), POLLIN, 0}, {upstream.get(), POLLIN, 0}};
    const int r = ::poll(pfds, 2, kPollTickMs);
    if (r < 0 && errno != EINTR) {
      return;
    }
    if (r <= 0) {
      continue;
    }
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(client.get(), buf, sizeof(buf), 0);
      if (n <= 0) {
        return;  // Client gone; drop upstream with it.
      }
      if (!WriteAll(upstream.get(), buf, static_cast<size_t>(n),
                    /*downstream=*/false)) {
        return;
      }
    }
    if ((pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::recv(upstream.get(), buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;
      }
      if (n == 0) {
        // Graceful upstream end (#EOS went through): pass the FIN along and
        // wait for the client to hang up.
        ::shutdown(client.get(), SHUT_WR);
        pollfd done{client.get(), POLLIN, 0};
        while (!stop_.load(std::memory_order_acquire)) {
          if (::poll(&done, 1, kPollTickMs) > 0 &&
              ::recv(client.get(), buf, sizeof(buf), 0) <= 0) {
            break;
          }
        }
        return;
      }
      if (!ForwardDownstream(client.get(), buf, static_cast<size_t>(n))) {
        return;  // Killed by the plan: both FdGuards sever on return.
      }
    }
  }
}

uint64_t ChaosProxy::ArmedBudget(size_t len, bool* kill_now,
                                 uint64_t* drop_bytes) {
  *kill_now = false;
  *drop_bytes = 0;
  while (next_event_ < options_.plan.events.size()) {
    const FaultEvent& event = options_.plan.events[next_event_];
    if (forwarded_ < event.at) {
      // Deliver exactly up to a kill/truncate boundary before severing.
      if ((event.type == FaultType::kKill ||
           event.type == FaultType::kTruncate) &&
          forwarded_ + len > event.at) {
        return event.at - forwarded_;
      }
      return len;
    }
    ++next_event_;
    switch (event.type) {
      case FaultType::kKill:
        *kill_now = true;
        return 0;
      case FaultType::kTruncate:
        *kill_now = true;
        *drop_bytes = std::max<uint64_t>(event.arg, 1);
        return 0;
      case FaultType::kStall:
        stalls_.fetch_add(1, std::memory_order_relaxed);
        SleepMs(event.arg);
        break;
      case FaultType::kPartial:
        return std::min<uint64_t>(len, std::max<uint64_t>(event.arg, 1));
      case FaultType::kEagain:
      case FaultType::kEintr:
        break;  // Host-local faults; meaningless on proxied traffic.
      case FaultType::kRefuse:
        refusals_left_ += event.arg;
        break;
      case FaultType::kCorrupt:
        corrupt_left_ += event.arg;
        break;
      case FaultType::kEnospc:
      case FaultType::kEio:
      case FaultType::kShortWrite:
      case FaultType::kFsyncFail:
      case FaultType::kRenameFail:
      case FaultType::kTornWrite:
        break;  // Disk events; meaningless on proxied traffic.
    }
  }
  return len;
}

bool ChaosProxy::ForwardDownstream(int client_fd, char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    bool kill_now = false;
    uint64_t drop = 0;
    const uint64_t budget = ArmedBudget(len - off, &kill_now, &drop);
    if (kill_now) {
      kills_.fetch_add(1, std::memory_order_relaxed);
      bytes_dropped_.fetch_add(std::min<uint64_t>(drop, len - off),
                               std::memory_order_relaxed);
      return false;
    }
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(budget, len - off));
    for (size_t i = 0; corrupt_left_ > 0 && i < n; ++i, --corrupt_left_) {
      data[off + i] = CorruptByte(data[off + i]);
      bytes_corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteAll(client_fd, data + off, n, /*downstream=*/true)) {
      return false;
    }
    forwarded_ += n;
    off += n;
  }
  return true;
}

bool ChaosProxy::WriteAll(int fd, const char* data, size_t len,
                          bool downstream) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  (downstream ? bytes_down_ : bytes_up_)
      .fetch_add(len, std::memory_order_relaxed);
  return true;
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  s.kills = kills_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  s.bytes_up = bytes_up_.load(std::memory_order_relaxed);
  s.bytes_down = bytes_down_.load(std::memory_order_relaxed);
  s.bytes_dropped = bytes_dropped_.load(std::memory_order_relaxed);
  s.bytes_corrupted = bytes_corrupted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ts
