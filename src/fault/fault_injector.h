// FaultInjector: the seam through which ts_fault attacks the transport.
//
// The ts_net I/O paths (SendBuffer::Flush, SocketIngestSource's recv/connect
// loop, LogServer's event loop) consult an optional FaultInjector immediately
// before each syscall-shaped operation. The injector may let the operation
// proceed, clamp it to fewer bytes (a partial write/read), fail it with a
// chosen errno (EAGAIN/EINTR storms, ECONNRESET kills), or mutate received
// bytes in place (payload corruption). Production code passes no injector:
// every hook is a branch on a null pointer, so the disabled path costs
// nothing measurable (see bench/fig5_live_scaling, tracked in CI).
//
// This header is interface-only on purpose: ts_net includes it without
// linking ts_fault, and ts_fault (plans, scripted injectors, the chaos
// proxy) links ts_net — no dependency cycle.
//
// Threading: an injector instance is consulted from exactly one thread (the
// thread driving the socket it is wired into). Wire separate instances into
// separate threads.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>

namespace ts {

// What the injector wants done to one I/O attempt.
struct FaultAction {
  enum class Kind {
    kProceed,  // Run the syscall unmodified.
    kClamp,    // Run it, but move at most max_bytes (partial write/read).
    kFail,     // Skip the syscall; behave as if it failed with `error`.
  };
  Kind kind = Kind::kProceed;
  size_t max_bytes = 0;  // kClamp only.
  int error = 0;         // kFail only: EAGAIN, EINTR, ECONNRESET, ...
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Consulted before send()-shaped calls of `len` pending bytes.
  virtual FaultAction OnSend(size_t len) {
    (void)len;
    return {};
  }

  // Consulted before recv()-shaped calls with a `len`-byte buffer.
  virtual FaultAction OnRecv(size_t len) {
    (void)len;
    return {};
  }

  // Received bytes, before framing: the injector may flip bytes in place
  // (payload corruption). It must not change `len`.
  virtual void OnRecvData(char* data, size_t len) {
    (void)data;
    (void)len;
  }

  // Consulted before each outbound connect attempt. Returning false makes
  // the attempt fail as if the listener refused it (a refusal window).
  virtual bool OnConnect() { return true; }

  // Event-loop hook, called once per poll iteration before waiting. A stall
  // event sleeps here, starving the loop the way a wedged disk or a GC pause
  // starves a real server.
  virtual void OnPollTick() {}

  // Bytes a hooked syscall actually moved; drives byte-offset triggers.
  virtual void OnIoBytes(uint64_t n) { (void)n; }
};

// Hook helpers: branch-on-null wrappers so call sites stay one line and the
// disabled path never takes a virtual call.
inline FaultAction FaultOnSend(FaultInjector* f, size_t len) {
  return f == nullptr ? FaultAction{} : f->OnSend(len);
}
inline FaultAction FaultOnRecv(FaultInjector* f, size_t len) {
  return f == nullptr ? FaultAction{} : f->OnRecv(len);
}
inline void FaultOnRecvData(FaultInjector* f, char* data, size_t len) {
  if (f != nullptr) {
    f->OnRecvData(data, len);
  }
}
inline bool FaultOnConnect(FaultInjector* f) {
  return f == nullptr ? true : f->OnConnect();
}
inline void FaultOnPollTick(FaultInjector* f) {
  if (f != nullptr) {
    f->OnPollTick();
  }
}
inline void FaultOnIoBytes(FaultInjector* f, uint64_t n) {
  if (f != nullptr) {
    f->OnIoBytes(n);
  }
}

}  // namespace ts

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
