// ChaosProxy: a fault-injecting TCP proxy for attacking the live pipeline
// end-to-end without recompiling either side.
//
//   ts_log_server  -->  ts_chaos (FaultPlan)  -->  ts_sessionize --connect
//
// The proxy accepts one downstream client at a time, opens its own upstream
// connection, forwards the client's bytes upstream verbatim (the TS1 hello,
// which carries the resume offset), and forwards upstream bytes downstream
// through the FaultPlan: kills sever both sides byte-exactly, stalls sleep,
// partials fragment writes, corrupts flip bytes, truncates silently drop
// bytes and then sever (the only honest way to lose bytes over TCP), and
// refusals close the next accepted connections before any traffic flows.
// After a kill the client reconnects — to the proxy — and the resume
// protocol picks up where the delivered stream left off, which is exactly
// the recovery path the conformance suite certifies.
//
// Forwarding uses blocking writes on purpose: a slow downstream consumer
// stops the proxy from reading upstream, so TCP backpressure propagates
// through the proxy just as it would through a real middlebox.
#ifndef SRC_FAULT_CHAOS_PROXY_H_
#define SRC_FAULT_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/fault/fault_plan.h"
#include "src/net/net_util.h"

namespace ts {

struct ChaosProxyOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = ephemeral; read the bound port from port().
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;
  FaultPlan plan;
};

// Counter snapshot; all counters monotone, sampled from any thread.
struct ChaosProxyStats {
  uint64_t connections = 0;        // Client connections proxied.
  uint64_t refused = 0;            // Accepts closed by refusal events.
  uint64_t kills = 0;              // Connections severed by the plan.
  uint64_t stalls = 0;
  uint64_t bytes_up = 0;           // client -> upstream (hello traffic).
  uint64_t bytes_down = 0;         // upstream -> client, after faults.
  uint64_t bytes_dropped = 0;      // Truncated away by the plan.
  uint64_t bytes_corrupted = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(const ChaosProxyOptions& options);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  // Binds and listens. Returns false on any socket error.
  bool Start();
  uint16_t port() const { return port_; }

  // Serves clients sequentially until Stop(). Safe to run on its own thread.
  void Run();

  // Thread-safe: makes Run() return after the current poll tick.
  void Stop();

  ChaosProxyStats stats() const;

 private:
  // Shuttles one client<->upstream pair until EOF, error, or a plan kill.
  void ServeOne(int client_fd);
  // Applies plan events to a chunk about to be forwarded downstream.
  // Returns false when a kill fired (the connection must be severed).
  bool ForwardDownstream(int client_fd, char* data, size_t len);
  // Fires armed events. Returns the byte budget the next forward may use
  // before the head kill/truncate boundary, and applies stalls/refusals.
  uint64_t ArmedBudget(size_t len, bool* kill_now, uint64_t* drop_bytes);
  bool WriteAll(int fd, const char* data, size_t len, bool downstream);

  ChaosProxyOptions options_;
  uint16_t port_ = 0;
  FdGuard listen_fd_;
  std::atomic<bool> stop_{false};

  size_t next_event_ = 0;   // First plan event not yet consumed.
  uint64_t forwarded_ = 0;  // Cumulative downstream bytes allowed through.
  uint64_t refusals_left_ = 0;
  uint64_t corrupt_left_ = 0;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> kills_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> bytes_up_{0};
  std::atomic<uint64_t> bytes_down_{0};
  std::atomic<uint64_t> bytes_dropped_{0};
  std::atomic<uint64_t> bytes_corrupted_{0};
};

}  // namespace ts

#endif  // SRC_FAULT_CHAOS_PROXY_H_
