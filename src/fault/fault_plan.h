// FaultPlan: a seeded, fully deterministic schedule of transport faults.
//
// A plan is an ordered list of fault events, each anchored at a cumulative
// byte offset of the stream it attacks: "once `at` bytes have crossed this
// hook, fire". Events model the ways a real datacenter network and its
// endpoints misbehave: connections severed mid-record, writes cut short,
// stalls, EAGAIN/EINTR storms, connect-refusal windows, payload corruption
// and truncation. The same plan drives both the in-process ScriptedInjector
// (wired into ts_net via FaultInjector) and the ts_chaos proxy (attacking
// real TCP traffic between unmodified processes).
//
// Determinism and replay are the point: plans are generated from a seed by
// xoshiro256** (src/common/rng.h) and round-trip through a line-oriented
// text form, so any failing conformance run prints a plan that reproduces
// the exact fault schedule (docs/FAULT_TESTING.md).
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ts {

enum class FaultType {
  kKill,     // Sever the connection once `at` bytes have been allowed.
  kPartial,  // Clamp the next I/O after `at` bytes to `arg` bytes.
  kStall,    // Sleep `arg` ms at the next hook after `at` bytes.
  kEagain,   // The next `arg` I/O attempts fail with EAGAIN.
  kEintr,    // The next `arg` I/O attempts fail with EINTR.
  kRefuse,   // The next `arg` connect attempts are refused.
  kCorrupt,  // XOR-flip `arg` received bytes (proxy: forwarded bytes).
  kTruncate,  // Proxy only: silently drop `arg` bytes, then sever. Dropping
              // bytes without severing is unrepresentable over TCP, and the
              // sever is what lets the resume protocol recover.

  // Disk events, executed by ScriptedDiskInjector through the FsFaultInjector
  // hooks (src/fault/fs_fault.h). Network injectors consume them as no-ops,
  // so one grammar and one seed→schedule function cover both surfaces. `at`
  // is a cumulative disk-byte offset (bytes moved by hooked writes + preads).
  kEnospc,      // The next `arg` write attempts fail with ENOSPC (a window:
                // the volume is full until the window is spent, then heals).
  kEio,         // The next `arg` write/pread attempts fail with EIO.
  kShortWrite,  // Clamp the next write to `arg` bytes.
  kFsyncFail,   // The next `arg` fsync attempts fail with EIO. Per the
                // fsyncgate rule the victim fd is poison: writers must
                // discard it and rebuild from source state.
  kRenameFail,  // The next `arg` rename attempts fail with EIO — an atomic
                // write dies at its publish step, after the data is durable.
  kTornWrite,   // Byte-exact tear: the write crossing offset `at` is clamped
                // to end exactly there, and the next write attempt fails
                // with EIO — a file torn at a chosen byte, like kKill for
                // the transport.
};

struct FaultEvent {
  FaultType type = FaultType::kKill;
  uint64_t at = 0;   // Cumulative allowed-byte offset that arms the event.
  uint64_t arg = 0;  // Per-type meaning above; 0 where unused (kKill).
};

// Knobs for seeded plan generation. Event offsets are drawn uniformly over
// [0, stream_bytes); counts say how many events of each type to draw.
struct FaultProfile {
  uint64_t stream_bytes = 1 << 20;
  int kills = 2;
  int partials = 2;
  int stalls = 2;
  int eagain_storms = 1;
  int eintr_storms = 1;
  int refusals = 1;
  int corrupts = 0;   // Off by default: corruption breaks digest identity.
  int truncates = 0;  // Proxy-only events, off by default.
  uint64_t max_stall_ms = 5;
  uint64_t max_storm_len = 6;
  uint64_t max_partial_bytes = 7;
  uint64_t max_corrupt_bytes = 4;

  // Disk-event counts (zero in the network presets, so their seeded plans
  // are unchanged byte for byte by the disk surface existing at all).
  int enospc_windows = 0;
  int eios = 0;
  int short_writes = 0;
  int fsync_fails = 0;
  int rename_fails = 0;
  int torn_writes = 0;
  uint64_t max_enospc_len = 4;

  // Canned presets used by the conformance suite and ts_chaos.
  static FaultProfile Mild(uint64_t stream_bytes);        // Kills + stalls.
  static FaultProfile Aggressive(uint64_t stream_bytes);  // Everything safe.
  static FaultProfile Corrupting(uint64_t stream_bytes);  // Adds corruption.
  // Disk presets (network counts zero): ENOSPC + EIO + fsync failures, and
  // the full surface including short/torn writes and rename failures.
  static FaultProfile DiskMild(uint64_t stream_bytes);
  static FaultProfile DiskAggressive(uint64_t stream_bytes);
};

struct FaultPlan {
  uint64_t seed = 0;
  std::string profile = "manual";
  std::vector<FaultEvent> events;  // Sorted by `at`, stable on ties.

  // Draws a plan from the profile with xoshiro256**(seed). Same seed and
  // profile, same plan — byte for byte.
  static FaultPlan FromSeed(uint64_t seed, const std::string& profile_name,
                            const FaultProfile& profile);

  // Resolves "mild" / "aggressive" / "corrupting" / "disk-mild" /
  // "disk-aggressive" to a preset. Returns false on an unknown name.
  static bool ResolveProfile(const std::string& name, uint64_t stream_bytes,
                             FaultProfile* out);

  // Line-oriented text form:
  //   # ts_fault plan v1
  //   seed 42
  //   profile mild
  //   kill at=4096
  //   partial at=8192 arg=3
  // Parse() accepts exactly what ToText() emits (plus blank lines and #
  // comments) and returns false with a message on anything else.
  std::string ToText() const;
  static bool Parse(const std::string& text, FaultPlan* plan,
                    std::string* error);
};

// Stable names for serialization and failure reports ("kill", "stall", ...).
const char* FaultTypeName(FaultType type);

}  // namespace ts

#endif  // SRC_FAULT_FAULT_PLAN_H_
