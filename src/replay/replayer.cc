#include "src/replay/replayer.h"

#include <algorithm>
#include <cmath>

#include "src/common/siphash.h"
#include "src/common/status.h"
#include "src/log/wire_format.h"

namespace ts {

Replayer::Replayer(const ReplayerConfig& config, const GeneratorConfig& gen_config)
    : config_(config),
      generator_(gen_config),
      rng_(config.seed),
      buckets_(config.num_workers) {
  TS_CHECK(config_.num_workers >= 1);
  TS_CHECK(config_.num_processes >= 1);
  TS_CHECK(config_.flush_interval_max_ns >= config_.flush_interval_min_ns);
  processes_.resize(config_.num_processes);
  for (auto& p : processes_) {
    p.flush_interval = config_.flush_interval_min_ns +
                       static_cast<EventTime>(rng_.NextBelow(static_cast<uint64_t>(
                           config_.flush_interval_max_ns -
                           config_.flush_interval_min_ns + 1)));
    p.flush_phase = static_cast<EventTime>(
        rng_.NextBelow(static_cast<uint64_t>(p.flush_interval)));
  }
}

size_t Replayer::ProcessFor(const LogRecord& r) const {
  // A logging process belongs to the middleware replica co-located with the
  // emitting (host, service) pair; the mapping is stable over the trace.
  const uint64_t key = (static_cast<uint64_t>(r.host) << 32) | r.service;
  return static_cast<size_t>(SipHash24(key) % config_.num_processes);
}

void Replayer::EnsureGenerated(Epoch epoch) {
  std::vector<LogRecord> records;
  while (!generator_done_ && generated_through_ <= epoch) {
    Epoch gen_epoch = 0;
    if (!generator_.NextEpoch(&gen_epoch, &records)) {
      generator_done_ = true;
      break;
    }
    generated_through_ = gen_epoch + 1;
    for (auto& r : records) {
      const size_t pidx = ProcessFor(r);
      const Process& p = processes_[pidx];
      // The record is buffered by its logging process until the next flush
      // boundary strictly after its event time.
      const EventTime since_phase = r.time - p.flush_phase;
      const EventTime k = since_phase >= 0 ? since_phase / p.flush_interval : -1;
      EventTime arrival = p.flush_phase + (k + 1) * p.flush_interval;
      ++stats_.flushes;  // Upper bound; batches within one flush share it.
      arrival += static_cast<EventTime>(rng_.NextLogNormal(
          std::log(static_cast<double>(config_.jitter_median_ns)),
          config_.jitter_sigma));
      if (config_.straggler_prob > 0 && rng_.NextBool(config_.straggler_prob)) {
        arrival += static_cast<EventTime>(rng_.NextBoundedPareto(
            static_cast<double>(kNanosPerSecond),
            static_cast<double>(config_.straggler_max_ns), 1.1));
        ++stats_.stragglers;
      }
      ++stats_.records;
      if ((stats_.records & 63) == 0) {
        stats_.arrival_delays_ms.Add(static_cast<double>(arrival - r.time) / 1e6);
      }

      const size_t worker = pidx % config_.num_workers;  // Round-robin (§5).
      const Epoch arrival_epoch = static_cast<Epoch>(arrival / kNanosPerSecond);
      max_arrival_epoch_ = std::max(max_arrival_epoch_, arrival_epoch);
      Arrival a;
      a.arrival_ns = arrival;
      if (config_.as_text) {
        a.line = ToWireFormat(r);
      } else {
        a.record = std::move(r);
      }
      buckets_[worker][arrival_epoch].push_back(std::move(a));
    }
  }
}

Replayer::Fetch Replayer::ArrivalsFor(size_t worker, Epoch epoch,
                                      std::vector<Arrival>* out) {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  EnsureGenerated(epoch);
  auto& worker_buckets = buckets_[worker];
  auto it = worker_buckets.find(epoch);
  if (it != worker_buckets.end()) {
    *out = std::move(it->second);
    worker_buckets.erase(it);
    std::sort(out->begin(), out->end(), [](const Arrival& a, const Arrival& b) {
      return a.arrival_ns < b.arrival_ns;
    });
    return Fetch::kOk;
  }
  if (generator_done_ && epoch > max_arrival_epoch_) {
    return Fetch::kEndOfStream;
  }
  return Fetch::kOk;  // An epoch with no arrivals for this worker.
}

}  // namespace ts
