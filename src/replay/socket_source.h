// SocketArrivalSource: adapts a live TCP stream (src/net's SocketIngestSource)
// to the ArrivalSource interface the IngestDriver consumes, so a timely worker
// ingests from a real log server exactly the way it ingests from the
// in-memory replayer. One instance serves one worker — the paper assigns each
// worker its own subset of the 1263 logging-process streams, which the log
// server exposes as stream partitions.
//
// This source is unpaced: every ArrivalsFor() call drains whatever the socket
// has delivered (waiting up to poll_timeout_ms for the first byte), and the
// driver flushes its re-order buffer by event-time watermark instead of by
// arrival clock.
#ifndef SRC_REPLAY_SOCKET_SOURCE_H_
#define SRC_REPLAY_SOCKET_SOURCE_H_

#include <vector>

#include "src/net/socket_ingest.h"
#include "src/replay/arrival_source.h"

namespace ts {

class SocketArrivalSource : public ArrivalSource {
 public:
  struct Options {
    SocketIngestOptions socket;
    // How long one ArrivalsFor() call waits for the first byte before handing
    // the worker back an empty batch (the worker keeps stepping other work).
    int poll_timeout_ms = 20;
  };

  explicit SocketArrivalSource(const Options& options)
      : options_(options), source_(options.socket) {}

  Fetch ArrivalsFor(size_t worker, Epoch epoch,
                    std::vector<Arrival>* out) override;

  bool paced() const override { return false; }

  // True once the source gave up reconnecting (attempt limit exhausted). The
  // stream still terminates — ArrivalsFor reports kEndOfStream — but the run
  // should be flagged as truncated.
  bool failed() const { return failed_; }

  const TransportStats& stats() const { return source_.stats(); }
  uint64_t records_received() const { return source_.records_received(); }

 private:
  Options options_;
  SocketIngestSource source_;
  std::vector<std::string> lines_;
  bool failed_ = false;
};

}  // namespace ts

#endif  // SRC_REPLAY_SOCKET_SOURCE_H_
