#include "src/replay/socket_source.h"

namespace ts {

ArrivalSource::Fetch SocketArrivalSource::ArrivalsFor(size_t /*worker*/,
                                                      Epoch /*epoch*/,
                                                      std::vector<Arrival>* out) {
  lines_.clear();
  const SocketIngestSource::Poll poll =
      source_.PollLines(&lines_, options_.poll_timeout_ms);
  for (auto& line : lines_) {
    Arrival a;
    a.line = std::move(line);
    out->push_back(std::move(a));
  }
  switch (poll) {
    case SocketIngestSource::Poll::kRecords:
    case SocketIngestSource::Poll::kIdle:
      return Fetch::kOk;
    case SocketIngestSource::Poll::kFailed:
      failed_ = true;
      return Fetch::kEndOfStream;
    case SocketIngestSource::Poll::kEndOfStream:
      return Fetch::kEndOfStream;
  }
  return Fetch::kEndOfStream;
}

}  // namespace ts
