#include "src/replay/ingest_driver.h"

#include <algorithm>
#include <chrono>

#include "src/common/status.h"
#include "src/log/wire_format.h"

namespace ts {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IngestDriver::IngestDriver(ArrivalSource* source, size_t worker,
                           InputSession<LogRecord> input, const Options& options)
    : source_(source),
      worker_(worker),
      input_(input),
      options_(options),
      epoch_mapper_(options.epoch_width_ns),
      reorder_(ReorderBuffer::Config{options.slack_ns, options.reorder_slot_width_ns}),
      paced_(source->paced()) {}

void IngestDriver::AttributeCpu(Epoch epoch, int64_t cpu_ns) {
  epochs_[epoch].input_cpu_ns += cpu_ns;
  total_input_cpu_ns_ += cpu_ns;
}

void IngestDriver::Feed(std::vector<LogRecord>& ready) {
  for (auto& r : ready) {
    Epoch epoch = epoch_mapper_.ToEpoch(r.time);
    // The re-order buffer emits in nondecreasing event time, so epochs are
    // monotone; the guard is purely defensive.
    if (epoch < input_.current_epoch()) {
      epoch = input_.current_epoch();
    }
    if (epoch > input_.current_epoch()) {
      input_.AdvanceTo(epoch);
    }
    EpochIngest& ingest = epochs_[epoch];
    if (ingest.first_give_steady_ns < 0) {
      ingest.first_give_steady_ns = SteadyNowNanos();
    }
    ++ingest.records;
    input_.Give(std::move(r));
  }
  ready.clear();
}

DriverStatus IngestDriver::Step() {
  if (finished_) {
    return DriverStatus::kFinished;
  }
  if (gated_) {
    // Bound the in-flight window by comparing the input's event-time cursor
    // against the lowest incomplete epoch downstream. Arrival epochs lead
    // event epochs by the replay delay + slack, so gating on the arrival
    // cursor directly would deadlock; gating on the input cursor cannot (with
    // no new input, the frontier always catches up to the cursor).
    const Frontier f = gate_probe_.frontier();
    if (!f.done() &&
        input_.current_epoch() > f.min() + options_.gate_lookahead_epochs) {
      return DriverStatus::kIdle;  // Downstream is still chewing; don't race.
    }
  }

  const int64_t cpu_start = ThreadCpuNanos();
  const Epoch arrival_epoch = next_arrival_epoch_;
  const ArrivalSource::Fetch fetch =
      source_->ArrivalsFor(worker_, arrival_epoch, &arrivals_);

  if (fetch == ArrivalSource::Fetch::kEndOfStream) {
    reorder_.FlushAll(&ready_);
    Feed(ready_);
    input_.Close();
    finished_ = true;
    AttributeCpu(arrival_epoch, ThreadCpuNanos() - cpu_start);
    return DriverStatus::kFinished;
  }

  for (auto& a : arrivals_) {
    if (!a.line.empty()) {
      auto parsed = ParseWireFormat(a.line);
      if (!parsed) {
        ++parse_failures_;
        continue;
      }
      max_event_ns_ = std::max(max_event_ns_, parsed->time);
      reorder_.Push(std::move(*parsed), &ready_);
    } else {
      max_event_ns_ = std::max(max_event_ns_, a.record.time);
      reorder_.Push(std::move(a.record), &ready_);
    }
  }
  arrivals_.clear();
  if (paced_) {
    // All arrivals below this wall-clock boundary are in; release every record
    // outside the lateness window.
    const EventTime arrival_boundary =
        static_cast<EventTime>(arrival_epoch + 1) * kNanosPerSecond;
    if (arrival_boundary > options_.slack_ns) {
      reorder_.FlushUpTo(arrival_boundary - options_.slack_ns, &ready_);
    }
  } else if (max_event_ns_ > options_.slack_ns) {
    // No arrival clock to trust: flush behind the event-time high watermark,
    // tolerating `slack` of disorder relative to the newest record seen.
    reorder_.FlushUpTo(max_event_ns_ - options_.slack_ns, &ready_);
  }
  peak_reorder_bytes_ = std::max(peak_reorder_bytes_, reorder_.buffered_bytes());
  Feed(ready_);
  ++next_arrival_epoch_;
  AttributeCpu(arrival_epoch, ThreadCpuNanos() - cpu_start);
  return DriverStatus::kWorked;
}

}  // namespace ts
