// The ingestion boundary: one interface behind which a timely worker's
// IngestDriver consumes its arrival stream, whether the records come from the
// in-process replayer (the seed's substitution for the paper's log servers)
// or from a live TCP socket (src/net). The driver neither knows nor cares —
// exactly the property §5 relies on when it swaps archived-file replay in for
// the production socket feed.
#ifndef SRC_REPLAY_ARRIVAL_SOURCE_H_
#define SRC_REPLAY_ARRIVAL_SOURCE_H_

#include <string>
#include <vector>

#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

// One record as it reaches a TS worker: either a parsed record or a wire-format
// text line (the paper replays "in their original text format", so TS pays the
// parse cost on ingest — part of Figure 7b's input fraction).
struct Arrival {
  EventTime arrival_ns = 0;  // When the record reaches TS.
  LogRecord record;          // Populated when !as_text.
  std::string line;          // Populated when as_text.
};

class ArrivalSource {
 public:
  enum class Fetch {
    kOk,           // `out` holds this worker's arrivals for the epoch.
    kEndOfStream,  // No arrivals at or beyond this epoch will ever exist.
  };

  virtual ~ArrivalSource() = default;

  // Fetches (and removes) the arrivals for `worker` in arrival epoch `epoch`,
  // sorted by arrival time. Each (worker, epoch) may be fetched once.
  virtual Fetch ArrivalsFor(size_t worker, Epoch epoch,
                            std::vector<Arrival>* out) = 0;

  // Paced sources (the replayer) bucket arrivals into wall-clock epochs, so
  // the driver can flush its re-order buffer up to `arrival_epoch - slack`.
  // Unpaced sources (a live socket drained as fast as it delivers) carry no
  // such clock; the driver instead flushes behind the maximum event time seen
  // — the watermark discipline of §4.1 — which tolerates exactly the same
  // lateness window.
  virtual bool paced() const { return true; }
};

}  // namespace ts

#endif  // SRC_REPLAY_ARRIVAL_SOURCE_H_
