// Per-worker ingestion driver: fetches this worker's arrival stream from the
// Replayer, re-orders it by event time through a ReorderBuffer (§4.1), batches
// records into event-time epochs, and feeds the dataflow input with
// give/advance_to. Optionally gates ingestion on a downstream frontier probe so
// at most a bounded number of epochs are in flight — the measurement mode used
// by the latency benches (one epoch of input, processed to completion, then the
// next; "real time" means each epoch finishes in under a second).
#ifndef SRC_REPLAY_INGEST_DRIVER_H_
#define SRC_REPLAY_INGEST_DRIVER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/thread_timer.h"
#include "src/common/time_util.h"
#include "src/core/reorder_buffer.h"
#include "src/replay/replayer.h"
#include "src/timely/scope.h"

namespace ts {

class IngestDriver {
 public:
  struct Options {
    // Re-order buffer slack: tolerated event-time lateness (Figure 8 knob).
    EventTime slack_ns = 2 * kNanosPerSecond;
    EventTime reorder_slot_width_ns = 10 * kNanosPerMilli;
    // When a gate probe is set, feed arrival epoch a only once every epoch
    // < a - lookahead has completed downstream.
    size_t gate_lookahead_epochs = 2;
    // Width of one logical epoch in event time (§4.1 granularity trade-off:
    // finer epochs mean lower batching and more progress traffic; coarser
    // epochs delay output materialization). The paper uses 1 second.
    EventTime epoch_width_ns = kDefaultEpochWidthNs;
  };

  // Per event-time epoch ingestion measurements.
  struct EpochIngest {
    int64_t first_give_steady_ns = -1;  // Wall clock of the first record fed.
    int64_t input_cpu_ns = 0;           // Driver CPU attributed to this epoch.
    uint64_t records = 0;
  };

  // `source` is any ArrivalSource: the in-memory Replayer or a live
  // SocketArrivalSource (src/replay/socket_source.h). For unpaced sources the
  // driver switches from arrival-clock flushing to event-time watermark
  // flushing (see ArrivalSource::paced()).
  IngestDriver(ArrivalSource* source, size_t worker,
               InputSession<LogRecord> input, const Options& options);

  // Enables gating on a downstream probe (must belong to the same worker).
  void SetGate(ProbeHandle probe) {
    gate_probe_ = probe;
    gated_ = true;
  }

  // The scope driver entry point.
  DriverStatus Step();

  bool finished() const { return finished_; }

  // Measurements; read on the worker thread or after the computation joins.
  const std::map<Epoch, EpochIngest>& epochs() const { return epochs_; }
  const ReorderBuffer::Stats& reorder_stats() const { return reorder_.stats(); }
  size_t peak_reorder_bytes() const { return peak_reorder_bytes_; }
  uint64_t parse_failures() const { return parse_failures_; }
  int64_t total_input_cpu_ns() const { return total_input_cpu_ns_; }

 private:
  void Feed(std::vector<LogRecord>& ready);
  void AttributeCpu(Epoch epoch, int64_t cpu_ns);

  ArrivalSource* source_;
  const size_t worker_;
  InputSession<LogRecord> input_;
  Options options_;
  EpochMapper epoch_mapper_;
  ReorderBuffer reorder_;
  ProbeHandle gate_probe_;
  bool gated_ = false;
  bool finished_ = false;
  const bool paced_;
  EventTime max_event_ns_ = 0;  // Watermark basis for unpaced sources.
  Epoch next_arrival_epoch_ = 0;
  std::vector<Arrival> arrivals_;
  std::vector<LogRecord> ready_;
  std::map<Epoch, EpochIngest> epochs_;
  size_t peak_reorder_bytes_ = 0;
  uint64_t parse_failures_ = 0;
  int64_t total_input_cpu_ns_ = 0;
};

}  // namespace ts

#endif  // SRC_REPLAY_INGEST_DRIVER_H_
