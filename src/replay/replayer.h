// Log-pipeline simulator (§5 "Logging pipeline and its simulation").
//
// The paper's datacenter propagates middleware log events to 42 log servers
// running 1263 logging processes in total; the evaluation replays the archived
// files, preserving per-event timings and the process fan-out, and maps streams
// to replayer instances round-robin. This module reproduces that pipeline:
//
//   generator (event-time order) -> logging process (buffer + periodic flush)
//     -> network jitter / rare stragglers -> per-worker arrival streams
//
// Per-process batch flushing is what reorders the stream and makes arrival
// bursty: a record generated at t sits in its process buffer until the next
// flush boundary. Workers consume their assigned processes' merged arrival
// stream epoch by epoch.
#ifndef SRC_REPLAY_REPLAYER_H_
#define SRC_REPLAY_REPLAYER_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_util.h"
#include "src/log/record.h"
#include "src/replay/arrival_source.h"
#include "src/workload/generator.h"

namespace ts {

struct ReplayerConfig {
  size_t num_servers = 42;
  size_t num_processes = 1263;
  size_t num_workers = 1;

  // Per-process flush cadence (uniform per process within [min, max]). The
  // paper's pipeline delivers quickly (median out-of-order timestamp
  // difference 0.69 ms); short, per-process-staggered flushes reproduce that
  // regime while still producing bursts and reordering.
  EventTime flush_interval_min_ns = 2 * kNanosPerMilli;
  EventTime flush_interval_max_ns = 30 * kNanosPerMilli;

  // Network delay from log server to TS: log-normal around ~0.3 ms.
  EventTime jitter_median_ns = 300 * kNanosPerMicro;
  double jitter_sigma = 0.8;

  // Rare stragglers (paper: the most delayed record arrived 485 s late).
  double straggler_prob = 0.0;
  EventTime straggler_max_ns = 500 * kNanosPerSecond;

  // Deliver text lines (true, the paper's setup) or parsed records.
  bool as_text = true;

  uint64_t seed = 7;
};

struct ReplayerStats {
  uint64_t records = 0;
  uint64_t flushes = 0;
  uint64_t stragglers = 0;
  // Arrival delay (arrival - event time) distribution, ms, sampled 1/64.
  SampleSet arrival_delays_ms;
};

// Thread-safe coordinator: worker drivers fetch their arrival stream epoch by
// epoch; generation happens lazily under a lock, one event-time epoch at a
// time, so memory stays bounded by the in-flight window.
class Replayer : public ArrivalSource {
 public:
  using Fetch = ArrivalSource::Fetch;

  Replayer(const ReplayerConfig& config, const GeneratorConfig& gen_config);

  // Fetches (and removes) the arrivals for `worker` with arrival time in
  // [epoch, epoch+1), sorted by arrival time. Each (worker, epoch) may be
  // fetched once.
  Fetch ArrivalsFor(size_t worker, Epoch epoch,
                    std::vector<Arrival>* out) override;

  const ReplayerStats& stats() const { return stats_; }
  const GeneratorStats& generator_stats() const { return generator_.stats(); }
  Epoch trace_epochs() const { return generator_.duration_epochs(); }

 private:
  struct Process {
    EventTime flush_interval = 0;
    EventTime flush_phase = 0;
  };

  void EnsureGenerated(Epoch epoch);  // Caller holds mu_.
  size_t ProcessFor(const LogRecord& r) const;

  ReplayerConfig config_;
  std::mutex mu_;
  TraceGenerator generator_;
  Rng rng_;
  std::vector<Process> processes_;
  // Pending arrivals: per worker, per arrival epoch.
  std::vector<std::map<Epoch, std::vector<Arrival>>> buckets_;
  bool generator_done_ = false;
  Epoch generated_through_ = 0;  // Generator epochs [0, generated_through_) done.
  Epoch max_arrival_epoch_ = 0;
  ReplayerStats stats_;
};

}  // namespace ts

#endif  // SRC_REPLAY_REPLAYER_H_
