#include "src/offline/offline_sessionizer.h"

#include <algorithm>
#include <unordered_map>

namespace ts {

std::vector<Session> OfflineSessionizer::Sessionize(std::vector<LogRecord> records,
                                                    const OfflineOptions& options) {
  // Map phase: group by session ID.
  std::unordered_map<std::string, std::vector<LogRecord>> groups;
  for (auto& r : records) {
    groups[r.session_id].push_back(std::move(r));
  }
  records.clear();

  // Reduce phase: order each group by event time and (optionally) split at
  // idle gaps.
  std::vector<Session> sessions;
  sessions.reserve(groups.size());
  for (auto& [id, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.time < b.time;
                     });
    uint32_t fragment = 0;
    size_t start = 0;
    for (size_t i = 1; i <= group.size(); ++i) {
      const bool split =
          i == group.size() ||
          (options.inactivity_split_ns > 0 &&
           group[i].time - group[i - 1].time > options.inactivity_split_ns);
      if (!split) {
        continue;
      }
      Session s;
      s.id = id;
      s.fragment_index = fragment++;
      s.records.assign(std::make_move_iterator(group.begin() + start),
                       std::make_move_iterator(group.begin() + i));
      s.first_epoch = static_cast<Epoch>(s.records.front().time / kNanosPerSecond);
      s.last_epoch = static_cast<Epoch>(s.records.back().time / kNanosPerSecond);
      s.closed_at = s.last_epoch;
      sessions.push_back(std::move(s));
      start = i;
    }
  }
  std::sort(sessions.begin(), sessions.end(), [](const Session& a, const Session& b) {
    return a.id < b.id || (a.id == b.id && a.fragment_index < b.fragment_index);
  });
  return sessions;
}

}  // namespace ts
