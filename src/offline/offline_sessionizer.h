// Offline (batch) sessionization — the MapReduce-style baseline of §2.2.
//
// With the complete log on disk, grouping is a simple aggregation: hash records
// by session ID (the "map"), then assemble each group with unbounded lookahead
// (the "reduce"). Output serves as ground truth for the online sessionizer's
// accuracy and fragmentation tests: an online run with sufficient slack and
// inactivity must reconstruct exactly these sessions, and fragmented online
// output must re-concatenate to them.
#ifndef SRC_OFFLINE_OFFLINE_SESSIONIZER_H_
#define SRC_OFFLINE_OFFLINE_SESSIONIZER_H_

#include <vector>

#include "src/common/time_util.h"
#include "src/core/session.h"
#include "src/log/record.h"

namespace ts {

struct OfflineOptions {
  // When > 0, each session-ID group is additionally split at event-time gaps
  // larger than this (time-oriented sessionization applied offline). 0 keeps
  // each ID as one complete session regardless of idle periods.
  EventTime inactivity_split_ns = 0;
};

class OfflineSessionizer {
 public:
  // Consumes `records` (any order) and returns sessions sorted by (id,
  // fragment_index) with records in event-time order. Epoch fields are derived
  // from record event times (1-second epochs).
  static std::vector<Session> Sessionize(std::vector<LogRecord> records,
                                         const OfflineOptions& options = {});
};

}  // namespace ts

#endif  // SRC_OFFLINE_OFFLINE_SESSIONIZER_H_
