// Bounded blocking MPMC queue.
//
// Used by the baseline (Flink-like) engine's ingest path, where a fixed-capacity
// queue between source and operators is what produces backpressure — the behaviour
// the paper observed when Flink fell behind the input rate (§5.1).
#ifndef SRC_COMMON_FIXED_QUEUE_H_
#define SRC_COMMON_FIXED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "src/common/status.h"

namespace ts {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(size_t capacity) : capacity_(capacity) { TS_CHECK(capacity > 0); }

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed. The caller observing
  // false is experiencing backpressure.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Waits up to `timeout` for space. Moves from `item` only on success, so a
  // false return leaves the caller's value intact for retry or shedding.
  // Returns false when the wait timed out or the queue was closed.
  bool PushWithTimeout(T& item, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait_for(lock, timeout,
                       [&] { return items_.size() < capacity_ || closed_; });
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Pops the front element into `*out` iff `pred(front)` holds. Used by
  // shedding producers to drop the oldest queued work when a consumer has
  // fallen behind, while skipping elements the predicate protects (e.g.
  // checkpoint barriers). Returns false when empty or the predicate declines.
  template <typename Pred>
  bool PopFrontIf(Pred pred, T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty() || !pred(items_.front())) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ts

#endif  // SRC_COMMON_FIXED_QUEUE_H_
