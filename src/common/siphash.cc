#include "src/common/siphash.h"

#include <cstring>

namespace ts {
namespace {

inline uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

inline uint64_t ReadLE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Little-endian hosts only; this project targets x86-64/aarch64 Linux.
}

inline void SipRound(uint64_t& v0, uint64_t& v1, uint64_t& v2, uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

}  // namespace

uint64_t SipHash24(const void* data, size_t len, const SipHashKey& key) {
  const uint8_t* in = static_cast<const uint8_t*>(data);
  uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const size_t end = len - (len % 8);
  for (size_t i = 0; i < end; i += 8) {
    uint64_t m = ReadLE64(in + i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  uint64_t b = static_cast<uint64_t>(len) << 56;
  switch (len & 7) {
    case 7:
      b |= static_cast<uint64_t>(in[end + 6]) << 48;
      [[fallthrough]];
    case 6:
      b |= static_cast<uint64_t>(in[end + 5]) << 40;
      [[fallthrough]];
    case 5:
      b |= static_cast<uint64_t>(in[end + 4]) << 32;
      [[fallthrough]];
    case 4:
      b |= static_cast<uint64_t>(in[end + 3]) << 24;
      [[fallthrough]];
    case 3:
      b |= static_cast<uint64_t>(in[end + 2]) << 16;
      [[fallthrough]];
    case 2:
      b |= static_cast<uint64_t>(in[end + 1]) << 8;
      [[fallthrough]];
    case 1:
      b |= static_cast<uint64_t>(in[end + 0]);
      break;
    case 0:
      break;
  }

  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace ts
