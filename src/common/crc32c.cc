#include "src/common/crc32c.h"

#include <array>

namespace ts {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Reflected 0x1EDC6F41.

struct Tables {
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int s = 1; s < 8; ++s) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[s][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Slice-by-8 over aligned-length middle; byte-at-a-time head and tail.
  while (len >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ts
