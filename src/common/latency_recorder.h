// Log-bucketed latency histogram for coordinated-omission-safe reporting.
//
// HdrHistogram-style layout: values below 2^(sub_bucket_bits + 1) are recorded
// exactly; above that, each power-of-two range is split into 2^sub_bucket_bits
// linear sub-buckets, bounding the relative quantile error at
// 2^-sub_bucket_bits (~3.1% with the default 5 bits). The structure is a flat
// array of counters, so Record() is two shifts and an increment — cheap enough
// to sit on the load generator's send path — and Merge() makes per-thread
// recorders combinable without locks.
//
// Values are nanoseconds by convention but the math is unit-agnostic.
// Negative values clamp to zero (a close observed "before" its intended send
// time is schedule jitter, not signal).
#ifndef SRC_COMMON_LATENCY_RECORDER_H_
#define SRC_COMMON_LATENCY_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ts {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(int sub_bucket_bits = 5);

  void Record(int64_t value);
  void RecordMany(int64_t value, uint64_t count);

  // Adds `other`'s counts into this recorder. Requires identical bucketing.
  void Merge(const LatencyRecorder& other);

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const;

  // Smallest recorded-bucket upper bound covering quantile `q` in [0, 1].
  // Exact for values below 2^(bits+1); within 2^-bits relative error above.
  // Returns min() for q <= 0 and max() for q >= 1.
  int64_t ValueAtQuantile(double q) const;

  void Reset();

  // "p50=1.2ms p99=3.4ms p99.9=8.1ms max=12.0ms n=1234" — for CLI reports.
  std::string Summary() const;

  // Bucket geometry, exposed for the boundary-golden tests.
  size_t BucketIndex(int64_t value) const;
  int64_t BucketLowerBound(size_t index) const;
  int64_t BucketUpperBound(size_t index) const;
  int sub_bucket_bits() const { return sub_bucket_bits_; }

 private:
  int sub_bucket_bits_;
  size_t sub_bucket_count_;  // 1 << sub_bucket_bits_
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace ts

#endif  // SRC_COMMON_LATENCY_RECORDER_H_
