// Time model shared by every TraceStream module.
//
// Event time is carried as nanoseconds from an arbitrary trace origin (the paper's
// logs carry nanosecond-precision producer timestamps). Logical dataflow time is an
// integer Epoch: a fixed-width bucket of event time (1 second by default, per §4.1
// of the paper - "we batch input records in windows of one second each").
#ifndef SRC_COMMON_TIME_UTIL_H_
#define SRC_COMMON_TIME_UTIL_H_

#include <chrono>
#include <cstdint>

namespace ts {

// Nanoseconds of event time since the trace origin.
using EventTime = int64_t;

// Logical timestamp used by the dataflow engine for progress tracking.
using Epoch = uint64_t;

inline constexpr EventTime kNanosPerMicro = 1'000;
inline constexpr EventTime kNanosPerMilli = 1'000'000;
inline constexpr EventTime kNanosPerSecond = 1'000'000'000;

// Width of one epoch in event-time nanoseconds. The paper uses 1-second epochs;
// benches ablate this via EpochMapper.
inline constexpr EventTime kDefaultEpochWidthNs = kNanosPerSecond;

// Maps event timestamps onto epochs for a chosen epoch width.
class EpochMapper {
 public:
  constexpr explicit EpochMapper(EventTime width_ns = kDefaultEpochWidthNs)
      : width_ns_(width_ns) {}

  constexpr Epoch ToEpoch(EventTime t) const {
    return t < 0 ? 0 : static_cast<Epoch>(t / width_ns_);
  }
  constexpr EventTime EpochStart(Epoch e) const {
    return static_cast<EventTime>(e) * width_ns_;
  }
  constexpr EventTime width_ns() const { return width_ns_; }

 private:
  EventTime width_ns_;
};

// Wall-clock stopwatch (monotonic), used for latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ts

#endif  // SRC_COMMON_TIME_UTIL_H_
