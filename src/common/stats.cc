#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace ts {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Quantile(double q) {
  TS_CHECK(!samples_.empty());
  TS_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (double v : samples_) {
    sum += v;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Min() {
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() {
  EnsureSorted();
  return samples_.back();
}

BoxSummary Summarize(SampleSet& samples) {
  BoxSummary s;
  if (samples.empty()) {
    return s;
  }
  s.count = samples.count();
  s.q1 = samples.Quantile(0.25);
  s.median = samples.Quantile(0.5);
  s.q3 = samples.Quantile(0.75);
  s.mean = samples.Mean();
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  // Whiskers extend to the most extreme data point within the fences.
  s.whisker_lo = s.q1;
  s.whisker_hi = s.q3;
  size_t outliers = 0;
  for (double v : samples.samples()) {
    if (v < lo_fence || v > hi_fence) {
      ++outliers;
    } else {
      s.whisker_lo = std::min(s.whisker_lo, v);
      s.whisker_hi = std::max(s.whisker_hi, v);
    }
  }
  s.outliers = outliers;
  return s;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  TS_CHECK(hi > lo && buckets > 0);
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x, uint64_t weight) {
  size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

int LogDiscretize(double x) {
  if (x < 1.0) {
    return 0;
  }
  return static_cast<int>(std::floor(std::log2(x)));
}

void LogHistogram::Add(double x, uint64_t weight) {
  buckets_[LogDiscretize(x)] += weight;
  total_ += weight;
}

std::vector<std::pair<double, double>> EmpiricalCdf(SampleSet& samples,
                                                    size_t max_points) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty()) {
    return out;
  }
  const size_t n = samples.count();
  const size_t points = std::min(max_points, n);
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(samples.Quantile(q), q);
  }
  return out;
}

std::string FormatNanos(double nanos) {
  char buf[64];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", nanos / 1e3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", nanos / 1e9);
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024);
  } else if (bytes < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / (1024.0 * 1024 * 1024));
  }
  return buf;
}

}  // namespace ts
