// Deterministic pseudo-random number generation and the sampling distributions
// used by the synthetic workload generator.
//
// The generator is xoshiro256** (Blackman & Vigna): fast, high quality, and with a
// compact state that makes per-stream independent RNGs cheap. Determinism matters:
// every experiment in EXPERIMENTS.md is reproducible from a seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace ts {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Log-normal parameterized by the underlying normal's mu/sigma.
  double NextLogNormal(double mu, double sigma);

  // Standard normal via Box-Muller.
  double NextNormal();

  // Bounded Pareto on [lo, hi] with shape alpha. Used for long-tailed session
  // durations (95% short, tail up to the trace length).
  double NextBoundedPareto(double lo, double hi, double alpha);

  // Derives an independent child generator (for per-stream RNGs).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). Precomputes the CDF once; sampling is a binary
// search. Used for service popularity in the workload topology.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew);
  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ts

#endif  // SRC_COMMON_RNG_H_
