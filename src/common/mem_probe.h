// Process-memory probes used by the Figure 8 experiment (peak resident set size
// vs re-order window size).
#ifndef SRC_COMMON_MEM_PROBE_H_
#define SRC_COMMON_MEM_PROBE_H_

#include <cstdint>

namespace ts {

// Current resident set size of this process in bytes (VmRSS). Returns 0 if the
// probe is unavailable (non-Linux).
uint64_t CurrentRssBytes();

// Peak resident set size in bytes (VmHWM).
uint64_t PeakRssBytes();

}  // namespace ts

#endif  // SRC_COMMON_MEM_PROBE_H_
