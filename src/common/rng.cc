#include "src/common/rng.h"

#include "src/common/status.h"

namespace ts {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  TS_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  TS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double mean) {
  TS_CHECK(mean > 0);
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::NextNormal() {
  // Box-Muller; one value per call keeps the generator stateless w.r.t. pairs.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) {
    u1 = 0x1.0p-53;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextNormal());
}

double Rng::NextBoundedPareto(double lo, double hi, double alpha) {
  TS_CHECK(lo > 0 && hi > lo && alpha > 0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double skew) {
  TS_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) {
    v /= sum;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace ts
