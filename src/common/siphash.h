// SipHash-2-4, the keyed hash the paper applies to session IDs to drive the
// Exchange PACT ("we have a fixed partitioning strategy and apply SipHash 2-4 to
// the session ID", §4.2).
//
// Reference: Aumasson & Bernstein, "SipHash: a fast short-input PRF" (2012).
#ifndef SRC_COMMON_SIPHASH_H_
#define SRC_COMMON_SIPHASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ts {

struct SipHashKey {
  uint64_t k0 = 0x0706050403020100ULL;
  uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
};

// Hashes `data[0..len)` with SipHash-2-4 under `key`.
uint64_t SipHash24(const void* data, size_t len, const SipHashKey& key);

inline uint64_t SipHash24(std::string_view s, const SipHashKey& key = SipHashKey{}) {
  return SipHash24(s.data(), s.size(), key);
}

inline uint64_t SipHash24(uint64_t v, const SipHashKey& key = SipHashKey{}) {
  return SipHash24(&v, sizeof(v), key);
}

}  // namespace ts

#endif  // SRC_COMMON_SIPHASH_H_
