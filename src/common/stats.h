// Statistics utilities shared by the analytics operators and the benchmark
// harnesses: running moments, exact quantiles over collected samples, box-plot
// summaries matching the paper's figures, linear and log-discretized histograms,
// and empirical CDFs.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ts {

// Running mean / variance / extrema (Welford).
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Collects samples and answers exact quantile queries. Intended for benchmark
// harnesses where sample counts are modest (<= millions).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Quantile in [0, 1] by linear interpolation between order statistics.
  double Quantile(double q);
  double Median() { return Quantile(0.5); }
  double Mean() const;
  double Min();
  double Max();
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted();
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Five-number box-plot summary as drawn in Figures 5-7 of the paper: quartiles,
// whiskers at 1.5 * IQR clamped to data, and the count of outliers beyond them.
struct BoxSummary {
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_lo = 0;
  double whisker_hi = 0;
  double mean = 0;
  size_t outliers = 0;
  size_t count = 0;
};

BoxSummary Summarize(SampleSet& samples);

// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to the
// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);
  void Add(double x, uint64_t weight = 1);
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  double bucket_lo(size_t i) const;
  uint64_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Log-discretized counter: bucket(x) = floor(log2(x)) for x >= 1, used by the
// trace-tree duration histogram in §4.3 ("histogram(|x| log_discretize(x))").
class LogHistogram {
 public:
  void Add(double x, uint64_t weight = 1);
  // Map of bucket exponent -> count. Bucket b covers [2^b, 2^(b+1)).
  const std::map<int, uint64_t>& buckets() const { return buckets_; }
  uint64_t total() const { return total_; }

 private:
  std::map<int, uint64_t> buckets_;
  uint64_t total_ = 0;
};

// Returns the log2 bucket index used by LogHistogram (clamps x < 1 to bucket 0).
int LogDiscretize(double x);

// Empirical CDF points (value, cumulative fraction) suitable for printing.
std::vector<std::pair<double, double>> EmpiricalCdf(SampleSet& samples,
                                                    size_t max_points = 100);

// Formats nanoseconds with an adaptive unit, for human-readable bench output.
std::string FormatNanos(double nanos);

// Formats byte counts with an adaptive unit.
std::string FormatBytes(double bytes);

}  // namespace ts

#endif  // SRC_COMMON_STATS_H_
