// Chunked bump allocator backing zero-copy ingest batches (docs/INGEST.md).
//
// The ingest edge reads wire bytes straight into arena storage and every
// downstream view (framed lines, RecordView field slices) points into it.
// Ownership is by shared_ptr: a LineBlock and every in-flight shard batch
// that received records from the block hold a reference, and the bytes are
// reclaimed — all at once, no per-record frees — when the last batch drains.
// Views must therefore never outlive the batch that carries the reference;
// the single materialization point (LiveCloser::Feed via MaterializeRecord)
// copies what must survive.
//
// Not thread-safe: one thread builds an arena (the ingest thread); once the
// bytes are written they are immutable, so any number of shard workers may
// read concurrently while holding a reference.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace ts {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 << 10;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `n` writable bytes that stay valid for the arena's lifetime.
  char* Allocate(size_t n) {
    if (n > remaining_) {
      Grow(n);
    }
    char* p = head_;
    head_ += n;
    remaining_ -= n;
    bytes_used_ += n;
    return p;
  }

  // Copies `s` into the arena and returns the stable view.
  std::string_view Copy(std::string_view s) {
    char* p = Allocate(s.size());
    std::memcpy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  // Raw-read protocol for zero-copy recv: Reserve hands out `n` contiguous
  // bytes to read into, Commit keeps the `used` prefix and returns the tail
  // to the arena. No other allocation may happen between the two calls.
  char* Reserve(size_t n) {
    if (n > remaining_) {
      Grow(n);
    }
    return head_;
  }
  void Commit(size_t used) {
    head_ += used;
    remaining_ -= used;
    bytes_used_ += used;
  }

  // Flexible reserve for readers that accept any size in [min_bytes,
  // max_bytes] (recv into the arena): hands out the current chunk's tail,
  // growing only when it is below min_bytes, so short reads never strand
  // chunk remainders. Writes `*got` with the usable size.
  char* ReserveUpTo(size_t min_bytes, size_t max_bytes, size_t* got) {
    if (remaining_ < min_bytes) {
      Grow(max_bytes);
    }
    *got = remaining_ < max_bytes ? remaining_ : max_bytes;
    return head_;
  }

  // Total bytes handed out (rotation threshold for long-lived producers).
  size_t bytes_used() const { return bytes_used_; }
  // Total bytes malloc'd into chunks (footprint gauge).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void Grow(size_t need) {
    // An oversized request gets a dedicated chunk; normal requests a fresh
    // default chunk. The partially-filled old head chunk is retired as-is —
    // bump allocation never backtracks, so existing views stay valid.
    const size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back(std::make_unique<char[]>(size));
    head_ = chunks_.back().get();
    remaining_ = size;
    bytes_reserved_ += size;
  }

  size_t chunk_bytes_;
  char* head_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<std::unique_ptr<char[]>> chunks_;
};

using ArenaRef = std::shared_ptr<Arena>;

}  // namespace ts

#endif  // SRC_COMMON_ARENA_H_
