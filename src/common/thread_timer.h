// Per-thread CPU-time measurement (CLOCK_THREAD_CPUTIME_ID).
//
// On the single-core evaluation container, wall-clock time cannot distinguish m
// workers doing 1/m of the work each from one worker doing all of it: the threads
// timeshare one core. Per-worker CPU busy time is exactly the quantity that
// determines epoch latency on a real multicore, so the scaling benches report the
// critical path max_w(busy_w) alongside wall clock. See DESIGN.md §3.
#ifndef SRC_COMMON_THREAD_TIMER_H_
#define SRC_COMMON_THREAD_TIMER_H_

#include <ctime>
#include <cstdint>

namespace ts {

// Nanoseconds of CPU time consumed by the calling thread.
inline int64_t ThreadCpuNanos() {
  timespec ts_now;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts_now) != 0) {
    return 0;
  }
  return static_cast<int64_t>(ts_now.tv_sec) * 1'000'000'000 + ts_now.tv_nsec;
}

// Accumulates CPU busy time across disjoint intervals on one thread.
class BusyTimer {
 public:
  void Start() { start_ = ThreadCpuNanos(); }
  void Stop() { total_ += ThreadCpuNanos() - start_; }
  int64_t total_nanos() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  int64_t start_ = 0;
  int64_t total_ = 0;
};

}  // namespace ts

#endif  // SRC_COMMON_THREAD_TIMER_H_
