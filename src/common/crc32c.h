// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum framing every
// ts_ckpt snapshot frame carries. Chosen over plain CRC32 for its better
// burst-error detection and because it is the de-facto standard for storage
// framing (LevelDB/RocksDB blocks, ext4 metadata, iSCSI). Software
// slice-by-8 implementation: checkpoints are periodic, not per-record, so
// ~1 GB/s is far more than the hot path ever asks of it.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ts {

// CRC32C of data[0..len), seeded with `crc` (pass 0 for a fresh checksum;
// pass a previous result to extend it over concatenated buffers).
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t crc = 0) {
  return Crc32c(s.data(), s.size(), crc);
}

}  // namespace ts

#endif  // SRC_COMMON_CRC32C_H_
