#include "src/common/latency_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace ts {
namespace {

int FloorLog2(uint64_t v) {
  int log = 0;
  while (v >>= 1) {
    ++log;
  }
  return log;
}

}  // namespace

LatencyRecorder::LatencyRecorder(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_bucket_count_(size_t{1} << sub_bucket_bits) {
  TS_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  // Shifts run 0..(62 - bits) for values up to 2^63 - 1; one extra row plus
  // the exact region below 2 * sub_bucket_count_ covers the full int64 range.
  buckets_.assign((65 - sub_bucket_bits_) * sub_bucket_count_, 0);
}

size_t LatencyRecorder::BucketIndex(int64_t value) const {
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  if (v < 2 * sub_bucket_count_) {
    return static_cast<size_t>(v);  // Exact region.
  }
  int shift = FloorLog2(v) - sub_bucket_bits_;
  uint64_t sub = v >> shift;  // In [sub_bucket_count_, 2 * sub_bucket_count_).
  return (static_cast<size_t>(shift) + 1) * sub_bucket_count_ +
         static_cast<size_t>(sub - sub_bucket_count_);
}

int64_t LatencyRecorder::BucketLowerBound(size_t index) const {
  if (index < 2 * sub_bucket_count_) {
    return static_cast<int64_t>(index);
  }
  int shift = static_cast<int>(index / sub_bucket_count_) - 1;
  uint64_t sub = sub_bucket_count_ + index % sub_bucket_count_;
  return static_cast<int64_t>(sub << shift);
}

int64_t LatencyRecorder::BucketUpperBound(size_t index) const {
  if (index < 2 * sub_bucket_count_) {
    return static_cast<int64_t>(index);
  }
  int shift = static_cast<int>(index / sub_bucket_count_) - 1;
  return BucketLowerBound(index) + ((int64_t{1} << shift) - 1);
}

void LatencyRecorder::Record(int64_t value) { RecordMany(value, 1); }

void LatencyRecorder::RecordMany(int64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  int64_t v = value < 0 ? 0 : value;
  buckets_[BucketIndex(v)] += count;
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  if (count_ == 0 || v > max_) {
    max_ = v;
  }
  count_ += count;
  sum_ += static_cast<double>(v) * static_cast<double>(count);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  TS_CHECK(sub_bucket_bits_ == other.sub_bucket_bits_);
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (count_ == 0 || other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyRecorder::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t LatencyRecorder::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) {
    target = 1;
  }
  if (target > count_) {
    target = count_;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void LatencyRecorder::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

std::string LatencyRecorder::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.2fms p99=%.2fms p99.9=%.2fms max=%.2fms n=%llu",
                ValueAtQuantile(0.50) / 1e6, ValueAtQuantile(0.99) / 1e6,
                ValueAtQuantile(0.999) / 1e6, max() / 1e6,
                static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace ts
