// MetricsRegistry: the small named-gauge registry the query server dumps on
// STATS. The host process registers whatever it wants operators to see next
// to the store counters — transport stats from the ingest side, per-epoch
// sessionization latency, reorder-buffer drops, per-shard live-pipeline
// gauges. Gauges are sampled at STATS time on the server's event-loop thread,
// so callbacks must be thread-safe (reading relaxed atomics or snapshotting
// under their own lock) and cheap.
//
// Lives in src/common so producers anywhere in the stack (core pipeline,
// net transport) can register gauges without depending on src/query.
#ifndef SRC_COMMON_METRICS_REGISTRY_H_
#define SRC_COMMON_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ts {

class MetricsRegistry {
 public:
  using Gauge = std::function<int64_t()>;

  void Register(std::string name, Gauge gauge) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_.emplace_back(std::move(name), std::move(gauge));
  }

  // Samples every gauge, in registration order.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const {
    std::vector<std::pair<std::string, Gauge>> gauges;
    {
      std::lock_guard<std::mutex> lock(mu_);
      gauges = gauges_;
    }
    std::vector<std::pair<std::string, int64_t>> out;
    out.reserve(gauges.size());
    for (const auto& [name, gauge] : gauges) {
      out.emplace_back(name, gauge());
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Gauge>> gauges_;
};

}  // namespace ts

#endif  // SRC_COMMON_METRICS_REGISTRY_H_
