// Lightweight invariant-checking macros used across the TraceStream codebase.
//
// The library is exception-free: programming errors abort with a diagnostic, and
// recoverable conditions are surfaced through std::optional / result structs.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a location-tagged message when `cond` is false.
// Active in all build types: these guard cross-module invariants whose violation
// would silently corrupt downstream results (e.g. progress-tracking counts).
#define TS_CHECK(cond)                                                              \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "TS_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                                          \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#define TS_CHECK_MSG(cond, msg)                                                    \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      std::fprintf(stderr, "TS_CHECK failed at %s:%d: %s (%s)\n", __FILE__,        \
                   __LINE__, #cond, msg);                                          \
      std::abort();                                                                \
    }                                                                              \
  } while (0)

#endif  // SRC_COMMON_STATUS_H_
