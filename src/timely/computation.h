// Entry point: configures a multi-worker computation, builds one dataflow copy
// per worker, runs the workers to completion, and reports runtime statistics.
#ifndef SRC_TIMELY_COMPUTATION_H_
#define SRC_TIMELY_COMPUTATION_H_

#include <functional>
#include <vector>

#include "src/timely/scope.h"
#include "src/timely/worker.h"

namespace ts {

struct RunResult {
  std::vector<WorkerStats> workers;
  uint64_t progress_batches = 0;
  uint64_t progress_deltas = 0;
  uint64_t data_batches = 0;
  uint64_t records_exchanged = 0;

  int64_t MaxWorkerCpuNanos() const;
  int64_t TotalWorkerCpuNanos() const;
};

class Computation {
 public:
  struct Options {
    size_t workers = 1;
  };

  // `build` runs once per worker, on that worker's thread, before execution
  // starts. It must construct an identical graph on every worker (same nodes
  // and edges in the same order) and must arrange for every input created to
  // be closed by a driver. Blocks until the computation completes.
  static RunResult Run(const Options& options,
                       const std::function<void(Scope&)>& build);
};

}  // namespace ts

#endif  // SRC_TIMELY_COMPUTATION_H_
