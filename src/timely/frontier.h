// Frontiers over totally-ordered integer epochs.
//
// Timely Dataflow tracks, per dataflow location, the set of logical timestamps
// that may still appear. With a totally-ordered timestamp (integer epochs, §4.1)
// an antichain degenerates to a single minimum, so a frontier is either "at e"
// (epochs >= e may still arrive) or "done" (no further data).
#ifndef SRC_TIMELY_FRONTIER_H_
#define SRC_TIMELY_FRONTIER_H_

#include <cstdint>

#include "src/common/time_util.h"

namespace ts {

class Frontier {
 public:
  // A frontier that has passed all epochs (stream complete).
  static Frontier Done() { return Frontier(true, 0); }

  // A frontier at epoch `e`: data at epochs >= e may still arrive.
  static Frontier At(Epoch e) { return Frontier(false, e); }

  bool done() const { return done_; }

  // Minimum epoch that may still arrive. Only meaningful when !done().
  Epoch min() const { return min_; }

  // True when epoch `e` is complete: no record with epoch <= e can appear.
  bool Beyond(Epoch e) const { return done_ || min_ > e; }

  // Pointwise minimum of two frontiers.
  static Frontier Min(const Frontier& a, const Frontier& b) {
    if (a.done_) {
      return b;
    }
    if (b.done_) {
      return a;
    }
    return At(a.min_ < b.min_ ? a.min_ : b.min_);
  }

  bool operator==(const Frontier& other) const = default;

 private:
  Frontier(bool done, Epoch min) : done_(done), min_(min) {}
  bool done_;
  Epoch min_;
};

}  // namespace ts

#endif  // SRC_TIMELY_FRONTIER_H_
