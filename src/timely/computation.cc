#include "src/timely/computation.h"

#include <algorithm>
#include <memory>
#include <thread>

#include "src/common/status.h"
#include "src/timely/runtime.h"

namespace ts {

int64_t RunResult::MaxWorkerCpuNanos() const {
  int64_t max_ns = 0;
  for (const auto& w : workers) {
    max_ns = std::max(max_ns, w.cpu_ns);
  }
  return max_ns;
}

int64_t RunResult::TotalWorkerCpuNanos() const {
  int64_t total = 0;
  for (const auto& w : workers) {
    total += w.cpu_ns;
  }
  return total;
}

RunResult Computation::Run(const Options& options,
                           const std::function<void(Scope&)>& build) {
  TS_CHECK(options.workers >= 1);
  SharedRuntime runtime(options.workers);
  RunResult result;
  result.workers.resize(options.workers);

  auto worker_main = [&](size_t index) {
    WorkerGraph graph(index, &runtime);
    Scope scope(&graph);
    build(scope);
    graph.Finalize();
    graph.Run(&result.workers[index]);
  };

  if (options.workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options.workers);
    for (size_t w = 0; w < options.workers; ++w) {
      threads.emplace_back(worker_main, w);
    }
    for (auto& t : threads) {
      t.join();
    }
  }

  result.progress_batches = runtime.counters().progress_batches.load();
  result.progress_deltas = runtime.counters().progress_deltas.load();
  result.data_batches = runtime.counters().data_batches.load();
  result.records_exchanged = runtime.counters().records_exchanged.load();
  return result;
}

}  // namespace ts
