#include "src/timely/worker.h"

#include <chrono>
#include <thread>

#include "src/common/status.h"
#include "src/common/thread_timer.h"

namespace ts {

void WorkerGraph::SetOperator(int node_id, std::unique_ptr<OperatorBase> op) {
  TS_CHECK(!finalized_);
  if (ops_.size() <= static_cast<size_t>(node_id)) {
    ops_.resize(node_id + 1);
  }
  TS_CHECK_MSG(ops_[node_id] == nullptr, "node already has an operator");
  ops_[node_id] = std::move(op);
}

void WorkerGraph::Finalize() {
  TS_CHECK(!finalized_);
  TS_CHECK_MSG(ops_.size() == topo_.nodes().size(), "every node needs an operator");
  topo_.Finalize();
  tracker_ = std::make_unique<ProgressTracker>(&topo_);
  for (const auto& node : topo_.nodes()) {
    if (node.is_input) {
      tracker_->InitializeCapability(node.cap_loc, runtime_->workers());
    }
  }
  finalized_ = true;
}

void WorkerGraph::Run(WorkerStats* stats) {
  TS_CHECK(finalized_);
  stats->index = index_;
  runtime_->ArriveAndWait();

  const int64_t cpu_start = ThreadCpuNanos();
  ProgressBatch step_batch;
  ProgressBatch notify_batch;
  std::vector<ProgressBatch> incoming;
  bool drivers_done = drivers_.empty();

  for (;;) {
    bool did_work = false;

    // 1. Drivers feed inputs. A driver pacing real-time replay may be idle.
    if (!drivers_done) {
      bool all_finished = true;
      for (auto& d : drivers_) {
        if (!d.active) {
          continue;
        }
        const DriverStatus status = d.fn();
        if (status == DriverStatus::kFinished) {
          d.active = false;
        } else {
          all_finished = false;
          if (status == DriverStatus::kWorked) {
            did_work = true;
          }
        }
      }
      drivers_done = all_finished;
      if (drivers_done) {
        did_work = true;  // Ensure one more full pass after the last close.
      }
    }

    // 2. Pump + work in topological order, so a batch traverses as much of the
    //    pipeline as possible within a single step.
    step_batch.clear();
    for (auto& op : ops_) {
      if (op->Pump()) {
        did_work = true;
      }
      if (op->Work(step_batch)) {
        did_work = true;
      }
    }
    if (!step_batch.empty()) {
      tracker_->Apply(step_batch);
    }

    // 3. Notifications, with the local view refreshed by this step's deltas.
    notify_batch.clear();
    for (auto& op : ops_) {
      const Frontier frontier = tracker_->NodeInputFrontier(op->node_id());
      if (op->DeliverNotifications(frontier, notify_batch)) {
        did_work = true;
      }
    }
    if (!notify_batch.empty()) {
      tracker_->Apply(notify_batch);
      step_batch.Append(notify_batch);
    }

    // 4. Publish this step's progress statement and absorb the peers'.
    if (!step_batch.empty()) {
      runtime_->BroadcastProgress(index_, step_batch);
    }
    incoming.clear();
    if (runtime_->DrainProgress(index_, incoming)) {
      did_work = true;
      for (const auto& b : incoming) {
        tracker_->Apply(b);
      }
    }

    for (auto& cb : step_callbacks_) {
      cb();
    }
    ++stats->steps;

    if (drivers_done && tracker_->AllZero()) {
      break;
    }
    if (!did_work) {
      // Idle: yield the core instead of spinning. Thread CPU time (the busy
      // metric) does not advance while sleeping.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  stats->cpu_ns = ThreadCpuNanos() - cpu_start;
}

}  // namespace ts
