// Shared runtime state for a multi-worker computation: typed exchange hubs (the
// data plane) and per-worker progress mailboxes (the control plane).
//
// Data exchange implements the Exchange PACT (§4.2): an all-to-all shuffle with
// no logical barrier — senders deposit batches into per-destination cells and
// proceed; receivers drain their cell when scheduled. Worker-local (pipeline)
// edges use the same mechanism with dst == src, where the cell mutex is
// uncontended.
#ifndef SRC_TIMELY_RUNTIME_H_
#define SRC_TIMELY_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/time_util.h"
#include "src/timely/progress.h"

namespace ts {

template <typename T>
struct Batch {
  Epoch epoch = 0;
  std::vector<T> data;
};

class HubBase {
 public:
  virtual ~HubBase() = default;
};

// One hub per dataflow edge; cells_[dst] holds batches in flight to worker dst.
template <typename T>
class ExchangeHub : public HubBase {
 public:
  explicit ExchangeHub(size_t workers) {
    cells_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      cells_.push_back(std::make_unique<Cell>());
    }
  }

  void Send(size_t dst, Epoch epoch, std::vector<T> data) {
    Cell& cell = *cells_[dst];
    std::lock_guard<std::mutex> lock(cell.mu);
    cell.batches.push_back(Batch<T>{epoch, std::move(data)});
  }

  // Moves all batches destined to `dst` into `out`; returns whether any moved.
  bool Drain(size_t dst, std::vector<Batch<T>>& out) {
    Cell& cell = *cells_[dst];
    std::lock_guard<std::mutex> lock(cell.mu);
    if (cell.batches.empty()) {
      return false;
    }
    for (auto& b : cell.batches) {
      out.push_back(std::move(b));
    }
    cell.batches.clear();
    return true;
  }

 private:
  struct Cell {
    std::mutex mu;
    std::vector<Batch<T>> batches;
  };
  std::vector<std::unique_ptr<Cell>> cells_;
};

// Aggregate counters a run reports back; used by benches to model coordination
// cost and to report engine health.
struct RuntimeCounters {
  std::atomic<uint64_t> progress_batches{0};
  std::atomic<uint64_t> progress_deltas{0};
  std::atomic<uint64_t> data_batches{0};
  std::atomic<uint64_t> records_exchanged{0};
};

class SharedRuntime {
 public:
  explicit SharedRuntime(size_t workers) : workers_(workers), mailboxes_(workers) {
    for (auto& m : mailboxes_) {
      m = std::make_unique<Mailbox>();
    }
  }

  size_t workers() const { return workers_; }

  // Returns the hub for `edge_id`, creating it on first use. All workers build
  // identical graphs, so the type parameter agrees across callers; this is
  // verified with the stored type index.
  template <typename T>
  ExchangeHub<T>* Hub(int edge_id) {
    std::lock_guard<std::mutex> lock(hubs_mu_);
    auto it = hubs_.find(edge_id);
    if (it == hubs_.end()) {
      auto hub = std::make_unique<ExchangeHub<T>>(workers_);
      ExchangeHub<T>* ptr = hub.get();
      hubs_.emplace(edge_id, TypedHub{std::type_index(typeid(T)), std::move(hub)});
      return ptr;
    }
    TS_CHECK_MSG(it->second.type == std::type_index(typeid(T)),
                 "edge rebuilt with a different record type");
    return static_cast<ExchangeHub<T>*>(it->second.hub.get());
  }

  // Control plane: worker `from` publishes a progress batch to all peers.
  // Local application is the caller's responsibility (it already has the batch).
  void BroadcastProgress(size_t from, const ProgressBatch& batch) {
    counters_.progress_batches.fetch_add(workers_ - 1, std::memory_order_relaxed);
    counters_.progress_deltas.fetch_add((workers_ - 1) * batch.deltas.size(),
                                        std::memory_order_relaxed);
    for (size_t w = 0; w < workers_; ++w) {
      if (w == from) {
        continue;
      }
      Mailbox& mb = *mailboxes_[w];
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.batches.push_back(batch);
    }
  }

  // Drains worker `w`'s mailbox (FIFO per sender is preserved because each
  // sender appends under the same lock and we drain in order).
  bool DrainProgress(size_t w, std::vector<ProgressBatch>& out) {
    Mailbox& mb = *mailboxes_[w];
    std::lock_guard<std::mutex> lock(mb.mu);
    if (mb.batches.empty()) {
      return false;
    }
    for (auto& b : mb.batches) {
      out.push_back(std::move(b));
    }
    mb.batches.clear();
    return true;
  }

  // Startup latch: workers wait until every peer finished graph construction.
  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(latch_mu_);
    if (++arrived_ == workers_) {
      latch_cv_.notify_all();
    } else {
      latch_cv_.wait(lock, [&] { return arrived_ == workers_; });
    }
  }

  RuntimeCounters& counters() { return counters_; }

 private:
  struct Mailbox {
    std::mutex mu;
    std::vector<ProgressBatch> batches;
  };
  struct TypedHub {
    std::type_index type;
    std::unique_ptr<HubBase> hub;
  };

  const size_t workers_;
  std::mutex hubs_mu_;
  std::unordered_map<int, TypedHub> hubs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::mutex latch_mu_;
  std::condition_variable latch_cv_;
  size_t arrived_ = 0;
  RuntimeCounters counters_;
};

}  // namespace ts

#endif  // SRC_TIMELY_RUNTIME_H_
