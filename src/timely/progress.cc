#include "src/timely/progress.h"

#include "src/common/status.h"

namespace ts {

ProgressTracker::ProgressTracker(const Topology* topo) : topo_(topo) {
  counts_.resize(topo->num_locations());
}

void ProgressTracker::InitializeCapability(int cap_loc, size_t workers) {
  TS_CHECK(cap_loc >= 0 && cap_loc < static_cast<int>(counts_.size()));
  auto [it, inserted] = counts_[cap_loc].emplace(0, static_cast<int64_t>(workers));
  TS_CHECK(inserted);
  ++nonzero_entries_;
}

void ProgressTracker::Apply(const ProgressBatch& batch) {
  for (const ProgressDelta& d : batch.deltas) {
    auto& per_epoch = counts_[d.loc];
    auto [it, inserted] = per_epoch.emplace(d.epoch, d.delta);
    if (inserted) {
      if (d.delta != 0) {
        ++nonzero_entries_;
      } else {
        per_epoch.erase(it);
      }
      continue;
    }
    const int64_t before = it->second;
    it->second += d.delta;
    if (before != 0 && it->second == 0) {
      per_epoch.erase(it);
      --nonzero_entries_;
    } else if (before == 0 && it->second != 0) {
      ++nonzero_entries_;
    }
  }
}

Frontier ProgressTracker::EdgeFrontier(int edge_id) const {
  bool any = false;
  Epoch min_epoch = 0;
  for (int loc : topo_->ReachingEdge(edge_id)) {
    // A location's min outstanding epoch is its first entry with positive
    // count. Negative transients (a consumption applied before the matching
    // send, possible with independent senders) do not represent pending work.
    for (const auto& [epoch, count] : counts_[loc]) {
      if (count > 0) {
        if (!any || epoch < min_epoch) {
          any = true;
          min_epoch = epoch;
        }
        break;  // Entries are epoch-ordered; first positive is the min.
      }
    }
  }
  return any ? Frontier::At(min_epoch) : Frontier::Done();
}

Frontier ProgressTracker::NodeInputFrontier(int node_id) const {
  const auto& node = topo_->nodes()[node_id];
  Frontier f = Frontier::Done();
  for (int e : node.in_edges) {
    f = Frontier::Min(f, EdgeFrontier(e));
  }
  return f;
}

}  // namespace ts
