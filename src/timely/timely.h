// Umbrella header for the ts_timely dataflow engine.
#ifndef SRC_TIMELY_TIMELY_H_
#define SRC_TIMELY_TIMELY_H_

#include "src/timely/binary_operator.h"
#include "src/timely/computation.h"
#include "src/timely/frontier.h"
#include "src/timely/operator.h"
#include "src/timely/progress.h"
#include "src/timely/runtime.h"
#include "src/timely/scope.h"
#include "src/timely/topology.h"
#include "src/timely/worker.h"

#endif  // SRC_TIMELY_TIMELY_H_
