// Static dataflow-graph topology and the location-reachability relation used by
// progress tracking.
//
// Progress is accounted at "locations": one message location per edge (unconsumed
// batches in flight) and one capability location per node (the right to produce
// output or request notification at an epoch). A location L constrains a frontier
// at location L' iff work at L could eventually result in a message at L'
// ("could-result-in" in the Naiad formulation). For the acyclic graphs TS builds,
// that relation is plain graph reachability, precomputed here once per worker.
#ifndef SRC_TIMELY_TOPOLOGY_H_
#define SRC_TIMELY_TOPOLOGY_H_

#include <string>
#include <vector>

namespace ts {

class Topology {
 public:
  struct Node {
    std::string name;
    int cap_loc = -1;              // Capability location of this node.
    std::vector<int> in_edges;     // Edge ids entering this node.
    std::vector<int> out_edges;    // Edge ids leaving this node.
    bool is_input = false;         // Source nodes hold an initial capability.
  };

  struct Edge {
    int src_node = -1;
    int dst_node = -1;
    int msg_loc = -1;              // Message location of this edge.
    bool exchanged = false;        // Exchange PACT vs worker-local pipeline.
  };

  // Adds a node; returns its id. Assigns the capability location.
  int AddNode(std::string name, bool is_input);

  // Adds an edge src -> dst; returns its id. Assigns the message location.
  int AddEdge(int src_node, int dst_node, bool exchanged);

  // Precomputes `reaching(loc)` for every location. Must be called after the
  // graph is complete and before any frontier query. The graph must be acyclic.
  void Finalize();

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  int num_locations() const { return num_locations_; }
  bool finalized() const { return finalized_; }

  // Locations whose outstanding work can still produce a message on edge `e`
  // (including e's own message location).
  const std::vector<int>& ReachingEdge(int edge_id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> reaching_;  // Indexed by edge id.
  int num_locations_ = 0;
  bool finalized_ = false;
};

}  // namespace ts

#endif  // SRC_TIMELY_TOPOLOGY_H_
