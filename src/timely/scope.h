// Graph-construction API: typed streams, partitioning contracts, and operator
// factories. This mirrors the programming model in §3/§4.3 of the paper — a
// program chains operators into a workflow; each worker instantiates a copy.
#ifndef SRC_TIMELY_SCOPE_H_
#define SRC_TIMELY_SCOPE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/timely/operator.h"
#include "src/timely/worker.h"

namespace ts {

// A handle to the output of a dataflow node, usable only during construction.
template <typename T>
struct Stream {
  int node = -1;
  Producer<T>* producer = nullptr;
};

// Parallelization contract for an edge: how records reach consumer instances.
template <typename T>
struct Partition {
  // Empty hash => pipeline edge (records stay on the producing worker).
  std::function<uint64_t(const T&)> hash;

  static Partition Pipeline() { return Partition{}; }
  static Partition ByKey(std::function<uint64_t(const T&)> h) {
    return Partition{std::move(h)};
  }
  bool exchanged() const { return static_cast<bool>(hash); }
};

// Observes the frontier at a point in the dataflow; used to detect epoch
// completion ("a punctuation is delivered, confirming that the epoch is over").
// Valid only on the owning worker's thread, after the graph is finalized.
class ProbeHandle {
 public:
  ProbeHandle() = default;
  ProbeHandle(const WorkerGraph* graph, int node) : graph_(graph), node_(node) {}

  Frontier frontier() const { return graph_->tracker().NodeInputFrontier(node_); }
  bool Beyond(Epoch e) const { return frontier().Beyond(e); }

 private:
  const WorkerGraph* graph_ = nullptr;
  int node_ = -1;
};

class Scope {
 public:
  explicit Scope(WorkerGraph* graph) : graph_(graph) {}

  size_t worker_index() const { return graph_->index(); }
  size_t num_workers() const { return graph_->workers(); }
  WorkerGraph* graph() { return graph_; }

  // Registers a per-quantum driver that feeds inputs (replayer, generator...).
  void AddDriver(std::function<DriverStatus()> driver) {
    graph_->AddDriver(std::move(driver));
  }
  void AddStepCallback(std::function<void()> callback) {
    graph_->AddStepCallback(std::move(callback));
  }

  // Creates a new input. The returned session must be driven (and eventually
  // closed) by a driver on this worker.
  template <typename T>
  std::pair<InputSession<T>, Stream<T>> NewInput(const std::string& name) {
    Topology& topo = graph_->topo();
    const int node = topo.AddNode(name, /*is_input=*/true);
    auto op = std::make_unique<InputOperator<T>>(
        node, topo.nodes()[node].cap_loc, graph_->index(), graph_->workers(),
        &graph_->runtime()->counters());
    InputOperator<T>* raw = op.get();
    graph_->SetOperator(node, std::move(op));
    return {InputSession<T>(raw), Stream<T>{node, raw}};
  }

  // The generic stateful operator: full access to the notificator, matching the
  // paper's sessionization pseudo-code (§4.2).
  template <typename In, typename Out>
  Stream<Out> Unary(const Stream<In>& in, Partition<In> partition,
                    const std::string& name,
                    typename UnaryOperator<In, Out>::DataFn on_data,
                    typename UnaryOperator<In, Out>::NotifyFn on_notify) {
    Topology& topo = graph_->topo();
    const int node = topo.AddNode(name, /*is_input=*/false);
    auto op = std::make_unique<UnaryOperator<In, Out>>(
        node, topo.nodes()[node].cap_loc, graph_->index(), graph_->workers(),
        &graph_->runtime()->counters(), std::move(on_data), std::move(on_notify));
    ConnectEdge<In>(in, node, op.get(), std::move(partition));
    Stream<Out> out{node, op.get()};
    graph_->SetOperator(node, std::move(op));
    return out;
  }

  // --- Functional wrappers (§4.3: "a minimal set of default operators") ------

  template <typename In, typename Out>
  Stream<Out> Map(const Stream<In>& in, const std::string& name,
                  std::function<Out(In)> fn) {
    return Unary<In, Out>(
        in, Partition<In>::Pipeline(), name,
        [fn = std::move(fn)](Epoch e, std::vector<In>& data, OutputSession<Out>& out,
                             NotificatorHandle&) {
          for (auto& v : data) {
            out.Give(e, fn(std::move(v)));
          }
        },
        [](Epoch, OutputSession<Out>&, NotificatorHandle&) {});
  }

  template <typename In>
  Stream<In> Filter(const Stream<In>& in, const std::string& name,
                    std::function<bool(const In&)> pred) {
    return Unary<In, In>(
        in, Partition<In>::Pipeline(), name,
        [pred = std::move(pred)](Epoch e, std::vector<In>& data,
                                 OutputSession<In>& out, NotificatorHandle&) {
          for (auto& v : data) {
            if (pred(v)) {
              out.Give(e, std::move(v));
            }
          }
        },
        [](Epoch, OutputSession<In>&, NotificatorHandle&) {});
  }

  template <typename In, typename Out>
  Stream<Out> FlatMap(const Stream<In>& in, const std::string& name,
                      std::function<void(In, std::vector<Out>&)> fn) {
    return Unary<In, Out>(
        in, Partition<In>::Pipeline(), name,
        [fn = std::move(fn)](Epoch e, std::vector<In>& data, OutputSession<Out>& out,
                             NotificatorHandle&) {
          std::vector<Out> buffer;
          for (auto& v : data) {
            buffer.clear();
            fn(std::move(v), buffer);
            for (auto& o : buffer) {
              out.Give(e, std::move(o));
            }
          }
        },
        [](Epoch, OutputSession<Out>&, NotificatorHandle&) {});
  }

  // Observes records without consuming the stream shape.
  template <typename In>
  Stream<In> Inspect(const Stream<In>& in, const std::string& name,
                     std::function<void(Epoch, const In&)> fn) {
    return Unary<In, In>(
        in, Partition<In>::Pipeline(), name,
        [fn = std::move(fn)](Epoch e, std::vector<In>& data, OutputSession<In>& out,
                             NotificatorHandle&) {
          for (auto& v : data) {
            fn(e, v);
            out.Give(e, std::move(v));
          }
        },
        [](Epoch, OutputSession<In>&, NotificatorHandle&) {});
  }

  // Terminal consumer.
  template <typename In>
  void Sink(const Stream<In>& in, const std::string& name,
            std::function<void(Epoch, std::vector<In>&)> fn) {
    Unary<In, Unit>(
        in, Partition<In>::Pipeline(), name,
        [fn = std::move(fn)](Epoch e, std::vector<In>& data, OutputSession<Unit>&,
                             NotificatorHandle&) { fn(e, data); },
        [](Epoch, OutputSession<Unit>&, NotificatorHandle&) {});
  }

  // Merges same-typed streams (arrival order preserved per epoch per input).
  template <typename T>
  Stream<T> Concat(const std::vector<Stream<T>>& ins, const std::string& name) {
    Topology& topo = graph_->topo();
    const int node = topo.AddNode(name, /*is_input=*/false);
    auto op = std::make_unique<UnaryOperator<T, T>>(
        node, topo.nodes()[node].cap_loc, graph_->index(), graph_->workers(),
        &graph_->runtime()->counters(),
        [](Epoch e, std::vector<T>& data, OutputSession<T>& out, NotificatorHandle&) {
          out.GiveVec(e, std::move(data));
        },
        [](Epoch, OutputSession<T>&, NotificatorHandle&) {});
    for (const auto& in : ins) {
      ConnectEdge<T>(in, node, op.get(), Partition<T>::Pipeline());
    }
    Stream<T> out{node, op.get()};
    graph_->SetOperator(node, std::move(op));
    return out;
  }

  // Attaches a frontier probe after `in`; also consumes the stream.
  template <typename T>
  ProbeHandle Probe(const Stream<T>& in, const std::string& name) {
    Topology& topo = graph_->topo();
    const int node = topo.AddNode(name, /*is_input=*/false);
    auto op = std::make_unique<UnaryOperator<T, Unit>>(
        node, topo.nodes()[node].cap_loc, graph_->index(), graph_->workers(),
        &graph_->runtime()->counters(),
        [](Epoch, std::vector<T>& data, OutputSession<Unit>&, NotificatorHandle&) {
          data.clear();
        },
        [](Epoch, OutputSession<Unit>&, NotificatorHandle&) {});
    ConnectEdge<T>(in, node, op.get(), Partition<T>::Pipeline());
    graph_->SetOperator(node, std::move(op));
    return ProbeHandle(graph_, node);
  }

 private:
  template <typename In, typename ConsumerT>
  void ConnectEdge(const Stream<In>& in, int dst_node, ConsumerT* consumer,
                   Partition<In> partition) {
    Topology& topo = graph_->topo();
    const bool exchanged = partition.exchanged();
    const int edge = topo.AddEdge(in.node, dst_node, exchanged);
    const int msg_loc = topo.edges()[edge].msg_loc;
    auto* hub = graph_->runtime()->template Hub<In>(edge);
    in.producer->AddTarget(
        OutputTarget<In>{hub, edge, msg_loc, std::move(partition.hash)});
    consumer->AddInput(hub, msg_loc);
  }

  WorkerGraph* graph_;
};

}  // namespace ts

#endif  // SRC_TIMELY_SCOPE_H_
