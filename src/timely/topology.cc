#include "src/timely/topology.h"

#include <algorithm>

#include "src/common/status.h"

namespace ts {

int Topology::AddNode(std::string name, bool is_input) {
  TS_CHECK(!finalized_);
  Node n;
  n.name = std::move(name);
  n.cap_loc = num_locations_++;
  n.is_input = is_input;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int Topology::AddEdge(int src_node, int dst_node, bool exchanged) {
  TS_CHECK(!finalized_);
  TS_CHECK(src_node >= 0 && src_node < static_cast<int>(nodes_.size()));
  TS_CHECK(dst_node >= 0 && dst_node < static_cast<int>(nodes_.size()));
  // Node ids are assigned in construction order, so src < dst guarantees an
  // acyclic graph (streams must exist before they are consumed).
  TS_CHECK_MSG(src_node < dst_node, "dataflow graphs must be acyclic");
  Edge e;
  e.src_node = src_node;
  e.dst_node = dst_node;
  e.msg_loc = num_locations_++;
  e.exchanged = exchanged;
  const int id = static_cast<int>(edges_.size());
  edges_.push_back(e);
  nodes_[src_node].out_edges.push_back(id);
  nodes_[dst_node].in_edges.push_back(id);
  return id;
}

void Topology::Finalize() {
  TS_CHECK(!finalized_);
  // Location adjacency: capability(n) -> msg(e) for every out-edge e of n, and
  // msg(e into n) -> msg(e' out of n) (processing a message can produce output).
  std::vector<std::vector<int>> adj(num_locations_);
  for (const Node& n : nodes_) {
    for (int out : n.out_edges) {
      adj[n.cap_loc].push_back(edges_[out].msg_loc);
    }
    for (int in : n.in_edges) {
      for (int out : n.out_edges) {
        adj[edges_[in].msg_loc].push_back(edges_[out].msg_loc);
      }
    }
  }

  // reaching_[e] = { L : L can reach msg_loc(e) } U { msg_loc(e) }.
  // Locations are few (2 per operator), so a DFS per edge is plenty fast and runs
  // once at graph construction.
  reaching_.assign(edges_.size(), {});
  // Reverse adjacency for backward reachability.
  std::vector<std::vector<int>> radj(num_locations_);
  for (int l = 0; l < num_locations_; ++l) {
    for (int m : adj[l]) {
      radj[m].push_back(l);
    }
  }
  std::vector<char> seen(num_locations_);
  for (size_t e = 0; e < edges_.size(); ++e) {
    std::fill(seen.begin(), seen.end(), 0);
    std::vector<int> stack = {edges_[e].msg_loc};
    seen[edges_[e].msg_loc] = 1;
    while (!stack.empty()) {
      const int l = stack.back();
      stack.pop_back();
      reaching_[e].push_back(l);
      for (int p : radj[l]) {
        if (!seen[p]) {
          seen[p] = 1;
          stack.push_back(p);
        }
      }
    }
    std::sort(reaching_[e].begin(), reaching_[e].end());
  }
  finalized_ = true;
}

const std::vector<int>& Topology::ReachingEdge(int edge_id) const {
  TS_CHECK(finalized_);
  return reaching_[edge_id];
}

}  // namespace ts
