// Naiad-style progress tracking: distributed pointstamp counting.
//
// Every worker maintains a local view of the global outstanding-work counts,
// indexed by (location, epoch). Workers batch the deltas produced by one
// scheduling step (message sends +1, message consumptions -1, capability
// retention/drop) and broadcast the batch to all peers. Because a batch is
// applied atomically and mailboxes are FIFO per sender, a worker's local view
// never under-counts the outstanding work that could reach a location — the
// safety property that makes frontier-based notification sound (§3 "Progress
// tracking", and Abadi & Isard, "Timely Dataflow: A Model").
#ifndef SRC_TIMELY_PROGRESS_H_
#define SRC_TIMELY_PROGRESS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time_util.h"
#include "src/timely/frontier.h"
#include "src/timely/topology.h"

namespace ts {

struct ProgressDelta {
  int32_t loc = 0;
  Epoch epoch = 0;
  int64_t delta = 0;
};

struct ProgressBatch {
  std::vector<ProgressDelta> deltas;

  void Add(int loc, Epoch epoch, int64_t delta) {
    deltas.push_back({loc, epoch, delta});
  }
  bool empty() const { return deltas.empty(); }
  void clear() { deltas.clear(); }
  void Append(const ProgressBatch& other) {
    deltas.insert(deltas.end(), other.deltas.begin(), other.deltas.end());
  }
};

class ProgressTracker {
 public:
  explicit ProgressTracker(const Topology* topo);

  // Registers the initial capability of an input node: every worker's input
  // instance holds epoch 0 at startup, so the global count is `workers`.
  void InitializeCapability(int cap_loc, size_t workers);

  // Applies one batch atomically.
  void Apply(const ProgressBatch& batch);

  // Frontier of the messages that may still appear on edge `edge_id`: the
  // minimum epoch with a positive count over every location that can still
  // result in such a message.
  Frontier EdgeFrontier(int edge_id) const;

  // Combined input frontier of a node: Min over its in-edges. A node with no
  // inputs reports Done.
  Frontier NodeInputFrontier(int node_id) const;

  // True when every count in the local view is zero: the computation is
  // complete (no messages in flight, no capabilities held anywhere).
  bool AllZero() const { return nonzero_entries_ == 0; }

 private:
  const Topology* topo_;
  // Per location: epoch -> net count. Entries are erased when they cancel to
  // keep frontier scans proportional to genuinely outstanding epochs.
  std::vector<std::map<Epoch, int64_t>> counts_;
  size_t nonzero_entries_ = 0;
};

}  // namespace ts

#endif  // SRC_TIMELY_PROGRESS_H_
