// Typed dataflow operators.
//
// Each worker instantiates its own copy of every operator (Figure 3 of the
// paper); instances communicate only through exchange hubs (data) and broadcast
// progress batches (control). Operator state is purely worker-local (§4.2).
//
// The scheduling contract, mirroring Timely Dataflow:
//  * Work(): consume buffered input batches, invoke user logic, stage outputs,
//    and account the consumption (-1 per batch) and production (+1 per sent
//    batch) in the step's progress batch.
//  * DeliverNotifications(): fire notifications whose epoch the input frontier
//    has passed; handlers may produce output at the notified epoch because the
//    notificator retained a capability (+1 at request, -1 at delivery).
#ifndef SRC_TIMELY_OPERATOR_H_
#define SRC_TIMELY_OPERATOR_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/time_util.h"
#include "src/timely/frontier.h"
#include "src/timely/progress.h"
#include "src/timely/runtime.h"

namespace ts {

// Placeholder output type for sinks.
struct Unit {};

// Where an operator's output goes: one target per outgoing dataflow edge.
template <typename T>
struct OutputTarget {
  ExchangeHub<T>* hub = nullptr;
  int edge_id = -1;
  int msg_loc = -1;
  // Non-null for Exchange PACT edges: routes a record to hash(record) % workers.
  // Null for pipeline edges: records stay on the producing worker.
  std::function<uint64_t(const T&)> router;
};

// Per-operator staging of produced records, flushed once per scheduling quantum.
template <typename T>
class OutputSession {
 public:
  OutputSession(size_t self, size_t workers, RuntimeCounters* counters)
      : self_(self), workers_(workers), counters_(counters) {}

  void AddTarget(OutputTarget<T> target) { targets_.push_back(std::move(target)); }
  size_t num_targets() const { return targets_.size(); }

  // Emits one record at epoch `epoch`.
  void Give(Epoch epoch, T value) {
    if (targets_.empty()) {
      return;
    }
    StagedEpoch& staged = StagingFor(epoch);
    for (size_t t = 0; t + 1 < targets_.size(); ++t) {
      Route(staged, t, value);  // Copy for all but the final target.
    }
    RouteMove(staged, targets_.size() - 1, std::move(value));
  }

  // Emits a whole vector at one epoch; avoids per-record routing when the sole
  // target is a pipeline edge.
  void GiveVec(Epoch epoch, std::vector<T> values) {
    if (targets_.empty()) {
      return;
    }
    if (targets_.size() == 1 && !targets_[0].router) {
      StagedEpoch& staged = StagingFor(epoch);
      auto& dst = staged.per_target[0].per_dst[0];
      if (dst.empty()) {
        dst = std::move(values);
      } else {
        dst.insert(dst.end(), std::make_move_iterator(values.begin()),
                   std::make_move_iterator(values.end()));
      }
      return;
    }
    for (auto& v : values) {
      Give(epoch, std::move(v));
    }
  }

  // Moves all staged batches into the hubs, accounting one +1 per sent batch.
  void Flush(ProgressBatch& deltas) {
    for (auto& [epoch, staged] : staging_) {
      for (size_t t = 0; t < targets_.size(); ++t) {
        auto& per_dst = staged.per_target[t].per_dst;
        for (size_t d = 0; d < per_dst.size(); ++d) {
          if (per_dst[d].empty()) {
            continue;
          }
          const size_t dst_worker = targets_[t].router ? d : self_;
          const size_t n = per_dst[d].size();
          targets_[t].hub->Send(dst_worker, epoch, std::move(per_dst[d]));
          deltas.Add(targets_[t].msg_loc, epoch, +1);
          counters_->data_batches.fetch_add(1, std::memory_order_relaxed);
          if (targets_[t].router) {
            counters_->records_exchanged.fetch_add(n, std::memory_order_relaxed);
          }
        }
      }
    }
    staging_.clear();
  }

 private:
  struct StagedTarget {
    std::vector<std::vector<T>> per_dst;  // Size workers (routed) or 1 (pipeline).
  };
  struct StagedEpoch {
    std::vector<StagedTarget> per_target;
  };

  StagedEpoch& StagingFor(Epoch epoch) {
    auto it = staging_.find(epoch);
    if (it == staging_.end()) {
      it = staging_.emplace(epoch, StagedEpoch{}).first;
      it->second.per_target.resize(targets_.size());
      for (size_t t = 0; t < targets_.size(); ++t) {
        it->second.per_target[t].per_dst.resize(targets_[t].router ? workers_ : 1);
      }
    }
    return it->second;
  }

  void Route(StagedEpoch& staged, size_t t, const T& value) {
    const size_t d = targets_[t].router ? targets_[t].router(value) % workers_ : 0;
    staged.per_target[t].per_dst[d].push_back(value);
  }
  void RouteMove(StagedEpoch& staged, size_t t, T&& value) {
    const size_t d = targets_[t].router ? targets_[t].router(value) % workers_ : 0;
    staged.per_target[t].per_dst[d].push_back(std::move(value));
  }

  const size_t self_;
  const size_t workers_;
  RuntimeCounters* counters_;
  std::vector<OutputTarget<T>> targets_;
  std::map<Epoch, StagedEpoch> staging_;
};

// Notification bookkeeping for one operator instance (§4.2 "control plane").
class NotificatorHandle {
 public:
  // Requests a notification once the input frontier passes `epoch`. Requests
  // are deduplicated; each distinct epoch retains one capability until fired.
  void NotifyAt(Epoch epoch) {
    if (pending_.insert(epoch).second) {
      newly_requested_.push_back(epoch);
    }
  }

  bool has_pending() const { return !pending_.empty(); }

  // Accounts capabilities for requests made since the last flush.
  void FlushRequests(int cap_loc, ProgressBatch& deltas) {
    for (Epoch e : newly_requested_) {
      deltas.Add(cap_loc, e, +1);
    }
    newly_requested_.clear();
  }

  // Fires every pending notification whose epoch the frontier has passed, in
  // epoch order. `fire(e)` runs user logic; the capability drop is accounted
  // afterwards so outputs produced by the handler remain justified.
  template <typename FireFn>
  bool Deliver(const Frontier& frontier, int cap_loc, ProgressBatch& deltas,
               FireFn&& fire) {
    bool fired = false;
    while (!pending_.empty() && frontier.Beyond(*pending_.begin())) {
      const Epoch e = *pending_.begin();
      pending_.erase(pending_.begin());
      fire(e);
      deltas.Add(cap_loc, e, -1);
      fired = true;
    }
    return fired;
  }

 private:
  std::set<Epoch> pending_;
  std::vector<Epoch> newly_requested_;
};

// Producers expose target registration so consumers can attach edges at graph
// construction time.
template <typename T>
class Producer {
 public:
  virtual ~Producer() = default;
  virtual void AddTarget(OutputTarget<T> target) = 0;
};

class OperatorBase {
 public:
  explicit OperatorBase(int node_id) : node_id_(node_id) {}
  virtual ~OperatorBase() = default;

  int node_id() const { return node_id_; }

  // Moves batches from exchange hubs into the operator's typed buffer.
  virtual bool Pump() { return false; }

  // Consumes buffered batches; stages and flushes outputs; accounts progress.
  virtual bool Work(ProgressBatch& deltas) {
    (void)deltas;
    return false;
  }

  // Fires ripe notifications given the operator's input frontier.
  virtual bool DeliverNotifications(const Frontier& frontier, ProgressBatch& deltas) {
    (void)frontier;
    (void)deltas;
    return false;
  }

 private:
  int node_id_;
};

// The generic single-input operator: sessionization, analytics, probes, and all
// functional wrappers (map / filter / flat_map / concat) are instances of this.
template <typename In, typename Out>
class UnaryOperator : public OperatorBase, public Producer<Out> {
 public:
  using DataFn =
      std::function<void(Epoch, std::vector<In>&, OutputSession<Out>&, NotificatorHandle&)>;
  using NotifyFn = std::function<void(Epoch, OutputSession<Out>&, NotificatorHandle&)>;

  UnaryOperator(int node_id, int cap_loc, size_t self, size_t workers,
                RuntimeCounters* counters, DataFn on_data, NotifyFn on_notify)
      : OperatorBase(node_id),
        cap_loc_(cap_loc),
        output_(self, workers, counters),
        self_(self),
        on_data_(std::move(on_data)),
        on_notify_(std::move(on_notify)) {}

  void AddTarget(OutputTarget<Out> target) override {
    output_.AddTarget(std::move(target));
  }

  // Registers an incoming edge (multiple allowed: concat merges streams).
  void AddInput(ExchangeHub<In>* hub, int msg_loc) {
    inputs_.push_back(InEdge{hub, msg_loc});
  }

  bool Pump() override {
    bool any = false;
    for (auto& in : inputs_) {
      drained_.clear();
      if (in.hub->Drain(self_, drained_)) {
        any = true;
        for (auto& b : drained_) {
          pending_.push_back(PendingBatch{in.msg_loc, std::move(b)});
        }
      }
    }
    return any;
  }

  bool Work(ProgressBatch& deltas) override {
    if (pending_.empty()) {
      return false;
    }
    // Deliver in epoch order: the paper's operators receive flat vectors grouped
    // by time (§4.2).
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const PendingBatch& a, const PendingBatch& b) {
                       return a.batch.epoch < b.batch.epoch;
                     });
    for (auto& p : pending_) {
      on_data_(p.batch.epoch, p.batch.data, output_, notificator_);
      deltas.Add(p.msg_loc, p.batch.epoch, -1);
    }
    pending_.clear();
    notificator_.FlushRequests(cap_loc_, deltas);
    output_.Flush(deltas);
    return true;
  }

  bool DeliverNotifications(const Frontier& frontier, ProgressBatch& deltas) override {
    if (!notificator_.has_pending()) {
      return false;
    }
    const bool fired = notificator_.Deliver(
        frontier, cap_loc_, deltas,
        [&](Epoch e) { on_notify_(e, output_, notificator_); });
    if (fired) {
      notificator_.FlushRequests(cap_loc_, deltas);
      output_.Flush(deltas);
    }
    return fired;
  }

 private:
  struct InEdge {
    ExchangeHub<In>* hub;
    int msg_loc;
  };
  struct PendingBatch {
    int msg_loc;
    Batch<In> batch;
  };

  const int cap_loc_;
  OutputSession<Out> output_;
  const size_t self_;
  DataFn on_data_;
  NotifyFn on_notify_;
  NotificatorHandle notificator_;
  std::vector<InEdge> inputs_;
  std::vector<Batch<In>> drained_;
  std::vector<PendingBatch> pending_;
};

// Source operator driven by an InputSession (§4.1 "give" / "advance_to").
template <typename T>
class InputOperator : public OperatorBase, public Producer<T> {
 public:
  InputOperator(int node_id, int cap_loc, size_t self, size_t workers,
                RuntimeCounters* counters)
      : OperatorBase(node_id), cap_loc_(cap_loc), output_(self, workers, counters) {}

  void AddTarget(OutputTarget<T> target) override {
    output_.AddTarget(std::move(target));
  }

  // --- Driver-facing interface (used via InputSession) -----------------------

  Epoch current_epoch() const { return epoch_; }
  bool closed() const { return closed_; }

  void Give(T value) {
    TS_CHECK_MSG(!closed_, "Give() after Close()");
    output_.Give(epoch_, std::move(value));
  }

  void GiveBatch(std::vector<T> values) {
    TS_CHECK_MSG(!closed_, "GiveBatch() after Close()");
    output_.GiveVec(epoch_, std::move(values));
  }

  // Issues the punctuation for every epoch < `epoch`: downstream notifications
  // for those epochs become deliverable once in-flight data drains.
  void AdvanceTo(Epoch epoch) {
    TS_CHECK_MSG(!closed_, "AdvanceTo() after Close()");
    TS_CHECK_MSG(epoch > epoch_, "epochs must advance strictly monotonically");
    staged_deltas_.Add(cap_loc_, epoch_, -1);
    staged_deltas_.Add(cap_loc_, epoch, +1);
    epoch_ = epoch;
  }

  void Close() {
    if (!closed_) {
      staged_deltas_.Add(cap_loc_, epoch_, -1);
      closed_ = true;
    }
  }

  // --- Scheduler-facing -------------------------------------------------------

  bool Work(ProgressBatch& deltas) override {
    // Flush data before capability moves: the +1s for sent batches must be
    // published in the same atomic batch as (or before) the capability drop,
    // otherwise a peer could observe the frontier advance past in-flight data.
    output_.Flush(deltas);
    const bool moved = !staged_deltas_.empty();
    deltas.Append(staged_deltas_);
    staged_deltas_.clear();
    return moved;
  }

 private:
  const int cap_loc_;
  OutputSession<T> output_;
  Epoch epoch_ = 0;
  bool closed_ = false;
  ProgressBatch staged_deltas_;
};

// Thin handle the driver uses to feed an input operator. Valid only on the
// worker thread that owns the operator.
template <typename T>
class InputSession {
 public:
  InputSession() = default;
  explicit InputSession(InputOperator<T>* op) : op_(op) {}

  void Give(T value) { op_->Give(std::move(value)); }
  void GiveBatch(std::vector<T> values) { op_->GiveBatch(std::move(values)); }
  void AdvanceTo(Epoch epoch) { op_->AdvanceTo(epoch); }
  void Close() { op_->Close(); }
  Epoch current_epoch() const { return op_->current_epoch(); }
  bool closed() const { return op_->closed(); }

 private:
  InputOperator<T>* op_ = nullptr;
};

}  // namespace ts

#endif  // SRC_TIMELY_OPERATOR_H_
