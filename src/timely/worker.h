// Per-worker execution state and the scheduling loop.
//
// A worker owns its copies of all operator instances, its progress tracker, the
// drivers that feed its inputs, and runs the event loop: drivers -> pump+work in
// topological order -> notifications -> progress broadcast/apply -> callbacks.
// Workers never block on one another during data exchange; the only cross-worker
// interaction is depositing batches in hubs and mailboxes (§3, §4.1).
#ifndef SRC_TIMELY_WORKER_H_
#define SRC_TIMELY_WORKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/timely/operator.h"
#include "src/timely/progress.h"
#include "src/timely/runtime.h"
#include "src/timely/topology.h"

namespace ts {

// What a driver accomplished in one scheduling quantum.
enum class DriverStatus {
  kIdle = 0,      // Nothing to do right now (e.g. pacing real-time replay).
  kWorked = 1,    // Fed data or advanced the input.
  kFinished = 2,  // Input exhausted and closed; do not call again.
};

struct WorkerStats {
  size_t index = 0;
  uint64_t steps = 0;
  int64_t cpu_ns = 0;  // Thread CPU time spent inside Run().
};

class WorkerGraph {
 public:
  WorkerGraph(size_t index, SharedRuntime* runtime)
      : index_(index), runtime_(runtime) {}

  size_t index() const { return index_; }
  size_t workers() const { return runtime_->workers(); }
  SharedRuntime* runtime() { return runtime_; }
  Topology& topo() { return topo_; }
  const ProgressTracker& tracker() const { return *tracker_; }

  // Registers the operator instance for `node_id`. Node ids are dense and
  // assigned in construction order, which is a topological order.
  void SetOperator(int node_id, std::unique_ptr<OperatorBase> op);

  // Registers a driver that feeds an input each scheduling quantum.
  void AddDriver(std::function<DriverStatus()> driver) {
    drivers_.push_back({std::move(driver), true});
  }

  // Runs after every scheduling step, on the worker thread. Benches use this
  // for probes and per-epoch latency bookkeeping.
  void AddStepCallback(std::function<void()> callback) {
    step_callbacks_.push_back(std::move(callback));
  }

  // Freezes the topology, computes reachability, and initializes progress
  // counts (each worker's input instances hold a capability at epoch 0).
  void Finalize();

  // Executes the scheduling loop until all drivers finish and the local view
  // of global progress reaches zero. Must be called exactly once.
  void Run(WorkerStats* stats);

 private:
  const size_t index_;
  SharedRuntime* runtime_;
  Topology topo_;
  std::vector<std::unique_ptr<OperatorBase>> ops_;
  struct Driver {
    std::function<DriverStatus()> fn;
    bool active;
  };
  std::vector<Driver> drivers_;
  std::vector<std::function<void()>> step_callbacks_;
  std::unique_ptr<ProgressTracker> tracker_;
  bool finalized_ = false;
};

}  // namespace ts

#endif  // SRC_TIMELY_WORKER_H_
