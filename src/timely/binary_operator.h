// Two-input dataflow operator ("there is also a generic construct for unary-
// and binary-shaped operators", §3). Unlike Concat, the inputs may have
// different record types; the canonical use is a keyed join/enrichment where
// both inputs are exchanged by the same key so matching records meet on the
// same worker.
#ifndef SRC_TIMELY_BINARY_OPERATOR_H_
#define SRC_TIMELY_BINARY_OPERATOR_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "src/timely/operator.h"
#include "src/timely/scope.h"

namespace ts {

template <typename In1, typename In2, typename Out>
class BinaryOperator : public OperatorBase, public Producer<Out> {
 public:
  using Data1Fn =
      std::function<void(Epoch, std::vector<In1>&, OutputSession<Out>&, NotificatorHandle&)>;
  using Data2Fn =
      std::function<void(Epoch, std::vector<In2>&, OutputSession<Out>&, NotificatorHandle&)>;
  using NotifyFn = std::function<void(Epoch, OutputSession<Out>&, NotificatorHandle&)>;

  BinaryOperator(int node_id, int cap_loc, size_t self, size_t workers,
                 RuntimeCounters* counters, Data1Fn on_data1, Data2Fn on_data2,
                 NotifyFn on_notify)
      : OperatorBase(node_id),
        cap_loc_(cap_loc),
        output_(self, workers, counters),
        self_(self),
        on_data1_(std::move(on_data1)),
        on_data2_(std::move(on_data2)),
        on_notify_(std::move(on_notify)) {}

  void AddTarget(OutputTarget<Out> target) override {
    output_.AddTarget(std::move(target));
  }
  void AddInput1(ExchangeHub<In1>* hub, int msg_loc) {
    in1_ = InEdge1{hub, msg_loc};
  }
  void AddInput2(ExchangeHub<In2>* hub, int msg_loc) {
    in2_ = InEdge2{hub, msg_loc};
  }

  bool Pump() override {
    bool any = false;
    drained1_.clear();
    if (in1_.hub->Drain(self_, drained1_)) {
      any = true;
      for (auto& b : drained1_) {
        pending1_.push_back(std::move(b));
      }
    }
    drained2_.clear();
    if (in2_.hub->Drain(self_, drained2_)) {
      any = true;
      for (auto& b : drained2_) {
        pending2_.push_back(std::move(b));
      }
    }
    return any;
  }

  bool Work(ProgressBatch& deltas) override {
    if (pending1_.empty() && pending2_.empty()) {
      return false;
    }
    // Deliver each input's batches in epoch order; input 1 before input 2 per
    // epoch (a deterministic convention the join logic can rely on).
    auto by_epoch = [](const auto& a, const auto& b) { return a.epoch < b.epoch; };
    std::stable_sort(pending1_.begin(), pending1_.end(), by_epoch);
    std::stable_sort(pending2_.begin(), pending2_.end(), by_epoch);
    for (auto& b : pending1_) {
      on_data1_(b.epoch, b.data, output_, notificator_);
      deltas.Add(in1_.msg_loc, b.epoch, -1);
    }
    for (auto& b : pending2_) {
      on_data2_(b.epoch, b.data, output_, notificator_);
      deltas.Add(in2_.msg_loc, b.epoch, -1);
    }
    pending1_.clear();
    pending2_.clear();
    notificator_.FlushRequests(cap_loc_, deltas);
    output_.Flush(deltas);
    return true;
  }

  bool DeliverNotifications(const Frontier& frontier, ProgressBatch& deltas) override {
    if (!notificator_.has_pending()) {
      return false;
    }
    const bool fired = notificator_.Deliver(
        frontier, cap_loc_, deltas,
        [&](Epoch e) { on_notify_(e, output_, notificator_); });
    if (fired) {
      notificator_.FlushRequests(cap_loc_, deltas);
      output_.Flush(deltas);
    }
    return fired;
  }

 private:
  struct InEdge1 {
    ExchangeHub<In1>* hub = nullptr;
    int msg_loc = -1;
  };
  struct InEdge2 {
    ExchangeHub<In2>* hub = nullptr;
    int msg_loc = -1;
  };

  const int cap_loc_;
  OutputSession<Out> output_;
  const size_t self_;
  Data1Fn on_data1_;
  Data2Fn on_data2_;
  NotifyFn on_notify_;
  NotificatorHandle notificator_;
  InEdge1 in1_;
  InEdge2 in2_;
  std::vector<Batch<In1>> drained1_;
  std::vector<Batch<In2>> drained2_;
  std::vector<Batch<In1>> pending1_;
  std::vector<Batch<In2>> pending2_;
};

// Factory: builds a binary operator consuming `a` and `b`.
template <typename In1, typename In2, typename Out>
Stream<Out> Binary(Scope& scope, const Stream<In1>& a, Partition<In1> partition_a,
                   const Stream<In2>& b, Partition<In2> partition_b,
                   const std::string& name,
                   typename BinaryOperator<In1, In2, Out>::Data1Fn on_data1,
                   typename BinaryOperator<In1, In2, Out>::Data2Fn on_data2,
                   typename BinaryOperator<In1, In2, Out>::NotifyFn on_notify) {
  WorkerGraph* graph = scope.graph();
  Topology& topo = graph->topo();
  const int node = topo.AddNode(name, /*is_input=*/false);
  auto op = std::make_unique<BinaryOperator<In1, In2, Out>>(
      node, topo.nodes()[node].cap_loc, graph->index(), graph->workers(),
      &graph->runtime()->counters(), std::move(on_data1), std::move(on_data2),
      std::move(on_notify));

  const int edge_a = topo.AddEdge(a.node, node, partition_a.exchanged());
  auto* hub_a = graph->runtime()->template Hub<In1>(edge_a);
  a.producer->AddTarget(OutputTarget<In1>{hub_a, edge_a,
                                          topo.edges()[edge_a].msg_loc,
                                          std::move(partition_a.hash)});
  op->AddInput1(hub_a, topo.edges()[edge_a].msg_loc);

  const int edge_b = topo.AddEdge(b.node, node, partition_b.exchanged());
  auto* hub_b = graph->runtime()->template Hub<In2>(edge_b);
  b.producer->AddTarget(OutputTarget<In2>{hub_b, edge_b,
                                          topo.edges()[edge_b].msg_loc,
                                          std::move(partition_b.hash)});
  op->AddInput2(hub_b, topo.edges()[edge_b].msg_loc);

  Stream<Out> out{node, op.get()};
  graph->SetOperator(node, std::move(op));
  return out;
}

}  // namespace ts

#endif  // SRC_TIMELY_BINARY_OPERATOR_H_
