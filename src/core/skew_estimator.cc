#include "src/core/skew_estimator.h"

#include <algorithm>
#include <queue>
#include <set>

namespace ts {

void ClockSkewEstimator::ObservePair(uint32_t parent_host, uint32_t child_host,
                                     int64_t delta_ns) {
  if (parent_host == child_host) {
    return;  // Same clock: no information about relative offsets.
  }
  ++observations_;
  auto [it, inserted] = pair_min_.emplace(std::make_pair(parent_host, child_host),
                                          PairStats{delta_ns, 1});
  if (!inserted) {
    it->second.min_delta = std::min(it->second.min_delta, delta_ns);
    ++it->second.count;
  }
}

void ClockSkewEstimator::ObserveTree(const TraceTree& tree) {
  // Use tightly matched event pairs so the latency floor is small and similar
  // in both directions (which is what makes the bidirectional cancellation
  // work): the parent's start is immediately followed by its *first* child's
  // start, and the *last* child's end is immediately followed by the parent's
  // end. A middle child's delta would include entire earlier-sibling subtrees
  // and carry an unbounded floor.
  for (const auto& node : tree.nodes()) {
    if (node.inferred || node.children.empty()) {
      continue;
    }
    const auto& first = tree.nodes()[node.children.front()];
    if (!first.inferred) {
      ObservePair(node.host, first.host, first.start - node.start);
    }
    // Note: the symmetric "last child's end -> parent's end" pair is NOT used.
    // A span's end is only a lower bound on when it ended (its END record may
    // be lost or truncated at a trace boundary), so that delta can come out
    // far below the true offset difference and a single such sample poisons
    // the per-pair minimum. Start-anchored pairs only ever err upward.
    // Adjacent siblings are also emitted back to back: the next sibling's
    // start follows the previous sibling's end within a few log gaps.
    for (size_t c = 1; c < node.children.size(); ++c) {
      const auto& prev = tree.nodes()[node.children[c - 1]];
      const auto& next = tree.nodes()[node.children[c]];
      if (!prev.inferred && !next.inferred) {
        ObservePair(prev.host, next.host, next.start - prev.end);
      }
    }
  }
}

std::unordered_map<uint32_t, int64_t> ClockSkewEstimator::EstimateOffsets() const {
  // Combine directed pair minima into undirected edge estimates. With both
  // directions the min-latency bias cancels; with one direction, the estimate
  // keeps the (positive) bias and gets a low weight so spanning-tree
  // propagation prefers better edges.
  struct EdgeEstimate {
    uint32_t a, b;
    int64_t offset_b_minus_a;
    uint64_t weight;
    bool bidirectional;  // Latency bias cancelled; trustworthy for refinement.
  };
  std::map<std::pair<uint32_t, uint32_t>, EdgeEstimate> edges;
  std::set<uint32_t> hosts;
  for (const auto& [pair, stats] : pair_min_) {
    hosts.insert(pair.first);
    hosts.insert(pair.second);
    const auto key = pair.first < pair.second
                         ? pair
                         : std::make_pair(pair.second, pair.first);
    if (edges.count(key)) {
      continue;  // Handled when we saw the first direction.
    }
    auto reverse = pair_min_.find({pair.second, pair.first});
    EdgeEstimate e;
    e.a = key.first;
    e.b = key.second;
    if (reverse != pair_min_.end()) {
      // min(a->b) = L + (o_b - o_a); min(b->a) = L' + (o_a - o_b).
      // Half the difference cancels the (assumed comparable) latency floors.
      const auto& fwd = pair.first == key.first ? stats : reverse->second;
      const auto& bwd = pair.first == key.first ? reverse->second : stats;
      e.offset_b_minus_a = (fwd.min_delta - bwd.min_delta) / 2;
      e.weight = std::min(fwd.count, bwd.count) * 2;
      e.bidirectional = true;
    } else {
      // One direction only: the estimate retains the full (positive) latency
      // floor as bias. Keep it for connectivity, at the lowest weight, and
      // exclude it from the least-squares refinement.
      const bool forward = pair.first == key.first;
      e.offset_b_minus_a = forward ? stats.min_delta : -stats.min_delta;
      e.weight = 1;
      e.bidirectional = false;
    }
    edges.emplace(key, e);
  }

  // Adjacency with per-edge weights.
  std::map<uint32_t, std::vector<const EdgeEstimate*>> adjacency;
  for (const auto& [key, e] : edges) {
    adjacency[e.a].push_back(&e);
    adjacency[e.b].push_back(&e);
  }

  // Maximum-observation spanning forest (Prim): reach each host through the
  // most-sampled chain of edges.
  std::unordered_map<uint32_t, int64_t> offsets;
  struct Frontier {
    uint64_t weight;
    uint32_t host;
    int64_t offset;
    bool operator<(const Frontier& other) const { return weight < other.weight; }
  };
  std::unordered_map<uint32_t, uint32_t> component;  // host -> anchor.
  for (uint32_t root : hosts) {
    if (offsets.count(root)) {
      continue;
    }
    std::priority_queue<Frontier> queue;
    queue.push({~uint64_t{0}, root, 0});
    while (!queue.empty()) {
      const Frontier f = queue.top();
      queue.pop();
      if (offsets.count(f.host)) {
        continue;
      }
      offsets[f.host] = f.offset;
      component[f.host] = root;
      for (const EdgeEstimate* e : adjacency[f.host]) {
        const uint32_t next = e->a == f.host ? e->b : e->a;
        if (offsets.count(next)) {
          continue;
        }
        const int64_t next_offset =
            e->a == f.host ? f.offset + e->offset_b_minus_a
                           : f.offset - e->offset_b_minus_a;
        queue.push({e->weight, next, next_offset});
      }
    }
  }

  // Weighted least-squares refinement: the spanning forest uses one edge per
  // host and concentrates per-edge noise along paths; Gauss-Seidel sweeps over
  // *all* edges solve min sum_e w_e (o_b - o_a - est_e)^2, averaging the noise
  // out. The gauge is re-pinned to each component's anchor after every sweep.
  for (int sweep = 0; sweep < 30; ++sweep) {
    for (uint32_t host : hosts) {
      double num = 0;
      double den = 0;
      for (const EdgeEstimate* e : adjacency[host]) {
        if (!e->bidirectional) {
          continue;  // Biased estimate: connectivity only.
        }
        const double w = static_cast<double>(e->weight);
        if (e->a == host) {
          num += w * static_cast<double>(offsets[e->b] - e->offset_b_minus_a);
        } else {
          num += w * static_cast<double>(offsets[e->a] + e->offset_b_minus_a);
        }
        den += w;
      }
      if (den > 0) {
        offsets[host] = static_cast<int64_t>(num / den);
      }
    }
    // Re-anchor each component at its root.
    std::unordered_map<uint32_t, int64_t> anchor_offset;
    for (const auto& [host, root] : component) {
      if (host == root) {
        anchor_offset[root] = offsets[host];
      }
    }
    for (auto& [host, offset] : offsets) {
      offset -= anchor_offset[component[host]];
    }
  }
  return offsets;
}

void ClockSkewEstimator::CorrectRecord(
    const std::unordered_map<uint32_t, int64_t>& offsets, LogRecord* record) {
  auto it = offsets.find(record->host);
  if (it != offsets.end()) {
    record->time -= it->second;
  }
}

}  // namespace ts
