// Sessionization as a data-parallel windowed group-by operator (§4.2).
//
// Records are shuffled by SipHash-2-4 of the session ID (Exchange PACT), then
// grouped per worker into in-flight sessions. A session is flushed once a fixed
// number of epochs elapse with no intervening activity ("flush on inactivity",
// §3): every emission is notification-driven — timeout is the norm, not the
// exception.
//
// Worker-local state mirrors the paper's three indexed collections:
//   (i)  messages organized by time      -> per-session record vectors tagged
//        with first/last activity epochs,
//   (ii) in-flight sessions              -> `sessions` hash map,
//   (iii) session IDs that may have expired by an epoch -> `expiry_candidates`.
#ifndef SRC_CORE_SESSIONIZE_H_
#define SRC_CORE_SESSIONIZE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/log/record.h"
#include "src/timely/scope.h"

namespace ts {

struct SessionizeOptions {
  // Number of epochs that must elapse without activity before a session is
  // declared closed. With 1-second epochs, 5 means "5 seconds idle".
  Epoch inactivity_epochs = 5;

  // When true, the operator remembers flushed session IDs so that a renewed
  // session is emitted with an incremented fragment_index (used to study online
  // fragmentation, §2.2). Costs memory proportional to distinct flushed IDs;
  // disabled for long-running production pipelines.
  bool track_fragments = false;
};

// Per-worker metrics exposed for tests and benches. The shared_ptr returned by
// Sessionize keeps them alive past the computation.
struct SessionizeMetrics {
  uint64_t records_in = 0;
  uint64_t sessions_out = 0;
  uint64_t fragments_out = 0;  // Emissions with fragment_index > 0.
  size_t peak_inflight_sessions = 0;
  size_t peak_state_bytes = 0;
};

namespace sessionize_internal {

struct SessionState {
  std::vector<LogRecord> records;
  Epoch first_epoch = 0;
  Epoch last_epoch = 0;
  uint32_t fragment_index = 0;
  size_t bytes = 0;
};

struct WorkerState {
  // Collection (i): messages organized by time. Data may race ahead of
  // notifications (several epochs can be in flight concurrently), so records
  // are staged per epoch and merged into session state strictly in epoch
  // order, when the epoch's notification fires. Without this staging, a
  // fast-arriving future record would spuriously extend a session that the
  // inactivity rule should have closed.
  std::map<Epoch, std::vector<LogRecord>> pending_by_epoch;
  // Collection (ii): sessions currently in flight.
  std::unordered_map<std::string, SessionState> sessions;
  // Collection (iii): expiration candidates. A session touched at epoch e
  // becomes a candidate at e + inactivity (registered at most once per touched
  // epoch). A candidate whose session saw later activity is ignored; the later
  // candidate covers it.
  std::map<Epoch, std::vector<std::string>> expiry_candidates;
  // Only populated when track_fragments is set.
  std::unordered_map<std::string, uint32_t> flushed_counts;
  size_t state_bytes = 0;
  SessionizeMetrics metrics;
};

}  // namespace sessionize_internal

// Builds the sessionization stage on `scope`: exchange by session hash followed
// by the stateful window operator. Returns the session stream and this worker's
// metrics handle.
inline std::pair<Stream<Session>, std::shared_ptr<SessionizeMetrics>> Sessionize(
    Scope& scope, const Stream<LogRecord>& records, const SessionizeOptions& options) {
  using sessionize_internal::SessionState;
  using sessionize_internal::WorkerState;

  auto state = std::make_shared<WorkerState>();
  auto metrics = std::make_shared<SessionizeMetrics>();
  const Epoch delay = options.inactivity_epochs;
  const bool track_fragments = options.track_fragments;

  auto sessions = scope.Unary<LogRecord, Session>(
      records,
      Partition<LogRecord>::ByKey(
          [](const LogRecord& r) { return SessionHash(r.session_id); }),
      "sessionize",
      // Data plane: stage records by epoch; merging happens in epoch order on
      // notifications so late-arriving future epochs cannot leak into windows
      // the inactivity rule already closed.
      [state](Epoch epoch, std::vector<LogRecord>& data, OutputSession<Session>&,
              NotificatorHandle& notificator) {
        if (data.empty()) {
          return;
        }
        state->metrics.records_in += data.size();
        auto& staged = state->pending_by_epoch[epoch];
        for (auto& r : data) {
          state->state_bytes += r.MemoryFootprint();
          staged.push_back(std::move(r));
        }
        notificator.NotifyAt(epoch);
      },
      // Control plane, invoked in strict epoch order: (1) merge the epoch's
      // staged records into session windows, (2) flush sessions whose
      // inactivity window elapsed at this epoch.
      [state, delay, metrics, track_fragments](Epoch epoch, OutputSession<Session>& out,
                                               NotificatorHandle& notificator) {
        auto staged = state->pending_by_epoch.find(epoch);
        if (staged != state->pending_by_epoch.end()) {
          for (auto& r : staged->second) {
            auto [it, inserted] = state->sessions.try_emplace(r.session_id);
            SessionState& s = it->second;
            const bool first_touch_this_epoch = inserted || s.last_epoch != epoch;
            if (inserted) {
              s.first_epoch = epoch;
              state->state_bytes += r.session_id.capacity() + sizeof(SessionState);
              if (track_fragments) {
                auto flushed = state->flushed_counts.find(it->first);
                if (flushed != state->flushed_counts.end()) {
                  s.fragment_index = flushed->second;
                }
              }
            }
            s.last_epoch = epoch;
            s.bytes += r.MemoryFootprint();
            s.records.push_back(std::move(r));
            if (first_touch_this_epoch) {
              state->expiry_candidates[epoch + delay].push_back(it->first);
              notificator.NotifyAt(epoch + delay);
            }
          }
          state->pending_by_epoch.erase(staged);
          state->metrics.peak_inflight_sessions = std::max(
              state->metrics.peak_inflight_sessions, state->sessions.size());
          state->metrics.peak_state_bytes =
              std::max(state->metrics.peak_state_bytes, state->state_bytes);
        }
        auto candidates = state->expiry_candidates.find(epoch);
        if (candidates != state->expiry_candidates.end()) {
          for (auto& id : candidates->second) {
            auto it = state->sessions.find(id);
            if (it == state->sessions.end()) {
              continue;  // Already flushed via an earlier candidate entry.
            }
            SessionState& s = it->second;
            if (s.last_epoch + delay > epoch) {
              continue;  // Renewed activity; a later candidate covers it.
            }
            Session session;
            session.id = it->first;
            session.records = std::move(s.records);
            session.first_epoch = s.first_epoch;
            session.last_epoch = s.last_epoch;
            session.closed_at = epoch;
            session.fragment_index = s.fragment_index;
            state->state_bytes -=
                s.bytes + session.id.capacity() + sizeof(SessionState);
            ++state->metrics.sessions_out;
            if (session.fragment_index > 0) {
              ++state->metrics.fragments_out;
            }
            if (track_fragments) {
              state->flushed_counts[session.id] = session.fragment_index + 1;
            }
            state->sessions.erase(it);
            out.Give(epoch, std::move(session));
          }
          state->expiry_candidates.erase(candidates);
        }
        // Publish the metrics snapshot for this worker.
        *metrics = state->metrics;
      });
  return {sessions, metrics};
}

}  // namespace ts

#endif  // SRC_CORE_SESSIONIZE_H_
