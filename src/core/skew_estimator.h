// Clock-skew estimation from trace structure (§2.3 extension).
//
// The paper observes that clock desynchronization makes "parent transactions
// start after their children" and defers correction to future work, pointing
// at offline trace-synchronization protocols (Poirier et al.). This module
// implements the natural estimator those protocols use, applied to trace
// trees: a child span is caused by its parent, so in true time
// child.start >= parent.start + (send latency >= 0). The observed difference
//
//     d = child.start_observed - parent.start_observed
//       = (true gap >= 0) + offset(child.host) - offset(parent.host)
//
// lower-bounds the relative offset; the minimum over many observations of the
// same host pair converges to offset(child) - offset(parent) + min-latency.
// When both directions of a pair are observed (common in service graphs), the
// min-latency bias cancels: (min_ab - min_ba) / 2 estimates the offset delta
// directly — the trick Poirier et al.'s offline synchronization uses. Per-host
// offsets follow by anchoring one host per component and propagating pairwise
// estimates along a maximum-observation spanning forest (heavily observed
// pairs have the tightest minima).
#ifndef SRC_CORE_SKEW_ESTIMATOR_H_
#define SRC_CORE_SKEW_ESTIMATOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "src/core/trace_tree.h"
#include "src/log/record.h"

namespace ts {

class ClockSkewEstimator {
 public:
  // Feeds every cross-host parent->child span-start pair of the tree into the
  // pairwise minima.
  void ObserveTree(const TraceTree& tree);

  // Observes one explicit (parent host, child host, start delta) sample.
  void ObservePair(uint32_t parent_host, uint32_t child_host, int64_t delta_ns);

  // Estimated offset per host, anchored so the reference host (the first host
  // reached; lowest id among observed) has offset 0. Hosts disconnected from
  // the anchor's constraint graph are reported relative to the lowest host id
  // of their own component.
  std::unordered_map<uint32_t, int64_t> EstimateOffsets() const;

  // Applies the estimate: subtracts the host's offset from the record time.
  // Requires `offsets` from EstimateOffsets().
  static void CorrectRecord(const std::unordered_map<uint32_t, int64_t>& offsets,
                            LogRecord* record);

  size_t observed_pairs() const { return pair_min_.size(); }
  uint64_t observations() const { return observations_; }

 private:
  struct PairStats {
    int64_t min_delta = 0;
    uint64_t count = 0;
  };
  // (parent_host, child_host) -> min observed start delta and sample count.
  std::map<std::pair<uint32_t, uint32_t>, PairStats> pair_min_;
  uint64_t observations_ = 0;
};

}  // namespace ts

#endif  // SRC_CORE_SKEW_ESTIMATOR_H_
