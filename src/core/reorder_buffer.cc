#include "src/core/reorder_buffer.h"

#include <algorithm>

#include "src/common/status.h"

namespace ts {

ReorderBuffer::ReorderBuffer(const Config& config) : config_(config) {
  TS_CHECK(config_.slack_ns > 0);
  TS_CHECK(config_.slot_width_ns > 0);
  // The active window spans at most slack + one slot beyond the watermark, so
  // slack/width + 2 slots guarantee a flushed slot is never re-filled before
  // its time range is fully released.
  const size_t n =
      static_cast<size_t>((config_.slack_ns + config_.slot_width_ns - 1) /
                          config_.slot_width_ns) +
      2;
  slots_.resize(n);
}

void ReorderBuffer::FlushSlot(size_t idx, std::vector<LogRecord>* out) {
  auto& slot = slots_[idx];
  if (slot.empty()) {
    return;
  }
  std::stable_sort(slot.begin(), slot.end(),
                   [](const LogRecord& a, const LogRecord& b) { return a.time < b.time; });
  stats_.emitted += slot.size();
  buffered_records_ -= slot.size();
  for (auto& r : slot) {
    buffered_bytes_ -= r.MemoryFootprint();
    out->push_back(std::move(r));
  }
  slot.clear();
}

void ReorderBuffer::AdvanceWatermark(EventTime new_least, std::vector<LogRecord>* out) {
  const EventTime w = config_.slot_width_ns;
  const EventTime target = (new_least / w) * w;
  while (least_ < target) {
    FlushSlot(SlotIndex(least_), out);
    least_ += w;
  }
}

void ReorderBuffer::Push(LogRecord record, std::vector<LogRecord>* out) {
  const EventTime t = record.time;
  if (t < 0) {
    // Producer clock skew can yield (rare) negative timestamps relative to the
    // trace origin; treat them as excessively late rather than complicating
    // the ring arithmetic with negative slots.
    ++stats_.discarded_late;
    return;
  }
  if (!saw_any_) {
    saw_any_ = true;
    // The watermark starts a full slack interval below the first record, so
    // slightly-older records arriving shortly after are still accepted.
    const EventTime floor_t = t > config_.slack_ns ? t - config_.slack_ns : 0;
    least_ = (floor_t / config_.slot_width_ns) * config_.slot_width_ns;
  }
  if (t < least_) {
    ++stats_.discarded_late;
    return;
  }
  if (t - least_ > config_.slack_ns) {
    AdvanceWatermark(t - config_.slack_ns, out);
  }
  ++stats_.accepted;
  buffered_bytes_ += record.MemoryFootprint();
  ++buffered_records_;
  slots_[SlotIndex(t)].push_back(std::move(record));
}

void ReorderBuffer::FlushUpTo(EventTime up_to, std::vector<LogRecord>* out) {
  if (!saw_any_) {
    least_ = (up_to / config_.slot_width_ns) * config_.slot_width_ns;
    saw_any_ = true;
    return;
  }
  if (up_to > least_) {
    AdvanceWatermark(up_to, out);
  }
}

void ReorderBuffer::FlushAll(std::vector<LogRecord>* out) {
  if (!saw_any_) {
    return;
  }
  const EventTime w = config_.slot_width_ns;
  for (size_t i = 0; i < slots_.size(); ++i) {
    FlushSlot(SlotIndex(least_), out);
    least_ += w;
  }
}

}  // namespace ts
