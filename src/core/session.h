// Reconstructed user sessions: the output of sessionization.
#ifndef SRC_CORE_SESSION_H_
#define SRC_CORE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

// All log records observed for one session ID between two quiet periods. With
// online sessionization a logical user session may be emitted as multiple
// Session fragments if it goes idle longer than the inactivity delay and later
// resumes (§2.2); `fragment_index` numbers the fragments a worker emitted for
// the same ID.
struct Session {
  std::string id;
  std::vector<LogRecord> records;  // In arrival (epoch) order.
  Epoch first_epoch = 0;           // Epoch of the earliest contributing record.
  Epoch last_epoch = 0;            // Epoch of the latest contributing record.
  Epoch closed_at = 0;             // Epoch whose notification flushed the session.
  uint32_t fragment_index = 0;

  EventTime MinTime() const {
    EventTime t = records.empty() ? 0 : records.front().time;
    for (const auto& r : records) {
      t = t < r.time ? t : r.time;
    }
    return t;
  }
  EventTime MaxTime() const {
    EventTime t = records.empty() ? 0 : records.front().time;
    for (const auto& r : records) {
      t = t > r.time ? t : r.time;
    }
    return t;
  }
  EventTime Duration() const { return records.empty() ? 0 : MaxTime() - MinTime(); }

  size_t MemoryFootprint() const {
    size_t bytes = sizeof(Session) + id.capacity();
    for (const auto& r : records) {
      bytes += r.MemoryFootprint();
    }
    return bytes;
  }
};

}  // namespace ts

#endif  // SRC_CORE_SESSION_H_
