#include "src/core/live_closer.h"

#include <algorithm>
#include <utility>

namespace ts {

void LiveCloser::Feed(LogRecord record, std::vector<Session>* closed) {
  ObserveWatermark(record.time);
  auto [it, inserted] = open_.try_emplace(record.session_id);
  Open& open = it->second;
  if (!inserted && !open.records.empty() &&
      open.last_time + inactivity_ns_ <= watermark_) {
    // The open fragment expired before this record arrived: emit it and start
    // the next fragment. Doing this here, at record granularity, is what keeps
    // fragment boundaries independent of CloseExpired cadence and shard count.
    Emit(it->first, std::move(open), closed);
    open = Open{};
  }
  open.last_time = std::max(open.last_time, record.time);
  open_bytes_ += record.MemoryFootprint();
  ++open_records_;
  open.records.push_back(std::move(record));
}

void LiveCloser::CloseExpired(std::vector<Session>* closed) {
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_time + inactivity_ns_ <= watermark_) {
      Emit(it->first, std::move(it->second), closed);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void LiveCloser::FlushAll(std::vector<Session>* closed) {
  for (auto& [id, open] : open_) {
    Emit(id, std::move(open), closed);
  }
  open_.clear();
}

void LiveCloser::ExportState(LiveCloserState* state) const {
  state->open.reserve(state->open.size() + open_.size());
  for (const auto& [id, open] : open_) {
    LiveCloserState::OpenFragment fragment;
    fragment.id = id;
    fragment.last_time = open.last_time;
    fragment.records = open.records;
    state->open.push_back(std::move(fragment));
  }
  ExportCounters(state);
}

void LiveCloser::VisitOpenFragments(const OpenFragmentVisitor& fn) const {
  for (const auto& [id, open] : open_) {
    fn(id, open.last_time, open.records);
  }
}

void LiveCloser::ExportCounters(LiveCloserState* state) const {
  state->next_fragment.reserve(state->next_fragment.size() +
                               next_fragment_.size());
  for (const auto& [id, next] : next_fragment_) {
    state->next_fragment.emplace_back(id, next);
  }
}

void LiveCloser::ImportFragment(LiveCloserState::OpenFragment fragment) {
  Open& open = open_[fragment.id];
  for (const auto& r : open.records) {
    const size_t bytes = r.MemoryFootprint();
    open_bytes_ = bytes >= open_bytes_ ? 0 : open_bytes_ - bytes;
  }
  open_records_ -= std::min<uint64_t>(open_records_, open.records.size());
  open.last_time = fragment.last_time;
  open.records = std::move(fragment.records);
  for (const auto& r : open.records) {
    open_bytes_ += r.MemoryFootprint();
  }
  open_records_ += open.records.size();
}

size_t LiveCloser::ShedOldestUntil(size_t max_open_bytes) {
  if (open_bytes_ <= max_open_bytes) {
    return 0;
  }
  // Deterministic shed order: oldest last_time first, id as tie-break.
  std::vector<std::pair<EventTime, const std::string*>> order;
  order.reserve(open_.size());
  for (const auto& [id, open] : open_) {
    order.emplace_back(open.last_time, &id);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : *a.second < *b.second;
            });
  size_t shed = 0;
  for (const auto& [last_time, id] : order) {
    if (open_bytes_ <= max_open_bytes) {
      break;
    }
    auto it = open_.find(*id);
    size_t bytes = 0;
    for (const auto& r : it->second.records) {
      bytes += r.MemoryFootprint();
    }
    open_bytes_ = bytes >= open_bytes_ ? 0 : open_bytes_ - bytes;
    open_records_ -= std::min<uint64_t>(open_records_,
                                        it->second.records.size());
    shed_records_ += it->second.records.size();
    ++shed_fragments_;
    // Consume the fragment index: a re-appearing id keeps numbering as if
    // this fragment had been emitted, so downstream per-id sequences stay
    // gap-free in shape even when the content was dropped.
    next_fragment_[*id]++;
    open_.erase(it);
    ++shed;
  }
  return shed;
}

void LiveCloser::SetNextFragment(const std::string& id, uint32_t next) {
  next_fragment_[id] = next;
}

void LiveCloser::Emit(const std::string& id, Open open,
                      std::vector<Session>* closed) {
  // Stable sort by event time: ties keep arrival order, matching the offline
  // sessionizer's record ordering on the same input. Most fragments arrive
  // already time-ordered, and stable_sort allocates a temporary buffer per
  // call — skip it when a linear check shows there is nothing to do.
  const auto time_lt = [](const LogRecord& a, const LogRecord& b) {
    return a.time < b.time;
  };
  if (!std::is_sorted(open.records.begin(), open.records.end(), time_lt)) {
    std::stable_sort(open.records.begin(), open.records.end(), time_lt);
  }
  Session s;
  s.id = id;
  s.fragment_index = next_fragment_[id]++;
  s.records = std::move(open.records);
  s.first_epoch =
      static_cast<Epoch>(s.records.front().time / kNanosPerSecond);
  s.last_epoch =
      static_cast<Epoch>(s.records.back().time / kNanosPerSecond);
  s.closed_at = s.last_epoch;
  size_t bytes = 0;
  for (const auto& r : s.records) {
    bytes += r.MemoryFootprint();
  }
  open_bytes_ = bytes >= open_bytes_ ? 0 : open_bytes_ - bytes;
  open_records_ -= std::min<uint64_t>(open_records_, s.records.size());
  records_emitted_ += s.records.size();
  ++sessions_emitted_;
  closed->push_back(std::move(s));
}

}  // namespace ts
