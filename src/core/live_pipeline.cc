#include "src/core/live_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/siphash.h"
#include "src/common/thread_timer.h"
#include "src/log/record_view.h"

namespace ts {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Rotate the FeedLine/mining arena once it holds this much line text; old
// arenas die when the batches referencing them drain.
constexpr size_t kFeedArenaRotateBytes = 1 << 20;

// Strips the trailing newline (and any CR/LF run) like FeedLine always has.
std::string_view TrimLineEnding(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return line;
}

}  // namespace

LivePipeline::LivePipeline(const LivePipelineOptions& options, SessionSink sink)
    : options_(options), sink_(std::move(sink)) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.max_batch_records = std::max<size_t>(1, options_.max_batch_records);
  shards_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity,
                                              options_.inactivity_ns));
  }
  if (options_.mine_templates) {
    miner_ = std::make_unique<TemplateMiner>(options_.miner);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

LivePipeline::~LivePipeline() { Finish(); }

void LivePipeline::RotateFeedArena() {
  if (feed_arena_ == nullptr ||
      feed_arena_->bytes_used() > kFeedArenaRotateBytes) {
    feed_arena_ = std::make_shared<Arena>();
  }
}

void LivePipeline::FeedLine(std::string line) {
  const std::string_view trimmed = TrimLineEnding(line);
  if (trimmed.empty()) {
    // Framing artifact, not a corrupt record: skipped everywhere, counted
    // nowhere near parse_failures (see ISSUE: blank-line unification).
    blank_lines_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // One copy into the ingest arena; from here the bytes flow as views, same
  // as the FeedBlock path.
  RotateFeedArena();
  FeedView(feed_arena_->Copy(trimmed), feed_arena_);
}

void LivePipeline::FeedBlock(LineBlock&& block) {
  if (block.connection_reset) {
    // Mark every shard's next batch: per-connection interning dictionaries
    // downstream describe a dead producer. Batch granularity is fine — the
    // dictionaries are pure caches (reset timing is output-neutral).
    for (auto& shard_ptr : shards_) {
      shard_ptr->pending.reset_interners = true;
    }
  }
  for (std::string_view raw : block.lines) {
    const std::string_view line = TrimLineEnding(raw);
    if (line.empty()) {
      blank_lines_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    FeedView(line, block.arena);
  }
  block.clear();
}

void LivePipeline::FeedView(std::string_view line, const ArenaRef& arena) {
  RecordView view = ScanRecord(line);
  const ArenaRef* owner = &arena;
  if (miner_ != nullptr) {
    // Mine before routing: the miner sees the full arrival stream in order
    // on this one thread, which is what keeps template ids independent of
    // the worker count. The rewritten line is what every downstream stage
    // (parse, store, digests, snapshots) sees. Lines without a payload field
    // pass through unmodified.
    const size_t offset = PayloadOffset(view);
    if (offset != std::string_view::npos) {
      std::lock_guard<std::mutex> lock(miner_mu_);
      miner_scratch_.clear();
      miner_->MineAndRewrite(line.substr(offset), &miner_scratch_);
      // Rewritten line = unchanged prefix + mined payload, copied into the
      // pipeline arena. The prefix — and so every separator offset — is
      // untouched; only the view's line pointer moves.
      RotateFeedArena();
      char* dst = feed_arena_->Allocate(offset + miner_scratch_.size());
      std::memcpy(dst, line.data(), offset);
      std::memcpy(dst + offset, miner_scratch_.data(), miner_scratch_.size());
      view.line = std::string_view(dst, offset + miner_scratch_.size());
      owner = &feed_arena_;
    }
  }
  EventTime time = 0;
  std::string_view session_id;
  size_t shard_index;
  if (ExtractRouteKey(view, &time, &session_id)) {
    ingest_watermark_ = std::max(ingest_watermark_, time);
    shard_index = SipHash24(session_id) % shards_.size();
  } else {
    shard_index = SipHash24(view.line) % shards_.size();
  }
  Item item;
  item.view = view;
  item.watermark = ingest_watermark_;
  Route(std::move(item), shard_index, *owner);
}

void LivePipeline::FeedRecord(LogRecord record) {
  if (miner_ != nullptr) {
    std::lock_guard<std::mutex> lock(miner_mu_);
    miner_scratch_.clear();
    miner_->MineAndRewrite(record.payload, &miner_scratch_);
    record.payload = miner_scratch_;
  }
  ingest_watermark_ = std::max(ingest_watermark_, record.time);
  const size_t shard_index = SipHash24(record.session_id) % shards_.size();
  Item item;
  item.record = std::move(record);
  item.parsed = true;
  item.watermark = ingest_watermark_;
  Route(std::move(item), shard_index, /*arena=*/nullptr);
}

void LivePipeline::Route(Item item, size_t shard_index, const ArenaRef& arena) {
  Shard& shard = *shards_[shard_index];
  shard.pending.items.push_back(std::move(item));
  if (arena != nullptr) {
    // Record the view's keep-alive. The same handful of arenas repeats across
    // a batch (ingest block + maybe the feed arena), so a linear scan dedups.
    auto& arenas = shard.pending.arenas;
    bool held = false;
    for (const ArenaRef& a : arenas) {
      if (a == arena) {
        held = true;
        break;
      }
    }
    if (!held) {
      arenas.push_back(arena);
    }
  }
  if (shard.pending.items.size() >= options_.max_batch_records) {
    SealAndPush(shard);
  }
}

void LivePipeline::SealAndPush(Shard& shard) {
  Batch batch = std::move(shard.pending);
  shard.pending = Batch{};
  batch.watermark_end = ingest_watermark_;
  if (options_.record_close_latency) {
    batch.enqueue_steady_ns = SteadyNowNanos();
  }
  shard.last_tick_watermark = batch.watermark_end;
  // Full shard queue: this is the back-pressure moment — Push below blocks,
  // the stalled ingest thread stops draining its socket, and TCP flow
  // control propagates the stall to the log server. (TryPush would consume
  // the batch on failure, so probe with size(); as the queue's only
  // producer we can at worst under- or over-count a racing pop.)
  if (shard.queue.size() < options_.queue_capacity) {
    shard.queue.Push(std::move(batch));
    return;
  }
  backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
  const int64_t stall_start = SteadyNowNanos();
  if (options_.shed_policy == ShedPolicy::kNone) {
    shard.queue.Push(std::move(batch));
  } else {
    // Bounded stall: wait up to the limit for the worker to free a slot, then
    // shed the *oldest queued* batch (head drop — the records least likely to
    // still matter) and retry. Barrier and end-of-stream batches are never
    // dropped: if one heads the queue we simply keep waiting (its worker is
    // guaranteed to drain it). Dropped items are pre-parse lines; they are
    // counted exactly in shed_lines and nowhere else.
    auto wait = std::chrono::milliseconds(
        std::max<int64_t>(1, options_.shed_stall_limit_ms));
    while (!shard.queue.PushWithTimeout(batch, wait)) {
      Batch dropped;
      if (shard.queue.PopFrontIf(
              [](const Batch& b) { return b.barrier == nullptr && !b.flush_all; },
              &dropped)) {
        if (!dropped.items.empty()) {
          shard.shed_lines.fetch_add(dropped.items.size(),
                                     std::memory_order_relaxed);
        }
      }
      // After the first timeout, retry tightly: a slot is either already free
      // (we just dropped the head) or about to be.
      wait = std::chrono::milliseconds(1);
    }
  }
  shard.stall_ns.fetch_add(SteadyNowNanos() - stall_start,
                           std::memory_order_relaxed);
}

void LivePipeline::Flush() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (!shard.pending.items.empty()) {
      SealAndPush(shard);
    } else if (shard.last_tick_watermark != ingest_watermark_) {
      // Watermark-only tick so shards with no recent records still close
      // their idle sessions. Skipped while the watermark is unchanged.
      SealAndPush(shard);
    }
  }
}

LivePipeline::CheckpointTicket LivePipeline::BeginCheckpoint() {
  if (finished_) {
    return nullptr;
  }
  auto ticket = std::make_shared<CkptBarrier>();
  ticket->expected = shards_.size();
  ticket->watermark = ingest_watermark_;
  if (miner_ != nullptr) {
    // Exported here — on the ingest thread, at exactly the barrier's arrival
    // position — because by the time the collector runs, ingest may have
    // mined lines past the marker.
    std::lock_guard<std::mutex> lock(miner_mu_);
    ticket->miner = miner_->Export();
    ticket->has_miner = true;
  }
  for (auto& shard_ptr : shards_) {
    // Seal whatever is pending plus the barrier marker; the barrier batch
    // carries the current global watermark like any Flush tick, so the state
    // each shard exports is aligned at (arrival position, ingest watermark).
    shard_ptr->pending.barrier = ticket;
    SealAndPush(*shard_ptr);
  }
  return ticket;
}

PipelineCheckpoint LivePipeline::CollectCheckpoint(
    const CheckpointTicket& ticket, const std::function<void()>& while_paused,
    const LiveCloser::OpenFragmentVisitor& open_visitor) {
  PipelineCheckpoint checkpoint;
  const auto export_closers = [this, &checkpoint, &open_visitor] {
    for (auto& shard_ptr : shards_) {
      if (open_visitor) {
        shard_ptr->closer.ExportCounters(&checkpoint.closers);
        shard_ptr->closer.VisitOpenFragments(open_visitor);
      } else {
        shard_ptr->closer.ExportState(&checkpoint.closers);
      }
    }
  };
  if (ticket == nullptr) {
    // BeginCheckpoint after Finish(): workers are joined and every fragment
    // has been flushed to the sink — the closers are empty but their fragment
    // counters still matter.
    checkpoint.records = records();
    checkpoint.parse_failures = parse_failures();
    checkpoint.ingest_watermark = ingest_watermark_;
    if (miner_ != nullptr) {
      std::lock_guard<std::mutex> lock(miner_mu_);
      checkpoint.miner = miner_->Export();
      checkpoint.has_miner = true;
    }
    export_closers();
    if (while_paused) {
      while_paused();
    }
    return checkpoint;
  }
  {
    std::unique_lock<std::mutex> lock(ticket->mu);
    ticket->arrived_cv.wait(
        lock, [&ticket] { return ticket->arrived == ticket->expected; });
  }
  // Every worker is paused inside the barrier with its counters published
  // (the acquire on ticket->mu above orders those relaxed stores), so the
  // totals below are barrier-aligned even while ingest keeps queueing batches
  // behind the marker. The closers are safe to read for the same reason: their
  // owning workers cannot advance until released below.
  checkpoint.records = records();
  checkpoint.parse_failures = parse_failures();
  checkpoint.ingest_watermark = ticket->watermark;
  checkpoint.has_miner = ticket->has_miner;
  checkpoint.miner = std::move(ticket->miner);
  export_closers();
  if (while_paused) {
    while_paused();
  }
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->released = true;
  }
  ticket->release_cv.notify_all();
  return checkpoint;
}

PipelineCheckpoint LivePipeline::CaptureCheckpoint() {
  return CollectCheckpoint(BeginCheckpoint());
}

void LivePipeline::RestoreCheckpoint(PipelineCheckpoint&& checkpoint) {
  if (miner_ != nullptr && checkpoint.has_miner) {
    std::lock_guard<std::mutex> lock(miner_mu_);
    miner_->Import(checkpoint.miner);
  }
  ingest_watermark_ = std::max(ingest_watermark_, checkpoint.ingest_watermark);
  for (auto& fragment : checkpoint.closers.open) {
    Shard& shard = *shards_[SipHash24(fragment.id) % shards_.size()];
    shard.closer.ImportFragment(std::move(fragment));
  }
  for (const auto& [id, next] : checkpoint.closers.next_fragment) {
    shards_[SipHash24(id) % shards_.size()]->closer.SetNextFragment(id, next);
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.closer.ObserveWatermark(checkpoint.ingest_watermark);
    shard.open_sessions.store(shard.closer.open_sessions(),
                              std::memory_order_relaxed);
    shard.open_bytes.store(shard.closer.open_bytes(),
                           std::memory_order_relaxed);
    shard.watermark.store(shard.closer.watermark(), std::memory_order_relaxed);
  }
}

void LivePipeline::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    shard.pending.flush_all = true;
    SealAndPush(shard);
    shard.queue.Close();
  }
  for (auto& shard_ptr : shards_) {
    if (shard_ptr->worker.joinable()) {
      shard_ptr->worker.join();
    }
  }
}

void LivePipeline::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  LiveCloser& closer = shard.closer;
  std::vector<Session> closed;
  // Per-connection dictionaries memoizing the svc-/h- field parses; cleared
  // when a batch carries the reconnect flag. Worker-thread-owned.
  InternerPair interners;
  uint64_t records = 0;
  uint64_t parse_failures = 0;
  while (auto batch = shard.queue.Pop()) {
    if (batch->reset_interners) {
      interners.Clear();
    }
    for (Item& item : batch->items) {
      closer.ObserveWatermark(item.watermark);
      if (item.parsed) {
        closer.Feed(std::move(item.record), &closed);
        ++records;
      } else {
        // The materialization point: numerics parse lazily off the
        // pre-scanned view; this is the first (and only) copy of the
        // session-id and payload bytes out of the ingest arena.
        LogRecord record;
        if (MaterializeRecord(item.view, &interners, &record)) {
          closer.Feed(std::move(record), &closed);
          ++records;
        } else {
          ++parse_failures;
        }
      }
    }
    closer.ObserveWatermark(batch->watermark_end);
    closer.CloseExpired(&closed);
    if (options_.shed_policy == ShedPolicy::kOldestOpen &&
        closer.open_bytes() > options_.shed_open_bytes) {
      // Over the open-state budget (under overload, head drops upstream orphan
      // fragments whose closing records were shed — they would otherwise pin
      // memory until end of stream): drop oldest-idle fragments, exactly
      // accounted, until back under budget.
      closer.ShedOldestUntil(options_.shed_open_bytes);
    }
    if (batch->flush_all) {
      closer.FlushAll(&closed);
    }
    if (!closed.empty()) {
      for (Session& s : closed) {
        if (options_.record_close_latency && batch->enqueue_steady_ns > 0) {
          shard.close_latencies_ms.push_back(
              static_cast<double>(SteadyNowNanos() - batch->enqueue_steady_ns) /
              1e6);
        }
        sink_(std::move(s));
      }
      shard.sessions_closed.fetch_add(closed.size(),
                                      std::memory_order_relaxed);
      closed.clear();
    }
    shard.records.store(records, std::memory_order_relaxed);
    shard.parse_failures.store(parse_failures, std::memory_order_relaxed);
    shard.open_sessions.store(closer.open_sessions(),
                              std::memory_order_relaxed);
    shard.open_bytes.store(closer.open_bytes(), std::memory_order_relaxed);
    shard.watermark.store(closer.watermark(), std::memory_order_relaxed);
    shard.records_emitted.store(closer.records_emitted(),
                                std::memory_order_relaxed);
    shard.open_records.store(closer.open_records(), std::memory_order_relaxed);
    shard.shed_records.store(closer.shed_records(), std::memory_order_relaxed);
    shard.shed_fragments.store(closer.shed_fragments(),
                               std::memory_order_relaxed);
    shard.cpu_ns.store(ThreadCpuNanos(), std::memory_order_relaxed);
    if (batch->barrier != nullptr) {
      // Two-phase checkpoint rendezvous: pre-barrier closes are in the sink
      // and the counters above are published, so once every shard is parked
      // here the collector reads barrier-aligned totals and may export this
      // shard's closer. Pause (blocked, no CPU) until it releases us.
      CkptBarrier& barrier = *batch->barrier;
      std::unique_lock<std::mutex> lock(barrier.mu);
      if (++barrier.arrived == barrier.expected) {
        barrier.arrived_cv.notify_all();
      }
      barrier.release_cv.wait(lock, [&barrier] { return barrier.released; });
    }
  }
}

uint64_t LivePipeline::records() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->records.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::parse_failures() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->parse_failures.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::sessions_closed() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->sessions_closed.load(std::memory_order_relaxed);
  }
  return total;
}

size_t LivePipeline::open_sessions() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    total += s->open_sessions.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t LivePipeline::backpressure_stall_ns() const {
  int64_t total = 0;
  for (const auto& s : shards_) {
    total += s->stall_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::records_emitted() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->records_emitted.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::open_records() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->open_records.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::shed_records() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->shed_records.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::shed_fragments() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->shed_fragments.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LivePipeline::shed_lines() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->shed_lines.load(std::memory_order_relaxed);
  }
  return total;
}

EventTime LivePipeline::watermark() const {
  EventTime min_wm = 0;
  bool first = true;
  for (const auto& s : shards_) {
    const EventTime wm = s->watermark.load(std::memory_order_relaxed);
    min_wm = first ? wm : std::min(min_wm, wm);
    first = false;
  }
  return min_wm;
}

std::vector<TemplateInfo> LivePipeline::TemplateSnapshot() const {
  if (miner_ == nullptr) {
    return {};
  }
  std::lock_guard<std::mutex> lock(miner_mu_);
  return miner_->Snapshot();
}

size_t LivePipeline::template_count() const {
  if (miner_ == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(miner_mu_);
  return miner_->template_count();
}

size_t LivePipeline::template_nodes() const {
  if (miner_ == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(miner_mu_);
  return miner_->node_count();
}

LiveShardSnapshot LivePipeline::shard(size_t i) const {
  const Shard& s = *shards_[i];
  LiveShardSnapshot snap;
  snap.records = s.records.load(std::memory_order_relaxed);
  snap.parse_failures = s.parse_failures.load(std::memory_order_relaxed);
  snap.sessions_closed = s.sessions_closed.load(std::memory_order_relaxed);
  snap.open_sessions = s.open_sessions.load(std::memory_order_relaxed);
  snap.open_bytes = s.open_bytes.load(std::memory_order_relaxed);
  snap.queue_depth = s.queue.size();
  snap.watermark = s.watermark.load(std::memory_order_relaxed);
  snap.cpu_ns = s.cpu_ns.load(std::memory_order_relaxed);
  snap.records_emitted = s.records_emitted.load(std::memory_order_relaxed);
  snap.open_records = s.open_records.load(std::memory_order_relaxed);
  snap.shed_records = s.shed_records.load(std::memory_order_relaxed);
  snap.shed_fragments = s.shed_fragments.load(std::memory_order_relaxed);
  snap.shed_lines = s.shed_lines.load(std::memory_order_relaxed);
  snap.stall_ns = s.stall_ns.load(std::memory_order_relaxed);
  return snap;
}

void LivePipeline::RegisterMetrics(MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->Register(prefix + "records", [this] {
    return static_cast<int64_t>(records());
  });
  registry->Register(prefix + "parse_failures", [this] {
    return static_cast<int64_t>(parse_failures());
  });
  registry->Register(prefix + "blank_lines", [this] {
    return static_cast<int64_t>(blank_lines());
  });
  registry->Register(prefix + "open_sessions", [this] {
    return static_cast<int64_t>(open_sessions());
  });
  registry->Register(prefix + "sessions_closed", [this] {
    return static_cast<int64_t>(sessions_closed());
  });
  registry->Register(prefix + "watermark_ms", [this] {
    return static_cast<int64_t>(watermark() / kNanosPerMilli);
  });
  registry->Register(prefix + "backpressure_stalls", [this] {
    return static_cast<int64_t>(backpressure_stalls());
  });
  registry->Register(prefix + "backpressure_stall_us", [this] {
    return backpressure_stall_ns() / 1000;
  });
  // Shed accounting — registered even with shedding off (then all zero), so
  // STATS consumers can always reconcile
  // records == records_emitted + open_records + shed_records.
  registry->Register(prefix + "records_emitted", [this] {
    return static_cast<int64_t>(records_emitted());
  });
  registry->Register(prefix + "open_records", [this] {
    return static_cast<int64_t>(open_records());
  });
  registry->Register(prefix + "shed_records", [this] {
    return static_cast<int64_t>(shed_records());
  });
  registry->Register(prefix + "shed_fragments", [this] {
    return static_cast<int64_t>(shed_fragments());
  });
  registry->Register(prefix + "shed_lines", [this] {
    return static_cast<int64_t>(shed_lines());
  });
  if (options_.mine_templates) {
    registry->Register(prefix + "templates", [this] {
      return static_cast<int64_t>(template_count());
    });
    registry->Register(prefix + "template_nodes", [this] {
      return static_cast<int64_t>(template_nodes());
    });
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string shard_prefix = prefix + "shard" + std::to_string(i) + "_";
    registry->Register(shard_prefix + "records", [this, i] {
      return static_cast<int64_t>(shard(i).records);
    });
    registry->Register(shard_prefix + "parse_failures", [this, i] {
      return static_cast<int64_t>(shard(i).parse_failures);
    });
    registry->Register(shard_prefix + "open_sessions", [this, i] {
      return static_cast<int64_t>(shard(i).open_sessions);
    });
    registry->Register(shard_prefix + "queue_depth", [this, i] {
      return static_cast<int64_t>(shard(i).queue_depth);
    });
    registry->Register(shard_prefix + "shed_records", [this, i] {
      return static_cast<int64_t>(shard(i).shed_records);
    });
    registry->Register(shard_prefix + "shed_lines", [this, i] {
      return static_cast<int64_t>(shard(i).shed_lines);
    });
    registry->Register(shard_prefix + "stall_us", [this, i] {
      return shard(i).stall_ns / 1000;
    });
  }
}

std::vector<double> LivePipeline::CloseLatenciesMs() const {
  std::vector<double> all;
  if (!finished_) {
    return all;  // Worker-owned until the workers join.
  }
  for (const auto& s : shards_) {
    all.insert(all.end(), s->close_latencies_ms.begin(),
               s->close_latencies_ms.end());
  }
  return all;
}

}  // namespace ts
