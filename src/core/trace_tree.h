// Trace trees: the per-request call hierarchies recovered from a session.
//
// Each root span (root-level transaction index) in a session yields one trace
// tree. Nodes are transactions; structure comes entirely from the hierarchical
// transaction IDs, so reconstruction works independently of component
// boundaries (§2.1, §5 "Workload characteristics"). Interior nodes whose own
// log records were lost are *inferred* from their descendants' IDs (§2.3).
#ifndef SRC_CORE_TRACE_TREE_H_
#define SRC_CORE_TRACE_TREE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/time_util.h"
#include "src/core/session.h"
#include "src/log/record.h"

namespace ts {

// Service id of a node with no observed records.
inline constexpr uint32_t kUnknownService = 0xFFFFFFFFu;

struct TraceNode {
  TxnId id;
  uint32_t service = kUnknownService;
  uint32_t host = kUnknownService;  // Machine that emitted the span's records.
  bool inferred = false;      // Existence implied by descendants only.
  EventTime start = 0;        // Earliest observed record time (0 if inferred).
  EventTime end = 0;          // Latest observed record time.
  uint32_t num_records = 0;   // Log records (annotations) observed for this node.
  int parent = -1;            // Node index; -1 for the root.
  std::vector<int> children;  // Node indices, ordered by sibling index.
};

class TraceTree {
 public:
  // Splits a session's records by root transaction index and builds one tree
  // per root span, ordered by root index.
  static std::vector<TraceTree> FromSession(const Session& session);

  // Builds a single tree from records sharing one root transaction index.
  static TraceTree FromRecords(const std::string& session_id,
                               const std::vector<const LogRecord*>& records);

  const std::vector<TraceNode>& nodes() const { return nodes_; }
  const TraceNode& root() const { return nodes_.front(); }
  const std::string& session_id() const { return session_id_; }

  size_t num_spans() const { return nodes_.size(); }
  size_t num_inferred() const;
  uint32_t total_records() const { return total_records_; }

  EventTime MinTime() const { return min_time_; }
  EventTime MaxTime() const { return max_time_; }
  EventTime Duration() const { return max_time_ - min_time_; }

  // Light-weight structural signature: the out-degree of every node in BFS
  // order (§5.2 "a tree signature amounts to a vector whose elements correspond
  // to the number of outgoing edges of the nodes in the trace tree").
  std::vector<uint32_t> Signature() const;

  // Signature packed into a printable key, usable for counting/top-k.
  std::string SignatureKey() const;

  // Parent-service -> child-service pairs discovered by a breadth-first
  // traversal (§5.2 "Inferring communication patterns"). Pairs involving
  // inferred nodes (unknown service) are skipped.
  std::vector<std::pair<uint32_t, uint32_t>> ServiceCallPairs() const;

  // Number of distinct services with observed activity in this tree (Figure 4).
  size_t DistinctServices() const;

  // Children implied by sibling indices but never observed: a node whose
  // max child sibling index exceeds its child count is missing descendants
  // (detectable log loss, §2.3).
  size_t ImpliedMissingChildren() const;

 private:
  std::string session_id_;
  std::vector<TraceNode> nodes_;  // nodes_[0] is the root.
  uint32_t total_records_ = 0;
  EventTime min_time_ = 0;
  EventTime max_time_ = 0;
};

}  // namespace ts

#endif  // SRC_CORE_TRACE_TREE_H_
