#include "src/core/trace_tree.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/common/status.h"

namespace ts {

std::vector<TraceTree> TraceTree::FromSession(const Session& session) {
  // Group records by root transaction index, preserving root order.
  std::map<uint32_t, std::vector<const LogRecord*>> by_root;
  for (const auto& r : session.records) {
    if (r.txn_id.empty()) {
      continue;  // Malformed correlator; cannot be placed in any tree.
    }
    by_root[r.txn_id.root()].push_back(&r);
  }
  std::vector<TraceTree> trees;
  trees.reserve(by_root.size());
  for (auto& [root, records] : by_root) {
    trees.push_back(FromRecords(session.id, records));
  }
  return trees;
}

TraceTree TraceTree::FromRecords(const std::string& session_id,
                                 const std::vector<const LogRecord*>& records) {
  TS_CHECK(!records.empty());
  TraceTree tree;
  tree.session_id_ = session_id;

  // Assign node slots: ordered map over TxnId gives deterministic layout and
  // implicitly sorts siblings by index (lexicographic path order).
  std::map<TxnId, int> index;
  // The root must exist even if only deep descendants were logged (§2.3:
  // "transaction ID of 2-10 implies there is a root transaction 2").
  const TxnId root_id = records.front()->txn_id.Root();
  index.emplace(root_id, -1);
  for (const auto* r : records) {
    TS_CHECK(r->txn_id.root() == root_id.root());
    index.emplace(r->txn_id, -1);
    // Materialize the ancestor chain: every observed transaction implies its
    // parents' existence.
    TxnId cursor = r->txn_id;
    while (cursor.depth() > 1) {
      cursor = cursor.Parent();
      index.emplace(cursor, -1);
    }
  }

  tree.nodes_.resize(index.size());
  int next = 0;
  for (auto& [id, slot] : index) {
    slot = next;
    tree.nodes_[next].id = id;
    tree.nodes_[next].inferred = true;
    ++next;
  }

  // Link parents/children. Lexicographic order put the root first.
  TS_CHECK(tree.nodes_.front().id == root_id);
  for (size_t i = 1; i < tree.nodes_.size(); ++i) {
    const int parent = index.at(tree.nodes_[i].id.Parent());
    tree.nodes_[i].parent = parent;
    tree.nodes_[parent].children.push_back(static_cast<int>(i));
  }
  // Map order sorts children of one parent by sibling index already; assert in
  // debug-minded spirit but avoid O(n log n) re-sorts.

  // Fold in the observed records.
  bool first = true;
  for (const auto* r : records) {
    TraceNode& node = tree.nodes_[index.at(r->txn_id)];
    if (node.inferred) {
      node.inferred = false;
      node.service = r->service;
      node.host = r->host;
      node.start = node.end = r->time;
    } else {
      node.start = std::min(node.start, r->time);
      node.end = std::max(node.end, r->time);
    }
    ++node.num_records;
    ++tree.total_records_;
    if (first) {
      tree.min_time_ = tree.max_time_ = r->time;
      first = false;
    } else {
      tree.min_time_ = std::min(tree.min_time_, r->time);
      tree.max_time_ = std::max(tree.max_time_, r->time);
    }
  }
  return tree;
}

size_t TraceTree::num_inferred() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.inferred) {
      ++n;
    }
  }
  return n;
}

std::vector<uint32_t> TraceTree::Signature() const {
  std::vector<uint32_t> sig;
  sig.reserve(nodes_.size());
  std::deque<int> queue = {0};
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    sig.push_back(static_cast<uint32_t>(nodes_[n].children.size()));
    for (int c : nodes_[n].children) {
      queue.push_back(c);
    }
  }
  return sig;
}

std::string TraceTree::SignatureKey() const {
  std::string key;
  for (uint32_t d : Signature()) {
    if (!key.empty()) {
      key.push_back('.');
    }
    key += std::to_string(d);
  }
  return key;
}

std::vector<std::pair<uint32_t, uint32_t>> TraceTree::ServiceCallPairs() const {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  std::deque<int> queue = {0};
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int c : nodes_[n].children) {
      if (nodes_[n].service != kUnknownService &&
          nodes_[c].service != kUnknownService) {
        pairs.emplace_back(nodes_[n].service, nodes_[c].service);
      }
      queue.push_back(c);
    }
  }
  return pairs;
}

size_t TraceTree::DistinctServices() const {
  std::vector<uint32_t> services;
  services.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node.service != kUnknownService) {
      services.push_back(node.service);
    }
  }
  std::sort(services.begin(), services.end());
  services.erase(std::unique(services.begin(), services.end()), services.end());
  return services.size();
}

size_t TraceTree::ImpliedMissingChildren() const {
  size_t missing = 0;
  for (const auto& node : nodes_) {
    if (node.children.empty()) {
      continue;
    }
    uint32_t max_sibling = 0;
    for (int c : node.children) {
      max_sibling = std::max(max_sibling, nodes_[c].id.sibling_index());
    }
    // Sibling indices are 1-based in the instrumentation convention, so a max
    // index above the child count implies unobserved siblings.
    if (max_sibling > node.children.size()) {
      missing += max_sibling - node.children.size();
    }
  }
  return missing;
}

}  // namespace ts
