// Re-order buffer (§4.1): restores chronological order of a late-and-reordered
// log stream before ingestion.
//
// The implementation follows the paper's Pigeonhole-sort approach: a fixed ring
// of time-slot buffers, filled in circular discipline and re-used as timestamps
// advance. A record at time t lands in slot (t / slot_width) % num_slots. The
// buffer tracks the lower watermark `least`; records older than `least` are
// discarded (counted), and observing a record beyond `least + slack` flushes all
// intervening slots into the output in timestamp order.
//
// The `slack` parameter is the upper bound on tolerated lateness; larger slack
// means more reordering tolerance, a fixed added latency, and a proportionally
// larger memory footprint (the Figure 8 trade-off).
#ifndef SRC_CORE_REORDER_BUFFER_H_
#define SRC_CORE_REORDER_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

class ReorderBuffer {
 public:
  struct Config {
    // Upper bound on lateness; records arriving more than `slack_ns` behind the
    // newest flushed time are dropped.
    EventTime slack_ns = kNanosPerSecond;
    // Width of one pigeonhole slot. Records within a slot are sorted on flush,
    // so output order is exact regardless of slot width; narrower slots reduce
    // sort sizes at the cost of more slots.
    EventTime slot_width_ns = 10 * kNanosPerMilli;
  };

  struct Stats {
    uint64_t accepted = 0;
    uint64_t discarded_late = 0;  // Arrived below the watermark; dropped.
    uint64_t emitted = 0;
  };

  explicit ReorderBuffer(const Config& config);

  // Inserts one record. Records whose timestamp advances the high watermark far
  // enough are preceded by a flush of completed slots into `out` (in timestamp
  // order). Too-late records are dropped and counted.
  void Push(LogRecord record, std::vector<LogRecord>* out);

  // Emits everything still buffered, in timestamp order. Call at end-of-stream.
  void FlushAll(std::vector<LogRecord>* out);

  // Emits every complete slot whose upper time bound is <= `up_to`. Used by the
  // ingestion driver to release records for closed epochs even when the stream
  // momentarily stalls.
  void FlushUpTo(EventTime up_to, std::vector<LogRecord>* out);

  const Stats& stats() const { return stats_; }
  size_t buffered_records() const { return buffered_records_; }
  size_t buffered_bytes() const { return buffered_bytes_; }
  // Lower watermark: all emitted records have time < watermark, and no future
  // output will be older.
  EventTime watermark() const { return least_; }

 private:
  size_t SlotIndex(EventTime t) const {
    return static_cast<size_t>((t / config_.slot_width_ns) %
                               static_cast<EventTime>(slots_.size()));
  }
  // Flushes slots covering times < new_least and advances the watermark.
  void AdvanceWatermark(EventTime new_least, std::vector<LogRecord>* out);
  void FlushSlot(size_t idx, std::vector<LogRecord>* out);

  Config config_;
  std::vector<std::vector<LogRecord>> slots_;
  EventTime least_ = 0;         // Watermark (slot-width aligned).
  bool saw_any_ = false;
  Stats stats_;
  size_t buffered_records_ = 0;
  size_t buffered_bytes_ = 0;
};

}  // namespace ts

#endif  // SRC_CORE_REORDER_BUFFER_H_
