// Multi-versioned (incremental) sessionization — the alternative design the
// paper sketches in §3: "new messages can arrive for a session at any time and
// changes are propagated downstream to subsequent calculations immediately",
// eliminating the waiting period and letting subscribers inspect partially
// reconstructed sessions (§2.3's watermark/incremental-processing idea).
//
// Instead of buffering a session's records until the inactivity window
// expires, this operator emits a SessionUpdate for every (session, epoch) with
// activity, as soon as the epoch completes, and a final (empty) update when
// the window closes. Operator state holds only per-session metadata — records
// are forwarded, not retained — so memory is O(active sessions), not
// O(buffered records). The cost is that every downstream consumer must handle
// incremental inputs (the paper's stated reason for not making this the
// default).
#ifndef SRC_CORE_INCREMENTAL_SESSIONIZE_H_
#define SRC_CORE_INCREMENTAL_SESSIONIZE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/sessionize.h"
#include "src/log/record.h"
#include "src/timely/scope.h"

namespace ts {

struct SessionUpdate {
  std::string id;
  std::vector<LogRecord> new_records;  // Records that arrived this epoch.
  uint32_t version = 0;                // 0, 1, 2, ... within one session window.
  Epoch epoch = 0;                     // Epoch that produced the update.
  bool is_final = false;               // Window closed; version is the last.
};

struct IncrementalMetrics {
  uint64_t records_in = 0;
  uint64_t updates_out = 0;
  uint64_t finals_out = 0;
  size_t peak_tracked_sessions = 0;
};

// Builds the incremental sessionization stage: exchange by session hash, then
// per-epoch update emission with inactivity-based finalization.
inline std::pair<Stream<SessionUpdate>, std::shared_ptr<IncrementalMetrics>>
SessionizeIncremental(Scope& scope, const Stream<LogRecord>& records,
                      const SessionizeOptions& options) {
  struct Tracked {
    Epoch last_epoch = 0;
    uint32_t next_version = 0;
  };
  struct State {
    std::map<Epoch, std::vector<LogRecord>> pending_by_epoch;
    std::unordered_map<std::string, Tracked> sessions;
    std::map<Epoch, std::vector<std::string>> expiry_candidates;
    IncrementalMetrics metrics;
  };
  auto state = std::make_shared<State>();
  auto metrics = std::make_shared<IncrementalMetrics>();
  const Epoch delay = options.inactivity_epochs;

  auto updates = scope.Unary<LogRecord, SessionUpdate>(
      records,
      Partition<LogRecord>::ByKey(
          [](const LogRecord& r) { return SessionHash(r.session_id); }),
      "sessionize_incremental",
      [state](Epoch epoch, std::vector<LogRecord>& data, OutputSession<SessionUpdate>&,
              NotificatorHandle& notificator) {
        if (data.empty()) {
          return;
        }
        state->metrics.records_in += data.size();
        auto& staged = state->pending_by_epoch[epoch];
        for (auto& r : data) {
          staged.push_back(std::move(r));
        }
        notificator.NotifyAt(epoch);
      },
      [state, delay, metrics](Epoch epoch, OutputSession<SessionUpdate>& out,
                              NotificatorHandle& notificator) {
        // 1. Emit an update per session with activity in this epoch.
        auto staged = state->pending_by_epoch.find(epoch);
        if (staged != state->pending_by_epoch.end()) {
          std::unordered_map<std::string, SessionUpdate> per_session;
          for (auto& r : staged->second) {
            auto& update = per_session[r.session_id];
            if (update.new_records.empty()) {
              update.id = r.session_id;
              update.epoch = epoch;
            }
            update.new_records.push_back(std::move(r));
          }
          state->pending_by_epoch.erase(staged);
          for (auto& [id, update] : per_session) {
            auto [it, inserted] = state->sessions.try_emplace(id);
            Tracked& t = it->second;
            const bool fresh_touch = inserted || t.last_epoch != epoch;
            t.last_epoch = epoch;
            update.version = t.next_version++;
            ++state->metrics.updates_out;
            out.Give(epoch, std::move(update));
            if (fresh_touch) {
              state->expiry_candidates[epoch + delay].push_back(id);
              notificator.NotifyAt(epoch + delay);
            }
          }
          state->metrics.peak_tracked_sessions =
              std::max(state->metrics.peak_tracked_sessions, state->sessions.size());
        }
        // 2. Finalize sessions whose inactivity window elapsed.
        auto candidates = state->expiry_candidates.find(epoch);
        if (candidates != state->expiry_candidates.end()) {
          for (auto& id : candidates->second) {
            auto it = state->sessions.find(id);
            if (it == state->sessions.end() || it->second.last_epoch + delay > epoch) {
              continue;
            }
            SessionUpdate final_update;
            final_update.id = id;
            final_update.epoch = epoch;
            final_update.version = it->second.next_version;
            final_update.is_final = true;
            ++state->metrics.finals_out;
            state->sessions.erase(it);
            out.Give(epoch, std::move(final_update));
          }
          state->expiry_candidates.erase(candidates);
        }
        *metrics = state->metrics;
      });
  return {updates, metrics};
}

}  // namespace ts

#endif  // SRC_CORE_INCREMENTAL_SESSIONIZE_H_
