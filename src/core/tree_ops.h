// Dataflow stage turning sessions into trace trees (§4.3:
// "stream.sessionize(INACTIVITY_LIMIT).construct_trace_trees()").
#ifndef SRC_CORE_TREE_OPS_H_
#define SRC_CORE_TREE_OPS_H_

#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/core/trace_tree.h"
#include "src/timely/scope.h"

namespace ts {

// One TraceTree per root span in each session. Pipeline stage: sessions are
// already partitioned by session ID, and a tree is derived from one session.
inline Stream<TraceTree> ConstructTraceTrees(Scope& scope,
                                             const Stream<Session>& sessions) {
  return scope.FlatMap<Session, TraceTree>(
      sessions, "construct_trace_trees",
      [](Session session, std::vector<TraceTree>& out) {
        for (auto& tree : TraceTree::FromSession(session)) {
          out.push_back(std::move(tree));
        }
      });
}

}  // namespace ts

#endif  // SRC_CORE_TREE_OPS_H_
