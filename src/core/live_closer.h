// LiveCloser: watermark-driven sessionization state for the live
// (--connect --serve) path — the streaming analogue of OfflineSessionizer's
// inactivity-gap splitting. A session fragment closes once the watermark has
// advanced `inactivity_ns` past the fragment's last record.
//
// Determinism contract (what makes sharded output byte-identical): the caller
// supplies the watermark explicitly, as the prefix-maximum event time of the
// arrival stream *in arrival order* (ObserveWatermark before each Feed). Close
// decisions for the session a record touches are made at Feed time against
// that watermark, so the fragment boundaries of a session are a pure function
// of (the session's own record subsequence, the watermark tag attached to each
// record) — independent of how often CloseExpired runs, of wall-clock poll
// timing, and of how many shards the stream is partitioned across.
// CloseExpired/FlushAll only affect *when* an already-determined fragment is
// emitted, never its contents.
#ifndef SRC_CORE_LIVE_CLOSER_H_
#define SRC_CORE_LIVE_CLOSER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/time_util.h"
#include "src/core/session.h"
#include "src/log/record.h"

namespace ts {

class LiveCloser {
 public:
  explicit LiveCloser(EventTime inactivity_ns)
      : inactivity_ns_(inactivity_ns) {}

  // Raises the watermark (monotone; stale values are ignored).
  void ObserveWatermark(EventTime watermark) {
    watermark_ = watermark > watermark_ ? watermark : watermark_;
  }

  // Feeds one record. If the record's session has an open fragment that is
  // already expired at the current watermark, that fragment is emitted to
  // *closed first and the record starts the next fragment. Callers that track
  // a global watermark must ObserveWatermark(tag) before each Feed.
  void Feed(LogRecord record, std::vector<Session>* closed);

  // Moves every session idle past the watermark into *closed.
  void CloseExpired(std::vector<Session>* closed);

  // Emits every still-open fragment (end of stream).
  void FlushAll(std::vector<Session>* closed);

  size_t open_sessions() const { return open_.size(); }
  EventTime watermark() const { return watermark_; }
  uint64_t sessions_emitted() const { return sessions_emitted_; }
  size_t open_bytes() const { return open_bytes_; }

 private:
  struct Open {
    std::vector<LogRecord> records;
    EventTime last_time = 0;
  };

  void Emit(const std::string& id, Open open, std::vector<Session>* closed);

  EventTime inactivity_ns_;
  EventTime watermark_ = 0;
  uint64_t sessions_emitted_ = 0;
  size_t open_bytes_ = 0;
  std::unordered_map<std::string, Open> open_;
  std::unordered_map<std::string, uint32_t> next_fragment_;
};

}  // namespace ts

#endif  // SRC_CORE_LIVE_CLOSER_H_
