// LiveCloser: watermark-driven sessionization state for the live
// (--connect --serve) path — the streaming analogue of OfflineSessionizer's
// inactivity-gap splitting. A session fragment closes once the watermark has
// advanced `inactivity_ns` past the fragment's last record.
//
// Determinism contract (what makes sharded output byte-identical): the caller
// supplies the watermark explicitly, as the prefix-maximum event time of the
// arrival stream *in arrival order* (ObserveWatermark before each Feed). Close
// decisions for the session a record touches are made at Feed time against
// that watermark, so the fragment boundaries of a session are a pure function
// of (the session's own record subsequence, the watermark tag attached to each
// record) — independent of how often CloseExpired runs, of wall-clock poll
// timing, and of how many shards the stream is partitioned across.
// CloseExpired/FlushAll only affect *when* an already-determined fragment is
// emitted, never its contents.
#ifndef SRC_CORE_LIVE_CLOSER_H_
#define SRC_CORE_LIVE_CLOSER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/time_util.h"
#include "src/core/session.h"
#include "src/log/record.h"

namespace ts {

// Serializable open-fragment state of one or more LiveClosers, captured at a
// watermark-aligned barrier (ts_ckpt). Because fragment-split decisions are a
// pure function of (record subsequence, per-record watermark tag), this state
// at arrival position N is identical for every shard count — which is what
// lets a snapshot taken under one --workers value restore under another: the
// restore path simply re-routes each fragment by SipHash(id) % N_new.
struct LiveCloserState {
  struct OpenFragment {
    std::string id;
    EventTime last_time = 0;
    std::vector<LogRecord> records;  // Arrival order, not yet time-sorted.
  };
  std::vector<OpenFragment> open;
  // Every id that has ever emitted a fragment, with the next index to assign.
  // Needed in full: a session can re-appear long after its last fragment
  // closed, and its numbering must continue where the pre-crash run left off.
  std::vector<std::pair<std::string, uint32_t>> next_fragment;
};

class LiveCloser {
 public:
  explicit LiveCloser(EventTime inactivity_ns)
      : inactivity_ns_(inactivity_ns) {}

  // Raises the watermark (monotone; stale values are ignored).
  void ObserveWatermark(EventTime watermark) {
    watermark_ = watermark > watermark_ ? watermark : watermark_;
  }

  // Feeds one record. If the record's session has an open fragment that is
  // already expired at the current watermark, that fragment is emitted to
  // *closed first and the record starts the next fragment. Callers that track
  // a global watermark must ObserveWatermark(tag) before each Feed.
  void Feed(LogRecord record, std::vector<Session>* closed);

  // Moves every session idle past the watermark into *closed.
  void CloseExpired(std::vector<Session>* closed);

  // Emits every still-open fragment (end of stream).
  void FlushAll(std::vector<Session>* closed);

  // Appends a copy of this closer's open fragments and fragment counters to
  // *state (merge-friendly: a barrier collects every shard into one state).
  void ExportState(LiveCloserState* state) const;

  // Zero-copy capture path (ts_ckpt's async writer): visits every open
  // fragment by reference instead of deep-copying it, in unspecified order —
  // the same order guarantee ExportState gives, since both walk a hash map.
  // The closer must be quiescent for the duration (checkpoint barrier pause).
  using OpenFragmentVisitor = std::function<void(
      const std::string& id, EventTime last_time,
      const std::vector<LogRecord>& records)>;
  void VisitOpenFragments(const OpenFragmentVisitor& fn) const;

  // The fragment-counter half of ExportState alone (the counters are small;
  // visitor-path callers still take them by copy).
  void ExportCounters(LiveCloserState* state) const;

  // Restores one open fragment / one fragment counter (ts_ckpt restore path;
  // the pipeline routes each entry to the owning shard). Must happen before
  // any Feed. Import of an id that is already open replaces it.
  void ImportFragment(LiveCloserState::OpenFragment fragment);
  void SetNextFragment(const std::string& id, uint32_t next);

  // Load shedding (opt-in, --shed-policy=oldest-open): drops whole open
  // fragments, oldest `last_time` first (id as tie-break, so the order is
  // deterministic), until open_bytes() <= max_open_bytes. Shed fragments are
  // never emitted; their records are counted exactly in shed_records() /
  // shed_fragments(), and the id's fragment counter still advances so a
  // session that re-appears continues its numbering as if the fragment had
  // closed. Returns the number of fragments shed.
  size_t ShedOldestUntil(size_t max_open_bytes);

  size_t open_sessions() const { return open_.size(); }
  EventTime watermark() const { return watermark_; }
  uint64_t sessions_emitted() const { return sessions_emitted_; }
  size_t open_bytes() const { return open_bytes_; }

  // Exact-accounting counters: every record Fed is, at any quiescent point,
  // in exactly one of {records_emitted, open_records, shed_records}.
  uint64_t records_emitted() const { return records_emitted_; }
  uint64_t open_records() const { return open_records_; }
  uint64_t shed_records() const { return shed_records_; }
  uint64_t shed_fragments() const { return shed_fragments_; }

 private:
  struct Open {
    std::vector<LogRecord> records;
    EventTime last_time = 0;
  };

  void Emit(const std::string& id, Open open, std::vector<Session>* closed);

  EventTime inactivity_ns_;
  EventTime watermark_ = 0;
  uint64_t sessions_emitted_ = 0;
  uint64_t records_emitted_ = 0;
  uint64_t open_records_ = 0;
  uint64_t shed_records_ = 0;
  uint64_t shed_fragments_ = 0;
  size_t open_bytes_ = 0;
  std::unordered_map<std::string, Open> open_;
  std::unordered_map<std::string, uint32_t> next_fragment_;
};

}  // namespace ts

#endif  // SRC_CORE_LIVE_CLOSER_H_
