// LivePipeline: the sharded live sessionization hot path (paper §4.2's
// Exchange PACT applied to the serving pipeline).
//
//                       ┌─ queue[0] ─ shard 0: parse → LiveCloser ─┐
//   ingest thread ──────┼─ queue[1] ─ shard 1: parse → LiveCloser ─┼──► sink
//   (tag + route by     ├─ queue[2] ─ shard 2: parse → LiveCloser ─┤  (store
//    SipHash(id) % N)   └─ queue[3] ─ shard 3: parse → LiveCloser ─┘  insert)
//
// The single ingest thread does only the cheap part of each line: extract the
// event time and session-id fields (two '|' scans, no full parse), advance the
// global watermark (prefix max of event time in arrival order), tag the line
// with that watermark, and route it by SipHash-2-4(session id) % N — the same
// exchange hash SessionHash() uses for the timely engine. Everything expensive
// (full wire parse, LiveCloser state, session emission) runs on the shard
// workers, in parallel.
//
// Determinism: all records of a session land on one shard, in arrival order,
// each carrying the global watermark at its position in the arrival stream.
// Fragment boundaries are decided per record against that tag (see
// live_closer.h), so the set of closed sessions is byte-identical for every
// worker count — only emission timing varies. The batch-end watermark
// broadcast (Flush) lets shards that received no recent records close their
// idle sessions; it can only emit fragments the per-record rule has already
// fixed.
//
// Back-pressure: each shard queue holds at most queue_capacity batches. When
// the target shard's queue is full, Feed* blocks the ingest thread
// (backpressure_stalls() counts those events). A caller draining a
// SocketIngestSource therefore stops polling, the kernel socket buffer fills,
// and TCP flow control pushes back on the log server — the same mechanism the
// transport layer documents for max_records_per_poll.
//
// Watermark merge rule: watermark() is the minimum across shards of the last
// watermark each shard has fully processed — the "safe" frontier: every
// session that can close at or below it has been handed to the sink.
#ifndef SRC_CORE_LIVE_PIPELINE_H_
#define SRC_CORE_LIVE_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/arena.h"
#include "src/common/fixed_queue.h"
#include "src/common/metrics_registry.h"
#include "src/common/time_util.h"
#include "src/core/live_closer.h"
#include "src/core/session.h"
#include "src/log/record_batch.h"
#include "src/log/record_view.h"
#include "src/parse/template_miner.h"

namespace ts {

// Opt-in overload policy (ts_loadgen overload study, docs/LOADGEN.md). With
// kNone (default) a full shard queue blocks the ingest thread indefinitely —
// backpressure all the way to TCP. With kOldestOpen the pipeline degrades
// predictably instead of stalling: (1) a blocked push waits at most
// shed_stall_limit_ms, then drops the *oldest queued batch* (head drop; never
// a checkpoint barrier or end-of-stream batch), counting its items in
// shed_lines; (2) each shard bounds its open-fragment state to
// shed_open_bytes, shedding oldest-idle fragments first with exact counts
// (LiveCloser::ShedOldestUntil). Every fed record is then, at quiescence, in
// exactly one of {records_emitted, open_records, shed_records}, and every
// admitted-but-dropped line in shed_lines — `records_in == stored + shed`.
// Shedding intentionally trades the byte-identical determinism contract for
// bounded producer stall; it must stay off when digests matter.
enum class ShedPolicy {
  kNone,
  kOldestOpen,
};

struct LivePipelineOptions {
  size_t workers = 1;          // Number of shards (>=1).
  EventTime inactivity_ns = 5 * kNanosPerSecond;
  size_t queue_capacity = 64;  // Batches per shard queue (back-pressure bound).
  size_t max_batch_records = 512;  // Ingest-side batching per shard.
  // Collect per-session close latency (sink time − enqueue time of the batch
  // that triggered the close). Costs one steady_clock read per batch plus a
  // vector push per session; benches enable it, the tool does not.
  bool record_close_latency = false;
  // Online template mining (src/parse): structure each record's payload on
  // ingest, rewriting it to "#<template_id> <vars...>" before routing. Runs
  // on the single ingest thread in arrival order, so the rewritten stream —
  // and everything downstream of it (store contents, digests, snapshots) —
  // is byte-identical for every worker count. Lines without a payload field
  // (fewer than six '|' separators) pass through unmodified.
  bool mine_templates = false;
  TemplateMinerOptions miner;
  // Overload shedding (see ShedPolicy above). Off by default.
  ShedPolicy shed_policy = ShedPolicy::kNone;
  size_t shed_open_bytes = 32ull << 20;  // Per-shard open-fragment budget.
  int64_t shed_stall_limit_ms = 100;     // Max blocked-push wait before a drop.
};

// A point-in-time view of one shard, for gauges and benches.
struct LiveShardSnapshot {
  uint64_t records = 0;
  uint64_t parse_failures = 0;
  uint64_t sessions_closed = 0;
  size_t open_sessions = 0;
  size_t open_bytes = 0;
  size_t queue_depth = 0;  // Batches waiting.
  EventTime watermark = 0;
  int64_t cpu_ns = 0;  // Thread CPU consumed by this shard's worker.
  // Exact-accounting counters (shed policy; zero when shedding is off).
  uint64_t records_emitted = 0;  // Records inside sessions handed to the sink.
  uint64_t open_records = 0;     // Records currently in open fragments.
  uint64_t shed_records = 0;     // Records dropped from shed open fragments.
  uint64_t shed_fragments = 0;   // Open fragments dropped whole.
  uint64_t shed_lines = 0;       // Pre-parse lines dropped by queue head-drop.
  int64_t stall_ns = 0;          // Ingest time spent blocked on this queue.
};

// A watermark-aligned consistent snapshot of the pipeline's mutable state,
// captured by CaptureCheckpoint() at a barrier: every shard has processed the
// whole arrival prefix, every session that closes at or below the barrier
// watermark has been handed to the sink, and the merged open-fragment state is
// a pure function of the arrival stream (the determinism contract). ts_ckpt
// serializes this plus the SessionStore and the ingest resume offset.
struct PipelineCheckpoint {
  uint64_t records = 0;          // Parsed records fed up to the barrier.
  uint64_t parse_failures = 0;   // Unparseable lines up to the barrier.
  EventTime ingest_watermark = 0;
  LiveCloserState closers;       // Merged across shards.
  // Template-miner state at the barrier position (mine_templates only).
  // Exported on the ingest thread at BeginCheckpoint, so it corresponds to
  // exactly the arrival prefix the resume offset names.
  bool has_miner = false;
  TemplateMinerState miner;
};

class LivePipeline {
 public:
  // Called on shard worker threads, possibly concurrently from different
  // shards; must be thread-safe (SessionStore::Insert is).
  using SessionSink = std::function<void(Session&&)>;

  LivePipeline(const LivePipelineOptions& options, SessionSink sink);
  ~LivePipeline();  // Implies Finish() if not yet called.

  LivePipeline(const LivePipeline&) = delete;
  LivePipeline& operator=(const LivePipeline&) = delete;

  // --- Ingest-thread API (single producer) ---

  // Feeds one wire-format line (trailing \r already stripped by the framer;
  // a stray one is tolerated). Blank lines are skipped — they are framing
  // artifacts, not corrupt records, and must not count as parse failures.
  // Lines whose time/session-id fields cannot be extracted are still routed
  // (by a hash of the whole line) so the owning shard counts the parse
  // failure. Blocks when the target shard's queue is full.
  //
  // The bytes are copied once into a pipeline-owned ingest arena and flow as
  // views from there; FeedBlock is the zero-copy path for callers that
  // already hold arena-backed lines.
  void FeedLine(std::string line);

  // Feeds a block of framed lines backed by an ingest arena (the
  // SocketIngestSource::PollBlock hand-off). Routing, watermarks, blank-line
  // and parse-failure accounting are identical to feeding each line through
  // FeedLine — both funnel into the same view path — but the line bytes are
  // never copied: per-shard batches take references on the block's arena and
  // release them when they drain. Consumes the block (it is cleared).
  void FeedBlock(LineBlock&& block);

  // Feeds an already-parsed record (in-process producers).
  void FeedRecord(LogRecord record);

  // Pushes partial batches and broadcasts the current global watermark to
  // every shard so idle sessions close. Call once per poll iteration.
  void Flush();

  // Flushes, signals end of stream (shards FlushAll into the sink), and joins
  // the workers. Idempotent.
  void Finish();

  // Rendezvous for one checkpoint barrier (see BeginCheckpoint). Opaque to
  // callers; exposed only so CheckpointTicket can be named.
  struct CkptBarrier {
    std::mutex mu;
    std::condition_variable arrived_cv;  // Workers -> collector.
    std::condition_variable release_cv;  // Collector -> workers.
    size_t expected = 0;
    size_t arrived = 0;
    bool released = false;
    EventTime watermark = 0;  // Global ingest watermark when sealed.
    // Miner state at the seal position, exported by BeginCheckpoint on the
    // ingest thread (the collector may run on another thread after ingest
    // has mined past the barrier). Published to the collector by the ticket
    // hand-off, not by the barrier's own synchronization.
    bool has_miner = false;
    TemplateMinerState miner;
  };
  using CheckpointTicket = std::shared_ptr<CkptBarrier>;

  // Two-phase consistent snapshot, split so the expensive half can run on a
  // background thread (src/ckpt/async_checkpointer.h):
  //
  //   BeginCheckpoint()   — ingest thread. Seals a barrier batch (tagged with
  //                         the current global watermark, like a Flush tick)
  //                         into every shard queue and returns immediately;
  //                         ingest may keep feeding behind the marker. Returns
  //                         nullptr after Finish().
  //   CollectCheckpoint() — any thread. Blocks until every shard has drained
  //                         up to the barrier and paused on it — so all
  //                         pre-barrier session closes have reached the sink —
  //                         exports the merged LiveCloser state and the
  //                         barrier-aligned counters, runs `while_paused`
  //                         (the moment to copy the SessionStore: no sink call
  //                         can run, so the store holds exactly the sessions
  //                         closed by the barrier prefix), then releases the
  //                         shards.
  //
  // When `open_visitor` is non-null the open fragments are handed to it by
  // reference (still under the pause) instead of being deep-copied into the
  // returned checkpoint, whose `closers.open` stays empty; fragment counters
  // are exported either way. This is how the async writer serializes the —
  // typically dominant — open section straight into its output buffer.
  //
  // Exactly one CollectCheckpoint per ticket, and every ticket MUST be
  // collected before Finish() — paused workers never wake otherwise. At most
  // one barrier may be in flight at a time.
  CheckpointTicket BeginCheckpoint();
  PipelineCheckpoint CollectCheckpoint(
      const CheckpointTicket& ticket,
      const std::function<void()>& while_paused = nullptr,
      const LiveCloser::OpenFragmentVisitor& open_visitor = nullptr);

  // Synchronous convenience: BeginCheckpoint + CollectCheckpoint on the
  // calling (ingest) thread. Valid after Finish() too — the joined shards'
  // fragment counters still matter for a final snapshot.
  PipelineCheckpoint CaptureCheckpoint();

  // Restores a snapshot into a fresh pipeline: re-routes each open fragment
  // and fragment counter to its owning shard by SipHash(id) % workers (the
  // shard count may differ from the snapshotting run), and raises the global
  // and per-shard watermarks to the snapshot watermark. MUST be called before
  // the first Feed*/Flush — the workers have not touched their closers yet,
  // and the first queue push publishes the restored state to them.
  void RestoreCheckpoint(PipelineCheckpoint&& checkpoint);

  // --- Observability (any thread) ---

  size_t workers() const { return shards_.size(); }
  uint64_t records() const;           // Sum of shard records.
  uint64_t parse_failures() const;    // Sum of shard parse failures.
  uint64_t blank_lines() const { return blank_lines_.load(std::memory_order_relaxed); }
  uint64_t sessions_closed() const;   // Sum of shard emissions.
  size_t open_sessions() const;       // Sum of shard open maps.
  uint64_t backpressure_stalls() const {
    return backpressure_stalls_.load(std::memory_order_relaxed);
  }
  // Total ingest-thread time spent blocked on full shard queues (satellite
  // observability: locates the stall point in the overload study). Measured
  // only on the slow path — no clock reads while queues have room.
  int64_t backpressure_stall_ns() const;
  // Shed-policy accounting, summed across shards (all zero when off).
  uint64_t records_emitted() const;  // Records in sink-delivered sessions.
  uint64_t open_records() const;     // Records in still-open fragments.
  uint64_t shed_records() const;     // Records shed from open fragments.
  uint64_t shed_fragments() const;
  uint64_t shed_lines() const;       // Lines dropped pre-parse (head drop).
  // Min-across-shards processed watermark (0 until every shard has seen one).
  EventTime watermark() const;
  // Global ingest-side watermark (prefix max of event time).
  EventTime ingest_watermark() const { return ingest_watermark_; }

  // Per-template (id, hits, text) as of now, sorted by id; empty unless
  // mine_templates is set. Safe from any thread (the query server's TEMPLATES
  // handler calls it while ingest keeps mining).
  std::vector<TemplateInfo> TemplateSnapshot() const;
  // Learned templates / tree nodes (0 unless mine_templates); gauge reads.
  size_t template_count() const;
  size_t template_nodes() const;

  LiveShardSnapshot shard(size_t i) const;

  // Registers merged + per-shard gauges: <prefix>records, <prefix>parse_failures,
  // <prefix>open_sessions, <prefix>watermark_ms, <prefix>backpressure_stalls,
  // <prefix>backpressure_stall_us, <prefix>blank_lines, the shed-accounting
  // set (<prefix>records_emitted, <prefix>open_records, <prefix>shed_records,
  // <prefix>shed_fragments, <prefix>shed_lines — registered always, zero when
  // shedding is off) and per shard k: <prefix>shard<k>_open_sessions,
  // <prefix>shard<k>_records, <prefix>shard<k>_parse_failures,
  // <prefix>shard<k>_queue_depth, <prefix>shard<k>_shed_records,
  // <prefix>shard<k>_shed_lines, <prefix>shard<k>_stall_us.
  // The registry must not outlive the pipeline.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "live_") const;

  // Close-latency samples (ms), concatenated across shards. Call after
  // Finish(); only populated when record_close_latency is set.
  std::vector<double> CloseLatenciesMs() const;

 private:
  struct Item {
    // Wire text as a pre-scanned view into an arena the owning batch holds a
    // reference on (separator offsets found once, on the ingest thread — the
    // worker materializes without rescanning). Empty when `parsed`.
    RecordView view;
    LogRecord record;       // Populated when `parsed`.
    bool parsed = false;
    EventTime watermark = 0;  // Global prefix-max tag at this item's position.
  };
  struct Batch {
    std::vector<Item> items;
    // Keep-alive for every view in `items`: the ingest arenas these items
    // slice into. Destroying the batch (normal drain or shed head-drop) is
    // what releases the bytes.
    std::vector<ArenaRef> arenas;
    // Clear the worker's per-connection interning dictionaries before these
    // items (source reconnected). The dictionaries are content-addressed
    // caches, so the flag's batch granularity cannot affect output.
    bool reset_interners = false;
    EventTime watermark_end = 0;  // Global watermark when the batch was sealed.
    int64_t enqueue_steady_ns = 0;
    bool flush_all = false;  // End of stream: FlushAll after processing items.
    // Non-null on checkpoint barrier batches; the shared_ptr keeps the
    // rendezvous alive for the whole pause even if the collector moves on.
    CheckpointTicket barrier;
  };
  struct Shard {
    explicit Shard(size_t queue_capacity, EventTime inactivity_ns)
        : queue(queue_capacity), closer(inactivity_ns) {}
    FixedQueue<Batch> queue;
    LiveCloser closer;  // Worker-thread-owned after Start.
    std::thread worker;
    // Published by the worker, read by gauges.
    std::atomic<uint64_t> records{0};
    std::atomic<uint64_t> parse_failures{0};
    std::atomic<uint64_t> sessions_closed{0};
    std::atomic<size_t> open_sessions{0};
    std::atomic<size_t> open_bytes{0};
    std::atomic<int64_t> watermark{0};
    std::atomic<int64_t> cpu_ns{0};
    std::atomic<uint64_t> records_emitted{0};
    std::atomic<uint64_t> open_records{0};
    std::atomic<uint64_t> shed_records{0};
    std::atomic<uint64_t> shed_fragments{0};
    std::atomic<uint64_t> shed_lines{0};   // Ingest-thread head drops.
    std::atomic<int64_t> stall_ns{0};      // Ingest-thread blocked-push time.
    std::vector<double> close_latencies_ms;  // Worker-owned until join.
    Batch pending;  // Ingest-thread-owned accumulation buffer.
    EventTime last_tick_watermark = -1;
  };

  // Common ingest step for both Feed paths: `line` (already newline/CR
  // trimmed, nonempty) is a view into `*arena`. Scans, optionally mines (the
  // rewritten line is copied into the pipeline's own arena), routes.
  void FeedView(std::string_view line, const ArenaRef& arena);
  void Route(Item item, size_t shard_index, const ArenaRef& arena);
  void SealAndPush(Shard& shard);
  void WorkerLoop(size_t shard_index);
  // Ensures feed_arena_ exists and is under the rotation threshold.
  void RotateFeedArena();

  LivePipelineOptions options_;
  SessionSink sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  EventTime ingest_watermark_ = 0;  // Ingest thread only.
  // Backing storage for FeedLine copies and mined rewrites; rotated so
  // drained batches can release old bytes. Ingest thread only.
  ArenaRef feed_arena_;
  // Mutated on the ingest thread only; the mutex exists for TemplateSnapshot
  // readers (query server) and the gauges.
  mutable std::mutex miner_mu_;
  std::unique_ptr<TemplateMiner> miner_;  // Non-null iff mine_templates.
  std::string miner_scratch_;             // Ingest thread only.
  std::atomic<uint64_t> blank_lines_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  bool finished_ = false;
};

}  // namespace ts

#endif  // SRC_CORE_LIVE_PIPELINE_H_
