#include "src/analytics/dependency_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace ts {

void DependencyGraph::AddTree(const TraceTree& tree) {
  for (const auto& node : tree.nodes()) {
    if (node.parent < 0 || node.inferred) {
      continue;
    }
    const auto& parent = tree.nodes()[static_cast<size_t>(node.parent)];
    if (parent.inferred || parent.service == node.service) {
      continue;  // Self-calls carry no dependency information.
    }
    const auto key = std::make_pair(parent.service, node.service);
    auto [it, inserted] = edges_.emplace(key, EdgeStats{});
    it->second.calls += 1;
    it->second.child_latency_ms.Add(static_cast<double>(node.end - node.start) /
                                    1e6);
    ++total_calls_;
    if (inserted) {
      out_[parent.service].push_back(node.service);
      in_[node.service].push_back(parent.service);
    }
  }
}

std::vector<std::pair<uint32_t, const DependencyGraph::EdgeStats*>>
DependencyGraph::Callees(uint32_t service) const {
  std::vector<std::pair<uint32_t, const EdgeStats*>> out;
  auto it = out_.find(service);
  if (it == out_.end()) {
    return out;
  }
  for (uint32_t callee : it->second) {
    out.emplace_back(callee, &edges_.at({service, callee}));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second->calls > b.second->calls;
  });
  return out;
}

std::vector<uint32_t> DependencyGraph::Callers(uint32_t service) const {
  auto it = in_.find(service);
  return it == in_.end() ? std::vector<uint32_t>{} : it->second;
}

std::vector<uint32_t> DependencyGraph::Closure(uint32_t service,
                                               bool downstream) const {
  const auto& adjacency = downstream ? out_ : in_;
  std::set<uint32_t> seen;
  std::deque<uint32_t> queue = {service};
  while (!queue.empty()) {
    const uint32_t s = queue.front();
    queue.pop_front();
    auto it = adjacency.find(s);
    if (it == adjacency.end()) {
      continue;
    }
    for (uint32_t next : it->second) {
      if (next != service && seen.insert(next).second) {
        queue.push_back(next);
      }
    }
  }
  return std::vector<uint32_t>(seen.begin(), seen.end());
}

std::vector<uint32_t> DependencyGraph::DependsOn(uint32_t service) const {
  return Closure(service, /*downstream=*/true);
}

std::vector<uint32_t> DependencyGraph::ImpactedBy(uint32_t service) const {
  return Closure(service, /*downstream=*/false);
}

std::vector<std::pair<std::pair<uint32_t, uint32_t>, uint64_t>>
DependencyGraph::HeaviestEdges(size_t k) const {
  std::vector<std::pair<std::pair<uint32_t, uint32_t>, uint64_t>> all;
  all.reserve(edges_.size());
  for (const auto& [edge, stats] : edges_) {
    all.emplace_back(edge, stats.calls);
  }
  const size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep), all.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second ||
                             (a.second == b.second && a.first < b.first);
                    });
  all.resize(keep);
  return all;
}

}  // namespace ts
