// Order-independent identity digests over closed-session output.
//
// The live pipeline's determinism contract (DESIGN.md, bench/fig5) says the
// multiset of closed sessions — and the bytes a store query returns for each
// id — are a pure function of the arrival stream: worker count, shard
// interleaving, reconnects, and injected faults must not change them. These
// helpers turn that contract into two comparable 64-bit values:
//
//   * SessionDigest(s): SipHash of a session's canonical bytes (id, fragment
//     index, epochs, close time, every record re-serialized to wire format).
//     XOR the per-session digests together and sink order drops out, so the
//     combined value is a multiset identity usable across any concurrency.
//   * ChainedStoreDigest(store, ids): replays each id through
//     GetAllFragments in sorted-id order and chains the hashes, so fragment
//     order *within* an id still matters — the bytes a ts_query client sees.
//
// Shared by bench/fig5_live_scaling (worker-count identity) and
// tests/fault_conformance_test (fault-schedule identity).
#ifndef SRC_ANALYTICS_SESSION_DIGEST_H_
#define SRC_ANALYTICS_SESSION_DIGEST_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/analytics/session_store.h"
#include "src/common/siphash.h"
#include "src/core/session.h"
#include "src/log/wire_format.h"

namespace ts {

// Digest of one closed session's canonical bytes. Callers XOR these across
// sessions to get an order-independent multiset digest. `scratch` amortizes
// the serialization buffer across calls.
inline uint64_t SessionDigest(const Session& s, std::string* scratch) {
  scratch->clear();
  scratch->append(s.id);
  scratch->push_back('#');
  scratch->append(std::to_string(s.fragment_index));
  scratch->push_back('@');
  scratch->append(std::to_string(s.first_epoch));
  scratch->push_back('-');
  scratch->append(std::to_string(s.last_epoch));
  scratch->push_back(':');
  scratch->append(std::to_string(s.closed_at));
  for (const auto& r : s.records) {
    scratch->push_back('\n');
    AppendWireFormat(r, scratch);
  }
  return SipHash24(*scratch);
}

// Store-query byte-equality: replays every session id (deterministic sorted
// order) through GetAllFragments and hashes the serialized answers. The
// chaining step makes fragment order within an id significant, because those
// are the bytes a query client receives in that order.
inline uint64_t ChainedStoreDigest(const SessionStore& store,
                                   const std::set<std::string>& ids) {
  std::string canon;
  uint64_t digest = 0;
  for (const auto& id : ids) {
    for (const auto& s : store.GetAllFragments(id)) {
      digest ^= SessionDigest(s, &canon);
      digest = SipHash24(digest);
    }
  }
  return digest;
}

}  // namespace ts

#endif  // SRC_ANALYTICS_SESSION_DIGEST_H_
