// Per-epoch Top-K ranking as a two-stage data-parallel operator (§4.3: the
// re-usable library "extends the Timely framework with Top-K ranking,
// histograms and CDFs").
//
// Stage 1 exchanges items by key so each key is counted exactly once, then
// emits each worker's local top-k candidates on epoch completion. Stage 2
// gathers candidates on worker 0 and emits the global ranking. Because keys are
// disjoint across workers after the exchange, the global top-k is always
// contained in the union of local top-k lists — the result is exact.
#ifndef SRC_ANALYTICS_TOPK_H_
#define SRC_ANALYTICS_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/timely/scope.h"

namespace ts {

template <typename Key>
struct TopKResult {
  Epoch epoch = 0;
  // (key, count), descending by count; ties broken by key for determinism.
  std::vector<std::pair<Key, uint64_t>> entries;
};

template <typename Key>
struct KeyCount {
  Key key;
  uint64_t count = 0;
};

// Counts occurrences of key_fn(item) per epoch and emits the global top `k`
// each epoch. `key_hash` routes the count exchange.
template <typename In, typename Key>
Stream<TopKResult<Key>> TopKPerEpoch(Scope& scope, const Stream<In>& items,
                                     size_t k, std::function<Key(const In&)> key_fn,
                                     std::function<uint64_t(const Key&)> key_hash,
                                     const std::string& name) {
  using Candidate = KeyCount<Key>;

  // Stage 1: exact per-key counts (keys partitioned across workers).
  struct CountState {
    std::map<Epoch, std::unordered_map<Key, uint64_t>> per_epoch;
  };
  auto count_state = std::make_shared<CountState>();
  auto key_fn_shared = std::make_shared<std::function<Key(const In&)>>(std::move(key_fn));
  auto hash_shared =
      std::make_shared<std::function<uint64_t(const Key&)>>(std::move(key_hash));

  auto candidates = scope.template Unary<In, Candidate>(
      items,
      Partition<In>::ByKey([key_fn_shared, hash_shared](const In& item) {
        return (*hash_shared)((*key_fn_shared)(item));
      }),
      name + "/count",
      [count_state, key_fn_shared](Epoch e, std::vector<In>& data,
                                   OutputSession<Candidate>&,
                                   NotificatorHandle& notificator) {
        auto& counts = count_state->per_epoch[e];
        for (const auto& item : data) {
          ++counts[(*key_fn_shared)(item)];
        }
        notificator.NotifyAt(e);
      },
      [count_state, k](Epoch e, OutputSession<Candidate>& out, NotificatorHandle&) {
        auto it = count_state->per_epoch.find(e);
        if (it == count_state->per_epoch.end()) {
          return;
        }
        std::vector<Candidate> local;
        local.reserve(it->second.size());
        for (auto& [key, count] : it->second) {
          local.push_back(Candidate{key, count});
        }
        const size_t keep = std::min(k, local.size());
        std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.count > b.count ||
                                   (a.count == b.count && a.key < b.key);
                          });
        local.resize(keep);
        for (auto& c : local) {
          out.Give(e, std::move(c));
        }
        count_state->per_epoch.erase(it);
      });

  // Stage 2: gather candidates on worker 0 and rank globally.
  struct MergeState {
    std::map<Epoch, std::vector<Candidate>> per_epoch;
  };
  auto merge_state = std::make_shared<MergeState>();

  return scope.template Unary<Candidate, TopKResult<Key>>(
      candidates,
      Partition<Candidate>::ByKey([](const Candidate&) { return uint64_t{0}; }),
      name + "/merge",
      [merge_state](Epoch e, std::vector<Candidate>& data,
                    OutputSession<TopKResult<Key>>&, NotificatorHandle& notificator) {
        auto& staged = merge_state->per_epoch[e];
        for (auto& c : data) {
          staged.push_back(std::move(c));
        }
        notificator.NotifyAt(e);
      },
      [merge_state, k](Epoch e, OutputSession<TopKResult<Key>>& out,
                       NotificatorHandle&) {
        auto it = merge_state->per_epoch.find(e);
        if (it == merge_state->per_epoch.end()) {
          return;
        }
        auto& staged = it->second;
        const size_t keep = std::min(k, staged.size());
        std::partial_sort(staged.begin(), staged.begin() + keep, staged.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.count > b.count ||
                                   (a.count == b.count && a.key < b.key);
                          });
        TopKResult<Key> result;
        result.epoch = e;
        result.entries.reserve(keep);
        for (size_t i = 0; i < keep; ++i) {
          result.entries.emplace_back(std::move(staged[i].key), staged[i].count);
        }
        out.Give(e, std::move(result));
        merge_state->per_epoch.erase(it);
      });
}

}  // namespace ts

#endif  // SRC_ANALYTICS_TOPK_H_
