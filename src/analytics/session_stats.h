// First-level session statistics as composable dataflow stages (§4.3, §5.2):
// trace-tree durations (log-discretized histogram), session timespans, span
// counts, and service-invocation counts.
#ifndef SRC_ANALYTICS_SESSION_STATS_H_
#define SRC_ANALYTICS_SESSION_STATS_H_

#include <memory>
#include <string>

#include "src/analytics/collectors.h"
#include "src/common/time_util.h"
#include "src/core/session.h"
#include "src/core/trace_tree.h"
#include "src/timely/scope.h"

namespace ts {

// "trees.filter(|t| t.messages.len() >= 2).map(|t| min_max_time(t.messages))
//  .histogram(|x| log_discretize(x))" — trace-tree durations in milliseconds,
// log-discretized. Returns the shared histogram (read after the run).
inline std::shared_ptr<ConcurrentLogHistogram> TreeDurationHistogram(
    Scope& scope, const Stream<TraceTree>& trees) {
  auto hist = std::make_shared<ConcurrentLogHistogram>();
  auto multi = scope.Filter<TraceTree>(
      trees, "multi_message_trees",
      [](const TraceTree& t) { return t.total_records() >= 2; });
  scope.Sink<TraceTree>(multi, "duration_histogram",
                        [hist](Epoch, std::vector<TraceTree>& data) {
                          for (const auto& t : data) {
                            hist->Add(static_cast<double>(t.Duration()) /
                                      static_cast<double>(kNanosPerMilli));
                          }
                        });
  return hist;
}

// Session total timespans (ms) collected as raw samples.
inline std::shared_ptr<ConcurrentSamples> SessionDurations(
    Scope& scope, const Stream<Session>& sessions) {
  auto samples = std::make_shared<ConcurrentSamples>();
  scope.Sink<Session>(sessions, "session_durations",
                      [samples](Epoch, std::vector<Session>& data) {
                        for (const auto& s : data) {
                          samples->Add(static_cast<double>(s.Duration()) /
                                       static_cast<double>(kNanosPerMilli));
                        }
                      });
  return samples;
}

// Distinct services invoked per trace tree (the Figure 4 histogram).
inline std::shared_ptr<ConcurrentSamples> ServiceInvocationCounts(
    Scope& scope, const Stream<TraceTree>& trees) {
  auto samples = std::make_shared<ConcurrentSamples>();
  scope.Sink<TraceTree>(trees, "service_invocations",
                        [samples](Epoch, std::vector<TraceTree>& data) {
                          for (const auto& t : data) {
                            samples->Add(static_cast<double>(t.DistinctServices()));
                          }
                        });
  return samples;
}

}  // namespace ts

#endif  // SRC_ANALYTICS_SESSION_STATS_H_
