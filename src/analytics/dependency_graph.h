// Service dependency extraction (§5.2 lists it among the analyses enabled by
// sessionization output).
//
// Aggregates trace-tree parent->child service pairs into a weighted dependency
// digraph: per-edge invocation counts and child-span latency statistics, plus
// reachability queries ("what does svc X transitively depend on", "who is
// impacted if svc X degrades") — the questions asked when planning maintenance
// or choosing replica placement for hot pairs.
#ifndef SRC_ANALYTICS_DEPENDENCY_GRAPH_H_
#define SRC_ANALYTICS_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/core/trace_tree.h"

namespace ts {

class DependencyGraph {
 public:
  struct EdgeStats {
    uint64_t calls = 0;
    OnlineStats child_latency_ms;  // Observed child span durations.
  };

  // Folds one trace tree into the graph: every observed parent->child span
  // edge contributes a call and the child's duration.
  void AddTree(const TraceTree& tree);

  // Direct callees of `service` with their edge stats, ordered by call count
  // (descending).
  std::vector<std::pair<uint32_t, const EdgeStats*>> Callees(uint32_t service) const;

  // Direct callers of `service`.
  std::vector<uint32_t> Callers(uint32_t service) const;

  // Transitive closure downstream of `service` (services it depends on).
  std::vector<uint32_t> DependsOn(uint32_t service) const;

  // Transitive closure upstream of `service` (services impacted by it).
  std::vector<uint32_t> ImpactedBy(uint32_t service) const;

  // The `k` heaviest edges by call count (the paper's replica-placement hint).
  std::vector<std::pair<std::pair<uint32_t, uint32_t>, uint64_t>> HeaviestEdges(
      size_t k) const;

  size_t num_edges() const { return edges_.size(); }
  uint64_t total_calls() const { return total_calls_; }

 private:
  std::vector<uint32_t> Closure(uint32_t service, bool downstream) const;

  std::map<std::pair<uint32_t, uint32_t>, EdgeStats> edges_;
  std::map<uint32_t, std::vector<uint32_t>> out_;  // Adjacency (unique).
  std::map<uint32_t, std::vector<uint32_t>> in_;   // Reverse adjacency.
  uint64_t total_calls_ = 0;
};

}  // namespace ts

#endif  // SRC_ANALYTICS_DEPENDENCY_GRAPH_H_
