// Thread-safe result collectors used at the edge of a dataflow: workers run on
// their own threads, so anything a Sink writes into shared memory for the
// application to read afterwards goes through these.
#ifndef SRC_ANALYTICS_COLLECTORS_H_
#define SRC_ANALYTICS_COLLECTORS_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/timely/scope.h"

namespace ts {

// Append-only vector with a mutex; safe from any worker.
template <typename T>
class ConcurrentCollector {
 public:
  void Add(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(value));
  }
  void AddAll(std::vector<T>& values) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& v : values) {
      items_.push_back(std::move(v));
    }
  }
  // Safe only after the computation joined.
  std::vector<T>& items() { return items_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> items_;
};

// Shared numeric sample sink (durations, gaps, latencies).
class ConcurrentSamples {
 public:
  void Add(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.Add(v);
  }
  // Safe only after the computation joined.
  SampleSet& samples() { return samples_; }

 private:
  std::mutex mu_;
  SampleSet samples_;
};

// Shared log-discretized histogram sink.
class ConcurrentLogHistogram {
 public:
  void Add(double v, uint64_t weight = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(v, weight);
  }
  // Safe only after the computation joined.
  LogHistogram& histogram() { return hist_; }

 private:
  std::mutex mu_;
  LogHistogram hist_;
};

// Attaches a sink that collects every record of `stream` into a collector.
template <typename T>
std::shared_ptr<ConcurrentCollector<T>> CollectInto(
    Scope& scope, const Stream<T>& stream,
    std::shared_ptr<ConcurrentCollector<T>> collector, const std::string& name) {
  scope.template Sink<T>(stream, name, [collector](Epoch, std::vector<T>& data) {
    collector->AddAll(data);
  });
  return collector;
}

}  // namespace ts

#endif  // SRC_ANALYTICS_COLLECTORS_H_
