// Per-epoch distributed histograms (§4.3: the reusable library "extends the
// Timely framework with Top-K ranking, histograms and CDFs").
//
// Stage 1 builds a log-discretized partial histogram per worker per epoch and
// emits it on epoch completion; stage 2 merges the partials on worker 0 and
// emits one EpochHistogram per epoch. CDFs follow directly from the merged
// buckets (Cdf()).
#ifndef SRC_ANALYTICS_HISTOGRAM_OP_H_
#define SRC_ANALYTICS_HISTOGRAM_OP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/timely/scope.h"

namespace ts {

struct EpochHistogram {
  Epoch epoch = 0;
  // Log2 bucket -> count; bucket b covers values in [2^b, 2^(b+1)).
  std::map<int, uint64_t> buckets;
  uint64_t total = 0;

  // Cumulative distribution points (bucket upper bound exponent, fraction).
  std::vector<std::pair<int, double>> Cdf() const {
    std::vector<std::pair<int, double>> out;
    if (total == 0) {
      return out;
    }
    uint64_t acc = 0;
    for (const auto& [bucket, count] : buckets) {
      acc += count;
      out.emplace_back(bucket, static_cast<double>(acc) / static_cast<double>(total));
    }
    return out;
  }
};

// Internal partial: one worker's per-epoch buckets.
struct HistogramPartial {
  Epoch epoch = 0;
  std::vector<std::pair<int, uint64_t>> buckets;
};

// Builds the histogram stage over value_fn(item), log-discretized. Emits one
// merged EpochHistogram per epoch (on worker 0's instance).
template <typename In>
Stream<EpochHistogram> HistogramPerEpoch(Scope& scope, const Stream<In>& items,
                                         std::function<double(const In&)> value_fn,
                                         const std::string& name) {
  // Stage 1: worker-local partial histograms (pipeline edge: no shuffle).
  struct LocalState {
    std::map<Epoch, std::map<int, uint64_t>> per_epoch;
  };
  auto local = std::make_shared<LocalState>();
  auto value_fn_shared =
      std::make_shared<std::function<double(const In&)>>(std::move(value_fn));

  auto partials = scope.template Unary<In, HistogramPartial>(
      items, Partition<In>::Pipeline(), name + "/local",
      [local, value_fn_shared](Epoch e, std::vector<In>& data,
                               OutputSession<HistogramPartial>&,
                               NotificatorHandle& notificator) {
        auto& buckets = local->per_epoch[e];
        for (const auto& item : data) {
          ++buckets[LogDiscretize((*value_fn_shared)(item))];
        }
        notificator.NotifyAt(e);
      },
      [local](Epoch e, OutputSession<HistogramPartial>& out, NotificatorHandle&) {
        auto it = local->per_epoch.find(e);
        if (it == local->per_epoch.end()) {
          return;
        }
        HistogramPartial partial;
        partial.epoch = e;
        partial.buckets.assign(it->second.begin(), it->second.end());
        out.Give(e, std::move(partial));
        local->per_epoch.erase(it);
      });

  // Stage 2: merge on worker 0.
  struct MergeState {
    std::map<Epoch, EpochHistogram> per_epoch;
  };
  auto merge = std::make_shared<MergeState>();
  return scope.template Unary<HistogramPartial, EpochHistogram>(
      partials,
      Partition<HistogramPartial>::ByKey(
          [](const HistogramPartial&) { return uint64_t{0}; }),
      name + "/merge",
      [merge](Epoch e, std::vector<HistogramPartial>& data,
              OutputSession<EpochHistogram>&, NotificatorHandle& notificator) {
        auto& merged = merge->per_epoch[e];
        merged.epoch = e;
        for (const auto& partial : data) {
          for (const auto& [bucket, count] : partial.buckets) {
            merged.buckets[bucket] += count;
            merged.total += count;
          }
        }
        notificator.NotifyAt(e);
      },
      [merge](Epoch e, OutputSession<EpochHistogram>& out, NotificatorHandle&) {
        auto it = merge->per_epoch.find(e);
        if (it == merge->per_epoch.end()) {
          return;
        }
        out.Give(e, std::move(it->second));
        merge->per_epoch.erase(it);
      });
}

}  // namespace ts

#endif  // SRC_ANALYTICS_HISTOGRAM_OP_H_
