#include "src/analytics/session_store.h"

#include <algorithm>

namespace ts {

SessionStore::EntryList::iterator SessionStore::InsertLocked(Session session) {
  Entry entry;
  entry.bytes = session.MemoryFootprint();
  entry.min_time = session.MinTime();
  entry.max_time = session.MaxTime();
  entry.seq = next_seq_++;
  entry.services.reserve(session.records.size());
  for (const auto& r : session.records) {
    entry.services.push_back(r.service);
  }
  std::sort(entry.services.begin(), entry.services.end());
  entry.services.erase(
      std::unique(entry.services.begin(), entry.services.end()),
      entry.services.end());
  entry.session = std::move(session);

  entries_.push_back(std::move(entry));
  auto it = std::prev(entries_.end());
  by_id_[{it->session.id, it->session.fragment_index}] = it;
  for (uint32_t s : it->services) {
    by_service_[s].push_back(it);
  }
  by_time_.emplace(it->min_time, it);

  stats_.bytes += it->bytes;
  ++stats_.sessions;
  ++stats_.inserted;
  return it;
}

void SessionStore::Insert(Session session) {
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = InsertLocked(std::move(session));
    // Victims are handed to the sink under mu_, so removal from the hot
    // window and arrival in the next tier are one atomic step — a concurrent
    // query always finds the session in exactly one tier, and sink calls
    // across the N inserting shard workers are serialized in eviction order.
    evicted = EvictIfNeeded();
    // `it` survives eviction: EvictIfNeeded never removes the newest entry.
    for (const auto& [token, observer] : observers_) {
      observer(it->session);
    }
  }
  // Outside mu_: blocking backpressure (and anything that needs to query the
  // store) lives in the barrier, not the sink.
  if (evicted && eviction_barrier_) {
    eviction_barrier_();
  }
}

void SessionStore::Unindex(EntryList::iterator it) {
  by_id_.erase({it->session.id, it->session.fragment_index});
  // The entry's service set is recorded at insert, so each service index is
  // trimmed directly — no scan over unrelated services. Eviction order is
  // insertion order, hence the victim is at (or near) the vector front.
  for (uint32_t s : it->services) {
    auto by_service = by_service_.find(s);
    if (by_service == by_service_.end()) {
      continue;
    }
    auto& list = by_service->second;
    auto pos = std::find(list.begin(), list.end(), it);
    if (pos != list.end()) {
      list.erase(pos);
    }
    if (list.empty()) {
      by_service_.erase(by_service);  // Keep dead services from accumulating.
    }
  }
  auto range = by_time_.equal_range(it->min_time);
  for (auto t = range.first; t != range.second; ++t) {
    if (t->second == it) {
      by_time_.erase(t);
      break;
    }
  }
}

bool SessionStore::EvictIfNeeded() {
  bool evicted = false;
  while (stats_.bytes > options_.max_bytes && entries_.size() > 1) {
    auto oldest = entries_.begin();
    stats_.bytes -= oldest->bytes;
    --stats_.sessions;
    ++stats_.evicted;
    evicted = true;
    Unindex(oldest);
    if (eviction_sink_) {
      eviction_sink_(std::move(oldest->session));
    }
    entries_.erase(oldest);
  }
  return evicted;
}

std::optional<Session> SessionStore::GetById(const std::string& id,
                                             uint32_t fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find({id, fragment});
  if (it == by_id_.end()) {
    return std::nullopt;
  }
  return it->second->session;
}

std::vector<Session> SessionStore::GetAllFragments(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  // by_id_ is ordered: fragments of one id are contiguous and ascending.
  for (auto it = by_id_.lower_bound({id, 0});
       it != by_id_.end() && it->first.first == id; ++it) {
    out.push_back(it->second->session);
  }
  return out;
}

std::vector<Session> SessionStore::QueryByService(uint32_t service,
                                                  size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  auto it = by_service_.find(service);
  if (it == by_service_.end()) {
    return out;
  }
  // Newest first.
  for (auto entry = it->second.rbegin(); entry != it->second.rend(); ++entry) {
    if (out.size() >= limit) {
      break;
    }
    out.push_back((*entry)->session);
  }
  return out;
}

std::vector<Session> SessionStore::QueryByTimeRange(EventTime lo, EventTime hi,
                                                    size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  if (limit == 0) {
    return out;
  }
  // by_time_ is ordered by start time, so results come out start-ordered and
  // the scan stops at the first entry starting at/after `hi` — or as soon as
  // `limit` intersecting sessions are found.
  for (auto it = by_time_.begin(); it != by_time_.end() && it->first < hi; ++it) {
    if (it->second->max_time >= lo) {
      out.push_back(it->second->session);
      if (out.size() >= limit) {
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<uint32_t, size_t>> SessionStore::TopServices(
    size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint32_t, size_t>> ranked;
  ranked.reserve(by_service_.size());
  for (const auto& [service, list] : by_service_) {
    ranked.emplace_back(service, list.size());
  }
  const size_t keep = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second ||
                             (a.second == b.second && a.first < b.first);
                    });
  ranked.resize(keep);
  return ranked;
}

bool SessionStore::Contains(const std::string& id, uint32_t fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.find({id, fragment}) != by_id_.end();
}

void SessionStore::ForEachSession(
    const std::function<void(const Session&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    fn(entry.session);
  }
}

SessionStore::SeqWindow SessionStore::ForEachSessionSince(
    uint64_t min_seq, const std::function<void(const Session&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  SeqWindow window;
  window.next = next_seq_;
  window.oldest = entries_.empty() ? next_seq_ : entries_.front().seq;
  auto it = entries_.end();
  while (it != entries_.begin() && std::prev(it)->seq >= min_seq) {
    --it;
  }
  for (; it != entries_.end(); ++it) {
    fn(it->session);
  }
  return window;
}

void SessionStore::ImportSnapshot(std::vector<Session> sessions,
                                  uint64_t inserted, uint64_t evicted) {
  bool spilled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& session : sessions) {
      InsertLocked(std::move(session));
    }
    // A restore into a smaller budget re-spills (sink under mu_, like
    // Insert); the cold tier dedupes anything that was already durable, and
    // prefix order is preserved (oldest first).
    spilled = EvictIfNeeded();
    // Lifetime counters continue from the snapshot, not from the rebuild: the
    // rebuild itself is not an insert the pre-crash run didn't already count.
    stats_.inserted = inserted;
    stats_.evicted = evicted;
  }
  if (spilled && eviction_barrier_) {
    eviction_barrier_();
  }
}

SessionStore::Stats SessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SessionStore::SetEvictionSink(EvictionSink sink, EvictionBarrier barrier) {
  std::lock_guard<std::mutex> lock(mu_);
  eviction_sink_ = std::move(sink);
  eviction_barrier_ = std::move(barrier);
}

uint64_t SessionStore::AddInsertObserver(InsertObserver fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_observer_token_++;
  observers_.emplace_back(token, std::move(fn));
  return token;
}

void SessionStore::RemoveInsertObserver(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < observers_.size(); ++i) {
    if (observers_[i].first == token) {
      observers_.erase(observers_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace ts
