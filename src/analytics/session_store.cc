#include "src/analytics/session_store.h"

#include <algorithm>
#include <set>

namespace ts {

void SessionStore::Insert(Session session) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.bytes = session.MemoryFootprint();
  entry.min_time = session.MinTime();
  entry.max_time = session.MaxTime();
  entry.seq = next_seq_++;
  entry.session = std::move(session);

  entries_.push_back(std::move(entry));
  auto it = std::prev(entries_.end());
  by_id_[{it->session.id, it->session.fragment_index}] = it;
  std::set<uint32_t> services;
  for (const auto& r : it->session.records) {
    services.insert(r.service);
  }
  for (uint32_t s : services) {
    by_service_[s].push_back(it);
  }
  by_time_.emplace(it->min_time, it);

  stats_.bytes += it->bytes;
  ++stats_.sessions;
  ++stats_.inserted;
  EvictIfNeeded();
}

void SessionStore::Unindex(EntryList::iterator it) {
  by_id_.erase({it->session.id, it->session.fragment_index});
  // Service index entries are cleaned lazily at query time (they hold list
  // iterators which become invalid); mark via the seq set below.
  auto range = by_time_.equal_range(it->min_time);
  for (auto t = range.first; t != range.second; ++t) {
    if (t->second == it) {
      by_time_.erase(t);
      break;
    }
  }
}

void SessionStore::EvictIfNeeded() {
  while (stats_.bytes > options_.max_bytes && entries_.size() > 1) {
    auto oldest = entries_.begin();
    stats_.bytes -= oldest->bytes;
    --stats_.sessions;
    ++stats_.evicted;
    Unindex(oldest);
    // Purge dangling service-index references to this entry.
    for (auto& [service, list] : by_service_) {
      list.erase(std::remove(list.begin(), list.end(), oldest), list.end());
    }
    entries_.erase(oldest);
  }
}

std::optional<Session> SessionStore::GetById(const std::string& id,
                                             uint32_t fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find({id, fragment});
  if (it == by_id_.end()) {
    return std::nullopt;
  }
  return it->second->session;
}

std::vector<Session> SessionStore::GetAllFragments(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  // by_id_ is ordered: fragments of one id are contiguous and ascending.
  for (auto it = by_id_.lower_bound({id, 0});
       it != by_id_.end() && it->first.first == id; ++it) {
    out.push_back(it->second->session);
  }
  return out;
}

std::vector<Session> SessionStore::QueryByService(uint32_t service,
                                                  size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  auto it = by_service_.find(service);
  if (it == by_service_.end()) {
    return out;
  }
  // Newest first.
  for (auto entry = it->second.rbegin(); entry != it->second.rend(); ++entry) {
    out.push_back((*entry)->session);
    if (out.size() == limit) {
      break;
    }
  }
  return out;
}

std::vector<Session> SessionStore::QueryByTimeRange(EventTime lo, EventTime hi,
                                                    size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Session> out;
  // Entries starting before `hi`; intersect if their max_time >= lo.
  for (auto it = by_time_.begin(); it != by_time_.end() && it->first < hi; ++it) {
    if (it->second->max_time >= lo) {
      out.push_back(it->second->session);
      if (out.size() == limit) {
        break;
      }
    }
  }
  return out;
}

SessionStore::Stats SessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ts
