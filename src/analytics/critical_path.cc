#include "src/analytics/critical_path.h"

#include <algorithm>

namespace ts {
namespace {

// Effective interval of a node: observed times, or the hull of its children
// for inferred nodes.
struct Interval {
  EventTime start = 0;
  EventTime end = 0;
  bool valid = false;
};

Interval EffectiveInterval(const TraceTree& tree, int node,
                           std::vector<Interval>& memo) {
  Interval& m = memo[static_cast<size_t>(node)];
  if (m.valid) {
    return m;
  }
  const TraceNode& n = tree.nodes()[static_cast<size_t>(node)];
  Interval result;
  if (!n.inferred) {
    result = {n.start, n.end, true};
  }
  for (int c : n.children) {
    const Interval child = EffectiveInterval(tree, c, memo);
    if (!child.valid) {
      continue;
    }
    if (!result.valid) {
      result = child;
    } else {
      result.start = std::min(result.start, child.start);
      result.end = std::max(result.end, child.end);
    }
  }
  m = result;
  m.valid = true;
  return m;
}

}  // namespace

CriticalPath ComputeCriticalPath(const TraceTree& tree) {
  CriticalPath path;
  std::vector<Interval> memo(tree.nodes().size());
  const Interval root = EffectiveInterval(tree, 0, memo);
  path.total_ns = root.end - root.start;

  int cur = 0;
  for (;;) {
    const TraceNode& n = tree.nodes()[static_cast<size_t>(cur)];
    // Blocking child: latest effective end time.
    int blocker = -1;
    EventTime blocker_end = 0;
    for (int c : n.children) {
      const Interval ci = memo[static_cast<size_t>(c)];
      if (ci.end > blocker_end || blocker == -1) {
        blocker = c;
        blocker_end = ci.end;
      }
    }
    const Interval cur_interval = memo[static_cast<size_t>(cur)];
    CriticalPathStep step;
    step.node = cur;
    step.service = n.service;
    if (blocker == -1) {
      // Leaf of the path: charged its whole interval.
      step.exclusive_ns = cur_interval.end - cur_interval.start;
      path.steps.push_back(step);
      break;
    }
    const Interval bi = memo[static_cast<size_t>(blocker)];
    // Head (before the blocking child starts) + tail (after it ends), clamped
    // so skewed children never produce negative charges.
    const EventTime head = std::max<EventTime>(0, bi.start - cur_interval.start);
    const EventTime tail = std::max<EventTime>(0, cur_interval.end - bi.end);
    step.exclusive_ns = head + tail;
    path.steps.push_back(step);
    cur = blocker;
  }
  return path;
}

}  // namespace ts
