// Bounded in-memory store of recently reconstructed sessions — the substrate
// behind the architecture's "UI: Query interface, Live visualization" box
// (Figure 2). Sessionization output streams in; operators and dashboards query
// by session ID, by service, or by time range; memory is bounded by evicting
// the oldest-closed sessions first.
//
// Thread-safe: sinks on worker threads insert concurrently with queries.
#ifndef SRC_ANALYTICS_SESSION_STORE_H_
#define SRC_ANALYTICS_SESSION_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/timely/scope.h"

namespace ts {

class SessionStore {
 public:
  struct Options {
    size_t max_bytes = 256ull << 20;  // Eviction threshold.
  };

  struct Stats {
    size_t sessions = 0;
    size_t bytes = 0;
    uint64_t inserted = 0;
    uint64_t evicted = 0;
  };

  SessionStore() : SessionStore(Options()) {}
  explicit SessionStore(const Options& options) : options_(options) {}

  // Inserts a reconstructed session (typically from a dataflow sink). A later
  // fragment of the same ID is stored as its own entry.
  void Insert(Session session);

  // Exact lookup by (session id, fragment index).
  std::optional<Session> GetById(const std::string& id, uint32_t fragment = 0) const;

  // All stored fragments of a session id, oldest first.
  std::vector<Session> GetAllFragments(const std::string& id) const;

  // Most recently closed sessions that invoked `service`, up to `limit`.
  std::vector<Session> QueryByService(uint32_t service, size_t limit) const;

  // Sessions whose event-time extent intersects [lo, hi), up to `limit`,
  // ordered by start time. limit == 0 returns nothing.
  std::vector<Session> QueryByTimeRange(EventTime lo, EventTime hi,
                                        size_t limit) const;

  // The `k` services touched by the most live (non-evicted) sessions, as
  // (service, session count) descending by count, ties broken by service id.
  // Feeds the query protocol's TOPK verb.
  std::vector<std::pair<uint32_t, size_t>> TopServices(size_t k) const;

  // True when (id, fragment) is currently stored — the ts_ckpt restore path's
  // replay-window dedupe guard.
  bool Contains(const std::string& id, uint32_t fragment) const;

  Stats stats() const;

  // --- Snapshot support (ts_ckpt) ---

  // Iterates every live entry oldest-inserted-first under mu_, handing each
  // session to `fn`. `fn` must not call back into the store. The callback
  // form lets the checkpointer serialize straight out of the store without
  // materializing a second copy of every session.
  void ForEachSession(const std::function<void(const Session&)>& fn) const;

  // Delta scan for the incremental checkpointer: like ForEachSession but only
  // entries whose process-local insertion seq is >= min_seq. Returns the live
  // seq window [oldest, next): seqs are consecutive (every insert appends,
  // eviction pops the front), so a frame cache keyed by seq drops exactly
  // `oldest - previous_oldest` entries from its front and appends the ones
  // this call visited. Seqs restart at 0 in each process (ImportSnapshot
  // renumbers), unlike the lifetime inserted/evicted counters.
  struct SeqWindow {
    uint64_t oldest = 0;  // Seq of the oldest live entry (== next if empty).
    uint64_t next = 0;    // One past the newest live entry's seq.
  };
  SeqWindow ForEachSessionSince(
      uint64_t min_seq, const std::function<void(const Session&)>& fn) const;

  // Rebuilds the store from snapshot sessions (vector order becomes insertion
  // order, i.e. eviction order) and restores the lifetime counters. Insert
  // observers are NOT invoked — restored sessions were already published to
  // subscribers by the pre-crash process. Intended for a freshly constructed
  // store; existing entries are kept (restore into an empty store).
  void ImportSnapshot(std::vector<Session> sessions, uint64_t inserted,
                      uint64_t evicted);

  // Subscription hook: `fn` runs synchronously inside Insert, after the
  // session is indexed, for every future insert. Observers are invoked under
  // the store lock — they must be fast and must not call back into the store
  // (the query server's observer just serializes the session and enqueues it
  // for its event loop). Returns a token for RemoveInsertObserver.
  using InsertObserver = std::function<void(const Session&)>;
  uint64_t AddInsertObserver(InsertObserver fn);
  void RemoveInsertObserver(uint64_t token);

  // Eviction sink: receives every evicted session (strictly oldest-first, the
  // store's insertion order) instead of letting it vanish — the hook the cold
  // tier hangs off. Invoked UNDER the store lock, immediately after the
  // victim is unindexed, so (a) the victim is atomically handed to the next
  // tier — no window where a concurrent query finds it in neither tier, and
  // no checkpoint barrier can complete around a victim in transit — and
  // (b) with concurrent Inserts on N shard workers, sink calls are serialized
  // in exact eviction order (the cold tier's prefix-order invariant). The
  // sink must therefore not block and must not call back into the store
  // (ColdTier::Append is built for exactly this). Blocking backpressure
  // belongs in `barrier`, which runs after the lock is released whenever the
  // triggering Insert/ImportSnapshot evicted anything (ColdTier::
  // WaitForSpace). Set once during setup, before inserts can run
  // concurrently; unset means evictions are discarded as before.
  using EvictionSink = std::function<void(Session&&)>;
  using EvictionBarrier = std::function<void()>;
  void SetEvictionSink(EvictionSink sink, EvictionBarrier barrier = nullptr);

 private:
  struct Entry {
    Session session;
    size_t bytes = 0;
    EventTime min_time = 0;
    EventTime max_time = 0;
    uint64_t seq = 0;                // Insertion order.
    std::vector<uint32_t> services;  // Sorted, unique; mirrors by_service_.
  };
  using EntryList = std::list<Entry>;

  // Caller holds mu_. Each victim is handed to the eviction sink (when set)
  // as it is unindexed, still under mu_. Returns true if anything was
  // evicted, so the caller can run the eviction barrier after unlocking.
  bool EvictIfNeeded();
  void Unindex(EntryList::iterator it);
  EntryList::iterator InsertLocked(Session session);  // Caller holds mu_.

  Options options_;
  mutable std::mutex mu_;
  EntryList entries_;  // Insertion (close) order: front = oldest.
  // (id, fragment) -> entry.
  std::map<std::pair<std::string, uint32_t>, EntryList::iterator> by_id_;
  // service -> entries that touched it, insertion order preserved. Eviction
  // unindexes an entry from exactly the services in Entry::services; since
  // eviction is oldest-first, the victim sits at the front of each vector.
  std::unordered_map<uint32_t, std::vector<EntryList::iterator>> by_service_;
  // start time -> entry.
  std::multimap<EventTime, EntryList::iterator> by_time_;
  Stats stats_;
  uint64_t next_seq_ = 0;
  std::vector<std::pair<uint64_t, InsertObserver>> observers_;
  uint64_t next_observer_token_ = 0;
  EvictionSink eviction_sink_;
  EvictionBarrier eviction_barrier_;
};

// Attaches a sink that feeds every session of `stream` into `store`.
inline void StoreSessions(Scope& scope, const Stream<Session>& stream,
                          std::shared_ptr<SessionStore> store) {
  scope.Sink<Session>(stream, "session_store",
                      [store](Epoch, std::vector<Session>& data) {
                        for (auto& s : data) {
                          store->Insert(std::move(s));
                        }
                      });
}

}  // namespace ts

#endif  // SRC_ANALYTICS_SESSION_STORE_H_
