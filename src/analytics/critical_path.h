// Critical-path analysis over trace trees (§5.2 lists it among the analyses
// composable on sessionization output, citing The Mystery Machine).
//
// For each tree, the critical path is the chain of spans that determines the
// request's end-to-end latency: starting from the root, at each node the child
// with the latest end time dominates. Each span on the path is charged its
// *exclusive* time — the portion of its interval not covered by the next
// blocking child — so the steps' exclusive times telescope to the root span's
// duration.
#ifndef SRC_ANALYTICS_CRITICAL_PATH_H_
#define SRC_ANALYTICS_CRITICAL_PATH_H_

#include <cstdint>
#include <vector>

#include "src/core/trace_tree.h"

namespace ts {

struct CriticalPathStep {
  int node = -1;  // Index into tree.nodes().
  uint32_t service = kUnknownService;
  EventTime exclusive_ns = 0;  // Time on the path attributed to this span.
};

struct CriticalPath {
  std::vector<CriticalPathStep> steps;  // Root first.
  EventTime total_ns = 0;               // Root span duration.

  // Fraction of the end-to-end time attributed to `service` on this path.
  double ServiceShare(uint32_t service) const {
    if (total_ns <= 0) {
      return 0;
    }
    EventTime sum = 0;
    for (const auto& s : steps) {
      if (s.service == service) {
        sum += s.exclusive_ns;
      }
    }
    return static_cast<double>(sum) / static_cast<double>(total_ns);
  }
};

// Computes the critical path of `tree` from observed span intervals. Inferred
// nodes (no observed records) can appear on the path with zero exclusive time;
// out-of-containment children (clock skew) contribute clamped, never negative,
// exclusive times.
CriticalPath ComputeCriticalPath(const TraceTree& tree);

}  // namespace ts

#endif  // SRC_ANALYTICS_CRITICAL_PATH_H_
