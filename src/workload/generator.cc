#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace ts {
namespace {

// Sampling helpers local to the generator.

uint64_t SamplePoisson(Rng& rng, double mean) {
  if (mean <= 0) {
    return 0;
  }
  if (mean < 30) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double product = rng.NextDouble();
    uint64_t n = 0;
    while (product > limit) {
      ++n;
      product *= rng.NextDouble();
    }
    return n;
  }
  // Normal approximation for large means.
  const double v = mean + std::sqrt(mean) * rng.NextNormal();
  return v < 0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

// Geometric over {0, 1, 2, ...} with the given mean.
uint64_t SampleGeometric(Rng& rng, double mean) {
  if (mean <= 0) {
    return 0;
  }
  const double p = 1.0 / (1.0 + mean);
  double u = rng.NextDouble();
  if (u <= 0) {
    u = 0x1.0p-53;
  }
  return static_cast<uint64_t>(std::log(u) / std::log(1.0 - p));
}

std::string MakeSessionId(Rng& rng, uint64_t counter) {
  static const char kAlphabet[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string id;
  id.reserve(24);
  uint64_t a = rng.Next();
  uint64_t b = rng.Next() ^ (counter * 0x9E3779B97F4A7C15ULL);
  for (int i = 0; i < 12; ++i) {
    id.push_back(kAlphabet[a % 36]);
    a /= 36;
  }
  for (int i = 0; i < 11; ++i) {
    id.push_back(kAlphabet[b % 36]);
    b /= 36;
  }
  return id;
}

uint32_t HostForReplica(uint32_t service, uint32_t replica, uint32_t num_hosts) {
  return static_cast<uint32_t>(
      ((service * 2654435761u) ^ (replica * 0x9E3779B9u)) % num_hosts);
}

constexpr EventTime kMediumDormancyLoNs = 12'300'000;          // 12.3 ms.
constexpr EventTime kMediumDormancyHiNs = 60 * kNanosPerSecond;
constexpr EventTime kLongDormancyHiNs = 900 * kNanosPerSecond;  // 15 min.

// Vocabulary for free-text payload templates. Longer, log-like words so the
// synthetic lines resemble real datacenter messages and carry enough constant
// text for template-id compression to matter.
constexpr const char* kFreeTextWords[] = {
    "request",     "connection",  "replica",     "coordinator", "timeout",
    "completed",   "authenticate", "partition",  "rebalance",   "heartbeat",
    "follower",    "leader",      "snapshot",    "compaction",  "rollback",
    "committed",   "scheduler",   "allocation",  "throttled",   "retrying",
    "datanode",    "container",   "registered",  "deadline",    "exceeded",
    "transaction", "replication", "checkpoint",  "watermark",   "received",
    "forwarded",   "rejected",    "acquired",    "released",    "expired",
    "verifying",   "upstream",    "downstream",  "quorum",      "election",
};
constexpr size_t kFreeTextVocab =
    sizeof(kFreeTextWords) / sizeof(kFreeTextWords[0]);

}  // namespace

// A structural tree template: the shape and service assignment are fully
// determined by the template id, so popular templates yield repeated
// signatures and service pairs (what §5.2's clustering and pattern mining
// surface). Timings and annotation counts vary per instance.
struct TraceGenerator::Template {
  std::vector<int> parent;                 // parent[0] == -1.
  std::vector<uint32_t> sibling_index;     // 1-based among siblings.
  std::vector<uint32_t> service;
  std::vector<std::vector<int>> children;
  size_t distinct_services = 0;
};

// A free-text message template: constant words with per-instance variable
// slots. Shape derives only from (seed, id) — deterministic across runs.
struct TraceGenerator::FreeTextTemplate {
  std::vector<std::string> words;  // Empty at slot positions.
  std::vector<int> slot_kind;      // -1 constant; 0 hex id, 1 counter,
                                   // 2 latency, 3 address.
};

TraceGenerator::~TraceGenerator() = default;

TraceGenerator::TraceGenerator(const GeneratorConfig& config)
    : config_(config),
      rng_(config.seed),
      template_sampler_(config.num_templates, config.template_zipf_skew),
      root_service_sampler_(std::min<uint32_t>(50, config.num_services), 1.0),
      free_text_sampler_(std::max<uint32_t>(1, config.free_text_templates),
                         config.free_text_zipf_skew),
      templates_(config.num_templates),
      template_built_(config.num_templates, false),
      free_text_templates_(std::max<uint32_t>(1, config.free_text_templates)),
      free_text_built_(std::max<uint32_t>(1, config.free_text_templates),
                       false),
      duration_epochs_(static_cast<Epoch>(config.duration_ns / kNanosPerSecond)) {
  TS_CHECK(config.num_services > 0 && config.num_hosts > 0 &&
           config.num_templates > 0);
  TS_CHECK(duration_epochs_ > 0);

  const double mean_spans =
      config.single_span_tree_prob * 1.0 +
      (1.0 - config.single_span_tree_prob) * (2.0 + config.mean_extra_spans);
  const double mean_records_per_span = 2.0 + config.mean_extra_annotations;
  const double mean_roots = 1.0 / (1.0 - config.extra_root_span_prob);
  const double mean_records_per_session =
      mean_roots * mean_spans * mean_records_per_span;
  sessions_per_sec_ = config.target_records_per_sec / mean_records_per_session;

  host_skew_.assign(config.num_hosts, 0);
  if (config.clock_skew_sigma_ns > 0) {
    for (auto& skew : host_skew_) {
      skew = static_cast<EventTime>(
          rng_.NextNormal() * static_cast<double>(config.clock_skew_sigma_ns));
    }
  }

  // Calibrate template sizes. Tree sizes are a per-template property (so
  // structural signatures repeat), but the Zipf weighting concentrates mass on
  // a handful of templates, making the realized spans-per-tree mean depend on
  // the seed's luck. Draw the raw sizes, then rescale them so the
  // Zipf-weighted mean lands on the configured target for every seed.
  template_size_.resize(config.num_templates);
  std::vector<double> weights(config.num_templates);
  double weight_sum = 0;
  double raw_mean = 0;
  for (uint32_t id = 0; id < config.num_templates; ++id) {
    Rng trng(config.seed ^ (0xABCDULL + id * 0x9E3779B97F4A7C15ULL));
    size_t n = 1;
    if (!trng.NextBool(config.single_span_tree_prob)) {
      n = 2 + SampleGeometric(trng, config.mean_extra_spans);
      n = std::min<size_t>(n, config.max_spans_per_tree);
    }
    template_size_[id] = n;
    weights[id] = 1.0 / std::pow(static_cast<double>(id + 1),
                                 config.template_zipf_skew);
    weight_sum += weights[id];
    raw_mean += weights[id] * static_cast<double>(n);
  }
  raw_mean /= weight_sum;
  if (raw_mean > 1.0) {
    const double scale = (mean_spans - 1.0) / (raw_mean - 1.0);
    for (auto& n : template_size_) {
      const double adjusted = 1.0 + (static_cast<double>(n) - 1.0) * scale;
      n = std::max<size_t>(
          1, std::min<size_t>(config.max_spans_per_tree,
                              static_cast<size_t>(adjusted + 0.5)));
    }
  }
}

const TraceGenerator::Template& TraceGenerator::TemplateFor(size_t id) {
  if (template_built_[id]) {
    return templates_[id];
  }
  // Shape derives only from (seed, template id): deterministic across runs.
  Rng trng(config_.seed ^ (0xABCDULL + id * 0x9E3779B97F4A7C15ULL));
  Template& t = templates_[id];

  // Consume the same draws the constructor's raw-size pass used, then apply
  // the calibrated size.
  if (!trng.NextBool(config_.single_span_tree_prob)) {
    SampleGeometric(trng, config_.mean_extra_spans);
  }
  const size_t n = template_size_[id];
  t.parent.resize(n);
  t.sibling_index.resize(n);
  t.service.resize(n);
  t.children.resize(n);
  t.parent[0] = -1;
  t.sibling_index[0] = 0;
  t.service[0] = static_cast<uint32_t>(root_service_sampler_.Sample(trng));
  // Per-template service pool: enterprise SOA requests bounce within a small
  // set of services even when the call tree is large (Figure 4: most trees
  // include only a single or a few services).
  std::vector<uint32_t> pool = {t.service[0]};
  const size_t pool_size = 1 + std::min<size_t>(SampleGeometric(trng, 1.6), 7);
  while (pool.size() < pool_size) {
    pool.push_back(static_cast<uint32_t>(trng.NextBelow(config_.num_services)));
  }
  for (size_t i = 1; i < n; ++i) {
    // Random recursive tree: attach to a uniform existing node (shallow trees
    // with a mix of fan-out, typical of SOA call graphs).
    const int parent = static_cast<int>(trng.NextBelow(i));
    t.parent[i] = parent;
    t.children[parent].push_back(static_cast<int>(i));
    t.sibling_index[i] = static_cast<uint32_t>(t.children[parent].size());
    t.service[i] = pool[trng.NextBelow(pool.size())];
  }
  std::vector<uint32_t> services(t.service);
  std::sort(services.begin(), services.end());
  services.erase(std::unique(services.begin(), services.end()), services.end());
  t.distinct_services = services.size();
  template_built_[id] = true;
  return t;
}

const TraceGenerator::FreeTextTemplate& TraceGenerator::FreeTextTemplateFor(
    size_t id) {
  if (free_text_built_[id]) {
    return free_text_templates_[id];
  }
  // Shape derives only from (seed, template id): deterministic across runs.
  Rng trng(config_.seed ^ (0xF00DULL + id * 0x9E3779B97F4A7C15ULL));
  FreeTextTemplate& t = free_text_templates_[id];
  // Long, mostly-constant lines (~55 tokens, under the miner's 64-token cap):
  // verbose datacenter messages with enough constant text that template-id
  // encoding pays off in the store.
  const size_t n = 45 + trng.NextBelow(20);
  t.words.resize(n);
  t.slot_kind.assign(n, -1);
  for (size_t i = 0; i < n; ++i) {
    // The first two tokens stay constant so the miner's leading-token descent
    // routes every instance of a template to the same tree node.
    if (i >= 2 && trng.NextBool(0.08)) {
      t.slot_kind[i] = static_cast<int>(trng.NextBelow(4));
      continue;
    }
    t.words[i] = kFreeTextWords[trng.NextBelow(kFreeTextVocab)];
  }
  free_text_built_[id] = true;
  return t;
}

void TraceGenerator::AppendFreeTextPayload(std::string* payload) {
  const FreeTextTemplate& t =
      FreeTextTemplateFor(free_text_sampler_.Sample(rng_));
  char buf[32];
  for (size_t i = 0; i < t.words.size(); ++i) {
    if (i > 0) {
      payload->push_back(' ');
    }
    switch (t.slot_kind[i]) {
      case 0:  // Hex request/object id.
        std::snprintf(buf, sizeof(buf), "%08x",
                      static_cast<uint32_t>(rng_.Next()));
        payload->append(buf);
        break;
      case 1:  // Decimal counter.
        payload->append(std::to_string(rng_.NextBelow(1'000'000)));
        break;
      case 2:  // Latency.
        payload->append(std::to_string(rng_.NextBelow(5'000)));
        payload->append("ms");
        break;
      case 3:  // Address.
        std::snprintf(buf, sizeof(buf), "10.0.%u.%u",
                      static_cast<uint32_t>(rng_.NextBelow(256)),
                      static_cast<uint32_t>(rng_.NextBelow(256)));
        payload->append(buf);
        break;
      default:
        payload->append(t.words[i]);
        break;
    }
  }
}

void TraceGenerator::EmitRecord(LogRecord record) {
  ++stats_.annotations;
  if (config_.record_loss_rate > 0 && rng_.NextBool(config_.record_loss_rate)) {
    ++stats_.records_lost;
    return;
  }
  record.time += host_skew_[record.host];
  if (record.time < 0) {
    record.time = 0;
  }
  if (record.time >= config_.duration_ns) {
    return;  // Sessions may extend beyond the trace boundary; the trace is cut.
  }
  ++stats_.records_emitted;
  // Wire size: fixed fields + separators approximated by formatting lengths.
  stats_.wire_bytes += 40 + record.session_id.size() +
                       record.txn_id.path().size() * 3 + record.payload.size();
  Epoch epoch = static_cast<Epoch>(record.time / kNanosPerSecond);
  if (epoch < next_emit_epoch_) {
    // A negative clock-skew offset can push a record just below an epoch
    // boundary that has already been emitted; keep the skewed timestamp (the
    // anomaly downstream consumers should see) but bucket it into the next
    // emittable epoch so the stream stays epoch-ordered.
    epoch = next_emit_epoch_;
  }
  buckets_[epoch].push_back(std::move(record));
}

EventTime TraceGenerator::GenerateRootSpan(const std::string& session_id,
                                           uint32_t root_index, EventTime start) {
  const size_t template_id = template_sampler_.Sample(rng_);
  const Template& t = TemplateFor(template_id);
  const size_t n = t.parent.size();
  ++stats_.root_spans;
  stats_.spans += n;

  // Per-instance annotation counts.
  std::vector<uint32_t> extra_annotations(n);
  size_t total_records = 0;
  for (size_t i = 0; i < n; ++i) {
    extra_annotations[i] =
        static_cast<uint32_t>(SamplePoisson(rng_, config_.mean_extra_annotations));
    total_records += 2 + extra_annotations[i];
  }

  // Emission order: proper nesting. For span s: START, half of its own
  // annotations, children blocks, remaining annotations, END.
  struct Event {
    int node;
    EventKind kind;
  };
  std::vector<Event> order;
  order.reserve(total_records);
  // Iterative DFS with explicit phases to avoid recursion depth limits.
  struct Frame {
    int node;
    size_t next_child = 0;
    bool opened = false;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0, false});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (!f.opened) {
      f.opened = true;
      order.push_back({f.node, EventKind::kSpanStart});
      const uint32_t before = extra_annotations[f.node] / 2;
      for (uint32_t a = 0; a < before; ++a) {
        order.push_back({f.node, EventKind::kAnnotation});
      }
    }
    if (f.next_child < t.children[f.node].size()) {
      const int child = t.children[f.node][f.next_child++];
      stack.push_back({child, 0, false});
      continue;
    }
    const uint32_t before = extra_annotations[f.node] / 2;
    for (uint32_t a = before; a < extra_annotations[f.node]; ++a) {
      order.push_back({f.node, EventKind::kAnnotation});
    }
    order.push_back({f.node, EventKind::kSpanEnd});
    stack.pop_back();
  }
  TS_CHECK(order.size() == total_records);

  // Gap sequence: log-normal base gaps with rare injected dormancies (§5
  // inter-arrival characterization).
  const double mu = std::log(static_cast<double>(config_.base_gap_median_ns));
  std::vector<EventTime> gaps(total_records > 0 ? total_records - 1 : 0);
  EventTime max_gap = 0;
  for (auto& g : gaps) {
    g = static_cast<EventTime>(rng_.NextLogNormal(mu, config_.base_gap_sigma));
    g = std::min<EventTime>(g, kMediumDormancyLoNs - 1);
    max_gap = std::max(max_gap, g);
  }
  if (!gaps.empty()) {
    const double dorm = rng_.NextDouble();
    if (dorm < config_.long_dormancy_prob) {
      const EventTime g = static_cast<EventTime>(rng_.NextBoundedPareto(
          static_cast<double>(kMediumDormancyHiNs),
          static_cast<double>(kLongDormancyHiNs), 1.2));
      gaps[rng_.NextBelow(gaps.size())] = g;
      max_gap = std::max(max_gap, g);
    } else if (dorm < config_.long_dormancy_prob + config_.medium_dormancy_prob) {
      const EventTime g = static_cast<EventTime>(rng_.NextBoundedPareto(
          static_cast<double>(kMediumDormancyLoNs),
          static_cast<double>(kMediumDormancyHiNs), 1.1));
      gaps[rng_.NextBelow(gaps.size())] = g;
      max_gap = std::max(max_gap, g);
    }
  }

  // Per-instance replica placement: each span runs on one replica of its
  // service, so a service's spans spread across hosts.
  std::vector<uint32_t> node_host(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t replica = static_cast<uint32_t>(
        rng_.NextBelow(std::max<uint32_t>(1, config_.replicas_per_service)));
    node_host[i] = HostForReplica(t.service[i], replica, config_.num_hosts);
  }

  // Transaction paths per node.
  std::vector<TxnId> txn(n);
  {
    std::vector<uint32_t> path = {root_index};
    txn[0] = TxnId(path);
    for (size_t i = 1; i < n; ++i) {
      std::vector<uint32_t> p = txn[t.parent[i]].path();
      p.push_back(t.sibling_index[i]);
      txn[i] = TxnId(std::move(p));
    }
  }

  // Emit records along the gap sequence.
  EventTime now = start;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) {
      now += gaps[i - 1];
    }
    const int node = order[i].node;
    LogRecord r;
    r.time = now;
    r.session_id = session_id;
    r.txn_id = txn[node];
    r.service = t.service[node];
    r.host = node_host[node];
    r.kind = order[i].kind;
    // Payload: deterministic filler sized around the configured mean.
    if (config_.free_text_payloads) {
      AppendFreeTextPayload(&r.payload);
    } else {
      const uint32_t pad =
          config_.payload_mean_bytes / 2 +
          static_cast<uint32_t>(rng_.NextBelow(config_.payload_mean_bytes + 1));
      r.payload.assign("op=TX;st=OK;pad=");
      r.payload.append(pad, 'x');
    }
    EmitRecord(std::move(r));
  }

  if (config_.collect_distributions && rng_.NextBelow(64) == 0) {
    stats_.root_span_durations_ms.Add(static_cast<double>(now - start) / 1e6);
    if (!gaps.empty()) {
      stats_.max_gap_per_root_ms.Add(static_cast<double>(max_gap) / 1e6);
    }
    stats_.spans_per_tree.Add(static_cast<double>(n));
    stats_.services_per_tree.Add(static_cast<double>(t.distinct_services));
  }
  return now;
}

void TraceGenerator::GenerateSession(EventTime start) {
  ++stats_.sessions;
  const std::string session_id = MakeSessionId(rng_, session_counter_++);
  uint32_t root_index = 1;
  EventTime cursor = start;
  for (;;) {
    cursor = GenerateRootSpan(session_id, root_index, cursor);
    if (!rng_.NextBool(config_.extra_root_span_prob)) {
      break;
    }
    // Gap before the next root span: usually sub-second; occasionally long,
    // producing the hour-scale sessions (and online fragmentation) of §2.2.
    EventTime gap;
    if (rng_.NextBool(0.10)) {
      gap = static_cast<EventTime>(rng_.NextBoundedPareto(
          2.0 * kNanosPerSecond, 1800.0 * kNanosPerSecond, 1.2));
    } else {
      gap = static_cast<EventTime>(
          rng_.NextExponential(static_cast<double>(config_.mean_inter_root_gap_ns)));
    }
    cursor += gap;
    if (cursor >= config_.duration_ns) {
      break;  // Nothing past the trace boundary would be recorded anyway.
    }
    ++root_index;
  }
}

bool TraceGenerator::NextEpoch(Epoch* epoch, std::vector<LogRecord>* out) {
  out->clear();
  if (next_emit_epoch_ >= duration_epochs_) {
    return false;
  }
  // Generate all sessions starting up to and including the epoch being
  // emitted; their records never precede the session start.
  while (next_generate_epoch_ <= next_emit_epoch_ &&
         next_generate_epoch_ < duration_epochs_) {
    const uint64_t n = SamplePoisson(rng_, sessions_per_sec_);
    const EventTime base =
        static_cast<EventTime>(next_generate_epoch_) * kNanosPerSecond;
    for (uint64_t i = 0; i < n; ++i) {
      GenerateSession(base + static_cast<EventTime>(rng_.NextBelow(kNanosPerSecond)));
    }
    ++next_generate_epoch_;
  }

  *epoch = next_emit_epoch_;
  auto it = buckets_.find(next_emit_epoch_);
  if (it != buckets_.end()) {
    *out = std::move(it->second);
    buckets_.erase(it);
    std::stable_sort(out->begin(), out->end(),
                     [](const LogRecord& a, const LogRecord& b) {
                       return a.time < b.time;
                     });
  }
  ++next_emit_epoch_;
  return true;
}

}  // namespace ts
