// Synthetic datacenter trace generator.
//
// The paper evaluates TS on a proprietary one-hour trace from a travel-industry
// datacenter (Table 1). We do not have that trace, so this generator synthesizes
// one calibrated to every statistic the paper publishes:
//
//   * record rate: constant mean rate (1.3M/s in the paper; configurable),
//   * ~7.5 spans per trace tree, ~6.5 annotations per span (=> ~49 records per
//     tree), ~1.04 root spans per session,
//   * 95% of root spans live < 2 s; rare sessions last minutes to the trace end,
//   * 99.5% of root spans have max inter-message gap <= 12.3 ms; ~0.26% have a
//     medium dormancy (12.3 ms..60 s); ~0.24% are dormant > 60 s (§5),
//   * trees drawn from a Zipf mixture of structural templates, so signature
//     clustering and service-pair mining (§5.2) have meaningful hot keys,
//   * most trees touch a single or a few services (Figure 4),
//   * optional record loss and per-host clock skew injection (§2.3).
//
// Generation is streaming: NextEpoch() yields one second of event time at a
// time, in event-time order, so arbitrarily long traces run in bounded memory.
#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

struct GeneratorConfig {
  uint64_t seed = 42;

  // Trace shape.
  EventTime duration_ns = 60 * kNanosPerSecond;  // Paper: one hour.
  double target_records_per_sec = 100'000;       // Paper: 1.3M/s.

  // Topology.
  uint32_t num_services = 500;   // Paper datacenter: ~13,000 service instances.
  uint32_t num_hosts = 100;      // Paper: ~5,500 machines.
  // Replicas per service: each span executes on one replica's host, so the
  // same service appears on several machines (the paper's datacenter runs
  // ~2500 application instances as ~13,000 service instances).
  uint32_t replicas_per_service = 3;
  uint32_t num_templates = 200;  // Structural tree templates (Zipf mixture).
  double template_zipf_skew = 1.1;

  // Tree structure calibration (see header comment).
  double single_span_tree_prob = 0.40;
  double mean_extra_spans = 9.8;        // Mean of the geometric tail beyond 2.
  uint32_t max_spans_per_tree = 400;
  double mean_extra_annotations = 4.5;  // Poisson annotations beyond START/END.

  // Session composition.
  double extra_root_span_prob = 0.04;   // Geometric continuation => mean ~1.042.
  EventTime mean_inter_root_gap_ns = 500 * kNanosPerMilli;

  // Inter-message gap model (per root span).
  EventTime base_gap_median_ns = 500 * kNanosPerMicro;  // ~0.5 ms typical.
  double base_gap_sigma = 1.0;                          // Log-normal shape.
  double medium_dormancy_prob = 0.0026;  // One 12.3ms..60s gap in the span.
  double long_dormancy_prob = 0.0024;    // One 60s..15min gap in the span.

  // Payloads: sized so the mean wire-format record is ~300 bytes (Table 1:
  // 305 bytes per record).
  uint32_t payload_mean_bytes = 220;

  // Free-text payload mode (opt-in; default keeps the calibrated filler and
  // its exact RNG draw sequence). Payloads are drawn from a seeded pool of
  // message templates — constant words interleaved with variable slots
  // (hex ids, counters, latencies, addresses) — with Zipf-ish popularity,
  // the unstructured-log workload ts_parse mines.
  bool free_text_payloads = false;
  uint32_t free_text_templates = 64;
  double free_text_zipf_skew = 1.05;

  // Fault injection.
  double record_loss_rate = 0.0;       // Drop probability per record (§2.3).
  EventTime clock_skew_sigma_ns = 0;   // Per-host clock offset stddev (§2.3).

  // When true, samples gap/duration/size distributions (1-in-N reservoir) into
  // GeneratorStats for the trace_stats bench.
  bool collect_distributions = false;
};

struct GeneratorStats {
  uint64_t sessions = 0;
  uint64_t root_spans = 0;
  uint64_t spans = 0;
  uint64_t annotations = 0;      // Total log records before loss.
  uint64_t records_emitted = 0;  // After loss injection.
  uint64_t records_lost = 0;
  uint64_t wire_bytes = 0;       // Wire-format bytes of emitted records.

  // Populated when collect_distributions is set (values in milliseconds).
  SampleSet root_span_durations_ms;
  SampleSet max_gap_per_root_ms;
  SampleSet spans_per_tree;
  SampleSet services_per_tree;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(const GeneratorConfig& config);
  ~TraceGenerator();  // Out-of-line: Template is an implementation detail.
  TraceGenerator(const TraceGenerator&) = delete;
  TraceGenerator& operator=(const TraceGenerator&) = delete;

  // Produces the next second of event time: `*epoch` is the epoch index and
  // `out` receives its records sorted by event time. Returns false when the
  // trace is exhausted (no records were produced).
  bool NextEpoch(Epoch* epoch, std::vector<LogRecord>* out);

  const GeneratorStats& stats() const { return stats_; }
  const GeneratorConfig& config() const { return config_; }
  Epoch duration_epochs() const { return duration_epochs_; }
  // Injected per-host clock offsets (ground truth for skew-estimation tests).
  const std::vector<EventTime>& host_skew() const { return host_skew_; }

 private:
  struct Template;
  struct FreeTextTemplate;

  // Generates one whole session starting at `start`, bucketing its records.
  void GenerateSession(EventTime start);
  // Generates one root span; returns the time of its last record.
  EventTime GenerateRootSpan(const std::string& session_id, uint32_t root_index,
                             EventTime start);
  void EmitRecord(LogRecord record);
  const Template& TemplateFor(size_t id);
  const FreeTextTemplate& FreeTextTemplateFor(size_t id);
  void AppendFreeTextPayload(std::string* payload);

  GeneratorConfig config_;
  Rng rng_;
  ZipfSampler template_sampler_;
  ZipfSampler root_service_sampler_;
  ZipfSampler free_text_sampler_;
  std::vector<Template> templates_;       // Lazily built per template id.
  std::vector<bool> template_built_;
  std::vector<FreeTextTemplate> free_text_templates_;  // Lazily built.
  std::vector<bool> free_text_built_;
  // Calibrated span count per template: raw sizes are rescaled so the
  // Zipf-weighted mean hits the configured spans-per-tree target exactly,
  // independent of which templates the seed made popular.
  std::vector<size_t> template_size_;
  std::vector<EventTime> host_skew_;      // Per-host clock offset.
  std::map<Epoch, std::vector<LogRecord>> buckets_;
  Epoch next_generate_epoch_ = 0;
  Epoch next_emit_epoch_ = 0;
  Epoch duration_epochs_ = 0;
  double sessions_per_sec_ = 0;
  uint64_t session_counter_ = 0;
  GeneratorStats stats_;
};

}  // namespace ts

#endif  // SRC_WORKLOAD_GENERATOR_H_
