// The ts_query wire protocol: the serving-side counterpart of the ts_net
// ingest protocol. Figure 2 of the paper feeds sessionization output into a
// "UI: Query interface, Live visualization" box; this protocol is that box's
// transport. Everything is text, one '\n'-framed line at a time, so the same
// LineFramer that frames log records frames queries.
//
// Requests (client -> server, one line each):
//   GET <id> [fragment]          exact session lookup (fragment defaults 0)
//   FRAGMENTS <id>               every stored fragment of an id, oldest first
//   SERVICE <service> [limit]    recent sessions touching a service
//   RANGE <lo_ns> <hi_ns> [limit]  sessions intersecting [lo, hi), by start
//   STATS                        store + server + registered metrics
//   TOPK [k]                     services by live session count
//   TEMPLATES [k]                mined payload templates by hit count
//                                (requires `ts_sessionize --mine-templates`)
//   SUBSCRIBE [service=<n>|prefix=<id-prefix>]
//                                switch to streaming: live-tail every session
//                                closed (inserted) after this point. With a
//                                filter, only sessions that touched service
//                                <n> (resp. whose id starts with the prefix)
//                                are delivered; #DROPPED still counts only
//                                *matching* sessions this connection missed,
//                                so delivered + dropped == matching closes
//                                holds per connection regardless of filter
//
// Responses (server -> client). Session results arrive as blocks:
//   #SESSION <fragment> <first_epoch> <last_epoch> <closed_at> <nrec> <id>
//   <nrec record lines in the src/log wire format>
//   #END
// Record lines start with a decimal timestamp, so they can never collide
// with '#'-prefixed control lines. Every request is terminated by exactly
// one of:
//   #OK <count>                  count = sessions / stat lines / top entries
//   #ERR <message>
// Other control lines:
//   STAT <name> <value>          one per metric, before STATS' #OK
//   TOP <service> <sessions>     one per entry, before TOPK's #OK
//   TMPL <id> <hits> <ppm> <text>  one per entry, before TEMPLATES' #OK.
//                                ppm = hits per million mined payloads; the
//                                template text (wildcards as "<*>") is last
//                                because it contains spaces
//   #SUBSCRIBED                  acknowledges SUBSCRIBE; session blocks and
//                                #DROPPED notices follow until disconnect
//   #DROPPED <n>                 n sessions were discarded for this (slow)
//                                subscriber since the previous notice
#ifndef SRC_QUERY_QUERY_PROTOCOL_H_
#define SRC_QUERY_QUERY_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/session.h"

namespace ts {

inline constexpr char kSessionHeaderPrefix[] = "#SESSION ";
inline constexpr char kSessionEnd[] = "#END";
inline constexpr char kOkPrefix[] = "#OK";
inline constexpr char kErrPrefix[] = "#ERR";
inline constexpr char kSubscribedLine[] = "#SUBSCRIBED";
inline constexpr char kDroppedPrefix[] = "#DROPPED";
// Emitted before #OK when a multi-session response was cut short by the
// connection's output budget.
inline constexpr char kTruncatedLine[] = "#TRUNCATED";

struct QueryRequest {
  enum class Verb {
    kGet,
    kFragments,
    kService,
    kRange,
    kStats,
    kTopK,
    kTemplates,
    kSubscribe,
  };
  Verb verb = Verb::kStats;
  std::string id;            // GET / FRAGMENTS.
  uint32_t fragment = 0;     // GET.
  uint32_t service = 0;      // SERVICE.
  EventTime lo = 0;          // RANGE.
  EventTime hi = 0;          // RANGE.
  size_t limit = 100;        // SERVICE / RANGE.
  size_t k = 10;             // TOPK / TEMPLATES.
  bool filter_by_service = false;  // SUBSCRIBE service=<n>.
  uint32_t filter_service = 0;
  bool filter_by_prefix = false;   // SUBSCRIBE prefix=<id-prefix>.
  std::string filter_prefix;
};

// Parses one request line. On failure returns false and fills *error with a
// short message suitable for an #ERR response.
bool ParseQueryRequest(const std::string& line, QueryRequest* request,
                       std::string* error);

// One TEMPLATES entry. Defined here (not in src/parse) so the query layer
// stays independent of the miner: the server is fed these through a
// callback, the client decodes TMPL lines into them.
struct TemplateCount {
  uint32_t id = 0;
  uint64_t hits = 0;
  uint64_t ppm = 0;  // Hits per million mined payloads.
  std::string text;
};

// Formats / parses one "TMPL <id> <hits> <ppm> <text>" line (no newline).
std::string FormatTemplateLine(const TemplateCount& entry);
// Returns nullopt if `line` is not a TMPL line.
std::optional<TemplateCount> ParseTemplateLine(const std::string& line);

// Serializes `session` as one wire block (header, records, #END), appending
// to *out, every line '\n'-terminated. This is the canonical serialization:
// the loopback tests assert that bytes served for a session equal
// EncodeSessionBlock of the same session read from the store in-process.
void AppendSessionBlock(const Session& session, std::string* out);
std::string EncodeSessionBlock(const Session& session);

// Incremental decoder for session blocks, fed one framed line at a time
// (newline already stripped). Lines that are not part of a session block are
// reported as kNotBlock so the caller can interpret them as control lines.
class SessionBlockParser {
 public:
  enum class Result {
    kNeedMore,  // Line consumed; the block is still incomplete.
    kSession,   // Line completed a block; *out holds the session.
    kNotBlock,  // Line is not part of a session block (caller interprets).
    kError,     // Malformed block (bad header, bad record, count mismatch).
  };

  Result Feed(const std::string& line, Session* out);
  bool in_block() const { return in_block_; }

 private:
  bool in_block_ = false;
  size_t expected_records_ = 0;
  Session pending_;
};

// Formats / parses the tiny control lines.
std::string FormatOk(uint64_t count);
std::string FormatErr(const std::string& message);
std::string FormatDropped(uint64_t count);
// Returns the count from an "#OK <count>" line, or nullopt if not an #OK.
std::optional<uint64_t> ParseOk(const std::string& line);
// Returns the count from a "#DROPPED <n>" line, or nullopt if not one.
std::optional<uint64_t> ParseDropped(const std::string& line);

}  // namespace ts

#endif  // SRC_QUERY_QUERY_PROTOCOL_H_
