// QueryClient: the blocking counterpart of QueryServer — what dashboards,
// the ts_query CLI, and the loopback tests speak. One TCP connection, one
// request line out, framed response lines in, decoded back into Sessions via
// the same SessionBlockParser the protocol defines. After Subscribe() the
// connection switches to streaming mode and Next() yields sessions (and
// #DROPPED notices) as the server pushes them.
//
// Blocking with poll(2) timeouts; single-threaded (one client per thread).
#ifndef SRC_QUERY_QUERY_CLIENT_H_
#define SRC_QUERY_QUERY_CLIENT_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/net/frame_reader.h"
#include "src/net/net_util.h"
#include "src/query/query_protocol.h"

namespace ts {

struct QueryClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 5000;
  // Default wait for a response line before Execute() gives up.
  int io_timeout_ms = 10000;
  // When > 0, pins SO_RCVBUF to this size (applied while the non-blocking
  // connect is still in flight), disabling kernel receive auto-tuning. Lets
  // tests and bandwidth-capped dashboards bound what a stalled reader absorbs.
  int sock_buf_bytes = 0;
};

// One request's decoded response.
struct QueryResponse {
  bool ok = false;          // #OK terminated (false: #ERR, timeout, or drop).
  uint64_t count = 0;       // The #OK count.
  bool truncated = false;   // Server cut a multi-session response short.
  std::string error;        // #ERR message or local failure description.
  std::vector<Session> sessions;
  std::vector<std::pair<std::string, int64_t>> stats;  // STAT lines.
  std::vector<std::pair<uint32_t, uint64_t>> top;      // TOP lines.
  std::vector<TemplateCount> templates;                // TMPL lines.
};

class QueryClient {
 public:
  explicit QueryClient(const QueryClientOptions& options);
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;
  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  // Connects (once). Returns false on refusal/timeout.
  bool Connect();
  bool connected() const { return fd_.valid(); }
  void Close();

  // Sends `request_line` (no trailing newline) and reads until #OK / #ERR.
  // Returns false only on transport failure; protocol errors land in
  // response->error with ok == false.
  bool Execute(const std::string& request_line, QueryResponse* response);

  // Convenience wrappers over Execute().
  QueryResponse Get(const std::string& id, uint32_t fragment = 0);
  QueryResponse Fragments(const std::string& id);
  QueryResponse ByService(uint32_t service, size_t limit = 100);
  QueryResponse ByRange(EventTime lo, EventTime hi, size_t limit = 100);
  QueryResponse Stats();
  QueryResponse TopK(size_t k = 10);
  QueryResponse Templates(size_t k = 10);

  // Switches the connection to streaming mode. `filter_service`, when set,
  // subscribes to sessions touching that service only. After this, only
  // Next() is valid on the connection.
  bool Subscribe(std::optional<uint32_t> filter_service = std::nullopt);

  // Like Subscribe(), with the raw filter token: "" (unfiltered),
  // "service=<n>", or "prefix=<id-prefix>".
  bool SubscribeFiltered(const std::string& filter_token);

  enum class Event {
    kSession,  // *session holds the next pushed session.
    kDropped,  // The server discarded *dropped sessions for this subscriber.
    kTimeout,  // Nothing arrived within timeout_ms.
    kClosed,   // Server closed the connection.
    kError,    // Malformed push (protocol violation).
  };
  // Waits up to timeout_ms for the next subscription event.
  Event Next(Session* session, uint64_t* dropped, int timeout_ms);

  // Sum of all #DROPPED counts seen on this subscription.
  uint64_t total_dropped() const { return total_dropped_; }

 private:
  // Blocking send of the whole buffer (handles partial writes / EAGAIN).
  bool SendAll(const std::string& data);
  // Returns the next framed line, waiting up to timeout_ms; nullopt on
  // timeout or connection loss (closed_ distinguishes the two).
  std::optional<std::string> ReadLine(int timeout_ms);

  QueryClientOptions options_;
  FdGuard fd_;
  LineFramer framer_;
  std::deque<std::string> lines_;  // Framed but unconsumed lines.
  SessionBlockParser sub_parser_;  // Persists across Next() calls.
  bool closed_ = false;
  uint64_t total_dropped_ = 0;
};

}  // namespace ts

#endif  // SRC_QUERY_QUERY_CLIENT_H_
