#include "src/query/query_protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/log/wire_format.h"

namespace ts {
namespace {

// Splits on single spaces. Query lines are operator-typed; no quoting.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t space = line.find(' ', pos);
    const size_t end = space == std::string::npos ? line.size() : space;
    if (end > pos) {
      tokens.emplace_back(line, pos, end - pos);
    }
    pos = end + 1;
  }
  return tokens;
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64(const std::string& token, int64_t* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

bool ParseQueryRequest(const std::string& line, QueryRequest* request,
                       std::string* error) {
  const auto tokens = Tokenize(line);
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string& verb = tokens[0];
  *request = QueryRequest{};

  if (verb == "GET") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      *error = "usage: GET <id> [fragment]";
      return false;
    }
    request->verb = QueryRequest::Verb::kGet;
    request->id = tokens[1];
    if (tokens.size() == 3) {
      uint64_t fragment = 0;
      if (!ParseU64(tokens[2], &fragment)) {
        *error = "bad fragment";
        return false;
      }
      request->fragment = static_cast<uint32_t>(fragment);
    }
    return true;
  }
  if (verb == "FRAGMENTS") {
    if (tokens.size() != 2) {
      *error = "usage: FRAGMENTS <id>";
      return false;
    }
    request->verb = QueryRequest::Verb::kFragments;
    request->id = tokens[1];
    return true;
  }
  if (verb == "SERVICE") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      *error = "usage: SERVICE <service> [limit]";
      return false;
    }
    uint64_t service = 0;
    if (!ParseU64(tokens[1], &service)) {
      *error = "bad service";
      return false;
    }
    request->verb = QueryRequest::Verb::kService;
    request->service = static_cast<uint32_t>(service);
    if (tokens.size() == 3) {
      uint64_t limit = 0;
      if (!ParseU64(tokens[2], &limit)) {
        *error = "bad limit";
        return false;
      }
      request->limit = static_cast<size_t>(limit);
    }
    return true;
  }
  if (verb == "RANGE") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      *error = "usage: RANGE <lo_ns> <hi_ns> [limit]";
      return false;
    }
    int64_t lo = 0;
    int64_t hi = 0;
    if (!ParseI64(tokens[1], &lo) || !ParseI64(tokens[2], &hi)) {
      *error = "bad range bound";
      return false;
    }
    request->verb = QueryRequest::Verb::kRange;
    request->lo = lo;
    request->hi = hi;
    if (tokens.size() == 4) {
      uint64_t limit = 0;
      if (!ParseU64(tokens[3], &limit)) {
        *error = "bad limit";
        return false;
      }
      request->limit = static_cast<size_t>(limit);
    }
    return true;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) {
      *error = "usage: STATS";
      return false;
    }
    request->verb = QueryRequest::Verb::kStats;
    return true;
  }
  if (verb == "TOPK") {
    if (tokens.size() > 2) {
      *error = "usage: TOPK [k]";
      return false;
    }
    request->verb = QueryRequest::Verb::kTopK;
    if (tokens.size() == 2) {
      uint64_t k = 0;
      if (!ParseU64(tokens[1], &k)) {
        *error = "bad k";
        return false;
      }
      request->k = static_cast<size_t>(k);
    }
    return true;
  }
  if (verb == "TEMPLATES") {
    if (tokens.size() > 2) {
      *error = "usage: TEMPLATES [k]";
      return false;
    }
    request->verb = QueryRequest::Verb::kTemplates;
    if (tokens.size() == 2) {
      uint64_t k = 0;
      if (!ParseU64(tokens[1], &k)) {
        *error = "bad k";
        return false;
      }
      request->k = static_cast<size_t>(k);
    }
    return true;
  }
  if (verb == "SUBSCRIBE") {
    if (tokens.size() > 2) {
      *error = "usage: SUBSCRIBE [service=<n>|prefix=<id-prefix>]";
      return false;
    }
    request->verb = QueryRequest::Verb::kSubscribe;
    if (tokens.size() == 2) {
      constexpr char kServicePrefix[] = "service=";
      constexpr char kIdPrefix[] = "prefix=";
      if (tokens[1].rfind(kServicePrefix, 0) == 0) {
        uint64_t service = 0;
        if (!ParseU64(tokens[1].substr(sizeof(kServicePrefix) - 1),
                      &service)) {
          *error = "bad filter service";
          return false;
        }
        request->filter_by_service = true;
        request->filter_service = static_cast<uint32_t>(service);
      } else if (tokens[1].rfind(kIdPrefix, 0) == 0) {
        request->filter_prefix = tokens[1].substr(sizeof(kIdPrefix) - 1);
        if (request->filter_prefix.empty()) {
          *error = "bad filter prefix (empty)";
          return false;
        }
        request->filter_by_prefix = true;
      } else {
        *error = "bad filter (want service=<n> or prefix=<id-prefix>)";
        return false;
      }
    }
    return true;
  }
  *error = "unknown verb " + verb;
  return false;
}

void AppendSessionBlock(const Session& session, std::string* out) {
  char header[160];
  std::snprintf(header, sizeof(header),
                "#SESSION %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %zu ",
                session.fragment_index, session.first_epoch,
                session.last_epoch, session.closed_at, session.records.size());
  out->append(header);
  out->append(session.id);
  out->push_back('\n');
  for (const auto& r : session.records) {
    AppendWireFormat(r, out);
    out->push_back('\n');
  }
  out->append(kSessionEnd);
  out->push_back('\n');
}

std::string EncodeSessionBlock(const Session& session) {
  std::string out;
  AppendSessionBlock(session, &out);
  return out;
}

SessionBlockParser::Result SessionBlockParser::Feed(const std::string& line,
                                                    Session* out) {
  if (!in_block_) {
    if (line.rfind(kSessionHeaderPrefix, 0) != 0) {
      return Result::kNotBlock;
    }
    unsigned fragment = 0;
    unsigned long long first = 0;
    unsigned long long last = 0;
    unsigned long long closed = 0;
    unsigned long long nrec = 0;
    int id_offset = -1;
    if (std::sscanf(line.c_str(), "#SESSION %u %llu %llu %llu %llu %n",
                    &fragment, &first, &last, &closed, &nrec,
                    &id_offset) != 5 ||
        id_offset < 0 || static_cast<size_t>(id_offset) > line.size()) {
      return Result::kError;
    }
    pending_ = Session{};
    pending_.id = line.substr(static_cast<size_t>(id_offset));
    pending_.fragment_index = fragment;
    pending_.first_epoch = first;
    pending_.last_epoch = last;
    pending_.closed_at = closed;
    pending_.records.reserve(static_cast<size_t>(nrec));
    expected_records_ = static_cast<size_t>(nrec);
    in_block_ = true;
    return Result::kNeedMore;
  }
  if (line == kSessionEnd) {
    in_block_ = false;
    if (pending_.records.size() != expected_records_) {
      return Result::kError;
    }
    *out = std::move(pending_);
    pending_ = Session{};
    return Result::kSession;
  }
  auto record = ParseWireFormat(line);
  if (!record || pending_.records.size() >= expected_records_) {
    in_block_ = false;
    pending_ = Session{};
    return Result::kError;
  }
  pending_.records.push_back(std::move(*record));
  return Result::kNeedMore;
}

std::string FormatTemplateLine(const TemplateCount& entry) {
  std::string line = "TMPL " + std::to_string(entry.id) + " " +
                     std::to_string(entry.hits) + " " +
                     std::to_string(entry.ppm) + " ";
  line += entry.text;
  return line;
}

std::optional<TemplateCount> ParseTemplateLine(const std::string& line) {
  unsigned id = 0;
  unsigned long long hits = 0;
  unsigned long long ppm = 0;
  int text_offset = -1;
  if (std::sscanf(line.c_str(), "TMPL %u %llu %llu %n", &id, &hits, &ppm,
                  &text_offset) != 3 ||
      text_offset < 0 || static_cast<size_t>(text_offset) > line.size()) {
    return std::nullopt;
  }
  TemplateCount entry;
  entry.id = id;
  entry.hits = static_cast<uint64_t>(hits);
  entry.ppm = static_cast<uint64_t>(ppm);
  entry.text = line.substr(static_cast<size_t>(text_offset));
  return entry;
}

std::string FormatOk(uint64_t count) {
  return "#OK " + std::to_string(count);
}

std::string FormatErr(const std::string& message) {
  return std::string(kErrPrefix) + " " + message;
}

std::string FormatDropped(uint64_t count) {
  return std::string(kDroppedPrefix) + " " + std::to_string(count);
}

std::optional<uint64_t> ParseOk(const std::string& line) {
  unsigned long long count = 0;
  if (std::sscanf(line.c_str(), "#OK %llu", &count) != 1) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(count);
}

std::optional<uint64_t> ParseDropped(const std::string& line) {
  unsigned long long count = 0;
  if (std::sscanf(line.c_str(), "#DROPPED %llu", &count) != 1) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(count);
}

}  // namespace ts
