// QueryServer: the serving-side transport of the reproduction — the paper's
// Figure 2 feeds sessionization output into a "UI: Query interface, Live
// visualization" box, and this server is that box's entry point. It attaches
// to a live SessionStore and answers the ts_query wire protocol
// (src/query/query_protocol.h): point lookups, service/time-range scans,
// STATS over the store + a MetricsRegistry, TOPK, and a streaming SUBSCRIBE
// that live-tails every session inserted (closed) after the subscriber
// attaches.
//
// Built on the same pieces as the ingest-side LogServer: EventLoop (epoll +
// wake eventfd), LineFramer request framing, and bounded per-connection
// SendBuffers. Memory is bounded per connection:
//   * query responses stage at most max_conn_buffer_bytes of blocks, plus at
//     most one session block of overshoot (a response always makes
//     progress); multi-session responses cut short by the budget carry a
//     #TRUNCATED line before their #OK;
//   * subscription pushes NEVER overshoot — a session that does not fit in a
//     slow subscriber's buffer is dropped and counted, and the subscriber
//     sees "#DROPPED <n>" as soon as space frees, so a stalled dashboard
//     costs a bounded buffer instead of server memory (the unbounded-
//     buffering failure mode Figure 6 pins on the generic-engine baseline).
//
// Threading: Run()/PollOnce() drive everything on one thread. Stop() and
// counters() are thread-safe. Session inserts arrive from dataflow worker
// threads via a SessionStore insert observer, which serializes the session
// and hands it to the event loop through a mutex-guarded queue + wake.
#ifndef SRC_QUERY_QUERY_SERVER_H_
#define SRC_QUERY_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analytics/session_store.h"
#include "src/store/cold_tier.h"
#include "src/net/event_loop.h"
#include "src/net/frame_reader.h"
#include "src/net/net_util.h"
#include "src/net/send_buffer.h"
#include "src/net/transport_stats.h"
#include "src/common/metrics_registry.h"
#include "src/query/query_protocol.h"

namespace ts {

struct QueryServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port().
  // Per-connection staged-output budget (responses and subscription pushes).
  size_t max_conn_buffer_bytes = 256 << 10;
  // When > 0, pins SO_SNDBUF/SO_RCVBUF on accepted connections to this size,
  // disabling kernel buffer auto-tuning so max_conn_buffer_bytes is the real
  // end-to-end bound on a slow subscriber (instead of the kernel silently
  // growing a multi-megabyte cushion under it). 0 keeps the kernel default.
  int conn_sock_buf_bytes = 0;
  // SERVICE/RANGE limits are clamped to this.
  size_t max_query_limit = 10'000;
};

// Plain snapshot of the server's own counters (transport bytes live in
// TransportStats).
struct QueryServerCounters {
  uint64_t queries = 0;            // Requests answered (#OK or #ERR).
  uint64_t errors = 0;             // #ERR responses.
  uint64_t subscribers_attached = 0;
  uint64_t sessions_streamed = 0;  // Blocks pushed to subscribers.
  uint64_t sessions_dropped = 0;   // Blocks dropped on slow subscribers.
  uint64_t filter_evals = 0;       // Subscription filter predicate runs.
};

class QueryServer {
 public:
  // `metrics` may be null; when set, its gauges are appended to STATS.
  QueryServer(const QueryServerOptions& options,
              std::shared_ptr<SessionStore> store,
              std::shared_ptr<MetricsRegistry> metrics = nullptr);
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds, listens, sets up the event loop, and installs the store insert
  // observer. Returns false on any socket error.
  bool Start();

  // Source for TEMPLATES responses: a point-in-time snapshot of the mined
  // templates (ts_sessionize wires the live pipeline's TemplateSnapshot in
  // when --mine-templates is set). Must be thread-safe — it runs on the
  // serving thread. Call before Start()/Run(); when unset, TEMPLATES
  // answers "#ERR template mining disabled".
  using TemplateSource = std::function<std::vector<TemplateCount>()>;
  void SetTemplateSource(TemplateSource source) {
    template_source_ = std::move(source);
  }

  // Attaches the cold tier (may be null). Call before Start(): the loop
  // thread reads it without further synchronization. With a tier attached,
  // GET/FRAGMENTS/SERVICE/RANGE/TOPK transparently fall back to cold
  // segments when the hot window has evicted the answer, and STATS grows
  // store_cold_* gauges — history is bounded only by disk.
  void SetColdTier(std::shared_ptr<ColdTier> cold) { cold_ = std::move(cold); }

  uint16_t port() const { return port_; }

  // Serves until Stop(). Drops all connections on exit.
  void Run();

  // One event-loop iteration; returns false once the server should exit.
  bool PollOnce(int timeout_ms);

  // Thread-safe: wakes the loop and makes Run() return.
  void Stop();

  const TransportStats& stats() const { return stats_; }
  QueryServerCounters counters() const;
  size_t subscriber_count() const {
    return subscriber_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    explicit Connection(size_t send_cap) : send(send_cap) {}
    FdGuard fd;
    LineFramer framer;
    SendBuffer send;
    bool subscribed = false;
    bool filter_by_service = false;
    uint32_t filter_service = 0;
    bool filter_by_prefix = false;
    std::string filter_prefix;
    uint64_t dropped_pending = 0;  // Drops since the last #DROPPED notice.
  };

  // A session closed after at least one subscriber attached, serialized once
  // on the inserting thread, fanned out to matching subscribers on the loop.
  struct PendingPush {
    std::string block;
    std::string id;                  // For prefix filter matching.
    std::vector<uint32_t> services;  // Sorted unique, for filter matching.
  };

  void Accept();
  // Returns false if the connection died and was removed.
  bool HandleReadable(Connection* conn);
  void HandleRequest(Connection* conn, const std::string& line);
  void AppendStats(Connection* conn, uint64_t* lines);
  // Fans queued pushes out to subscribers and flushes them.
  void DeliverPending();
  // Emits a pending "#DROPPED n" notice once it fits.
  void MaybeEmitDropNotice(Connection* conn);
  // Flushes; returns false if the connection died and was removed.
  bool FlushConnection(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(int fd);
  // SessionStore insert observer; runs on the inserting thread.
  void OnSessionInserted(const Session& session);

  QueryServerOptions options_;
  std::shared_ptr<SessionStore> store_;
  std::shared_ptr<ColdTier> cold_;  // May be null; set before Start().
  std::shared_ptr<MetricsRegistry> metrics_;
  TemplateSource template_source_;  // Set before Start(); loop thread reads.
  uint16_t port_ = 0;
  FdGuard listen_fd_;
  EventLoop loop_;
  std::vector<std::unique_ptr<Connection>> connections_;
  uint64_t observer_token_ = 0;
  bool observer_installed_ = false;

  std::mutex pending_mu_;
  std::vector<PendingPush> pending_;  // Guarded by pending_mu_.

  TransportStats stats_;
  std::atomic<size_t> subscriber_count_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> subscribers_attached_{0};
  std::atomic<uint64_t> sessions_streamed_{0};
  std::atomic<uint64_t> sessions_dropped_{0};
  std::atomic<uint64_t> filter_evals_{0};
};

}  // namespace ts

#endif  // SRC_QUERY_QUERY_SERVER_H_
