#include "src/query/query_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ts {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryClient::QueryClient(const QueryClientOptions& options)
    : options_(options) {}

bool QueryClient::Connect() {
  if (fd_.valid()) {
    return true;
  }
  const int fd = ConnectTcpNonBlocking(options_.host, options_.port);
  if (fd < 0) {
    return false;
  }
  FdGuard guard(fd);
  SetRecvBufferSize(fd, options_.sock_buf_bytes);
  pollfd pfd{fd, POLLOUT, 0};
  const int ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
  if (ready <= 0) {
    return false;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    return false;
  }
  SetNoDelay(fd);
  fd_ = std::move(guard);
  closed_ = false;
  return true;
}

void QueryClient::Close() {
  fd_ = FdGuard();
  lines_.clear();
  framer_.Reset();
  closed_ = true;
}

bool QueryClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_.get(), POLLOUT, 0};
      if (::poll(&pfd, 1, options_.io_timeout_ms) <= 0) {
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    Close();
    return false;
  }
  return true;
}

std::optional<std::string> QueryClient::ReadLine(int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (true) {
    if (!lines_.empty()) {
      std::string line = std::move(lines_.front());
      lines_.pop_front();
      return line;
    }
    if (!fd_.valid()) {
      return std::nullopt;
    }
    const int64_t remaining = deadline - NowMs();
    if (remaining < 0) {
      return std::nullopt;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready == 0) {
      return std::nullopt;
    }
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      Close();
      return std::nullopt;
    }
    char buf[64 << 10];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      std::vector<std::string> fresh;
      framer_.Feed(std::string_view(buf, static_cast<size_t>(n)), &fresh);
      for (auto& line : fresh) {
        lines_.push_back(std::move(line));
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    Close();  // Peer closed (n == 0) or hard error.
    return std::nullopt;
  }
}

bool QueryClient::Execute(const std::string& request_line,
                          QueryResponse* response) {
  *response = QueryResponse{};
  if (!fd_.valid()) {
    response->error = "not connected";
    return false;
  }
  if (!SendAll(request_line + "\n")) {
    response->error = "send failed";
    return false;
  }
  SessionBlockParser parser;
  const int64_t deadline = NowMs() + options_.io_timeout_ms;
  while (true) {
    const int64_t remaining = deadline - NowMs();
    auto line = ReadLine(remaining < 0 ? 0 : static_cast<int>(remaining));
    if (!line.has_value()) {
      response->error = closed_ ? "connection closed" : "response timeout";
      return !closed_;
    }
    Session session;
    switch (parser.Feed(*line, &session)) {
      case SessionBlockParser::Result::kNeedMore:
        continue;
      case SessionBlockParser::Result::kSession:
        response->sessions.push_back(std::move(session));
        continue;
      case SessionBlockParser::Result::kError:
        response->error = "malformed session block";
        return true;
      case SessionBlockParser::Result::kNotBlock:
        break;
    }
    if (auto count = ParseOk(*line)) {
      response->ok = true;
      response->count = *count;
      return true;
    }
    if (line->rfind(kErrPrefix, 0) == 0) {
      const size_t skip = sizeof(kErrPrefix);  // "#ERR" + the space.
      response->error = line->size() > skip ? line->substr(skip) : "error";
      return true;
    }
    if (*line == kTruncatedLine) {
      response->truncated = true;
      continue;
    }
    unsigned long long value = 0;
    char name[128];
    if (std::sscanf(line->c_str(), "STAT %127s %llu", name, &value) == 2) {
      response->stats.emplace_back(name, static_cast<int64_t>(value));
      continue;
    }
    unsigned service = 0;
    if (std::sscanf(line->c_str(), "TOP %u %llu", &service, &value) == 2) {
      response->top.emplace_back(service, static_cast<uint64_t>(value));
      continue;
    }
    if (auto entry = ParseTemplateLine(*line)) {
      response->templates.push_back(std::move(*entry));
      continue;
    }
    // Unknown control line: tolerate (forward compatibility).
  }
}

QueryResponse QueryClient::Get(const std::string& id, uint32_t fragment) {
  QueryResponse r;
  Execute("GET " + id + " " + std::to_string(fragment), &r);
  return r;
}

QueryResponse QueryClient::Fragments(const std::string& id) {
  QueryResponse r;
  Execute("FRAGMENTS " + id, &r);
  return r;
}

QueryResponse QueryClient::ByService(uint32_t service, size_t limit) {
  QueryResponse r;
  Execute("SERVICE " + std::to_string(service) + " " + std::to_string(limit),
          &r);
  return r;
}

QueryResponse QueryClient::ByRange(EventTime lo, EventTime hi, size_t limit) {
  QueryResponse r;
  Execute("RANGE " + std::to_string(lo) + " " + std::to_string(hi) + " " +
              std::to_string(limit),
          &r);
  return r;
}

QueryResponse QueryClient::Stats() {
  QueryResponse r;
  Execute("STATS", &r);
  return r;
}

QueryResponse QueryClient::TopK(size_t k) {
  QueryResponse r;
  Execute("TOPK " + std::to_string(k), &r);
  return r;
}

QueryResponse QueryClient::Templates(size_t k) {
  QueryResponse r;
  Execute("TEMPLATES " + std::to_string(k), &r);
  return r;
}

bool QueryClient::Subscribe(std::optional<uint32_t> filter_service) {
  return SubscribeFiltered(
      filter_service.has_value() ? "service=" + std::to_string(*filter_service)
                                 : std::string());
}

bool QueryClient::SubscribeFiltered(const std::string& filter_token) {
  if (!fd_.valid()) {
    return false;
  }
  std::string request = "SUBSCRIBE";
  if (!filter_token.empty()) {
    request += " " + filter_token;
  }
  if (!SendAll(request + "\n")) {
    return false;
  }
  auto line = ReadLine(options_.io_timeout_ms);
  return line.has_value() && *line == kSubscribedLine;
}

QueryClient::Event QueryClient::Next(Session* session, uint64_t* dropped,
                                     int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (true) {
    const int64_t remaining = deadline - NowMs();
    auto line = ReadLine(remaining < 0 ? 0 : static_cast<int>(remaining));
    if (!line.has_value()) {
      // sub_parser_ keeps any partial block across calls, so a timeout
      // mid-block resumes cleanly on the next Next().
      return closed_ ? Event::kClosed : Event::kTimeout;
    }
    Session s;
    switch (sub_parser_.Feed(*line, &s)) {
      case SessionBlockParser::Result::kNeedMore:
        continue;
      case SessionBlockParser::Result::kSession:
        *session = std::move(s);
        return Event::kSession;
      case SessionBlockParser::Result::kError:
        return Event::kError;
      case SessionBlockParser::Result::kNotBlock:
        break;
    }
    if (auto count = ParseDropped(*line)) {
      total_dropped_ += *count;
      if (dropped != nullptr) {
        *dropped = *count;
      }
      return Event::kDropped;
    }
    // Ignore any other control line.
  }
}

}  // namespace ts
