#include "src/query/query_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <map>
#include <set>

#include "src/store/tiered_digest.h"

namespace ts {

QueryServer::QueryServer(const QueryServerOptions& options,
                         std::shared_ptr<SessionStore> store,
                         std::shared_ptr<MetricsRegistry> metrics)
    : options_(options), store_(std::move(store)), metrics_(std::move(metrics)) {}

QueryServer::~QueryServer() {
  if (observer_installed_) {
    store_->RemoveInsertObserver(observer_token_);
  }
}

bool QueryServer::Start() {
  listen_fd_ = FdGuard(ListenTcp(options_.host, options_.port, &port_));
  if (!listen_fd_.valid()) {
    return false;
  }
  if (!loop_.Init() || !loop_.Add(listen_fd_.get(), EPOLLIN)) {
    return false;
  }
  observer_token_ = store_->AddInsertObserver(
      [this](const Session& session) { OnSessionInserted(session); });
  observer_installed_ = true;
  return true;
}

void QueryServer::Stop() { loop_.RequestStop(); }

void QueryServer::Run() {
  while (PollOnce(/*timeout_ms=*/200)) {
  }
  connections_.clear();
}

bool QueryServer::PollOnce(int timeout_ms) {
  if (loop_.stop_requested()) {
    return false;
  }
  std::vector<epoll_event> events;
  if (loop_.Poll(timeout_ms, &events) < 0) {
    return false;
  }
  for (const auto& event : events) {
    const int fd = event.data.fd;
    if (fd == listen_fd_.get()) {
      Accept();
      continue;
    }
    Connection* conn = nullptr;
    for (auto& c : connections_) {
      if (c->fd.get() == fd) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) {
      continue;  // Closed earlier in this batch.
    }
    if ((event.events & (EPOLLHUP | EPOLLERR)) != 0) {
      CloseConnection(fd);
      continue;
    }
    if ((event.events & EPOLLIN) != 0 && !HandleReadable(conn)) {
      continue;
    }
    if ((event.events & EPOLLOUT) != 0 && !FlushConnection(conn)) {
      continue;
    }
    UpdateInterest(conn);
  }
  DeliverPending();
  return !loop_.stop_requested();
}

void QueryServer::Accept() {
  while (true) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or a transient error; epoll will re-arm.
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    SetSendBufferSize(fd, options_.conn_sock_buf_bytes);
    SetRecvBufferSize(fd, options_.conn_sock_buf_bytes);
    stats_.IncAccepts();
    auto conn = std::make_unique<Connection>(options_.max_conn_buffer_bytes);
    conn->fd = FdGuard(fd);
    if (!loop_.Add(fd, EPOLLIN)) {
      continue;  // conn destructor closes the fd.
    }
    connections_.push_back(std::move(conn));
  }
}

bool QueryServer::HandleReadable(Connection* conn) {
  char buf[64 << 10];
  std::vector<std::string> lines;
  while (true) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.AddBytesIn(static_cast<uint64_t>(n));
      conn->framer.Feed(std::string_view(buf, static_cast<size_t>(n)), &lines);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    CloseConnection(conn->fd.get());  // Peer closed or reset.
    return false;
  }
  for (const auto& line : lines) {
    HandleRequest(conn, line);
  }
  if (!lines.empty()) {
    return FlushConnection(conn);
  }
  return true;
}

void QueryServer::HandleRequest(Connection* conn, const std::string& line) {
  auto reply_err = [&](const std::string& message) {
    conn->send.Append(FormatErr(message));
    conn->send.Append('\n');
    queries_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
  };
  if (conn->subscribed) {
    reply_err("connection is in subscribe mode");
    return;
  }
  QueryRequest request;
  std::string error;
  if (!ParseQueryRequest(line, &request, &error)) {
    reply_err(error);
    return;
  }

  // Appends session blocks within the connection's output budget. The first
  // block always goes out (a response must make progress even if one session
  // outweighs the whole budget); once the budget is exceeded the response is
  // cut short and flagged with #TRUNCATED.
  auto append_sessions = [&](const std::vector<Session>& sessions) {
    uint64_t appended = 0;
    bool truncated = false;
    std::string block;
    for (const auto& session : sessions) {
      block.clear();
      AppendSessionBlock(session, &block);
      if (appended > 0 && !conn->send.Fits(block.size())) {
        truncated = true;
        break;
      }
      conn->send.Append(block);
      ++appended;
    }
    if (truncated) {
      conn->send.Append(kTruncatedLine);
      conn->send.Append('\n');
    }
    return appended;
  };
  auto reply_ok = [&](uint64_t count) {
    conn->send.Append(FormatOk(count));
    conn->send.Append('\n');
    queries_.fetch_add(1, std::memory_order_relaxed);
  };

  switch (request.verb) {
    case QueryRequest::Verb::kGet: {
      auto session = store_->GetById(request.id, request.fragment);
      if (!session.has_value() && cold_ != nullptr) {
        session = cold_->Get(request.id, request.fragment);  // Cold fallback.
      }
      uint64_t count = 0;
      if (session.has_value()) {
        std::string block;
        AppendSessionBlock(*session, &block);
        conn->send.Append(block);
        count = 1;
      }
      reply_ok(count);
      break;
    }
    case QueryRequest::Verb::kFragments: {
      std::vector<Session> sessions = store_->GetAllFragments(request.id);
      if (cold_ != nullptr) {
        sessions = MergeTieredFragments(std::move(sessions),
                                        cold_->GetAllFragments(request.id));
      }
      reply_ok(append_sessions(sessions));
      break;
    }
    case QueryRequest::Verb::kService: {
      const size_t limit = std::min(request.limit, options_.max_query_limit);
      const std::vector<Session> hot =
          store_->QueryByService(request.service, limit);
      if (cold_ == nullptr || hot.size() >= limit) {
        reply_ok(append_sessions(hot));
        break;
      }
      // Hot answered fewer than `limit`, so it holds *every* matching hot
      // session — continue into the cold tier, newest first, deduping the
      // (rare, post-restore) sessions present in both tiers. Cold frames are
      // read lazily, one candidate at a time, inside the response budget.
      std::set<std::pair<std::string, uint32_t>> hot_keys;
      for (const auto& s : hot) {
        hot_keys.emplace(s.id, s.fragment_index);
      }
      uint64_t appended = 0;
      bool truncated = false;
      std::string block;
      auto emit = [&](const Session& s) {  // False once the budget is spent.
        block.clear();
        AppendSessionBlock(s, &block);
        if (appended > 0 && !conn->send.Fits(block.size())) {
          truncated = true;
          return false;
        }
        conn->send.Append(block);
        ++appended;
        return true;
      };
      bool budget_ok = true;
      for (const auto& s : hot) {
        if (!(budget_ok = emit(s))) {
          break;
        }
      }
      if (budget_ok) {
        Session cold_session;
        // Over-collect by the hot result count: post-restore a session can
        // sit in both tiers, and every deduped candidate must not cost the
        // reply a slot it could have filled from deeper in the cold index.
        for (const auto& cand :
             cold_->CollectByService(request.service, limit + hot.size())) {
          if (appended >= limit) {
            break;
          }
          if (hot_keys.count({cand.id, cand.fragment}) != 0) {
            continue;
          }
          if (!cold_->Read(cand, &cold_session)) {
            continue;  // Damage degrades to a cold miss.
          }
          if (!(budget_ok = emit(cold_session))) {
            break;
          }
        }
      }
      if (truncated) {
        conn->send.Append(kTruncatedLine);
        conn->send.Append('\n');
      }
      reply_ok(appended);
      break;
    }
    case QueryRequest::Verb::kRange: {
      const size_t limit = std::min(request.limit, options_.max_query_limit);
      const std::vector<Session> hot =
          store_->QueryByTimeRange(request.lo, request.hi, limit);
      std::vector<ColdTier::Candidate> cold_candidates;
      if (cold_ != nullptr) {
        // Over-collect by the hot result count so candidates deduped against
        // a hot twin (post-restore overlap) cannot leave the merge short.
        cold_candidates =
            cold_->CollectRange(request.lo, request.hi, limit + hot.size());
      }
      if (cold_candidates.empty()) {
        reply_ok(append_sessions(hot));
        break;
      }
      // Merge cold candidates (start-ordered, eviction order on ties) with
      // the start-ordered hot results. Every cold session was inserted
      // before every hot one, so taking cold first on equal start times
      // reproduces exactly the bytes an unbounded store would have served.
      // Cold frames are read only when their block is actually emitted: the
      // response streams within its budget and never materializes a segment.
      std::set<std::pair<std::string, uint32_t>> hot_keys;
      std::vector<EventTime> hot_min_times;
      hot_min_times.reserve(hot.size());
      for (const auto& s : hot) {
        hot_keys.emplace(s.id, s.fragment_index);
        hot_min_times.push_back(s.MinTime());
      }
      uint64_t appended = 0;
      bool truncated = false;
      std::string block;
      auto emit = [&](const Session& s) {  // False once the budget is spent.
        block.clear();
        AppendSessionBlock(s, &block);
        if (appended > 0 && !conn->send.Fits(block.size())) {
          truncated = true;
          return false;
        }
        conn->send.Append(block);
        ++appended;
        return true;
      };
      size_t h = 0;
      size_t c = 0;
      Session cold_session;
      bool budget_ok = true;
      while (budget_ok && appended < limit &&
             (h < hot.size() || c < cold_candidates.size())) {
        const bool take_cold =
            c < cold_candidates.size() &&
            (h >= hot.size() ||
             cold_candidates[c].min_time <= hot_min_times[h]);
        if (take_cold) {
          const auto& cand = cold_candidates[c++];
          if (hot_keys.count({cand.id, cand.fragment}) != 0) {
            continue;  // Post-restore overlap: the hot copy already went out.
          }
          if (!cold_->Read(cand, &cold_session)) {
            continue;  // Damage degrades to a cold miss.
          }
          budget_ok = emit(cold_session);
        } else {
          budget_ok = emit(hot[h++]);
        }
      }
      if (truncated) {
        conn->send.Append(kTruncatedLine);
        conn->send.Append('\n');
      }
      reply_ok(appended);
      break;
    }
    case QueryRequest::Verb::kStats: {
      uint64_t lines_out = 0;
      AppendStats(conn, &lines_out);
      reply_ok(lines_out);
      break;
    }
    case QueryRequest::Verb::kTopK: {
      std::vector<std::pair<uint32_t, uint64_t>> top;
      if (cold_ == nullptr) {
        for (const auto& [service, count] : store_->TopServices(request.k)) {
          top.emplace_back(service, count);
        }
      } else {
        // Merge the live counts with the cold tier's per-segment summaries
        // (no frame reads), then re-rank — TOPK covers all history.
        std::map<uint32_t, uint64_t> counts;
        for (const auto& [service, count] :
             store_->TopServices(std::numeric_limits<size_t>::max())) {
          counts[service] += count;
        }
        for (const auto& [service, count] : cold_->ServiceCounts()) {
          counts[service] += count;
        }
        if (cold_->stats().sessions > 0) {
          // Post-restore a session can sit in both tiers (the snapshot
          // restored it hot, a pre-crash flush already made it durable cold);
          // both sums above counted it, so subtract the overlap once — the
          // unbounded reference holds each session exactly once.
          std::vector<uint32_t> services;
          store_->ForEachSession([&](const Session& s) {
            if (!cold_->Contains(s.id, s.fragment_index)) {
              return;
            }
            services.clear();
            for (const auto& r : s.records) {
              services.push_back(r.service);
            }
            std::sort(services.begin(), services.end());
            services.erase(std::unique(services.begin(), services.end()),
                           services.end());
            for (uint32_t service : services) {
              const auto it = counts.find(service);
              if (it != counts.end() && --it->second == 0) {
                counts.erase(it);
              }
            }
          });
        }
        top.assign(counts.begin(), counts.end());
        const size_t keep = std::min(request.k, top.size());
        std::partial_sort(top.begin(), top.begin() + static_cast<ptrdiff_t>(keep),
                          top.end(), [](const auto& a, const auto& b) {
                            return a.second > b.second ||
                                   (a.second == b.second && a.first < b.first);
                          });
        top.resize(keep);
      }
      for (const auto& [service, count] : top) {
        conn->send.Append("TOP " + std::to_string(service) + " " +
                          std::to_string(count));
        conn->send.Append('\n');
      }
      reply_ok(top.size());
      break;
    }
    case QueryRequest::Verb::kTemplates: {
      if (!template_source_) {
        reply_err("template mining disabled");
        break;
      }
      std::vector<TemplateCount> templates = template_source_();
      // Hottest first (ties to the lower id — deterministic output), top k.
      std::sort(templates.begin(), templates.end(),
                [](const TemplateCount& a, const TemplateCount& b) {
                  return a.hits != b.hits ? a.hits > b.hits : a.id < b.id;
                });
      if (templates.size() > request.k) {
        templates.resize(request.k);
      }
      for (const auto& entry : templates) {
        conn->send.Append(FormatTemplateLine(entry));
        conn->send.Append('\n');
      }
      reply_ok(templates.size());
      break;
    }
    case QueryRequest::Verb::kSubscribe:
      conn->subscribed = true;
      conn->filter_by_service = request.filter_by_service;
      conn->filter_service = request.filter_service;
      conn->filter_by_prefix = request.filter_by_prefix;
      conn->filter_prefix = request.filter_prefix;
      subscriber_count_.fetch_add(1);
      subscribers_attached_.fetch_add(1, std::memory_order_relaxed);
      queries_.fetch_add(1, std::memory_order_relaxed);
      conn->send.Append(kSubscribedLine);
      conn->send.Append('\n');
      break;
  }
}

void QueryServer::AppendStats(Connection* conn, uint64_t* lines) {
  auto stat = [&](const std::string& name, uint64_t value) {
    conn->send.Append("STAT " + name + " " + std::to_string(value));
    conn->send.Append('\n');
    ++*lines;
  };
  const auto store_stats = store_->stats();
  stat("store_sessions", store_stats.sessions);
  stat("store_bytes", store_stats.bytes);
  stat("store_inserted", store_stats.inserted);
  stat("store_evicted", store_stats.evicted);
  const auto transport = stats_.Snapshot();
  stat("server_accepts", transport.accepts);
  stat("server_bytes_in", transport.bytes_in);
  stat("server_bytes_out", transport.bytes_out);
  stat("server_queries", queries_.load(std::memory_order_relaxed));
  stat("server_errors", errors_.load(std::memory_order_relaxed));
  stat("server_subscribers", subscriber_count_.load());
  stat("server_subscribers_attached",
       subscribers_attached_.load(std::memory_order_relaxed));
  stat("server_sessions_streamed",
       sessions_streamed_.load(std::memory_order_relaxed));
  stat("server_sessions_dropped",
       sessions_dropped_.load(std::memory_order_relaxed));
  stat("sub_filter_evals", filter_evals_.load(std::memory_order_relaxed));
  if (cold_ != nullptr) {
    const auto cold = cold_->stats();
    stat("store_cold_segments", cold.segments);
    stat("store_cold_sessions", cold.sessions);
    stat("store_cold_bytes", cold.bytes);
    stat("store_cold_pending", cold.pending);
    stat("store_cold_spilled", cold.spilled);
    stat("store_cold_hits", cold.hits);
    stat("store_cold_misses", cold.misses);
    stat("store_cold_corrupt", cold.corrupt);
    stat("store_cold_write_failures", cold.write_failures);
    stat("store_cold_read_retries", cold.read_retries);
    stat("store_cold_tmp_cleaned", cold.tmp_cleaned);
    stat("store_cold_shed_batches", cold.shed_batches);
    stat("store_cold_shed_sessions", cold.shed_sessions);
    stat("store_cold_shed_bytes", cold.shed_bytes);
    stat("store_cold_shedding", cold.shedding ? 1 : 0);
  }
  if (metrics_ != nullptr) {
    for (const auto& [name, value] : metrics_->Snapshot()) {
      conn->send.Append("STAT " + name + " " + std::to_string(value));
      conn->send.Append('\n');
      ++*lines;
    }
  }
}

void QueryServer::OnSessionInserted(const Session& session) {
  if (subscriber_count_.load() == 0) {
    return;  // Nobody listening: skip the serialization entirely.
  }
  PendingPush push;
  AppendSessionBlock(session, &push.block);
  push.id = session.id;
  push.services.reserve(session.records.size());
  for (const auto& r : session.records) {
    push.services.push_back(r.service);
  }
  std::sort(push.services.begin(), push.services.end());
  push.services.erase(
      std::unique(push.services.begin(), push.services.end()),
      push.services.end());
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(push));
  }
  loop_.Wake();
}

void QueryServer::DeliverPending() {
  std::vector<PendingPush> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
  }
  if (batch.empty() && subscriber_count_.load() == 0) {
    return;
  }
  // Filter results are memoized per (push, distinct filter value): with 500
  // subscribers sharing a handful of filters, each predicate runs once per
  // closed session, not once per connection.
  struct PushMemo {
    std::map<uint32_t, bool> by_service;
    std::map<std::string, bool> by_prefix;
  };
  std::vector<PushMemo> memos(batch.size());
  // Iterate over fds, not connection pointers: a flush may close and remove
  // a connection, invalidating raw pointers into connections_.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& c : connections_) {
    if (c->subscribed) {
      fds.push_back(c->fd.get());
    }
  }
  for (int fd : fds) {
    Connection* conn = nullptr;
    for (auto& c : connections_) {
      if (c->fd.get() == fd) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) {
      continue;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto& push = batch[i];
      if (conn->filter_by_service) {
        auto [it, fresh] =
            memos[i].by_service.try_emplace(conn->filter_service, false);
        if (fresh) {
          it->second =
              std::binary_search(push.services.begin(), push.services.end(),
                                 conn->filter_service);
          filter_evals_.fetch_add(1, std::memory_order_relaxed);
        }
        if (!it->second) {
          continue;
        }
      } else if (conn->filter_by_prefix) {
        auto [it, fresh] =
            memos[i].by_prefix.try_emplace(conn->filter_prefix, false);
        if (fresh) {
          it->second = push.id.compare(0, conn->filter_prefix.size(),
                                       conn->filter_prefix) == 0;
          filter_evals_.fetch_add(1, std::memory_order_relaxed);
        }
        if (!it->second) {
          continue;
        }
      }
      MaybeEmitDropNotice(conn);
      if (conn->dropped_pending == 0 && conn->send.Fits(push.block.size())) {
        conn->send.Append(push.block);
        sessions_streamed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Slow consumer: drop, count, and tell them once space frees. The
        // subscriber's cost to the server stays capped at its send buffer.
        ++conn->dropped_pending;
        sessions_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (FlushConnection(conn)) {
      UpdateInterest(conn);
    }
  }
}

void QueryServer::MaybeEmitDropNotice(Connection* conn) {
  if (conn->dropped_pending == 0) {
    return;
  }
  const std::string notice = FormatDropped(conn->dropped_pending);
  if (conn->send.Fits(notice.size() + 1)) {
    conn->send.Append(notice);
    conn->send.Append('\n');
    conn->dropped_pending = 0;
  }
}

bool QueryServer::FlushConnection(Connection* conn) {
  switch (conn->send.Flush(conn->fd.get(), &stats_)) {
    case SendBuffer::FlushResult::kError:
      CloseConnection(conn->fd.get());
      return false;
    case SendBuffer::FlushResult::kDrained:
      // Space freed: a trailing drop notice can go out even if no further
      // session ever arrives.
      MaybeEmitDropNotice(conn);
      if (!conn->send.empty()) {
        return conn->send.Flush(conn->fd.get(), &stats_) !=
                       SendBuffer::FlushResult::kError
                   ? true
                   : (CloseConnection(conn->fd.get()), false);
      }
      return true;
    case SendBuffer::FlushResult::kBlocked:
      return true;
  }
  return true;
}

void QueryServer::UpdateInterest(Connection* conn) {
  const uint32_t events =
      EPOLLIN | (conn->send.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  loop_.Mod(conn->fd.get(), events);
}

void QueryServer::CloseConnection(int fd) {
  loop_.Del(fd);
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i]->fd.get() == fd) {
      if (connections_[i]->subscribed) {
        subscriber_count_.fetch_sub(1);
      }
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
      return;
    }
  }
}

QueryServerCounters QueryServer::counters() const {
  QueryServerCounters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.subscribers_attached = subscribers_attached_.load(std::memory_order_relaxed);
  c.sessions_streamed = sessions_streamed_.load(std::memory_order_relaxed);
  c.sessions_dropped = sessions_dropped_.load(std::memory_order_relaxed);
  c.filter_evals = filter_evals_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace ts
