// SocketIngestSource: the TS-side consumer of a LogServer stream.
//
// Connects to host:port, sends the "TS1 <stream> <offset>" hello, then reads
// wire-format lines with incremental newline framing (a read() may end
// mid-record; the partial tail is carried across reads). Distinguishes a
// graceful end of stream (the server's trailing "#EOS" control line) from a
// transport failure (connection drops without it): failures trigger
// reconnection with exponential backoff plus decorrelating jitter, resuming
// from the count of records already delivered, so a log-server restart
// mid-record costs no duplicates and no losses (§5's pipeline keeps archived
// logs replayable; the offset makes the client idempotent across retries).
//
// Single-fd client: poll(2) with a caller-supplied timeout, no epoll needed.
#ifndef SRC_NET_SOCKET_INGEST_H_
#define SRC_NET_SOCKET_INGEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/log/record_batch.h"
#include "src/net/frame_reader.h"
#include "src/net/net_util.h"
#include "src/net/transport_stats.h"

namespace ts {

struct SocketIngestOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t stream = 0;       // Which server-side stream partition to consume.
  size_t num_streams = 1;  // Informational; the server validates stream < N.

  // Reconnect policy: exponential backoff with full jitter, i.e. each wait is
  // uniform in [0, min(backoff_max, backoff_base * 2^attempt)]. Jitter keeps
  // 1263 clients of a restarted log server from reconnecting in lock-step.
  int64_t backoff_base_ms = 20;
  int64_t backoff_max_ms = 2000;
  // Give up after this many consecutive failed connect attempts (0 = forever).
  int attempt_limit = 200;

  size_t read_chunk_bytes = 64 << 10;
  size_t max_line_bytes = 1 << 20;
  // Upper bound on records one PollLines call may emit (0 = unlimited).
  // Bounds the ingest batch a worker must swallow per step; surplus bytes
  // stay in the kernel buffer and backpressure the server via TCP flow
  // control.
  size_t max_records_per_poll = 0;
  // Start consuming at this record offset instead of 0: the first hello asks
  // the server for "TS1 <stream> <resume_offset>". A restored checkpoint
  // (ts_ckpt) passes the offset its snapshot was barrier-aligned at, so the
  // records replayed after a crash are exactly the ones whose effects the
  // snapshot does not contain.
  uint64_t resume_offset = 0;
  // PollBlock: start a fresh ingest arena once the current one has absorbed
  // this many recv bytes. Bounds how much memory an undrained block can pin.
  size_t arena_rotate_bytes = 256 << 10;
  uint64_t jitter_seed = 1;  // Deterministic jitter for reproducible tests.
  // ts_fault seam: may refuse connects, fail or clamp reads, and corrupt
  // received bytes. Null (the default) costs one untaken branch per syscall.
  FaultInjector* fault_injector = nullptr;
};

class SocketIngestSource {
 public:
  enum class Poll {
    kRecords,      // *lines gained at least one record.
    kIdle,         // Nothing arrived within the timeout (or still backing off).
    kEndOfStream,  // Graceful #EOS received and every record delivered.
    kFailed,       // Attempt limit exhausted; the source is dead.
  };

  explicit SocketIngestSource(const SocketIngestOptions& options);
  ~SocketIngestSource();
  SocketIngestSource(const SocketIngestSource&) = delete;
  SocketIngestSource& operator=(const SocketIngestSource&) = delete;

  // Pulls whatever is available, waiting up to timeout_ms for the first byte.
  // Appends complete wire lines (control lines filtered out) to *lines.
  Poll PollLines(std::vector<std::string>* lines, int timeout_ms);

  // Zero-copy variant: recv()s straight into a source-owned arena and fills
  // `block` with line views into it (control and blank lines filtered, so
  // records_received() advances exactly as under PollLines — the resume
  // offset must not depend on which poll API the caller uses). The arena is
  // shared with the block by reference and rotated between calls once it
  // passes arena_rotate_bytes, so holding a block alive pins at most one
  // rotation's worth of recv bytes. Sets block->connection_reset when the
  // source reconnected since the previous block — the consumer's
  // per-connection dictionaries must reset (docs/INGEST.md). `block` is
  // cleared first; any previous views in it must already be drained.
  Poll PollBlock(LineBlock* block, int timeout_ms);

  // Convenience: blocks until end of stream, appending everything to *lines.
  // Returns true on a graceful end, false if the source failed permanently.
  bool ReadAll(std::vector<std::string>* lines);

  uint64_t records_received() const { return records_received_; }
  const TransportStats& stats() const { return stats_; }

 private:
  enum class State { kDisconnected, kConnecting, kConnected, kDone, kFailed };

  // Moves through connect/backoff machinery; returns true once connected.
  bool EnsureConnected(int64_t deadline_ms);
  void ScheduleReconnect();
  int64_t NowMs() const;

  SocketIngestOptions options_;
  State state_ = State::kDisconnected;
  FdGuard fd_;
  LineFramer framer_;
  ArenaRef arena_;  // PollBlock recv target; rotated at arena_rotate_bytes.
  // Sticky until the next PollBlock returns it: a reconnect happened, so
  // per-connection consumer state is stale.
  bool connection_reset_pending_ = false;
  bool ever_connected_ = false;
  bool hello_sent_ = false;
  size_t hello_off_ = 0;
  std::string hello_;
  bool eos_seen_ = false;
  // Completed records including any restored resume_offset; the offset the
  // next (re)connect hello asks the server to resume from.
  uint64_t records_received_ = 0;
  int attempts_ = 0;               // Consecutive failed connects.
  int64_t next_attempt_ms_ = 0;    // Earliest wall time for the next connect.
  uint64_t jitter_state_ = 0;
  TransportStats stats_;
};

}  // namespace ts

#endif  // SRC_NET_SOCKET_INGEST_H_
