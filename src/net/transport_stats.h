// Transport-layer counters shared by the log server and the socket ingest
// source. The paper's pipeline moves records "in their original text format
// over a TCP socket" (§5); these counters make that path observable in the
// bench reports: how many bytes/records crossed the wire, how often a slow
// consumer stalled the stream (the backpressure behaviour Figure 6 contrasts
// with the baseline's OOM), and how often the client had to reconnect.
//
// Counters are relaxed atomics: the server mutates them from its event-loop
// thread while tests and bench harnesses snapshot them from another thread.
#ifndef SRC_NET_TRANSPORT_STATS_H_
#define SRC_NET_TRANSPORT_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ts {

// Plain-value copy of the counters, safe to pass around and format.
struct TransportStatsSnapshot {
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t records_in = 0;        // Complete framed lines received.
  uint64_t records_out = 0;       // Complete lines queued onto the wire.
  uint64_t connects = 0;          // Successful outbound connects.
  uint64_t accepts = 0;           // Inbound connections accepted.
  uint64_t reconnects = 0;        // Outbound re-connects after a drop.
  uint64_t backpressure_stalls = 0;  // Send-buffer-full transitions.
  uint64_t frame_errors = 0;      // Oversized / truncated wire lines dropped.
  uint64_t parse_errors = 0;      // Framed lines ParseWireFormat rejected.
  uint64_t resumes = 0;           // RESUME offsets honoured (server side).

  std::string Format() const;
};

class TransportStats {
 public:
  TransportStats() = default;
  TransportStats(const TransportStats&) = delete;
  TransportStats& operator=(const TransportStats&) = delete;

  void AddBytesIn(uint64_t n) { bytes_in_.fetch_add(n, kRelaxed); }
  void AddBytesOut(uint64_t n) { bytes_out_.fetch_add(n, kRelaxed); }
  void AddRecordsIn(uint64_t n) { records_in_.fetch_add(n, kRelaxed); }
  void AddRecordsOut(uint64_t n) { records_out_.fetch_add(n, kRelaxed); }
  void IncConnects() { connects_.fetch_add(1, kRelaxed); }
  void IncAccepts() { accepts_.fetch_add(1, kRelaxed); }
  void IncReconnects() { reconnects_.fetch_add(1, kRelaxed); }
  void IncBackpressureStalls() { backpressure_stalls_.fetch_add(1, kRelaxed); }
  void IncFrameErrors() { frame_errors_.fetch_add(1, kRelaxed); }
  void IncParseErrors() { parse_errors_.fetch_add(1, kRelaxed); }
  void IncResumes() { resumes_.fetch_add(1, kRelaxed); }

  TransportStatsSnapshot Snapshot() const {
    TransportStatsSnapshot s;
    s.bytes_in = bytes_in_.load(kRelaxed);
    s.bytes_out = bytes_out_.load(kRelaxed);
    s.records_in = records_in_.load(kRelaxed);
    s.records_out = records_out_.load(kRelaxed);
    s.connects = connects_.load(kRelaxed);
    s.accepts = accepts_.load(kRelaxed);
    s.reconnects = reconnects_.load(kRelaxed);
    s.backpressure_stalls = backpressure_stalls_.load(kRelaxed);
    s.frame_errors = frame_errors_.load(kRelaxed);
    s.parse_errors = parse_errors_.load(kRelaxed);
    s.resumes = resumes_.load(kRelaxed);
    return s;
  }

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> records_in_{0};
  std::atomic<uint64_t> records_out_{0};
  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> resumes_{0};
};

}  // namespace ts

#endif  // SRC_NET_TRANSPORT_STATS_H_
