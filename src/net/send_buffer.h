// SendBuffer: a bounded, compacting per-connection output buffer for
// non-blocking sockets. Both transport servers use it — LogServer to stage
// archive lines, QueryServer to stage query responses and subscription
// pushes. The cap is a fill policy, not an allocation guard: callers ask
// Fits() before appending and decide what to do when the answer is no
// (LogServer stalls the stream; QueryServer drops the push and counts it).
// Flush() writes as much as the socket accepts and compacts the consumed
// prefix once it crosses half the cap.
#ifndef SRC_NET_SEND_BUFFER_H_
#define SRC_NET_SEND_BUFFER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/fault/fault_injector.h"
#include "src/net/transport_stats.h"

namespace ts {

class SendBuffer {
 public:
  explicit SendBuffer(size_t cap_bytes) : cap_(cap_bytes) {}

  size_t cap() const { return cap_; }
  // Unsent bytes currently staged.
  size_t pending() const { return buf_.size() - off_; }
  bool empty() const { return off_ == buf_.size(); }
  // Would appending n more bytes stay within the cap?
  bool Fits(size_t n) const { return pending() + n <= cap_; }

  void Append(std::string_view data) { buf_.append(data); }
  void Append(char c) { buf_.push_back(c); }

  enum class FlushResult {
    kDrained,  // Everything staged is on the wire.
    kBlocked,  // Socket buffer full; wait for EPOLLOUT.
    kError,    // EPIPE/ECONNRESET: the peer is gone.
  };

  // Writes pending bytes to `fd` until drained or the socket blocks. Bytes
  // written are added to stats->bytes_out when stats is non-null. An
  // injector, when given, may clamp or fail individual writes (ts_fault);
  // injected EAGAIN reports kBlocked, injected ECONNRESET reports kError.
  FlushResult Flush(int fd, TransportStats* stats,
                    FaultInjector* injector = nullptr);

 private:
  size_t cap_;
  std::string buf_;
  size_t off_ = 0;  // Consumed prefix of buf_.
};

}  // namespace ts

#endif  // SRC_NET_SEND_BUFFER_H_
