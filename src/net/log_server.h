// LogServer: serves archived wire-format log lines over real TCP sockets,
// reproducing the paper's log-server side of the pipeline (§5: 42 log servers
// stream records "in their original text format over a TCP socket").
//
// Protocol (all text, '\n'-framed):
//   client -> server   TS1 <stream> <offset>\n     (one hello line)
//   server -> client   <wire line>\n ... #EOS\n    then the server closes.
//
// The archive is partitioned round-robin into `num_streams` interleaved
// streams (record i belongs to stream i % num_streams), mirroring how the
// replayer deals logging processes to workers. <offset> is the count of
// records of that stream the client has already consumed, so a client that
// lost its connection mid-stream reconnects and resumes without duplicates.
//
// Each connection owns a bounded send buffer. When a consumer drains slower
// than the server fills, the buffer caps out and the server simply stops
// copying records in — the stream stalls instead of growing server memory,
// the exact failure mode (unbounded buffering → OOM) Figure 6 attributes to
// the generic-engine baseline. Stalls are counted in TransportStats.
//
// Single-threaded, non-blocking, driven by the shared EventLoop (epoll +
// wake eventfd). Run() loops until Stop() — callable from another thread —
// or, with exit_after_serving, until every accepted connection has been
// served to EOS and closed.
#ifndef SRC_NET_LOG_SERVER_H_
#define SRC_NET_LOG_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/event_loop.h"
#include "src/net/frame_reader.h"
#include "src/net/net_util.h"
#include "src/net/send_buffer.h"
#include "src/net/transport_stats.h"

namespace ts {

struct LogServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port().
  size_t num_streams = 1;
  // Per-connection send-buffer cap. Small enough that a stalled consumer
  // costs ~nothing; large enough to keep the pipe full on loopback.
  size_t max_conn_buffer_bytes = 256 << 10;
  // When true, Run() returns once at least one connection was accepted and
  // all accepted connections have been served to EOS (or dropped).
  bool exit_after_serving = false;
  // ts_fault seam: may clamp or fail outbound writes and stall the event
  // loop. Null (the default) costs one untaken branch per syscall.
  FaultInjector* fault_injector = nullptr;
};

class LogServer {
 public:
  // `lines` holds the archive, one wire-format record per element, no
  // trailing newline. Shared so several servers (tests) can serve one copy.
  LogServer(const LogServerOptions& options,
            std::shared_ptr<const std::vector<std::string>> lines);
  ~LogServer();
  LogServer(const LogServer&) = delete;
  LogServer& operator=(const LogServer&) = delete;

  // Binds, listens, and sets up the event loop. Returns false on any socket
  // error.
  bool Start();

  uint16_t port() const { return port_; }

  // Serves until Stop() (or exit_after_serving triggers). Closes all
  // connections abruptly on exit — from the client's point of view a Stop()
  // mid-stream is indistinguishable from a crashed log server.
  void Run();

  // One event-loop iteration; returns false once the server should exit.
  bool PollOnce(int timeout_ms);

  // Thread-safe: wakes the loop and makes Run() return.
  void Stop();

  const TransportStats& stats() const { return stats_; }
  uint64_t connections_completed() const {
    return connections_completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    explicit Connection(size_t send_cap) : send(send_cap) {}
    FdGuard fd;
    LineFramer hello_framer;
    bool hello_done = false;
    bool eos_queued = false;
    bool stalled = false;
    size_t stream = 0;
    size_t next_index = 0;  // Global index into *lines_ of the next record.
    SendBuffer send;
  };

  void Accept();
  void HandleHello(Connection* conn);
  bool DrainInput(Connection* conn);
  void Fill(Connection* conn);
  // Returns false if the connection died and was removed.
  bool Flush(Connection* conn);
  void CloseConnection(int fd);
  void UpdateInterest(Connection* conn);

  LogServerOptions options_;
  std::shared_ptr<const std::vector<std::string>> lines_;
  uint16_t port_ = 0;
  FdGuard listen_fd_;
  EventLoop loop_;
  bool accepted_any_ = false;
  std::atomic<uint64_t> connections_completed_{0};
  // A handful of live connections at most; linear scan by fd is fine.
  std::vector<std::unique_ptr<Connection>> connections_;
  TransportStats stats_;
};

}  // namespace ts

#endif  // SRC_NET_LOG_SERVER_H_
