#include "src/net/net_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

namespace ts {
namespace {

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  *addr = sockaddr_in{};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* node = host.empty() ? "127.0.0.1" : host.c_str();
  if (host == "0.0.0.0" || host == "*") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  return inet_pton(AF_INET, node, &addr->sin_addr) == 1;
}

}  // namespace

void FdGuard::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SetNoDelay(int fd) {
  int one = 1;
  return setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool SetSendBufferSize(int fd, int bytes) {
  if (bytes <= 0) {
    return true;
  }
  return setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) == 0;
}

bool SetRecvBufferSize(int fd, int bytes) {
  if (bytes <= 0) {
    return true;
  }
  return setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) == 0;
}

int ListenTcp(const std::string& host, uint16_t port, uint16_t* bound_port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    return -1;
  }
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return -1;
  }
  int one = 1;
  setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd.get(), SOMAXCONN) != 0 || !SetNonBlocking(fd.get())) {
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd.Release();
}

int ConnectTcpNonBlocking(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    return -1;
  }
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid() || !SetNonBlocking(fd.get())) {
    return -1;
  }
  SetNoDelay(fd.get());
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return -1;
  }
  return fd.Release();
}

bool ParseHostPort(const std::string& spec, std::string* host, uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty()) {
    return false;
  }
  char* end = nullptr;
  const long value = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  if (host->empty()) {
    *host = "127.0.0.1";
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace ts
