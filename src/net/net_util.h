// Small POSIX socket helpers shared by the log server and the ingest client:
// RAII fd ownership, non-blocking mode, listener setup with ephemeral-port
// discovery, and host:port parsing. IPv4 only — the paper's log servers sit on
// a flat datacenter network and every deployment knob here is an address.
#ifndef SRC_NET_NET_UTIL_H_
#define SRC_NET_NET_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

namespace ts {

// Owns a file descriptor; closes on destruction.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { Close(); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  FdGuard(FdGuard&& other) noexcept : fd_(other.Release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

// Puts `fd` into O_NONBLOCK mode. Returns false on error.
bool SetNonBlocking(int fd);

// Disables Nagle batching; the transport does its own batching via the send
// buffer, and the latency benches care about per-epoch delivery times.
bool SetNoDelay(int fd);

// Pins SO_SNDBUF / SO_RCVBUF to `bytes` (the kernel roughly doubles the
// value for bookkeeping). An explicit size also switches off kernel buffer
// auto-tuning, which is the point: it makes the transport's application-level
// buffer bounds the real end-to-end bound instead of letting the kernel grow
// a multi-megabyte cushion underneath them. 0 or negative is a no-op.
bool SetSendBufferSize(int fd, int bytes);
bool SetRecvBufferSize(int fd, int bytes);

// Binds and listens on host:port (port 0 picks an ephemeral port). On success
// returns the listening fd (non-blocking, SO_REUSEADDR) and stores the actual
// port in *bound_port. Returns -1 on failure.
int ListenTcp(const std::string& host, uint16_t port, uint16_t* bound_port);

// Starts a non-blocking connect to host:port. Returns the fd (connect may
// still be in progress: poll for writability, then check SO_ERROR), or -1.
int ConnectTcpNonBlocking(const std::string& host, uint16_t port);

// Splits "host:port" (host may be empty → "127.0.0.1"). Returns false if the
// port is missing or not a number in [1, 65535].
bool ParseHostPort(const std::string& spec, std::string* host, uint16_t* port);

}  // namespace ts

#endif  // SRC_NET_NET_UTIL_H_
