// EventLoop: the epoll + wake-eventfd core shared by every non-blocking
// server in the transport layer (LogServer on the ingest side, QueryServer on
// the serving side). Owns the epoll instance and a wake eventfd so another
// thread can interrupt a blocked wait; fd registration and the per-fd state
// machine stay with the caller — this class is deliberately just the
// readiness plumbing, not a framework.
//
// Single-threaded except Wake()/stop_requested(), which are thread-safe.
#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/net/net_util.h"

namespace ts {

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll instance and the wake eventfd. Returns false on error.
  bool Init();
  bool valid() const { return epoll_fd_.valid() && wake_fd_.valid(); }

  // fd registration. Events is an EPOLLIN/EPOLLOUT/... mask.
  bool Add(int fd, uint32_t events);
  bool Mod(int fd, uint32_t events);
  void Del(int fd);

  // Waits up to timeout_ms and appends ready (fd, events) pairs to *events.
  // Wake-eventfd readiness is consumed internally and never reported.
  // Returns the number of real events, 0 on timeout, -1 on a non-EINTR error.
  int Poll(int timeout_ms, std::vector<epoll_event>* events);

  // Thread-safe: interrupts a concurrent Poll().
  void Wake();

  // Thread-safe stop flag, conventionally checked by the caller's run loop.
  // RequestStop() also wakes the loop.
  void RequestStop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  // ts_fault seam: when set, the injector's OnPollTick() hook runs before
  // every wait, which is where scheduled stalls starve the loop. Must be set
  // before the loop starts and from the loop's own thread's point of view.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  FdGuard epoll_fd_;
  FdGuard wake_fd_;
  FaultInjector* injector_ = nullptr;
  std::atomic<bool> stop_{false};
};

}  // namespace ts

#endif  // SRC_NET_EVENT_LOOP_H_
