#include "src/net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

namespace ts {

bool EventLoop::Init() {
  epoll_fd_ = FdGuard(epoll_create1(0));
  wake_fd_ = FdGuard(eventfd(0, EFD_NONBLOCK));
  if (!epoll_fd_.valid() || !wake_fd_.valid()) {
    return false;
  }
  return Add(wake_fd_.get(), EPOLLIN);
}

bool EventLoop::Add(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Del(int fd) {
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::Poll(int timeout_ms, std::vector<epoll_event>* events) {
  FaultOnPollTick(injector_);  // Scheduled stalls starve the loop here.
  epoll_event ready[64];
  const int n = epoll_wait(epoll_fd_.get(), ready, 64, timeout_ms);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  int real = 0;
  for (int i = 0; i < n; ++i) {
    if (ready[i].data.fd == wake_fd_.get()) {
      uint64_t drained;
      [[maybe_unused]] ssize_t r =
          ::read(wake_fd_.get(), &drained, sizeof(drained));
      continue;
    }
    events->push_back(ready[i]);
    ++real;
  }
  return real;
}

void EventLoop::Wake() {
  if (wake_fd_.valid()) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  }
}

void EventLoop::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

}  // namespace ts
