#include "src/net/frame_reader.h"

#include "src/log/swar_scan.h"

namespace ts {
namespace {

// Strips one optional trailing '\r' (the wire format is '\n'-terminated, but a
// tolerant reader accepts CRLF producers).
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  return line;
}

}  // namespace

size_t LineFramer::Feed(std::string_view data, std::vector<std::string>* lines) {
  size_t emitted = 0;
  while (!data.empty()) {
    const size_t nl = data.find('\n');
    if (nl == std::string_view::npos) {
      if (discarding_) {
        return emitted;  // Still inside the oversized line; drop the bytes.
      }
      if (partial_.size() + data.size() > options_.max_line_bytes) {
        ++frame_errors_;
        discarding_ = true;
        partial_.clear();
        return emitted;
      }
      partial_.append(data);
      return emitted;
    }

    const std::string_view head = data.substr(0, nl);
    data.remove_prefix(nl + 1);
    if (discarding_) {
      discarding_ = false;  // The oversized line ends here; skip it whole.
      continue;
    }
    if (partial_.size() + head.size() > options_.max_line_bytes) {
      ++frame_errors_;
      partial_.clear();
      continue;
    }
    if (partial_.empty()) {
      lines->emplace_back(StripCr(head));
    } else {
      partial_.append(head);
      std::string_view whole = StripCr(partial_);
      partial_.resize(whole.size());
      lines->push_back(std::move(partial_));
      partial_.clear();
    }
    ++emitted;
  }
  return emitted;
}

size_t LineFramer::FeedViews(std::string_view data, Arena* arena,
                             std::vector<std::string_view>* lines) {
  size_t emitted = 0;
  while (!data.empty()) {
    const size_t nl = FindByte(data.data(), data.size(), '\n');
    if (nl == data.size()) {
      if (discarding_) {
        return emitted;  // Still inside the oversized line; drop the bytes.
      }
      if (partial_.size() + data.size() > options_.max_line_bytes) {
        ++frame_errors_;
        discarding_ = true;
        partial_.clear();
        return emitted;
      }
      partial_.append(data);
      return emitted;
    }

    const std::string_view head = data.substr(0, nl);
    data.remove_prefix(nl + 1);
    if (discarding_) {
      discarding_ = false;  // The oversized line ends here; skip it whole.
      continue;
    }
    if (partial_.size() + head.size() > options_.max_line_bytes) {
      ++frame_errors_;
      partial_.clear();
      continue;
    }
    if (partial_.empty()) {
      lines->push_back(StripCr(head));  // Zero-copy: view into `data`.
    } else {
      // Boundary-spanning line: join the carried prefix with this head into
      // the arena so the emitted view is contiguous. At most one join per
      // Feed call, so the copy stays off the common path.
      partial_.append(head);
      lines->push_back(arena->Copy(StripCr(partial_)));
      partial_.clear();
    }
    ++emitted;
  }
  return emitted;
}

bool LineFramer::Reset() {
  const bool had_partial = !partial_.empty() || discarding_;
  partial_.clear();
  discarding_ = false;
  return had_partial;
}

}  // namespace ts
