#include "src/net/send_buffer.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>

namespace ts {

SendBuffer::FlushResult SendBuffer::Flush(int fd, TransportStats* stats,
                                          FaultInjector* injector) {
  while (off_ < buf_.size()) {
    size_t want = buf_.size() - off_;
    const FaultAction fault = FaultOnSend(injector, want);
    if (fault.kind == FaultAction::Kind::kFail) {
      if (fault.error == EINTR) {
        continue;  // A real EINTR would be retried by the loop too.
      }
      if (fault.error == EAGAIN || fault.error == EWOULDBLOCK) {
        if (off_ > (cap_ >> 1)) {
          buf_.erase(0, off_);
          off_ = 0;
        }
        return FlushResult::kBlocked;
      }
      return FlushResult::kError;  // Injected kill: treat as peer reset.
    }
    if (fault.kind == FaultAction::Kind::kClamp) {
      want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
    }
    const ssize_t n = ::send(fd, buf_.data() + off_, want, MSG_NOSIGNAL);
    if (n > 0) {
      FaultOnIoBytes(injector, static_cast<uint64_t>(n));
      if (stats != nullptr) {
        stats->AddBytesOut(static_cast<uint64_t>(n));
      }
      off_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (off_ > (cap_ >> 1)) {
        buf_.erase(0, off_);  // Compact the consumed prefix.
        off_ = 0;
      }
      return FlushResult::kBlocked;
    }
    return FlushResult::kError;
  }
  buf_.clear();
  off_ = 0;
  return FlushResult::kDrained;
}

}  // namespace ts
