#include "src/net/send_buffer.h"

#include <sys/socket.h>

#include <cerrno>

namespace ts {

SendBuffer::FlushResult SendBuffer::Flush(int fd, TransportStats* stats) {
  while (off_ < buf_.size()) {
    const ssize_t n =
        ::send(fd, buf_.data() + off_, buf_.size() - off_, MSG_NOSIGNAL);
    if (n > 0) {
      if (stats != nullptr) {
        stats->AddBytesOut(static_cast<uint64_t>(n));
      }
      off_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (off_ > (cap_ >> 1)) {
        buf_.erase(0, off_);  // Compact the consumed prefix.
        off_ = 0;
      }
      return FlushResult::kBlocked;
    }
    return FlushResult::kError;
  }
  buf_.clear();
  off_ = 0;
  return FlushResult::kDrained;
}

}  // namespace ts
