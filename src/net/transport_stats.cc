#include "src/net/transport_stats.h"

#include <cstdio>

namespace ts {

std::string TransportStatsSnapshot::Format() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "bytes_in=%llu bytes_out=%llu records_in=%llu records_out=%llu "
                "connects=%llu accepts=%llu reconnects=%llu "
                "backpressure_stalls=%llu frame_errors=%llu parse_errors=%llu "
                "resumes=%llu",
                static_cast<unsigned long long>(bytes_in),
                static_cast<unsigned long long>(bytes_out),
                static_cast<unsigned long long>(records_in),
                static_cast<unsigned long long>(records_out),
                static_cast<unsigned long long>(connects),
                static_cast<unsigned long long>(accepts),
                static_cast<unsigned long long>(reconnects),
                static_cast<unsigned long long>(backpressure_stalls),
                static_cast<unsigned long long>(frame_errors),
                static_cast<unsigned long long>(parse_errors),
                static_cast<unsigned long long>(resumes));
  return std::string(buf);
}

}  // namespace ts
