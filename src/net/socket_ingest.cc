#include "src/net/socket_ingest.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

namespace ts {
namespace {

uint64_t XorShift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

void SleepMs(int64_t ms) {
  if (ms > 0) {
    ::poll(nullptr, 0, static_cast<int>(ms));
  }
}

}  // namespace

SocketIngestSource::SocketIngestSource(const SocketIngestOptions& options)
    : options_(options),
      framer_(LineFramer::Options{options.max_line_bytes}),
      records_received_(options.resume_offset),
      jitter_state_(options.jitter_seed * 0x9E3779B97F4A7C15ull | 1) {}

SocketIngestSource::~SocketIngestSource() = default;

int64_t SocketIngestSource::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SocketIngestSource::ScheduleReconnect() {
  state_ = State::kDisconnected;
  fd_.Close();
  hello_sent_ = false;
  hello_off_ = 0;
  // Drop the truncated tail of any record cut off mid-line; the resume offset
  // only counts complete records, so the server re-sends that record whole.
  framer_.Reset();
  if (ever_connected_) {
    // The next block delivered must tell the consumer its per-connection
    // dictionaries describe a dead producer (PollBlock's connection_reset).
    connection_reset_pending_ = true;
  }
  if (options_.attempt_limit > 0 && attempts_ >= options_.attempt_limit) {
    state_ = State::kFailed;
    return;
  }
  // Exponential backoff, full jitter: uniform in [0, min(max, base * 2^n)].
  int64_t ceiling = options_.backoff_base_ms;
  for (int i = 0; i < attempts_ && ceiling < options_.backoff_max_ms; ++i) {
    ceiling *= 2;
  }
  if (ceiling > options_.backoff_max_ms) {
    ceiling = options_.backoff_max_ms;
  }
  const int64_t wait =
      ceiling > 0 ? static_cast<int64_t>(XorShift64(&jitter_state_) %
                                         static_cast<uint64_t>(ceiling + 1))
                  : 0;
  next_attempt_ms_ = NowMs() + wait;
  ++attempts_;
}

bool SocketIngestSource::EnsureConnected(int64_t deadline_ms) {
  while (state_ != State::kConnected) {
    if (state_ == State::kFailed || state_ == State::kDone) {
      return false;
    }
    const int64_t now = NowMs();
    if (state_ == State::kDisconnected) {
      if (now < next_attempt_ms_) {
        SleepMs(std::min(next_attempt_ms_, deadline_ms) - now);
        if (NowMs() < next_attempt_ms_) {
          return false;  // Deadline hit while still backing off.
        }
      }
      if (!FaultOnConnect(options_.fault_injector)) {
        ScheduleReconnect();  // Injected refusal window: back off and retry.
        continue;
      }
      const int fd = ConnectTcpNonBlocking(options_.host, options_.port);
      if (fd < 0) {
        ScheduleReconnect();
        continue;
      }
      fd_ = FdGuard(fd);
      state_ = State::kConnecting;
    }
    // kConnecting: wait for the socket to become writable, then check SO_ERROR.
    pollfd pfd{fd_.get(), POLLOUT, 0};
    const int64_t wait = deadline_ms - NowMs();
    const int r = ::poll(&pfd, 1, wait < 0 ? 0 : static_cast<int>(wait));
    if (r == 0) {
      return false;  // Connect still in flight at the deadline.
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (r < 0 ||
        getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ScheduleReconnect();
      continue;
    }
    state_ = State::kConnected;
    stats_.IncConnects();
    if (ever_connected_) {
      stats_.IncReconnects();
    }
    ever_connected_ = true;
    attempts_ = 0;
    char hello[64];
    std::snprintf(hello, sizeof(hello), "TS1 %zu %llu\n", options_.stream,
                  static_cast<unsigned long long>(records_received_));
    hello_ = hello;
    hello_off_ = 0;
    hello_sent_ = false;
  }

  while (!hello_sent_) {
    size_t want = hello_.size() - hello_off_;
    const FaultAction fault = FaultOnSend(options_.fault_injector, want);
    if (fault.kind == FaultAction::Kind::kFail) {
      if (fault.error == EINTR) {
        continue;
      }
      if (fault.error == EAGAIN || fault.error == EWOULDBLOCK) {
        return true;  // Retry on the next poll, like a real EAGAIN below.
      }
      ScheduleReconnect();  // Injected kill mid-hello.
      return false;
    }
    if (fault.kind == FaultAction::Kind::kClamp) {
      want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
    }
    const ssize_t n =
        ::send(fd_.get(), hello_.data() + hello_off_, want, MSG_NOSIGNAL);
    if (n > 0) {
      FaultOnIoBytes(options_.fault_injector, static_cast<uint64_t>(n));
      stats_.AddBytesOut(static_cast<uint64_t>(n));
      hello_off_ += static_cast<size_t>(n);
      hello_sent_ = hello_off_ == hello_.size();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;  // A 64-byte hello virtually never blocks; retry next poll.
    }
    ScheduleReconnect();
    return false;
  }
  return true;
}

SocketIngestSource::Poll SocketIngestSource::PollLines(
    std::vector<std::string>* lines, int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  size_t emitted = 0;
  std::vector<std::string> framed;
  std::string chunk(options_.read_chunk_bytes, '\0');

  while (true) {
    if (state_ == State::kDone) {
      return emitted > 0 ? Poll::kRecords : Poll::kEndOfStream;
    }
    if (state_ == State::kFailed) {
      return emitted > 0 ? Poll::kRecords : Poll::kFailed;
    }
    if (!EnsureConnected(deadline)) {
      if (state_ == State::kFailed && emitted == 0) {
        return Poll::kFailed;
      }
      return emitted > 0 ? Poll::kRecords : Poll::kIdle;
    }

    pollfd pfd{fd_.get(), POLLIN, 0};
    const int64_t wait = deadline - NowMs();
    const int r = ::poll(&pfd, 1, wait < 0 ? 0 : static_cast<int>(wait));
    if (r == 0) {
      return emitted > 0 ? Poll::kRecords : Poll::kIdle;
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      ScheduleReconnect();
      continue;
    }

    bool dropped = false;
    while (true) {
      size_t want = chunk.size();
      const FaultAction fault = FaultOnRecv(options_.fault_injector, want);
      if (fault.kind == FaultAction::Kind::kFail) {
        if (fault.error == EINTR) {
          continue;
        }
        if (fault.error == EAGAIN || fault.error == EWOULDBLOCK) {
          break;  // Behaves like a drained socket; poll again.
        }
        dropped = true;  // Injected kill: reconnect and resume.
        break;
      }
      if (fault.kind == FaultAction::Kind::kClamp) {
        want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
      }
      const ssize_t n = ::recv(fd_.get(), chunk.data(), want, 0);
      if (n > 0) {
        FaultOnIoBytes(options_.fault_injector, static_cast<uint64_t>(n));
        FaultOnRecvData(options_.fault_injector, chunk.data(),
                        static_cast<size_t>(n));
        stats_.AddBytesIn(static_cast<uint64_t>(n));
        framed.clear();
        framer_.Feed(std::string_view(chunk.data(), static_cast<size_t>(n)),
                     &framed);
        for (auto& line : framed) {
          if (!line.empty() && line[0] == '#') {
            if (line == "#EOS") {
              eos_seen_ = true;
            }
            continue;  // Control lines never reach the parser.
          }
          if (line.empty()) {
            continue;
          }
          ++records_received_;
          stats_.AddRecordsIn(1);
          lines->push_back(std::move(line));
          ++emitted;
        }
        if (eos_seen_) {
          state_ = State::kDone;
          fd_.Close();
          return emitted > 0 ? Poll::kRecords : Poll::kEndOfStream;
        }
        if (options_.max_records_per_poll > 0 &&
            emitted >= options_.max_records_per_poll) {
          return Poll::kRecords;  // Batch cap hit; the rest waits its turn.
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // read()==0 or a hard error: the server vanished without #EOS.
      dropped = true;
      break;
    }
    if (dropped) {
      ScheduleReconnect();
      continue;
    }
    if (emitted > 0) {
      return Poll::kRecords;  // Drained to EAGAIN with records in hand.
    }
  }
}

SocketIngestSource::Poll SocketIngestSource::PollBlock(LineBlock* block,
                                                       int timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  block->clear();
  if (arena_ == nullptr || arena_->bytes_used() > options_.arena_rotate_bytes) {
    arena_ = std::make_shared<Arena>();
  }
  block->arena = arena_;
  block->connection_reset = connection_reset_pending_;
  connection_reset_pending_ = false;
  size_t emitted = 0;
  std::vector<std::string_view> framed;

  while (true) {
    if (state_ == State::kDone) {
      return emitted > 0 ? Poll::kRecords : Poll::kEndOfStream;
    }
    if (state_ == State::kFailed) {
      return emitted > 0 ? Poll::kRecords : Poll::kFailed;
    }
    if (!EnsureConnected(deadline)) {
      if (state_ == State::kFailed && emitted == 0) {
        return Poll::kFailed;
      }
      return emitted > 0 ? Poll::kRecords : Poll::kIdle;
    }

    pollfd pfd{fd_.get(), POLLIN, 0};
    const int64_t wait = deadline - NowMs();
    const int r = ::poll(&pfd, 1, wait < 0 ? 0 : static_cast<int>(wait));
    if (r == 0) {
      return emitted > 0 ? Poll::kRecords : Poll::kIdle;
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      ScheduleReconnect();
      continue;
    }

    bool dropped = false;
    while (true) {
      // recv() straight into the block's arena: the chunk tail is offered
      // first so short reads never strand chunk remainders, and the framed
      // views alias these bytes with no copy.
      size_t got = 0;
      char* buf = arena_->ReserveUpTo(/*min_bytes=*/4096,
                                      options_.read_chunk_bytes, &got);
      size_t want = got;
      const FaultAction fault = FaultOnRecv(options_.fault_injector, want);
      if (fault.kind == FaultAction::Kind::kFail) {
        if (fault.error == EINTR) {
          continue;
        }
        if (fault.error == EAGAIN || fault.error == EWOULDBLOCK) {
          break;  // Behaves like a drained socket; poll again.
        }
        dropped = true;  // Injected kill: reconnect and resume.
        break;
      }
      if (fault.kind == FaultAction::Kind::kClamp) {
        want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
      }
      const ssize_t n = ::recv(fd_.get(), buf, want, 0);
      if (n > 0) {
        FaultOnIoBytes(options_.fault_injector, static_cast<uint64_t>(n));
        FaultOnRecvData(options_.fault_injector, buf, static_cast<size_t>(n));
        stats_.AddBytesIn(static_cast<uint64_t>(n));
        arena_->Commit(static_cast<size_t>(n));
        framed.clear();
        framer_.FeedViews(std::string_view(buf, static_cast<size_t>(n)),
                          arena_.get(), &framed);
        for (std::string_view line : framed) {
          if (!line.empty() && line[0] == '#') {
            if (line == "#EOS") {
              eos_seen_ = true;
            }
            continue;  // Control lines never reach the parser.
          }
          if (line.empty()) {
            continue;
          }
          ++records_received_;
          stats_.AddRecordsIn(1);
          block->lines.push_back(line);
          ++emitted;
        }
        if (eos_seen_) {
          state_ = State::kDone;
          fd_.Close();
          return emitted > 0 ? Poll::kRecords : Poll::kEndOfStream;
        }
        if (options_.max_records_per_poll > 0 &&
            emitted >= options_.max_records_per_poll) {
          return Poll::kRecords;  // Batch cap hit; the rest waits its turn.
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      // read()==0 or a hard error: the server vanished without #EOS.
      dropped = true;
      break;
    }
    if (dropped) {
      ScheduleReconnect();
      // The views already in `block` stay valid (the arena outlives the
      // reconnect), but this block now spans connections; the reset flag set
      // by ScheduleReconnect rides on the NEXT block, which is fine — the
      // dictionaries are a pure cache, so reset timing is output-neutral.
      continue;
    }
    if (emitted > 0) {
      return Poll::kRecords;  // Drained to EAGAIN with records in hand.
    }
  }
}

bool SocketIngestSource::ReadAll(std::vector<std::string>* lines) {
  while (true) {
    switch (PollLines(lines, /*timeout_ms=*/200)) {
      case Poll::kRecords:
      case Poll::kIdle:
        break;
      case Poll::kEndOfStream:
        return true;
      case Poll::kFailed:
        return false;
    }
  }
}

}  // namespace ts
