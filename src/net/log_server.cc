#include "src/net/log_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ts {
namespace {

constexpr char kEosLine[] = "#EOS\n";

// Parses "TS1 <stream> <offset>". Returns false on malformed hellos.
bool ParseHello(const std::string& line, size_t num_streams, size_t* stream,
                size_t* offset) {
  unsigned long long s = 0;
  unsigned long long off = 0;
  if (std::sscanf(line.c_str(), "TS1 %llu %llu", &s, &off) != 2) {
    return false;
  }
  if (s >= num_streams) {
    return false;
  }
  *stream = static_cast<size_t>(s);
  *offset = static_cast<size_t>(off);
  return true;
}

}  // namespace

LogServer::LogServer(const LogServerOptions& options,
                     std::shared_ptr<const std::vector<std::string>> lines)
    : options_(options), lines_(std::move(lines)) {
  if (options_.num_streams == 0) {
    options_.num_streams = 1;
  }
}

LogServer::~LogServer() = default;

bool LogServer::Start() {
  listen_fd_ = FdGuard(ListenTcp(options_.host, options_.port, &port_));
  if (!listen_fd_.valid()) {
    return false;
  }
  if (!loop_.Init()) {
    return false;
  }
  loop_.set_fault_injector(options_.fault_injector);
  return loop_.Add(listen_fd_.get(), EPOLLIN);
}

void LogServer::Stop() { loop_.RequestStop(); }

void LogServer::Run() {
  while (PollOnce(/*timeout_ms=*/200)) {
  }
  // Drop every connection abruptly — clients see a peer reset, not #EOS.
  connections_.clear();
}

bool LogServer::PollOnce(int timeout_ms) {
  if (loop_.stop_requested()) {
    return false;
  }
  std::vector<epoll_event> events;
  if (loop_.Poll(timeout_ms, &events) < 0) {
    return false;
  }
  for (const auto& event : events) {
    const int fd = event.data.fd;
    if (fd == listen_fd_.get()) {
      Accept();
      continue;
    }
    Connection* conn = nullptr;
    for (auto& c : connections_) {
      if (c->fd.get() == fd) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) {
      continue;  // Closed earlier in this batch.
    }
    if ((event.events & (EPOLLHUP | EPOLLERR)) != 0) {
      CloseConnection(fd);
      continue;
    }
    if ((event.events & EPOLLIN) != 0) {
      if (!conn->hello_done) {
        HandleHello(conn);
      } else if (!DrainInput(conn)) {
        continue;  // Peer closed or went away.
      }
      // HandleHello may close the connection on a malformed hello.
      bool alive = false;
      for (auto& c : connections_) {
        alive = alive || c->fd.get() == fd;
      }
      if (!alive) {
        continue;
      }
    }
    if ((event.events & EPOLLOUT) != 0 && conn->hello_done) {
      Fill(conn);
      if (!Flush(conn)) {
        continue;
      }
      Fill(conn);  // Refill what the flush drained so the buffer stays warm.
    }
  }
  if (loop_.stop_requested()) {
    return false;
  }
  if (options_.exit_after_serving && accepted_any_ && connections_.empty()) {
    return false;
  }
  return true;
}

void LogServer::Accept() {
  while (true) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or a transient error; epoll will re-arm.
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    stats_.IncAccepts();
    accepted_any_ = true;
    auto conn = std::make_unique<Connection>(options_.max_conn_buffer_bytes);
    conn->fd = FdGuard(fd);
    if (!loop_.Add(fd, EPOLLIN)) {
      continue;  // conn destructor closes the fd.
    }
    connections_.push_back(std::move(conn));
  }
}

void LogServer::HandleHello(Connection* conn) {
  char buf[256];
  std::vector<std::string> lines;
  while (true) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.AddBytesIn(static_cast<uint64_t>(n));
      conn->hello_framer.Feed(std::string_view(buf, static_cast<size_t>(n)),
                              &lines);
      if (!lines.empty()) {
        break;
      }
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      CloseConnection(conn->fd.get());  // Peer vanished before the hello.
      return;
    }
    return;  // Partial hello; wait for more bytes.
  }

  size_t stream = 0;
  size_t offset = 0;
  if (!ParseHello(lines.front(), options_.num_streams, &stream, &offset)) {
    stats_.IncFrameErrors();
    CloseConnection(conn->fd.get());
    return;
  }
  conn->hello_done = true;
  conn->stream = stream;
  // Record k of stream s lives at archive index s + k * num_streams.
  conn->next_index = stream + offset * options_.num_streams;
  if (offset > 0) {
    stats_.IncResumes();
  }
  UpdateInterest(conn);
}

bool LogServer::DrainInput(Connection* conn) {
  // After the hello the client sends nothing; bytes here are either protocol
  // misuse (discard) or a read()==0 EOF marking that the peer closed early.
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.AddBytesIn(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;
    }
    CloseConnection(conn->fd.get());
    return false;
  }
}

void LogServer::Fill(Connection* conn) {
  const auto& archive = *lines_;
  bool wanted_more = false;
  while (!conn->eos_queued) {
    if (conn->next_index >= archive.size()) {
      conn->send.Append(kEosLine);
      conn->eos_queued = true;
      break;
    }
    const std::string& line = archive[conn->next_index];
    if (!conn->send.Fits(line.size() + 1)) {
      wanted_more = true;  // Buffer full with records left: backpressure.
      break;
    }
    conn->send.Append(line);
    conn->send.Append('\n');
    conn->next_index += options_.num_streams;
    stats_.AddRecordsOut(1);
  }
  if (wanted_more && !conn->stalled) {
    conn->stalled = true;
    stats_.IncBackpressureStalls();
  } else if (!wanted_more) {
    conn->stalled = false;
  }
}

bool LogServer::Flush(Connection* conn) {
  switch (conn->send.Flush(conn->fd.get(), &stats_,
                           options_.fault_injector)) {
    case SendBuffer::FlushResult::kBlocked:
      return true;  // Socket buffer full; epoll will tell us when to resume.
    case SendBuffer::FlushResult::kError:
      CloseConnection(conn->fd.get());  // EPIPE/ECONNRESET: consumer is gone.
      return false;
    case SendBuffer::FlushResult::kDrained:
      break;
  }
  if (conn->eos_queued) {
    // Everything including #EOS is on the wire: graceful shutdown.
    ::shutdown(conn->fd.get(), SHUT_WR);
    connections_completed_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->fd.get());
    return false;
  }
  return true;
}

void LogServer::UpdateInterest(Connection* conn) {
  loop_.Mod(conn->fd.get(), EPOLLIN | EPOLLOUT);
}

void LogServer::CloseConnection(int fd) {
  loop_.Del(fd);
  for (size_t i = 0; i < connections_.size(); ++i) {
    if (connections_[i]->fd.get() == fd) {
      connections_[i] = std::move(connections_.back());
      connections_.pop_back();
      return;
    }
  }
}

}  // namespace ts
