// Incremental newline framing for the text wire format.
//
// TCP delivers a byte stream, not records: a read() may end mid-line, and one
// read may span many lines. LineFramer accumulates partial data across Feed()
// calls and emits each complete line exactly once, with the trailing '\n' (and
// any '\r' before it) stripped. A line longer than max_line_bytes is dropped
// and counted as a frame error — one corrupt or hostile writer must not make
// the reader buffer unboundedly.
#ifndef SRC_NET_FRAME_READER_H_
#define SRC_NET_FRAME_READER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"

namespace ts {

class LineFramer {
 public:
  struct Options {
    size_t max_line_bytes = 1 << 20;  // 1 MiB; wire lines are ~100 bytes.
  };

  LineFramer() : LineFramer(Options{}) {}
  explicit LineFramer(const Options& options) : options_(options) {}

  // Consumes `data`, appending every newly completed line to `lines`.
  // Returns the number of lines appended.
  size_t Feed(std::string_view data, std::vector<std::string>* lines);

  // Zero-copy variant: `data` must already live in storage that outlives the
  // emitted views (in practice: bytes recv()'d straight into `arena`). Lines
  // wholly inside `data` are emitted as views into it; a line that spans Feed
  // calls is joined from the carried partial into `arena`. Framing decisions
  // (splits, CR stripping, oversized-line drops) are byte-identical to Feed —
  // the LineFramerProperty suite drives both over every split point. The
  // newline search runs 8 bytes per step (src/log/swar_scan.h).
  size_t FeedViews(std::string_view data, Arena* arena,
                   std::vector<std::string_view>* lines);

  // Discards any buffered partial line (e.g. after a connection drop: the
  // truncated tail of the last record must not be glued to the first line of
  // the resumed stream). Returns true if a partial line was discarded.
  bool Reset();

  // Bytes of the current incomplete line held in the buffer.
  size_t pending_bytes() const { return partial_.size(); }
  uint64_t frame_errors() const { return frame_errors_; }

 private:
  Options options_;
  std::string partial_;
  bool discarding_ = false;  // Inside an oversized line, skipping to '\n'.
  uint64_t frame_errors_ = 0;
};

}  // namespace ts

#endif  // SRC_NET_FRAME_READER_H_
