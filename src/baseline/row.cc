#include "src/baseline/row.h"

namespace ts {

size_t Row::MemoryFootprint() const {
  size_t bytes = sizeof(Row) + fields_.capacity() * sizeof(Value);
  for (const auto& f : fields_) {
    if (const auto* s = std::get_if<std::string>(&f)) {
      bytes += s->capacity();
    }
  }
  return bytes;
}

RowPtr RowFromRecord(const LogRecord& record) {
  auto row = std::make_shared<Row>();
  row->Append(record.session_id);
  row->Append(record.txn_id.ToString());
  row->Append(static_cast<int64_t>(record.service));
  row->Append(static_cast<int64_t>(record.kind));
  row->Append(record.payload);
  return row;
}

}  // namespace ts
