#include "src/baseline/session_window_job.h"

#include <algorithm>

#include "src/common/siphash.h"
#include "src/log/wire_format.h"

namespace ts {

void SessionWindowOperator::ProcessElement(const std::string& key, EventTime t,
                                           RowPtr row) {
  auto& windows = state_[key];
  int64_t delta = 0;
  const size_t idx = windows.AddElement(t, gap_ns_, std::move(row), &delta);
  state_bytes_ += static_cast<size_t>(delta);
  // Register (or refresh) the event-time timer for the merged window. Stale
  // timers for absorbed windows are skipped at firing time.
  timers_.push(Timer{windows.window(idx).window.end, key});
}

void SessionWindowOperator::FireWindow(const std::string& key, size_t window_index) {
  auto it = state_.find(key);
  auto& ws = it->second.window(window_index);
  std::sort(ws.elements.begin(), ws.elements.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  BaselineSessionOutput out;
  out.key = key;
  out.num_records = ws.elements.size();
  out.start = ws.elements.empty() ? ws.window.start : ws.elements.front().first;
  out.end = ws.elements.empty() ? ws.window.start : ws.elements.back().first;
  state_bytes_ -= std::min(state_bytes_, ws.bytes);
  it->second.Remove(window_index);
  if (it->second.empty()) {
    state_.erase(it);
  }
  if (sink_) {
    sink_(std::move(out));
  }
}

void SessionWindowOperator::ProcessWatermark(EventTime watermark) {
  while (!timers_.empty() && timers_.top().end <= watermark) {
    const Timer timer = timers_.top();
    timers_.pop();
    auto it = state_.find(timer.key);
    if (it == state_.end()) {
      continue;  // Stale timer: the window fired or merged away.
    }
    // Fire the window whose end matches the timer exactly; merged windows
    // re-registered timers for their extended ends.
    const auto& windows = it->second.windows();
    for (size_t i = 0; i < windows.size(); ++i) {
      if (windows[i].window.end == timer.end) {
        FireWindow(timer.key, i);
        break;
      }
    }
  }
}

void SessionWindowOperator::Finish() {
  // Bounded input: a final +inf watermark releases everything.
  ProcessWatermark(std::numeric_limits<EventTime>::max());
}

BaselineSessionJob::BaselineSessionJob(const BaselineJobConfig& config, Sink sink)
    : config_(config),
      pool_(config.parallelism, config.queue_capacity,
            [this, sink = std::move(sink)](size_t) {
              return std::make_unique<SessionWindowOperator>(
                  config_.session_gap_ns, [this, sink](BaselineSessionOutput out) {
                    sessions_.fetch_add(1, std::memory_order_relaxed);
                    if (sink) {
                      sink(std::move(out));
                    }
                  });
            }) {
  pool_.SetDeserializer([](const std::string& serialized) -> RowPtr {
    auto parsed = ParseWireFormat(serialized);
    return parsed ? RowFromRecord(*parsed) : std::make_shared<Row>();
  });
}

void BaselineSessionJob::Route(const LogRecord& record) {
  ++elements_;
  StreamElement e;
  e.kind = StreamElement::Kind::kRecord;
  e.timestamp = record.time;
  e.key = record.session_id;
  // keyBy boundary: general-purpose engines ship records across task
  // boundaries in serialized form; the subtask deserializes (see the pool's
  // deserializer). This is the Flink data path even within one process.
  e.serialized = ToWireFormat(record);
  const size_t subtask =
      static_cast<size_t>(SipHash24(record.session_id) % pool_.parallelism());
  pool_.Emit(subtask, std::move(e));
}

void BaselineSessionJob::FeedLine(const std::string& line) {
  auto parsed = ParseWireFormat(line);
  if (!parsed) {
    ++parse_failures_;
    return;
  }
  Route(*parsed);
}

void BaselineSessionJob::FeedRecord(const LogRecord& record) { Route(record); }

size_t BaselineSessionJob::PollStateBytes() {
  const size_t now = pool_.TotalStateBytes();
  peak_state_bytes_ = std::max(peak_state_bytes_, now);
  return now;
}

BaselineJobStats BaselineSessionJob::stats() const {
  BaselineJobStats s;
  s.elements = elements_;
  s.parse_failures = parse_failures_;
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.peak_state_bytes = peak_state_bytes_;
  return s;
}

}  // namespace ts
