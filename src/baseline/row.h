// Dynamically-typed records for the baseline (Flink-like) engine.
//
// General-purpose stream processors ship records as heap-allocated, generically
// typed objects (Java POJOs / Rows). That architecture — one allocation per
// record, variant-typed field access, shared ownership across operators — is a
// large part of why the paper measured a 71x latency gap and a 35x memory gap
// against TS (§5.1). We reproduce it faithfully rather than strawmanning it:
// the baseline gets the same algorithmic windowing semantics as Flink.
#ifndef SRC_BASELINE_ROW_H_
#define SRC_BASELINE_ROW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/log/record.h"

namespace ts {

using Value = std::variant<int64_t, double, std::string>;

class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> fields) : fields_(std::move(fields)) {}

  const Value& field(size_t i) const { return fields_[i]; }
  size_t size() const { return fields_.size(); }
  void Append(Value v) { fields_.push_back(std::move(v)); }

  int64_t GetInt(size_t i) const { return std::get<int64_t>(fields_[i]); }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(fields_[i]);
  }

  size_t MemoryFootprint() const;

 private:
  std::vector<Value> fields_;
};

using RowPtr = std::shared_ptr<Row>;

// Field layout for log records flowing through the baseline session job.
enum LogRowField : size_t {
  kRowSession = 0,
  kRowTxn = 1,
  kRowService = 2,
  kRowKind = 3,
  kRowPayload = 4,
};

// Converts a parsed log record into a generic row (what a Flink
// DeserializationSchema produces).
RowPtr RowFromRecord(const LogRecord& record);

}  // namespace ts

#endif  // SRC_BASELINE_ROW_H_
