#include "src/baseline/engine.h"

#include <chrono>

#include "src/common/status.h"

namespace ts {

SubtaskPool::SubtaskPool(size_t parallelism, size_t queue_capacity,
                         OperatorFactory factory) {
  TS_CHECK(parallelism >= 1);
  subtasks_.resize(parallelism);
  for (size_t i = 0; i < parallelism; ++i) {
    subtasks_[i].queue = std::make_unique<FixedQueue<StreamElement>>(queue_capacity);
    subtasks_[i].op = factory(i);
  }
}

SubtaskPool::~SubtaskPool() {
  if (started_ && !joined_) {
    FinishAndJoin();
  }
}

void SubtaskPool::Start() {
  TS_CHECK(!started_);
  started_ = true;
  for (size_t i = 0; i < subtasks_.size(); ++i) {
    subtasks_[i].thread = std::thread([this, i] { RunSubtask(i); });
  }
}

void SubtaskPool::RunSubtask(size_t index) {
  Subtask& task = subtasks_[index];
  for (;;) {
    auto element = task.queue->Pop();
    if (!element.has_value() || element->kind == StreamElement::Kind::kEnd) {
      task.op->Finish();
      return;
    }
    switch (element->kind) {
      case StreamElement::Kind::kRecord:
        if (element->row == nullptr && deserializer_ &&
            !element->serialized.empty()) {
          element->row = deserializer_(element->serialized);
        }
        task.op->ProcessElement(element->key, element->timestamp,
                                std::move(element->row));
        break;
      case StreamElement::Kind::kWatermark:
        task.op->ProcessWatermark(element->timestamp);
        Ack(element->timestamp);
        break;
      case StreamElement::Kind::kEnd:
        break;  // Handled above.
    }
  }
}

void SubtaskPool::Emit(size_t subtask, StreamElement element) {
  subtasks_[subtask].queue->Push(std::move(element));
}

void SubtaskPool::BroadcastWatermark(EventTime watermark) {
  StreamElement e;
  e.kind = StreamElement::Kind::kWatermark;
  e.timestamp = watermark;
  for (auto& task : subtasks_) {
    task.queue->Push(e);
  }
}

void SubtaskPool::Ack(EventTime watermark) {
  std::lock_guard<std::mutex> lock(ack_mu_);
  if (++acks_[watermark] == subtasks_.size()) {
    fully_acked_ = std::max(fully_acked_, watermark);
    acks_.erase(watermark);
    ack_cv_.notify_all();
  }
}

int64_t SubtaskPool::AwaitWatermark(EventTime watermark) {
  std::unique_lock<std::mutex> lock(ack_mu_);
  ack_cv_.wait(lock, [&] { return fully_acked_ >= watermark; });
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SubtaskPool::FinishAndJoin() {
  TS_CHECK(started_ && !joined_);
  StreamElement end;
  end.kind = StreamElement::Kind::kEnd;
  for (auto& task : subtasks_) {
    task.queue->Push(end);
  }
  for (auto& task : subtasks_) {
    task.thread.join();
  }
  joined_ = true;
}

size_t SubtaskPool::TotalStateBytes() const {
  size_t total = 0;
  for (const auto& task : subtasks_) {
    total += task.op->state_bytes();
  }
  return total;
}

size_t SubtaskPool::TotalQueuedElements() const {
  size_t total = 0;
  for (const auto& task : subtasks_) {
    total += task.queue->size();
  }
  return total;
}

}  // namespace ts
