// Minimal general-purpose streaming runtime, shaped like Flink's task model:
// parallel keyed subtasks, each a thread draining a bounded input queue
// (bounded queues are what produce backpressure when an operator falls behind),
// per-record virtual dispatch into the operator, and watermark broadcast with
// completion acknowledgements so a harness can measure per-epoch latency the
// same way it does for TS (first element in -> watermark fully processed).
#ifndef SRC_BASELINE_ENGINE_H_
#define SRC_BASELINE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/baseline/row.h"
#include "src/common/fixed_queue.h"
#include "src/common/time_util.h"

namespace ts {

struct StreamElement {
  enum class Kind : uint8_t { kRecord, kWatermark, kEnd };
  Kind kind = Kind::kRecord;
  EventTime timestamp = 0;  // Record event time, or the watermark value.
  std::string key;          // Partition key (extracted upstream, as keyBy does).
  RowPtr row;               // Set when the element is already deserialized.
  // Exchange edges in a general-purpose engine move records in serialized form
  // (Flink serializes at every keyBy boundary, even within one process); when
  // `serialized` is set, the receiving subtask's deserializer materializes the
  // row before ProcessElement.
  std::string serialized;
};

// The operator a subtask runs. One instance per subtask; all methods are called
// from that subtask's thread only.
class KeyedOperator {
 public:
  virtual ~KeyedOperator() = default;
  virtual void ProcessElement(const std::string& key, EventTime t, RowPtr row) = 0;
  virtual void ProcessWatermark(EventTime watermark) = 0;
  // End of stream: release every remaining window/state.
  virtual void Finish() = 0;
  virtual size_t state_bytes() const = 0;
};

class SubtaskPool {
 public:
  using OperatorFactory = std::function<std::unique_ptr<KeyedOperator>(size_t subtask)>;
  // Materializes element.row from element.serialized on the subtask thread.
  using Deserializer = std::function<RowPtr(const std::string& serialized)>;

  SubtaskPool(size_t parallelism, size_t queue_capacity, OperatorFactory factory);

  void SetDeserializer(Deserializer deserializer) {
    deserializer_ = std::move(deserializer);
  }
  ~SubtaskPool();

  void Start();

  // Blocking push into `subtask`'s queue: the caller (source) experiences
  // backpressure when the subtask cannot keep up.
  void Emit(size_t subtask, StreamElement element);

  // Broadcasts a watermark to every subtask. Watermarks must increase.
  void BroadcastWatermark(EventTime watermark);

  // Blocks until every subtask has processed watermark >= `watermark`; returns
  // the steady-clock nanos at which the last ack landed.
  int64_t AwaitWatermark(EventTime watermark);

  // Sends end-of-stream and joins all subtask threads.
  void FinishAndJoin();

  size_t parallelism() const { return subtasks_.size(); }
  size_t TotalStateBytes() const;
  size_t TotalQueuedElements() const;

 private:
  struct Subtask {
    std::unique_ptr<FixedQueue<StreamElement>> queue;
    std::unique_ptr<KeyedOperator> op;
    std::thread thread;
  };

  void RunSubtask(size_t index);
  void Ack(EventTime watermark);

  std::vector<Subtask> subtasks_;
  Deserializer deserializer_;
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::map<EventTime, size_t> acks_;
  EventTime fully_acked_ = -1;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace ts

#endif  // SRC_BASELINE_ENGINE_H_
