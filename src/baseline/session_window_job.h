// The baseline sessionization job (the Figure 6 comparison system): text source
// with a chained deserializer, keyBy(session id), event-time merging session
// windows with a per-window timer service, and a session sink.
//
// Semantics match TS's sessionizer: a session closes after `gap` of event-time
// inactivity, and its buffered elements are emitted together. The mechanisms
// are the generic ones a Flink job uses — per-record heap rows, per-key merging
// window sets, timer queues — not TS's epoch-batched worker-local state.
#ifndef SRC_BASELINE_SESSION_WINDOW_JOB_H_
#define SRC_BASELINE_SESSION_WINDOW_JOB_H_

#include <atomic>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseline/engine.h"
#include "src/baseline/window.h"
#include "src/common/time_util.h"
#include "src/log/record.h"

namespace ts {

struct BaselineSessionOutput {
  std::string key;
  size_t num_records = 0;
  EventTime start = 0;
  EventTime end = 0;  // Last element time.
};

class SessionWindowOperator : public KeyedOperator {
 public:
  using Sink = std::function<void(BaselineSessionOutput)>;

  SessionWindowOperator(EventTime gap_ns, Sink sink)
      : gap_ns_(gap_ns), sink_(std::move(sink)) {}

  void ProcessElement(const std::string& key, EventTime t, RowPtr row) override;
  void ProcessWatermark(EventTime watermark) override;
  void Finish() override;
  size_t state_bytes() const override { return state_bytes_; }

 private:
  struct Timer {
    EventTime end;
    std::string key;
    bool operator>(const Timer& other) const { return end > other.end; }
  };

  void FireWindow(const std::string& key, size_t window_index);

  const EventTime gap_ns_;
  Sink sink_;
  std::unordered_map<std::string, MergingWindowSet> state_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  size_t state_bytes_ = 0;
};

struct BaselineJobConfig {
  size_t parallelism = 4;
  EventTime session_gap_ns = 5 * kNanosPerSecond;
  size_t queue_capacity = 16 * 1024;
  bool parse_text = true;  // Source deserializes wire-format lines.
};

struct BaselineJobStats {
  uint64_t elements = 0;
  uint64_t parse_failures = 0;
  uint64_t sessions = 0;
  size_t peak_state_bytes = 0;
};

// Drives the job: the caller is the source thread.
class BaselineSessionJob {
 public:
  using Sink = std::function<void(BaselineSessionOutput)>;

  // `sink` runs on subtask threads; it must be thread-safe. May be null.
  BaselineSessionJob(const BaselineJobConfig& config, Sink sink);

  void Start() { pool_.Start(); }

  // Source path: deserialize (if text), extract key, route. Blocks under
  // backpressure, exactly like a Flink source with full output buffers.
  void FeedLine(const std::string& line);
  void FeedRecord(const LogRecord& record);

  void BroadcastWatermark(EventTime watermark) {
    pool_.BroadcastWatermark(watermark);
  }
  int64_t AwaitWatermark(EventTime watermark) {
    return pool_.AwaitWatermark(watermark);
  }
  // Flushes all remaining windows and joins the subtasks.
  void FinishAndJoin() { pool_.FinishAndJoin(); }

  // Updates and returns peak state bytes (poll from the harness).
  size_t PollStateBytes();
  size_t QueuedElements() const { return pool_.TotalQueuedElements(); }
  BaselineJobStats stats() const;

 private:
  void Route(const LogRecord& record);

  BaselineJobConfig config_;
  std::atomic<uint64_t> sessions_{0};
  SubtaskPool pool_;
  uint64_t elements_ = 0;
  uint64_t parse_failures_ = 0;
  size_t peak_state_bytes_ = 0;
};

}  // namespace ts

#endif  // SRC_BASELINE_SESSION_WINDOW_JOB_H_
