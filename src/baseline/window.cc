#include "src/baseline/window.h"

#include <algorithm>

namespace ts {

size_t MergingWindowSet::AddElement(EventTime t, EventTime gap, RowPtr row,
                                    int64_t* bytes_delta) {
  int64_t delta = 0;
  TimeWindow merged{t, t + gap};
  WindowState target;
  target.window = merged;

  // Collect and absorb every intersecting window (Flink merges eagerly on
  // element insertion).
  for (size_t i = windows_.size(); i-- > 0;) {
    if (!windows_[i].window.Intersects(merged)) {
      continue;
    }
    merged.start = std::min(merged.start, windows_[i].window.start);
    merged.end = std::max(merged.end, windows_[i].window.end);
    for (auto& e : windows_[i].elements) {
      target.elements.push_back(std::move(e));
    }
    target.bytes += windows_[i].bytes;
    windows_.erase(windows_.begin() + static_cast<long>(i));
  }
  target.window = merged;
  const size_t row_bytes = row->MemoryFootprint() + sizeof(EventTime) + sizeof(RowPtr);
  target.elements.emplace_back(t, std::move(row));
  target.bytes += row_bytes;
  delta += static_cast<int64_t>(row_bytes);
  windows_.push_back(std::move(target));
  if (bytes_delta != nullptr) {
    *bytes_delta = delta;
  }
  return windows_.size() - 1;
}

std::vector<size_t> MergingWindowSet::RipeWindows(EventTime watermark) const {
  std::vector<size_t> ripe;
  for (size_t i = 0; i < windows_.size(); ++i) {
    if (windows_[i].window.end <= watermark) {
      ripe.push_back(i);
    }
  }
  // Descending order so callers can Remove() while iterating.
  std::sort(ripe.rbegin(), ripe.rend());
  return ripe;
}

}  // namespace ts
