// Event-time session windows with merging, as implemented by Flink's
// MergingWindowAssigner: each element opens a window [t, t + gap); overlapping
// windows of the same key merge, coalescing their buffered elements; a window
// fires when the watermark passes its end.
#ifndef SRC_BASELINE_WINDOW_H_
#define SRC_BASELINE_WINDOW_H_

#include <vector>

#include "src/baseline/row.h"
#include "src/common/time_util.h"

namespace ts {

struct TimeWindow {
  EventTime start = 0;
  EventTime end = 0;  // Exclusive.
  bool Intersects(const TimeWindow& other) const {
    return start < other.end && other.start < end;
  }
  bool operator==(const TimeWindow& other) const = default;
};

// Per-key merging window set holding the buffered elements of each window.
class MergingWindowSet {
 public:
  struct WindowState {
    TimeWindow window;
    std::vector<std::pair<EventTime, RowPtr>> elements;
    size_t bytes = 0;
  };

  // Adds an element at time `t`, creating window [t, t+gap) and merging every
  // intersecting window. Returns the index of the (possibly merged) window the
  // element landed in. `bytes_delta` reports the net state-size change.
  size_t AddElement(EventTime t, EventTime gap, RowPtr row, int64_t* bytes_delta);

  // Windows whose end is <= `watermark`, ready to fire.
  std::vector<size_t> RipeWindows(EventTime watermark) const;

  WindowState& window(size_t i) { return windows_[i]; }
  const std::vector<WindowState>& windows() const { return windows_; }
  void Remove(size_t i) {
    windows_.erase(windows_.begin() + static_cast<long>(i));
  }
  bool empty() const { return windows_.empty(); }

 private:
  std::vector<WindowState> windows_;
};

}  // namespace ts

#endif  // SRC_BASELINE_WINDOW_H_
