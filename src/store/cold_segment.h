// Cold segments: the on-disk unit of the tiered session store.
//
// A segment holds a batch of sessions evicted from the in-memory
// SessionStore, written in the *same* CRC32C-framed container ts_ckpt
// snapshots use — every session is one 'S' frame, byte-identical to what
// StoreFrameEncoder emits into a snapshot — followed by one footer index
// frame and a fixed-size trailer:
//
//   [ 'S' frame ] * count          StoreFrameEncoder bytes, spill order
//   [ 'X' index frame ]            footer index (see below)
//   u64 index_frame_offset (LE)    where the index frame starts
//   "TSCOLDSG"                     8-byte magic
//
// The footer index carries, per segment: the session count, spill-sequence
// range, event-time range and a per-service summary (service -> session
// count, the TOPK merge input); and per entry: id, fragment, the frame's
// (offset, length), time extent and sorted service set. A reader locates the
// index from the trailer, validates its frame CRC, and thereafter serves
// point reads with one pread + CRC check per session — a damaged frame (or a
// damaged index) degrades to a cold miss, never a crash or a wrong answer.
//
// Files are written with the snapshot writer's tmp + fsync + rename
// discipline, so a segment either exists completely or not at all; a torn
// write can only leave a truncated temp file the directory scan ignores.
#ifndef SRC_STORE_COLD_SEGMENT_H_
#define SRC_STORE_COLD_SEGMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/session.h"

namespace ts {

inline constexpr char kColdSegmentMagic[] = "TSCOLDSG";  // 8 bytes, no NUL.
inline constexpr size_t kColdSegmentMagicLen = 8;
inline constexpr size_t kColdSegmentTrailerBytes = 16;  // u64 offset + magic.
inline constexpr char kColdIndexTag = 'X';  // Never appears in snapshots.
inline constexpr uint32_t kColdIndexVersion = 1;

// One session's slot in a segment's footer index. Everything a query needs
// to decide whether the frame is worth a pread lives here.
struct ColdSegmentEntry {
  std::string id;
  uint32_t fragment = 0;
  uint64_t offset = 0;  // Byte offset of the 'S' frame within the file.
  uint32_t length = 0;  // Whole frame length (8-byte header + payload).
  EventTime min_time = 0;
  EventTime max_time = 0;
  std::vector<uint32_t> services;  // Sorted, unique.
};

struct ColdSegmentIndex {
  uint64_t count = 0;
  EventTime min_time = 0;
  EventTime max_time = 0;
  // Spill-sequence range [first_order, last_order] — informational: entry
  // order within the file is the global eviction order, so a reloading tier
  // reassigns orders from file order and gets the same sequence back.
  uint64_t first_order = 0;
  uint64_t last_order = 0;
  // Per-service session counts (sorted by service id) — the segment-level
  // summary TOPK merges without touching any frame.
  std::vector<std::pair<uint32_t, uint64_t>> service_counts;
  std::vector<ColdSegmentEntry> entries;  // Spill (eviction) order.
};

// Writes `sessions` (spill order) as one segment at `path`, atomically.
// Fills *index with the footer index it wrote and *file_bytes with the final
// file size. Returns false on I/O error or an empty batch.
bool WriteColdSegment(const std::string& path,
                      const std::vector<Session>& sessions,
                      uint64_t first_order, ColdSegmentIndex* index,
                      size_t* file_bytes);

// Reads and fully validates only the trailer + footer index of `path` (two
// preads — session frames stay untouched). Returns false on any damage:
// short file, bad magic, out-of-range offsets, CRC mismatch, or an index
// entry pointing outside the frame region.
bool LoadColdSegmentIndex(const std::string& path, ColdSegmentIndex* index,
                          size_t* file_bytes);

// Reads the single 'S' frame at (offset, length) of `path` with one pread,
// validates its CRC, and decodes it. Returns false on any damage.
bool ReadColdSession(const std::string& path, uint64_t offset, uint32_t length,
                     Session* out);

}  // namespace ts

#endif  // SRC_STORE_COLD_SEGMENT_H_
