#include "src/store/cold_tier.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/fault/fs_fault.h"

namespace ts {
namespace {

constexpr char kSegmentPrefix[] = "cold-";
constexpr char kSegmentSuffix[] = ".seg";

std::string SegmentFileName(uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%010" PRIu64 "%s", kSegmentPrefix, seq,
                kSegmentSuffix);
  return buf;
}

// Returns true and the numeric part if `name` looks like a segment file.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  const size_t prefix = sizeof(kSegmentPrefix) - 1;
  const size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix ||
      name.compare(0, prefix, kSegmentPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  *seq = static_cast<uint64_t>(v);
  return true;
}

std::vector<uint32_t> SortedUniqueServices(const Session& session) {
  std::vector<uint32_t> services;
  services.reserve(session.records.size());
  for (const auto& r : session.records) {
    services.push_back(r.service);
  }
  std::sort(services.begin(), services.end());
  services.erase(std::unique(services.begin(), services.end()),
                 services.end());
  return services;
}

// A segment target the pending queue can never reach (target > the pending
// bound) would leave WantSpillLocked false forever while WaitForSpace blocks
// on a backlog only the spill thread can drain — clamp it.
ColdTierOptions ClampOptions(ColdTierOptions options) {
  options.segment_target_bytes =
      std::max<size_t>(1, std::min(options.segment_target_bytes,
                                   options.max_pending_bytes));
  return options;
}

}  // namespace

ColdTier::ColdTier(const ColdTierOptions& options)
    : options_(ClampOptions(options)) {}

ColdTier::~ColdTier() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_spill_.notify_all();
  cv_state_.notify_all();
  if (spill_thread_.joinable()) {
    spill_thread_.join();
  }
}

bool ColdTier::Start() {
  if (::mkdir(options_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return false;
  }
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return false;
  }
  std::vector<std::string> names;
  std::vector<std::string> stale_tmp;
  while (const dirent* entry = ::readdir(dir)) {
    uint64_t seq = 0;
    const std::string name = entry->d_name;
    if (ParseSegmentName(name, &seq)) {
      names.push_back(name);
    } else if (name.starts_with(kSegmentPrefix) && name.ends_with(".tmp")) {
      stale_tmp.push_back(name);
    }
  }
  ::closedir(dir);
  // A crashed spill's partial write: ParseSegmentName already keeps it out
  // of the segment list, but left alone it would leak disk forever. Unlink
  // failures are left for the next Start to retry.
  uint64_t cleaned = 0;
  for (const auto& name : stale_tmp) {
    const std::string path = options_.dir + "/" + name;
    if (FsFaultOnUnlink(path.c_str()).kind != FsFaultAction::Kind::kFail &&
        ::unlink(path.c_str()) == 0) {
      ++cleaned;
    }
  }
  // Name order == numeric order (zero-padded) == original spill order.
  std::sort(names.begin(), names.end());

  std::lock_guard<std::mutex> lock(mu_);
  tmp_cleaned_ += cleaned;
  for (const auto& name : names) {
    uint64_t seq = 0;
    ParseSegmentName(name, &seq);
    // Never reuse a taken name, even if the file turns out damaged.
    next_segment_seq_ = std::max(next_segment_seq_, seq + 1);
    Segment segment;
    segment.path = options_.dir + "/" + name;
    size_t file_bytes = 0;
    if (!LoadColdSegmentIndex(segment.path, &segment.index, &file_bytes)) {
      ++corrupt_;  // Damaged segment: skipped, never fatal.
      continue;
    }
    segment.base_order = next_order_;
    for (size_t i = 0; i < segment.index.entries.size(); ++i) {
      const auto& e = segment.index.entries[i];
      // emplace keeps the first (earliest-order) copy on a duplicate key.
      by_id_.emplace(std::make_pair(e.id, e.fragment), next_order_ + i);
    }
    for (const auto& [service, count] : segment.index.service_counts) {
      service_counts_[service] += count;
    }
    next_order_ += segment.index.count;
    disk_bytes_ += file_bytes;
    segments_.push_back(std::move(segment));
  }
  pending_front_order_ = next_order_;
  started_ = true;
  spill_thread_ = std::thread([this] { SpillLoop(); });
  return true;
}

void ColdTier::Append(Session&& session) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) {
    return;  // Abandoned/destroyed: the victim is lost, crash-equivalent.
  }
  const auto key = std::make_pair(session.id, session.fragment_index);
  if (by_id_.count(key) != 0) {
    ++dedup_dropped_;  // Already cold (replay after restore re-evicts).
    return;
  }
  PendingEntry entry;
  entry.bytes = session.MemoryFootprint();
  entry.min_time = session.MinTime();
  entry.max_time = session.MaxTime();
  entry.services = SortedUniqueServices(session);
  entry.session = std::move(session);
  for (uint32_t s : entry.services) {
    ++service_counts_[s];
  }
  by_id_[key] = next_order_++;
  pending_bytes_ += entry.bytes;
  pending_.push_back(std::move(entry));
  ++spilled_;
  if (pending_bytes_ >= options_.segment_target_bytes) {
    cv_spill_.notify_one();
  }
}

void ColdTier::WaitForSpace() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_state_.wait(lock, [this] {
    return stop_ || pending_bytes_ < options_.max_pending_bytes;
  });
}

bool ColdTier::WantSpillLocked() const {
  return !pending_.empty() &&
         (pending_bytes_ >= options_.segment_target_bytes ||
          flush_until_ > pending_front_order_);
}

void ColdTier::SpillLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  int consecutive_failures = 0;
  for (;;) {
    cv_spill_.wait(lock, [this] { return stop_ || WantSpillLocked(); });
    if (stop_) {
      return;  // Pending discarded: crash-equivalent by design.
    }
    // Batch: front entries up to the segment target — everything when
    // flushing (one segment regardless of size keeps FlushPending O(1) waits).
    const bool flushing = flush_until_ > pending_front_order_;
    size_t k = 0;
    size_t batch_bytes = 0;
    for (const auto& e : pending_) {
      ++k;
      batch_bytes += e.bytes;
      if (!flushing && batch_bytes >= options_.segment_target_bytes) {
        break;
      }
    }
    // Copy the batch out under the lock (bounded by the segment target), so
    // serialization + fsync run with queries and appends unblocked.
    std::vector<Session> batch;
    batch.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      batch.push_back(pending_[i].session);
    }
    const uint64_t base_order = pending_front_order_;
    const std::string path =
        options_.dir + "/" + SegmentFileName(next_segment_seq_);
    lock.unlock();
    ColdSegmentIndex index;
    size_t file_bytes = 0;
    const bool ok =
        WriteColdSegment(path, batch, base_order, &index, &file_bytes);
    lock.lock();
    if (stop_) {
      // Abandon() (or the destructor) raced with the write: pending_ was
      // cleared and the orders retracted, so the batch must not be popped and
      // the segment must not be published — the simulated kill instant
      // precedes the rename. Unlink so a restart re-discovers exactly what
      // the tier promised was durable.
      lock.unlock();
      ::unlink(path.c_str());
      return;
    }
    if (!ok) {
      ++write_failures_;
      ++consecutive_failures;
      if (options_.spill_retry_limit > 0 &&
          consecutive_failures >= options_.spill_retry_limit) {
        // The disk is persistently refusing this batch: shed it. Un-index
        // every entry (a shed session is a plain cold miss from here on,
        // never a wrong answer) and advance the durable frontier so the
        // queue keeps draining — bounded, exactly-accounted loss instead of
        // an ever-growing backlog wedging eviction.
        for (size_t i = 0; i < k; ++i) {
          PendingEntry& e = pending_.front();
          by_id_.erase(
              std::make_pair(e.session.id, e.session.fragment_index));
          for (uint32_t s : e.services) {
            const auto it = service_counts_.find(s);
            if (it != service_counts_.end() && --it->second == 0) {
              service_counts_.erase(it);
            }
          }
          pending_bytes_ -= e.bytes;
          shed_bytes_ += e.bytes;
          pending_.pop_front();
        }
        pending_front_order_ += k;
        ++shed_batches_;
        shed_sessions_ += k;
        shedding_ = true;
        consecutive_failures = 0;
        cv_state_.notify_all();
        continue;
      }
      cv_state_.notify_all();  // Unblock FlushPending with the bad news.
      // Back off so a broken disk retries at a human pace, not a spin:
      // exponential from spill_backoff_ms, capped at ~2s.
      const int64_t wait_ms = std::min<int64_t>(
          options_.spill_backoff_ms
              << std::min(consecutive_failures - 1, 5),
          2000);
      cv_spill_.wait_for(lock, std::chrono::milliseconds(std::max<int64_t>(
                                   wait_ms, 1)),
                         [this] { return stop_; });
      continue;
    }
    consecutive_failures = 0;
    shedding_ = false;  // Disk healed; back to normal spilling.
    Segment segment;
    segment.path = path;
    segment.base_order = base_order;
    segment.index = std::move(index);
    segments_.push_back(std::move(segment));
    ++next_segment_seq_;
    disk_bytes_ += file_bytes;
    for (size_t i = 0; i < k; ++i) {
      pending_bytes_ -= pending_.front().bytes;
      pending_.pop_front();
    }
    pending_front_order_ += k;
    cv_state_.notify_all();
  }
}

bool ColdTier::FlushPending() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = next_order_;
  if (pending_front_order_ >= target) {
    return true;  // Nothing outstanding.
  }
  flush_until_ = std::max(flush_until_, target);
  const uint64_t failures_before = write_failures_;
  cv_spill_.notify_one();
  cv_state_.wait(lock, [&] {
    return stop_ || pending_front_order_ >= target ||
           write_failures_ > failures_before;
  });
  return pending_front_order_ >= target;
}

void ColdTier::Abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Un-index the discarded pending entries so the tier stays consistent:
    // only what actually reached disk remains visible, as after a real kill.
    for (const auto& e : pending_) {
      by_id_.erase(std::make_pair(e.session.id, e.session.fragment_index));
      for (uint32_t s : e.services) {
        const auto it = service_counts_.find(s);
        if (it != service_counts_.end() && --it->second == 0) {
          service_counts_.erase(it);
        }
      }
    }
    pending_.clear();
    pending_bytes_ = 0;
    next_order_ = pending_front_order_;
  }
  cv_spill_.notify_all();
  cv_state_.notify_all();
  if (spill_thread_.joinable()) {
    spill_thread_.join();
  }
}

int ColdTier::LocateLocked(uint64_t order, uint32_t* entry_index) const {
  if (order >= pending_front_order_) {
    *entry_index = static_cast<uint32_t>(order - pending_front_order_);
    return -1;
  }
  // Last segment whose base_order <= order.
  size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].base_order <= order) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t seg = lo - 1;  // by_id_ orders always resolve; lo >= 1 here.
  *entry_index = static_cast<uint32_t>(order - segments_[seg].base_order);
  return static_cast<int>(seg);
}

bool ColdTier::Contains(const std::string& id, uint32_t fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.count(std::make_pair(id, fragment)) != 0;
}

bool ColdTier::Read(const Candidate& candidate, Session* out) {
  std::string path;
  uint64_t offset = 0;
  uint32_t length = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_id_.find(std::make_pair(candidate.id, candidate.fragment));
    if (it == by_id_.end()) {
      ++misses_;
      return false;
    }
    uint32_t entry_index = 0;
    const int seg = LocateLocked(it->second, &entry_index);
    if (seg < 0) {
      // Still pending: serve the in-memory copy. (A candidate collected
      // while pending may resolve from a segment by now, and vice versa —
      // the fresh lookup makes either window race harmless.)
      *out = pending_[entry_index].session;
      ++hits_;
      return true;
    }
    const Segment& segment = segments_[static_cast<size_t>(seg)];
    const ColdSegmentEntry& entry = segment.index.entries[entry_index];
    path = segment.path;
    offset = entry.offset;
    length = entry.length;
  }
  Session session;
  bool read_ok = ReadColdSession(path, offset, length, &session);
  if (!read_ok) {
    // One retry absorbs a transient EIO on the serving path; persistent
    // damage still degrades to a miss below.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++read_retries_;
    }
    read_ok = ReadColdSession(path, offset, length, &session);
  }
  if (!read_ok || session.id != candidate.id ||
      session.fragment_index != candidate.fragment) {
    std::lock_guard<std::mutex> lock(mu_);
    ++corrupt_;  // Damage degrades to a cold miss, never a wrong answer.
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
  }
  *out = std::move(session);
  return true;
}

std::optional<Session> ColdTier::Get(const std::string& id, uint32_t fragment) {
  Candidate candidate;
  candidate.id = id;
  candidate.fragment = fragment;
  Session session;
  if (!Read(candidate, &session)) {
    return std::nullopt;
  }
  return session;
}

std::vector<Session> ColdTier::GetAllFragments(const std::string& id) {
  std::vector<uint32_t> fragments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // by_id_ is ordered: fragments of one id are contiguous and ascending.
    for (auto it = by_id_.lower_bound(std::make_pair(id, 0u));
         it != by_id_.end() && it->first.first == id; ++it) {
      fragments.push_back(it->first.second);
    }
  }
  std::vector<Session> out;
  out.reserve(fragments.size());
  Candidate candidate;
  candidate.id = id;
  for (uint32_t fragment : fragments) {
    candidate.fragment = fragment;
    Session session;
    if (Read(candidate, &session)) {
      out.push_back(std::move(session));
    }
  }
  return out;
}

std::vector<ColdTier::Candidate> ColdTier::CollectRange(EventTime lo,
                                                        EventTime hi,
                                                        size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Candidate> out;
  if (limit == 0) {
    return out;
  }
  // Index-only scan: (min_time, order) pairs first, ids only for the
  // survivors — a RANGE over 100k cold sessions allocates 16 bytes per
  // match, not a session copy.
  std::vector<std::pair<EventTime, uint64_t>> matches;
  for (const auto& segment : segments_) {
    if (segment.index.min_time >= hi || segment.index.max_time < lo) {
      continue;  // Footer time range excludes the whole segment.
    }
    for (size_t i = 0; i < segment.index.entries.size(); ++i) {
      const auto& e = segment.index.entries[i];
      if (e.min_time < hi && e.max_time >= lo) {
        matches.emplace_back(e.min_time, segment.base_order + i);
      }
    }
  }
  for (size_t i = 0; i < pending_.size(); ++i) {
    const auto& e = pending_[i];
    if (e.min_time < hi && e.max_time >= lo) {
      matches.emplace_back(e.min_time, pending_front_order_ + i);
    }
  }
  const size_t keep = std::min(limit, matches.size());
  std::partial_sort(matches.begin(), matches.begin() + keep, matches.end());
  matches.resize(keep);
  out.reserve(keep);
  for (const auto& [min_time, order] : matches) {
    uint32_t entry_index = 0;
    const int seg = LocateLocked(order, &entry_index);
    Candidate candidate;
    candidate.min_time = min_time;
    candidate.order = order;
    if (seg < 0) {
      candidate.id = pending_[entry_index].session.id;
      candidate.fragment = pending_[entry_index].session.fragment_index;
    } else {
      const auto& e =
          segments_[static_cast<size_t>(seg)].index.entries[entry_index];
      candidate.id = e.id;
      candidate.fragment = e.fragment;
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<ColdTier::Candidate> ColdTier::CollectByService(
    uint32_t service, size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Candidate> out;
  if (limit == 0 || service_counts_.count(service) == 0) {
    return out;
  }
  std::vector<std::pair<EventTime, uint64_t>> matches;  // (min_time, order)
  for (const auto& segment : segments_) {
    if (!std::binary_search(segment.index.service_counts.begin(),
                            segment.index.service_counts.end(),
                            std::make_pair(service, uint64_t{0}),
                            [](const auto& a, const auto& b) {
                              return a.first < b.first;
                            })) {
      continue;  // Footer service summary excludes the whole segment.
    }
    for (size_t i = 0; i < segment.index.entries.size(); ++i) {
      const auto& e = segment.index.entries[i];
      if (std::binary_search(e.services.begin(), e.services.end(), service)) {
        matches.emplace_back(e.min_time, segment.base_order + i);
      }
    }
  }
  for (size_t i = 0; i < pending_.size(); ++i) {
    const auto& e = pending_[i];
    if (std::binary_search(e.services.begin(), e.services.end(), service)) {
      matches.emplace_back(e.min_time, pending_front_order_ + i);
    }
  }
  // Newest (highest order) first.
  const size_t keep = std::min(limit, matches.size());
  std::partial_sort(matches.begin(), matches.begin() + keep, matches.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  matches.resize(keep);
  out.reserve(keep);
  for (const auto& [min_time, order] : matches) {
    uint32_t entry_index = 0;
    const int seg = LocateLocked(order, &entry_index);
    Candidate candidate;
    candidate.min_time = min_time;
    candidate.order = order;
    if (seg < 0) {
      candidate.id = pending_[entry_index].session.id;
      candidate.fragment = pending_[entry_index].session.fragment_index;
    } else {
      const auto& e =
          segments_[static_cast<size_t>(seg)].index.entries[entry_index];
      candidate.id = e.id;
      candidate.fragment = e.fragment;
    }
    out.push_back(std::move(candidate));
  }
  return out;
}

std::vector<std::pair<uint32_t, uint64_t>> ColdTier::ServiceCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {service_counts_.begin(), service_counts_.end()};
}

void ColdTier::ForEachId(
    const std::function<void(const std::string&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string* prev = nullptr;
  for (const auto& [key, order] : by_id_) {
    if (prev == nullptr || *prev != key.first) {
      fn(key.first);
      prev = &key.first;
    }
  }
}

ColdTier::Stats ColdTier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.segments = segments_.size();
  stats.sessions = by_id_.size();
  stats.bytes = disk_bytes_;
  stats.pending = pending_.size();
  stats.spilled = spilled_;
  stats.dedup_dropped = dedup_dropped_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.corrupt = corrupt_;
  stats.write_failures = write_failures_;
  stats.read_retries = read_retries_;
  stats.tmp_cleaned = tmp_cleaned_;
  stats.shed_batches = shed_batches_;
  stats.shed_sessions = shed_sessions_;
  stats.shed_bytes = shed_bytes_;
  stats.shedding = shedding_;
  return stats;
}

}  // namespace ts
