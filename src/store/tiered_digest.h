// TieredDigest: ChainedStoreDigest's equal for a hot + cold tiered store.
//
// The fault-conformance contract says the bytes a query client receives per
// session id are a pure function of the arrival stream. With a cold tier in
// play those bytes come from the *union* of the hot window and the cold
// segments, merged fragment-ascending with the hot copy preferred on overlap
// (a session can be both hot and cold right after a restore: the snapshot
// restored it hot while a pre-crash flush already made it durable cold) —
// exactly how the query server answers FRAGMENTS. Digesting that merge in
// sorted-id order with the same chaining as ChainedStoreDigest makes a
// tiered store byte-comparable against an unbounded fault-free baseline.
#ifndef SRC_STORE_TIERED_DIGEST_H_
#define SRC_STORE_TIERED_DIGEST_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/core/session.h"
#include "src/store/cold_tier.h"

namespace ts {

// Hot and cold fragments of one id, fragment-ascending, hot preferred on a
// duplicate fragment index. Both inputs are already fragment-ascending.
inline std::vector<Session> MergeTieredFragments(std::vector<Session> hot,
                                                 std::vector<Session> cold) {
  std::vector<Session> merged;
  merged.reserve(hot.size() + cold.size());
  size_t h = 0, c = 0;
  while (h < hot.size() || c < cold.size()) {
    if (c >= cold.size()) {
      merged.push_back(std::move(hot[h++]));
    } else if (h >= hot.size()) {
      merged.push_back(std::move(cold[c++]));
    } else if (hot[h].fragment_index <= cold[c].fragment_index) {
      if (cold[c].fragment_index == hot[h].fragment_index) {
        ++c;  // Overlap after restore: the hot copy wins.
      }
      merged.push_back(std::move(hot[h++]));
    } else {
      merged.push_back(std::move(cold[c++]));
    }
  }
  return merged;
}

// Chained digest over hot ∪ cold, comparable to ChainedStoreDigest of an
// unbounded store holding the same sessions. `ids` must cover both tiers
// (union of store ids and ColdTier::ForEachId).
inline uint64_t TieredDigest(const SessionStore& store, ColdTier& cold,
                             const std::set<std::string>& ids) {
  std::string canon;
  uint64_t digest = 0;
  for (const auto& id : ids) {
    const std::vector<Session> merged = MergeTieredFragments(
        store.GetAllFragments(id), cold.GetAllFragments(id));
    for (const auto& s : merged) {
      digest ^= SessionDigest(s, &canon);
      digest = SipHash24(digest);
    }
  }
  return digest;
}

}  // namespace ts

#endif  // SRC_STORE_TIERED_DIGEST_H_
