#include "src/store/cold_segment.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/snapshot_io.h"
#include "src/fault/fs_fault.h"

namespace ts {
namespace {

// Smallest possible frame: 8-byte header + 1-byte tag.
constexpr uint32_t kMinFrameBytes = 9;

uint64_t LoadU64LE(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::vector<uint32_t> SortedUniqueServices(const Session& session) {
  std::vector<uint32_t> services;
  services.reserve(session.records.size());
  for (const auto& r : session.records) {
    services.push_back(r.service);
  }
  std::sort(services.begin(), services.end());
  services.erase(std::unique(services.begin(), services.end()),
                 services.end());
  return services;
}

// pread the exact byte range [offset, offset+len) into buf. False on any
// error or short read (a truncated file must read as damage, not garbage).
// `path` is for the fault hooks only.
bool PreadExact(int fd, const char* path, void* buf, size_t len,
                uint64_t offset) {
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < len) {
    size_t want = len - done;
    const FsFaultAction fault = FsFaultOnPread(path, want, offset + done);
    if (fault.kind == FsFaultAction::Kind::kFail) {
      return false;
    }
    if (fault.kind == FsFaultAction::Kind::kClamp) {
      want = std::max<size_t>(std::min(want, fault.max_bytes), 1);
    }
    const ssize_t n =
        ::pread(fd, out + done, want, static_cast<off_t>(offset + done));
    if (n > 0) {
      FsFaultOnIoBytes(static_cast<uint64_t>(n));
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // EOF before len, or a hard error.
  }
  return true;
}

class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

bool WriteColdSegment(const std::string& path,
                      const std::vector<Session>& sessions,
                      uint64_t first_order, ColdSegmentIndex* index,
                      size_t* file_bytes) {
  if (sessions.empty()) {
    return false;
  }
  *index = ColdSegmentIndex{};
  index->entries.reserve(sessions.size());

  std::string frames;
  StoreFrameEncoder encoder;
  std::map<uint32_t, uint64_t> service_counts;
  for (const auto& session : sessions) {
    ColdSegmentEntry entry;
    entry.id = session.id;
    entry.fragment = session.fragment_index;
    entry.offset = frames.size();
    encoder.Append(session, &frames);
    entry.length = static_cast<uint32_t>(frames.size() - entry.offset);
    entry.min_time = session.MinTime();
    entry.max_time = session.MaxTime();
    entry.services = SortedUniqueServices(session);
    for (uint32_t s : entry.services) {
      ++service_counts[s];
    }
    if (index->entries.empty()) {
      index->min_time = entry.min_time;
      index->max_time = entry.max_time;
    } else {
      index->min_time = std::min(index->min_time, entry.min_time);
      index->max_time = std::max(index->max_time, entry.max_time);
    }
    index->entries.push_back(std::move(entry));
  }
  index->count = sessions.size();
  index->first_order = first_order;
  index->last_order = first_order + sessions.size() - 1;
  index->service_counts.assign(service_counts.begin(), service_counts.end());

  std::string payload;
  payload.push_back(kColdIndexTag);
  PutU32(&payload, kColdIndexVersion);
  PutU64(&payload, index->count);
  PutU64(&payload, static_cast<uint64_t>(index->min_time));
  PutU64(&payload, static_cast<uint64_t>(index->max_time));
  PutU64(&payload, index->first_order);
  PutU64(&payload, index->last_order);
  PutU32(&payload, static_cast<uint32_t>(index->service_counts.size()));
  for (const auto& [service, count] : index->service_counts) {
    PutU32(&payload, service);
    PutU64(&payload, count);
  }
  for (const auto& entry : index->entries) {
    PutBytes(&payload, entry.id);
    PutU32(&payload, entry.fragment);
    PutU64(&payload, entry.offset);
    PutU32(&payload, entry.length);
    PutU64(&payload, static_cast<uint64_t>(entry.min_time));
    PutU64(&payload, static_cast<uint64_t>(entry.max_time));
    PutU32(&payload, static_cast<uint32_t>(entry.services.size()));
    for (uint32_t s : entry.services) {
      PutU32(&payload, s);
    }
  }

  std::string tail;
  const uint64_t index_offset = frames.size();
  AppendFrame(&tail, payload);
  PutU64(&tail, index_offset);
  tail.append(kColdSegmentMagic, kColdSegmentMagicLen);

  *file_bytes = frames.size() + tail.size();
  return WriteFileAtomic(path, {frames, tail});
}

bool LoadColdSegmentIndex(const std::string& path, ColdSegmentIndex* index,
                          size_t* file_bytes) {
  if (FsFaultOnOpen(path.c_str(), /*for_write=*/false).kind ==
      FsFaultAction::Kind::kFail) {
    return false;
  }
  const int raw_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw_fd < 0) {
    return false;
  }
  FdCloser fd(raw_fd);
  struct stat st{};
  if (::fstat(fd.get(), &st) != 0 || st.st_size < 0) {
    return false;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  // Minimum: one session frame + one index frame + trailer.
  if (size < 2 * kMinFrameBytes + kColdSegmentTrailerBytes) {
    return false;
  }
  unsigned char trailer[kColdSegmentTrailerBytes];
  if (!PreadExact(fd.get(), path.c_str(), trailer, sizeof(trailer),
                  size - kColdSegmentTrailerBytes)) {
    return false;
  }
  if (std::memcmp(trailer + 8, kColdSegmentMagic, kColdSegmentMagicLen) != 0) {
    return false;
  }
  const uint64_t index_offset = LoadU64LE(trailer);
  const uint64_t frames_end = size - kColdSegmentTrailerBytes;
  if (index_offset < kMinFrameBytes || index_offset >= frames_end) {
    return false;
  }
  const uint64_t index_frame_len = frames_end - index_offset;
  if (index_frame_len < kMinFrameBytes ||
      index_frame_len > kMaxFramePayloadBytes + 8) {
    return false;
  }
  std::string buf(static_cast<size_t>(index_frame_len), '\0');
  if (!PreadExact(fd.get(), path.c_str(), buf.data(), buf.size(),
                  index_offset)) {
    return false;
  }
  FrameParser parser(buf);
  std::string_view payload;
  if (!parser.Next(&payload) || !parser.AtEnd() || payload.empty() ||
      payload[0] != kColdIndexTag) {
    return false;
  }
  *index = ColdSegmentIndex{};
  ByteCursor cursor{payload, 1};
  uint32_t version = 0;
  uint64_t min_time = 0, max_time = 0;
  uint32_t n_services = 0;
  if (!cursor.GetU32(&version) || version != kColdIndexVersion ||
      !cursor.GetU64(&index->count) || index->count == 0 ||
      !cursor.GetU64(&min_time) || !cursor.GetU64(&max_time) ||
      !cursor.GetU64(&index->first_order) ||
      !cursor.GetU64(&index->last_order) ||
      index->last_order - index->first_order + 1 != index->count ||
      !cursor.GetU32(&n_services)) {
    return false;
  }
  index->min_time = static_cast<EventTime>(min_time);
  index->max_time = static_cast<EventTime>(max_time);
  index->service_counts.reserve(
      std::min<size_t>(n_services, cursor.remaining() / 12));
  uint32_t prev_service = 0;
  for (uint32_t i = 0; i < n_services; ++i) {
    uint32_t service = 0;
    uint64_t count = 0;
    if (!cursor.GetU32(&service) || !cursor.GetU64(&count) ||
        (i > 0 && service <= prev_service)) {
      return false;  // Summary must be strictly service-ascending.
    }
    prev_service = service;
    index->service_counts.emplace_back(service, count);
  }
  // A lying count field must not drive a giant reserve; every entry costs at
  // least 33 encoded bytes, so bound by what the payload could possibly hold.
  index->entries.reserve(
      std::min<size_t>(index->count, cursor.remaining() / 33 + 1));
  for (uint64_t i = 0; i < index->count; ++i) {
    ColdSegmentEntry entry;
    std::string_view id;
    uint64_t entry_min = 0, entry_max = 0;
    uint32_t n_entry_services = 0;
    if (!cursor.GetBytes(&id) || !cursor.GetU32(&entry.fragment) ||
        !cursor.GetU64(&entry.offset) || !cursor.GetU32(&entry.length) ||
        !cursor.GetU64(&entry_min) || !cursor.GetU64(&entry_max) ||
        !cursor.GetU32(&n_entry_services)) {
      return false;
    }
    if (entry.length < kMinFrameBytes || entry.offset > index_offset ||
        entry.length > index_offset - entry.offset) {
      return false;  // Frame must sit entirely inside the frame region.
    }
    entry.id = std::string(id);
    entry.min_time = static_cast<EventTime>(entry_min);
    entry.max_time = static_cast<EventTime>(entry_max);
    entry.services.reserve(
        std::min<size_t>(n_entry_services, cursor.remaining() / 4));
    uint32_t prev = 0;
    for (uint32_t j = 0; j < n_entry_services; ++j) {
      uint32_t service = 0;
      if (!cursor.GetU32(&service) || (j > 0 && service <= prev)) {
        return false;
      }
      prev = service;
      entry.services.push_back(service);
    }
    index->entries.push_back(std::move(entry));
  }
  if (cursor.remaining() != 0) {
    return false;
  }
  *file_bytes = static_cast<size_t>(size);
  return true;
}

bool ReadColdSession(const std::string& path, uint64_t offset, uint32_t length,
                     Session* out) {
  if (length < kMinFrameBytes || length > kMaxFramePayloadBytes + 8) {
    return false;
  }
  if (FsFaultOnOpen(path.c_str(), /*for_write=*/false).kind ==
      FsFaultAction::Kind::kFail) {
    return false;
  }
  const int raw_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw_fd < 0) {
    return false;
  }
  FdCloser fd(raw_fd);
  std::string buf(length, '\0');
  if (!PreadExact(fd.get(), path.c_str(), buf.data(), buf.size(), offset)) {
    return false;
  }
  FrameParser parser(buf);
  std::string_view payload;
  if (!parser.Next(&payload) || !parser.AtEnd()) {
    return false;
  }
  return DecodeStoreFramePayload(payload, out);
}

}  // namespace ts
