// ColdTier: the on-disk half of the tiered session store.
//
// The in-memory SessionStore stays a bounded hot window; when it evicts, the
// victims land here (SessionStore::SetEvictionSink) instead of vanishing.
// The handoff is two-phase: Append — the sink — indexes the victim into a
// bounded in-memory pending queue and never blocks, so the store can run it
// *under its own lock*, making "removed from hot" and "visible in cold" one
// atomic step; WaitForSpace — the store's eviction barrier, called after the
// store lock is released — is where backpressure blocks the evicting thread.
// A background spill thread drains pending into cold segment files
// (src/store/cold_segment.h — the ts_ckpt snapshot container with a footer
// index), so the evicting shard thread never pays for serialization, CRC or
// fsync. Pending sessions remain fully queryable until their segment is
// durable: a session is never invisible between leaving the hot window and
// reaching disk, and no query can ever observe it in neither tier.
//
// Ordering. Every accepted Append gets a global, monotonically increasing
// spill order. Eviction is strictly oldest-first and Append runs inside the
// store's eviction critical section, so the cold orders form an exact prefix
// of the store's insertion sequence: every cold session precedes every hot
// one. Query merges rely on this — RANGE interleaves cold index candidates
// with hot results by (min_time, order) and reproduces the exact bytes an
// unbounded store would serve; SERVICE serves hot newest-first then cold
// newest-first. On restart, segments are re-discovered by directory scan
// (file order == spill order), so the sequence survives crashes.
//
// Crash consistency. Segment writes are atomic (tmp+fsync+rename); pending
// sessions lost to a crash are re-derived by the ts_ckpt replay and re-spill
// on the same eviction path, deduplicated by (id, fragment) against
// everything already cold. FlushPending() — called by the checkpoint writer
// right before each snapshot file is published — guarantees the invariant a
// restore depends on: any eviction that happened before a snapshot's barrier
// is durable in cold by the time that snapshot exists. Hence every closed
// session is always in the snapshot's hot window, in a durable segment, or
// replayable from the log — never lost.
//
// Damage tolerance. A segment that fails index validation at Start is
// skipped (and counted in `corrupt`); a frame that fails its CRC at read
// time degrades to a cold miss. Neither can crash the server or surface a
// wrong answer — the corruption property test flips every byte to prove it.
// Start also unlinks (and counts) leftover `*.tmp` files from a crashed
// spill, so a dead incarnation's partial write can never be confused for a
// segment or leak disk forever.
//
// Storage degradation. A failed segment write retries with bounded
// exponential backoff (spill_backoff_ms, doubling, capped ~2s). After
// spill_retry_limit consecutive failures the tier sheds the stuck batch —
// un-indexes it and advances the durable frontier — with exact accounting
// (shed_batches / shed_sessions / shed_bytes) and raises `shedding` until a
// write succeeds again. Shedding converts an unbounded pending backlog on a
// dead disk into a counted, bounded loss: ingest keeps its WaitForSpace
// semantics (the queue drains, so eviction never wedges), queries keep
// serving hot + already-durable cold, and a shed session becomes a plain
// cold miss — never a wrong answer. Serving preads retry a transient
// failure once (read_retries) before counting the miss as corrupt.
//
// Thread-safe throughout. The destructor stops the spill thread and
// *discards* pending sessions (crash-equivalent by design — the conformance
// suite's kill-mid-spill schedules are exactly this); call FlushPending()
// first on a graceful shutdown.
#ifndef SRC_STORE_COLD_TIER_H_
#define SRC_STORE_COLD_TIER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/session.h"
#include "src/store/cold_segment.h"

namespace ts {

struct ColdTierOptions {
  std::string dir;
  // A segment is cut once the pending batch reaches this many (in-memory)
  // bytes; FlushPending cuts one regardless. Clamped to max_pending_bytes at
  // construction: a target the pending queue can never reach would leave the
  // spill thread asleep while WaitForSpace blocks forever.
  size_t segment_target_bytes = 4u << 20;
  // WaitForSpace blocks (backpressure on the evicting thread) while this much
  // is pending — bounds tier memory when the disk cannot keep up.
  size_t max_pending_bytes = 64u << 20;
  // Consecutive segment-write failures before the stuck batch is shed
  // (accounted loss, see "Storage degradation" above). 0 retries forever —
  // pending then stays bounded only by max_pending_bytes backpressure.
  int spill_retry_limit = 8;
  // Base backoff between failed write attempts; doubles per consecutive
  // failure, capped at ~2s.
  int64_t spill_backoff_ms = 100;
};

class ColdTier {
 public:
  struct Stats {
    uint64_t segments = 0;       // Live (valid) segment files.
    uint64_t sessions = 0;       // Cold sessions, durable + pending.
    uint64_t bytes = 0;          // On-disk bytes across live segments.
    uint64_t pending = 0;        // Sessions queued, not yet durable.
    uint64_t spilled = 0;        // Appends accepted (lifetime).
    uint64_t dedup_dropped = 0;  // Appends skipped: already cold.
    uint64_t hits = 0;           // Sessions served from this tier.
    uint64_t misses = 0;         // Lookups that found nothing here.
    uint64_t corrupt = 0;        // Damaged segments skipped + frame CRC fails.
    uint64_t write_failures = 0;
    uint64_t read_retries = 0;   // Serving preads retried after a failure.
    uint64_t tmp_cleaned = 0;    // Stale *.tmp files unlinked by Start().
    uint64_t shed_batches = 0;   // Batches dropped after persistent failure.
    uint64_t shed_sessions = 0;  // Sessions inside those batches...
    uint64_t shed_bytes = 0;     // ...and their in-memory bytes.
    bool shedding = false;       // In shed fallback; clears on next success.
  };

  // A cold index candidate: enough to merge-order and dedupe against hot
  // results without touching the session frame. Resolve with Read() — only
  // candidates that actually stream to the client are ever read, which is
  // what keeps RANGE over a 100k-session tier within its response budget.
  struct Candidate {
    std::string id;
    uint32_t fragment = 0;
    EventTime min_time = 0;
    uint64_t order = 0;  // Global spill order (eviction order).
  };

  explicit ColdTier(const ColdTierOptions& options);
  ~ColdTier();  // Stops the spill thread; pending is DISCARDED (see above).
  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  // Creates the directory if needed, re-discovers existing segments (sorted
  // file order; damaged ones skipped and counted), and starts the spill
  // thread. Returns false only if the directory is unusable.
  bool Start();

  // Eviction sink, stage 1: indexes the session and enqueues it for spill.
  // Dedupes by (id, fragment) against everything already cold. Never blocks —
  // safe to call under the evicting store's lock, which is what keeps the
  // victim continuously visible (hot or cold, never neither) and makes spill
  // order exactly eviction order.
  void Append(Session&& session);

  // Eviction sink, stage 2: blocks while max_pending_bytes of backlog is
  // outstanding. The store calls this as its eviction barrier, after its own
  // lock is released; the spill thread never takes this path, so waiting
  // here cannot deadlock. The pending queue can transiently overshoot the
  // bound by the victims handed over between a barrier and the next Append.
  void WaitForSpace();

  // Blocks until every session appended before this call is durable in a
  // segment (writing a partial segment if needed) — or, under persistent
  // write failure, has been shed with exact accounting. Returns false if a
  // write failed and the backlog is still outstanding. The checkpoint writer
  // calls this before publishing a snapshot (and aborts the snapshot on
  // false, retrying later — see AsyncCheckpointer's degraded mode).
  bool FlushPending();

  // Test support: simulates SIGKILL at this instant. Pending sessions are
  // discarded, and no further append or spill takes effect — exactly the
  // state a crashed process leaves on disk. Durable segments stay readable.
  void Abandon();

  bool Contains(const std::string& id, uint32_t fragment) const;

  // Point read; counts a hit, a miss, or (on CRC damage) corrupt.
  std::optional<Session> Get(const std::string& id, uint32_t fragment);

  // Every cold fragment of `id`, fragment-ascending. Damaged frames are
  // skipped (counted), never returned wrong.
  std::vector<Session> GetAllFragments(const std::string& id);

  // Index-only candidate scans — no session frame is read.
  // Sessions intersecting [lo, hi), ordered by (min_time, order), ≤ limit.
  std::vector<Candidate> CollectRange(EventTime lo, EventTime hi,
                                      size_t limit) const;
  // Sessions that touched `service`, newest (highest order) first, ≤ limit.
  std::vector<Candidate> CollectByService(uint32_t service,
                                          size_t limit) const;

  // Resolves a candidate: copies it from pending or preads + CRC-checks its
  // frame. False on miss (no longer indexed) or damage (counted).
  bool Read(const Candidate& candidate, Session* out);

  // service -> cold session count, service-ascending (TOPK merge input).
  std::vector<std::pair<uint32_t, uint64_t>> ServiceCounts() const;

  // Every distinct cold session id, ascending (digest/test support). Runs
  // `fn` under the tier lock: collect, don't call back into the tier.
  void ForEachId(const std::function<void(const std::string&)>& fn) const;

  Stats stats() const;

 private:
  struct Segment {
    std::string path;
    uint64_t base_order = 0;  // Order of entry 0; entry i is base + i.
    ColdSegmentIndex index;
  };
  struct PendingEntry {
    Session session;
    size_t bytes = 0;
    EventTime min_time = 0;
    EventTime max_time = 0;
    std::vector<uint32_t> services;  // Sorted, unique.
  };

  void SpillLoop();
  bool WantSpillLocked() const;
  // Locates `order` (mu_ held). Returns segment index, or -1 for pending.
  int LocateLocked(uint64_t order, uint32_t* entry_index) const;

  const ColdTierOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_spill_;  // Wakes the spill thread.
  std::condition_variable cv_state_;  // Wakes WaitForSpace + flushers.
  bool stop_ = false;
  bool started_ = false;

  std::vector<Segment> segments_;       // base_order ascending.
  std::deque<PendingEntry> pending_;    // Orders [front_order_, next_order_).
  uint64_t pending_front_order_ = 0;    // Everything below is durable.
  uint64_t next_order_ = 0;
  size_t pending_bytes_ = 0;
  uint64_t flush_until_ = 0;            // Spill everything below this order.
  uint64_t next_segment_seq_ = 0;       // Next segment file name.
  // (id, fragment) -> spill order, across segments and pending.
  std::map<std::pair<std::string, uint32_t>, uint64_t> by_id_;
  std::map<uint32_t, uint64_t> service_counts_;

  // Counters (mu_-guarded; mirrors Stats).
  uint64_t disk_bytes_ = 0;
  uint64_t spilled_ = 0;
  uint64_t dedup_dropped_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t corrupt_ = 0;
  uint64_t write_failures_ = 0;
  uint64_t read_retries_ = 0;
  uint64_t tmp_cleaned_ = 0;
  uint64_t shed_batches_ = 0;
  uint64_t shed_sessions_ = 0;
  uint64_t shed_bytes_ = 0;
  bool shedding_ = false;

  std::thread spill_thread_;
};

}  // namespace ts

#endif  // SRC_STORE_COLD_TIER_H_
