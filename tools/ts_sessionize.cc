// ts_sessionize: reads wire-format log records from a file, stdin, or a live
// ts_log_server TCP stream, reconstructs sessions and trace trees, and prints
// a summary report — the offline companion to the streaming system, handy for
// inspecting archived logs produced by ts_trace_gen or exported from a real
// pipeline. With --serve it additionally keeps the reconstructed sessions in
// a bounded SessionStore and answers the ts_query wire protocol, turning the
// tool into the middle process of the paper's Figure 2 pipeline:
//
//   ts_log_server --addr=:9000 | ts_sessionize --connect=:9000 --serve=9100
//                              | ts_query --connect=:9100
//
// Usage:
//   ts_sessionize [--in=path | --connect=host:port] [--stream=0 --streams=1]
//                 [--inactivity_s=0] [--top=10] [--trees]
//                 [--serve=port] [--store_mb=256] [--workers=N]
//
//   --connect=H:P     consume a live log-server stream instead of a file
//                     (reconnects with backoff and resumes if the server
//                     drops mid-stream)
//   --stream/--streams  which partition of the server's archive to consume
//   --inactivity_s=N  also split sessions at idle gaps > N seconds
//   --top=K           print the K most frequent tree signatures and
//                     communicating service pairs
//   --trees           dump every trace tree (verbose)
//   --serve=PORT      run a ts_query QueryServer on 127.0.0.1:PORT attached
//                     to a live SessionStore; with --connect, sessions are
//                     closed incrementally by event-time watermark as the
//                     stream flows (subscribers live-tail them), and the
//                     process keeps serving after end of stream until
//                     SIGINT/SIGTERM
//   --store_mb=N      SessionStore eviction budget (default 256 MiB)
//   --cold-dir=D      (with --serve) tiered store: sessions evicted from the
//                     hot window spill to cold segment files under D (the
//                     ts_ckpt snapshot frame format + a footer index) and
//                     GET/FRAGMENTS/SERVICE/RANGE/TOPK transparently fall
//                     back to them — history is bounded by disk, not
//                     --store_mb. Existing segments are re-discovered on
//                     startup. See docs/STORE.md.
//   --cold_segment_mb=N  cold segment target size (default 4 MiB)
//   --workers=N       shard the live (--connect --serve) hot path across N
//                     worker threads, hash-partitioned by SipHash(session id)
//                     — the paper's Exchange PACT (default: hardware threads).
//                     Closed-session output is byte-identical for every N.
//   --shed-policy=oldest-open
//                     (with --connect --serve) opt-in overload shedding: a
//                     shard queue blocked longer than --shed_stall_ms drops
//                     its oldest queued batch, and per-shard open-fragment
//                     state above --shed_open_mb sheds oldest-idle fragments
//                     first. Every drop is counted exactly (live_shed_* in
//                     STATS; records == emitted + open + shed reconciles);
//                     the watermark keeps advancing instead of stalling the
//                     producer. See docs/LOADGEN.md.
//   --mine-templates  (with --connect --serve) mine log templates from the
//                     free-text payload of each record on ingest: payloads are
//                     rewritten to "#<template_id> <var>..." before
//                     sessionization (shrinking store bytes/session), and the
//                     query server answers the TEMPLATES verb with the mined
//                     dictionary. Checkpoints include the miner state.
//   --checkpoint-dir=D  (with --connect --serve) durable crash recovery: on
//                     startup restore the newest valid snapshot in D and
//                     resume the server-side stream from its offset; while
//                     running, write barrier-aligned snapshots periodically
//                     and on graceful shutdown. See docs/RECOVERY.md.
//   --ckpt_interval_s=N  seconds between periodic snapshots (default 2)
//   --ckpt_retain=K   snapshots kept on disk (default 3)
//   --disk-fault-plan=FILE  fault testing: install a ScriptedDiskInjector
//                     driving the file-I/O hooks of ts_ckpt and the cold
//                     tier from a ts_fault plan file (ENOSPC windows, EIO,
//                     short/torn writes, fsync/rename failures). Also read
//                     from $TS_DISK_FAULT_PLAN when the flag is absent —
//                     that's how e2e_smoke.sh --diskfault attacks an
//                     unmodified pipeline. fault_disk_* gauges appear in
//                     STATS. See docs/FAULT_TESTING.md.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/analytics/dependency_graph.h"
#include "src/analytics/session_store.h"
#include "src/ckpt/async_checkpointer.h"
#include "src/ckpt/checkpointer.h"
#include "src/ckpt/live_checkpoint.h"
#include "src/ckpt/snapshot_io.h"
#include "src/common/metrics_registry.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fs_fault.h"
#include "src/fault/scripted_disk_injector.h"
#include "src/core/live_pipeline.h"
#include "src/core/trace_tree.h"
#include "src/log/wire_format.h"
#include "src/net/net_util.h"
#include "src/net/socket_ingest.h"
#include "src/offline/offline_sessionizer.h"
#include "src/query/query_server.h"
#include "src/store/cold_tier.h"

namespace {

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

// Aggregates the end-of-run report incrementally, one closed session at a
// time, so the live path never retains closed sessions (the old loop kept
// every one in a vector — unbounded memory on a long-running stream).
// Thread-safe: live-path shard workers call Add concurrently.
class ReportAccumulator {
 public:
  explicit ReportAccumulator(bool dump_trees) : dump_trees_(dump_trees) {}

  void Add(const ts::Session& s) {
    std::lock_guard<std::mutex> lock(mu_);
    ++sessions_;
    for (const auto& tree : ts::TraceTree::FromSession(s)) {
      ++trees_;
      spans_ += tree.num_spans();
      inferred_ += tree.num_inferred();
      ++signatures_[tree.SignatureKey()];
      deps_.AddTree(tree);
      if (dump_trees_) {
        std::printf("%s root=%s spans=%zu records=%u duration=%.2fms sig=%s\n",
                    s.id.c_str(), tree.root().id.ToString().c_str(),
                    tree.num_spans(), tree.total_records(),
                    static_cast<double>(tree.Duration()) / 1e6,
                    tree.SignatureKey().c_str());
      }
    }
  }

  void Print(size_t record_count, uint64_t parse_failures, size_t top) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::printf("records:        %zu (%llu unparseable lines skipped)\n",
                record_count, static_cast<unsigned long long>(parse_failures));
    std::printf("sessions:       %llu\n",
                static_cast<unsigned long long>(sessions_));
    std::printf("trace trees:    %llu\n",
                static_cast<unsigned long long>(trees_));
    std::printf("spans:          %llu (%llu inferred from descendants)\n",
                static_cast<unsigned long long>(spans_),
                static_cast<unsigned long long>(inferred_));
    std::printf("service edges:  %zu (%llu calls)\n", deps_.num_edges(),
                static_cast<unsigned long long>(deps_.total_calls()));

    if (top > 0 && !signatures_.empty()) {
      std::vector<std::pair<uint64_t, std::string>> ranked;
      for (const auto& [sig, count] : signatures_) {
        ranked.emplace_back(count, sig);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::printf("\ntop tree structures:\n");
      for (size_t i = 0; i < std::min(top, ranked.size()); ++i) {
        std::printf("  %8llu x %s\n",
                    static_cast<unsigned long long>(ranked[i].first),
                    ranked[i].second.c_str());
      }
      std::printf("\nhottest service pairs:\n");
      for (const auto& [edge, calls] : deps_.HeaviestEdges(top)) {
        std::printf("  %8llu x svc-%u -> svc-%u\n",
                    static_cast<unsigned long long>(calls), edge.first,
                    edge.second);
      }
    }
  }

 private:
  mutable std::mutex mu_;
  const bool dump_trees_;
  uint64_t sessions_ = 0;
  uint64_t trees_ = 0;
  uint64_t spans_ = 0;
  uint64_t inferred_ = 0;
  std::map<std::string, uint64_t> signatures_;
  ts::DependencyGraph deps_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;

  // Graceful shutdown on every path: SIGINT/SIGTERM stop ingest, write a
  // final checkpoint when one is configured, and still print the report and
  // transport stats before exiting.
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // Declared before every durability object so it is destroyed last: the
  // process-global hook may be consulted until the cold tier's spill thread
  // and the checkpoint writer have joined.
  std::unique_ptr<ScriptedDiskInjector> disk_faults;
  {
    const char* plan_path = FlagStr(argc, argv, "--disk-fault-plan");
    if (plan_path == nullptr) {
      plan_path = std::getenv("TS_DISK_FAULT_PLAN");
    }
    if (plan_path != nullptr && plan_path[0] != '\0') {
      std::string text;
      FaultPlan plan;
      std::string error;
      if (!ReadFile(plan_path, &text)) {
        std::fprintf(stderr, "cannot read disk fault plan %s\n", plan_path);
        return 2;
      }
      if (!FaultPlan::Parse(text, &plan, &error)) {
        std::fprintf(stderr, "bad disk fault plan %s: %s\n", plan_path,
                     error.c_str());
        return 2;
      }
      const size_t n_events = plan.events.size();
      disk_faults = std::make_unique<ScriptedDiskInjector>(std::move(plan));
      InstallFsFaultInjector(disk_faults.get());
      std::fprintf(stderr, "disk fault injection: %s (%zu event(s))\n",
                   plan_path, n_events);
    }
  }

  // --serve: stand up the store and the query server before ingesting, so
  // subscribers attached early see every session close.
  const char* serve_spec = FlagStr(argc, argv, "--serve");
  const bool mine_templates = HasFlag(argc, argv, "--mine-templates");
  // Published once the live pipeline exists; the TEMPLATES source lambda runs
  // on the query-server thread, so the hand-off must be atomic.
  std::atomic<LivePipeline*> mining_pipeline{nullptr};
  std::shared_ptr<SessionStore> store;
  std::shared_ptr<ColdTier> cold;
  std::shared_ptr<MetricsRegistry> metrics;
  std::unique_ptr<QueryServer> server;
  std::thread server_thread;
  const char* cold_dir = FlagStr(argc, argv, "--cold-dir");
  if (cold_dir != nullptr && serve_spec == nullptr) {
    std::fprintf(stderr, "--cold-dir needs --serve; ignoring\n");
    cold_dir = nullptr;
  }
  if (mine_templates && serve_spec == nullptr) {
    std::fprintf(stderr, "--mine-templates needs --connect --serve; ignoring\n");
  }
  if (serve_spec != nullptr) {
    SessionStore::Options store_options;
    store_options.max_bytes =
        static_cast<size_t>(Flag(argc, argv, "--store_mb", 256)) << 20;
    store = std::make_shared<SessionStore>(store_options);
    metrics = std::make_shared<MetricsRegistry>();
    if (disk_faults != nullptr) {
      disk_faults->RegisterMetrics(metrics.get());
    }
    QueryServerOptions server_options;
    if (std::strchr(serve_spec, ':') != nullptr) {
      if (!ParseHostPort(serve_spec, &server_options.host,
                         &server_options.port)) {
        std::fprintf(stderr, "bad --serve spec %s\n", serve_spec);
        return 1;
      }
    } else {
      server_options.port = static_cast<uint16_t>(std::atoi(serve_spec));
    }
    server = std::make_unique<QueryServer>(server_options, store, metrics);
    if (cold_dir != nullptr) {
      ColdTierOptions cold_options;
      cold_options.dir = cold_dir;
      cold_options.segment_target_bytes =
          static_cast<size_t>(Flag(argc, argv, "--cold_segment_mb", 4)) << 20;
      cold = std::make_shared<ColdTier>(cold_options);
      if (!cold->Start()) {
        std::fprintf(stderr, "cannot use cold dir %s\n", cold_dir);
        return 1;
      }
      store->SetEvictionSink(
          [cold](Session&& s) { cold->Append(std::move(s)); },
          [cold] { cold->WaitForSpace(); });
      server->SetColdTier(cold);
      const auto cold_stats = cold->stats();
      std::fprintf(stderr,
                   "cold tier: %s (%llu segment(s), %llu session(s) "
                   "re-discovered)\n",
                   cold_dir,
                   static_cast<unsigned long long>(cold_stats.segments),
                   static_cast<unsigned long long>(cold_stats.sessions));
    }
    if (mine_templates) {
      // Installed before Start(); returns the mined dictionary ranked later
      // by the server. ppm = hits per million mined payloads (every payload
      // hits exactly one template, so the snapshot's hits sum to the total).
      server->SetTemplateSource([&mining_pipeline] {
        std::vector<TemplateCount> out;
        LivePipeline* pipe = mining_pipeline.load(std::memory_order_acquire);
        if (pipe == nullptr) {
          return out;
        }
        const auto snapshot = pipe->TemplateSnapshot();
        uint64_t total = 0;
        for (const auto& info : snapshot) {
          total += info.hits;
        }
        out.reserve(snapshot.size());
        for (const auto& info : snapshot) {
          out.push_back({info.id, info.hits,
                         total > 0 ? info.hits * 1'000'000 / total : 0,
                         info.text});
        }
        return out;
      });
    }
    if (!server->Start()) {
      std::fprintf(stderr, "cannot serve on %s\n", serve_spec);
      return 1;
    }
    std::fprintf(stderr, "query server listening on %s:%u\n",
                 server_options.host.c_str(), server->port());
    server_thread = std::thread([&server] { server->Run(); });
  }

  const EventTime inactivity_ns = static_cast<EventTime>(
      Flag(argc, argv, "--inactivity_s", 0) * kNanosPerSecond);
  const size_t top = static_cast<size_t>(Flag(argc, argv, "--top", 10));
  ReportAccumulator report(HasFlag(argc, argv, "--trees"));

  std::vector<LogRecord> records;
  size_t record_count = 0;
  uint64_t parse_failures = 0;
  bool transport_failed = false;
  bool sessions_ready = false;  // Live path feeds `report` itself.
  // Outlive the ingest loop: the query server samples their gauges until
  // exit. Declaration order is destruction order in reverse — async_ckpt
  // (whose writer thread uses both) must die before ckpt and pipeline.
  std::unique_ptr<LivePipeline> pipeline;
  std::unique_ptr<Checkpointer> ckpt;
  std::unique_ptr<AsyncCheckpointer> async_ckpt;

  if (const char* spec = FlagStr(argc, argv, "--connect")) {
    SocketIngestOptions options;
    if (!ParseHostPort(spec, &options.host, &options.port)) {
      std::fprintf(stderr, "bad --connect spec %s (want host:port)\n", spec);
      return 1;
    }
    options.stream = static_cast<size_t>(Flag(argc, argv, "--stream", 0));
    options.num_streams = static_cast<size_t>(Flag(argc, argv, "--streams", 1));
    // Bound the batch one poll may deliver so a stalled shard queue
    // back-pressures the server via TCP instead of ballooning `lines`.
    options.max_records_per_poll = 16 << 10;

    // --checkpoint-dir: restore the newest valid snapshot before connecting
    // so the hello's "TS1 <stream> <offset>" resumes exactly where the
    // snapshot left off.
    CheckpointState restored;
    bool did_restore = false;
    uint64_t base_records = 0;
    uint64_t base_parse_failures = 0;
    if (const char* dir = FlagStr(argc, argv, "--checkpoint-dir")) {
      if (server == nullptr) {
        std::fprintf(stderr,
                     "--checkpoint-dir needs --serve (live path); ignoring\n");
      } else {
        CheckpointerOptions ckpt_options;
        ckpt_options.dir = dir;
        ckpt_options.retain =
            static_cast<size_t>(Flag(argc, argv, "--ckpt_retain", 3));
        ckpt_options.interval_ms = static_cast<int64_t>(
            Flag(argc, argv, "--ckpt_interval_s", 2.0) * 1000);
        ckpt = std::make_unique<Checkpointer>(ckpt_options);
        RestoreResult rr = ckpt->RestoreLatest(&restored);
        if (rr.restored &&
            restored.stream != static_cast<uint64_t>(options.stream)) {
          std::fprintf(stderr,
                       "checkpoint %s is for stream %llu, not %zu; "
                       "starting cold\n",
                       rr.path.c_str(),
                       static_cast<unsigned long long>(restored.stream),
                       options.stream);
          restored = CheckpointState{};
          rr.restored = false;
        }
        if (rr.restored) {
          did_restore = true;
          base_records = restored.records;
          base_parse_failures = restored.parse_failures;
          options.resume_offset = restored.resume_offset;
          std::fprintf(
              stderr,
              "restored %s: resume offset %llu, %zu open fragment(s), "
              "%zu stored session(s)%s\n",
              rr.path.c_str(),
              static_cast<unsigned long long>(restored.resume_offset),
              restored.closers.open.size(), restored.store_sessions.size(),
              rr.fallbacks > 0 ? " (damaged snapshot(s) skipped)" : "");
        } else if (rr.fallbacks > 0) {
          std::fprintf(stderr,
                       "no valid checkpoint in %s (%llu damaged); "
                       "starting cold\n",
                       dir, static_cast<unsigned long long>(rr.fallbacks));
        }
        ckpt->RegisterMetrics(metrics.get());
      }
    }

    SocketIngestSource source(options);
    if (server != nullptr) {
      // Live path: parse + sessionize sharded across --workers threads,
      // hash-partitioned by session id; sessions close incrementally as the
      // watermark advances and are inserted into the store the moment they
      // close. Inactivity defaults to 5s here — a watermark close needs a
      // window.
      const unsigned hw = std::thread::hardware_concurrency();
      LivePipelineOptions pipe_options;
      pipe_options.workers = static_cast<size_t>(
          Flag(argc, argv, "--workers", hw > 0 ? hw : 1));
      pipe_options.inactivity_ns =
          inactivity_ns > 0 ? inactivity_ns : 5 * kNanosPerSecond;
      pipe_options.mine_templates = mine_templates;
      if (const char* policy = FlagStr(argc, argv, "--shed-policy")) {
        if (std::string_view(policy) == "oldest-open") {
          pipe_options.shed_policy = ShedPolicy::kOldestOpen;
          pipe_options.shed_open_bytes = static_cast<size_t>(
              Flag(argc, argv, "--shed_open_mb", 32)) << 20;
          pipe_options.shed_stall_limit_ms = static_cast<int64_t>(
              Flag(argc, argv, "--shed_stall_ms", 100));
          std::fprintf(stderr,
                       "load shedding: oldest-open (open budget %zu MiB/shard,"
                       " stall limit %lld ms) — output is no longer"
                       " byte-identical across runs under overload\n",
                       pipe_options.shed_open_bytes >> 20,
                       static_cast<long long>(pipe_options.shed_stall_limit_ms));
        } else if (std::string_view(policy) != "none") {
          std::fprintf(stderr, "unknown --shed-policy=%s (none|oldest-open)\n",
                       policy);
          return 2;
        }
      }
      const bool dedupe_replay = ckpt != nullptr;
      pipeline = std::make_unique<LivePipeline>(
          pipe_options, [&, dedupe_replay](Session&& s) {
            if (dedupe_replay &&
                (store->Contains(s.id, s.fragment_index) ||
                 (cold != nullptr && cold->Contains(s.id, s.fragment_index)))) {
              // Replay-window dedupe guard: with an exact resume offset this
              // never fires, but it keeps a stale offset from double-counting.
              // The cold check covers sessions the pre-crash run had already
              // evicted and spilled.
              return;
            }
            report.Add(s);
            store->Insert(std::move(s));
          });
      if (did_restore) {
        // Must precede the first FeedLine/Flush: the restore publishes open
        // fragments and the snapshot watermark into the shard closers.
        RestoreLiveCheckpoint(std::move(restored), pipeline.get(),
                              store.get());
        store->ForEachSession([&report](const Session& s) { report.Add(s); });
      }
      mining_pipeline.store(pipeline.get(), std::memory_order_release);
      pipeline->RegisterMetrics(metrics.get());
      // Legacy gauge names, kept stable for operators and the e2e smoke.
      // With a restored checkpoint they continue from the snapshot's counters
      // so totals match a crash-free run.
      LivePipeline* pipe = pipeline.get();
      metrics->Register("ingest_records", [pipe, base_records] {
        return static_cast<int64_t>(base_records + pipe->records());
      });
      metrics->Register("ingest_parse_failures", [pipe, base_parse_failures] {
        return static_cast<int64_t>(base_parse_failures +
                                    pipe->parse_failures());
      });
      metrics->Register("sessionize_open_sessions", [pipe] {
        return static_cast<int64_t>(pipe->open_sessions());
      });
      metrics->Register("sessionize_watermark_ms", [pipe] {
        return static_cast<int64_t>(pipe->watermark() / kNanosPerMilli);
      });
      std::fprintf(stderr, "live pipeline: %zu shard worker(s)\n",
                   pipeline->workers());
      // Periodic snapshots ride the async two-phase barrier: the poll loop
      // pays one BeginCheckpoint per due tick, and all O(live state)
      // serialization + fsync runs on the writer thread while ingest keeps
      // feeding behind the barrier marker.
      if (ckpt != nullptr) {
        AsyncCheckpointer::Options ac_options;
        ac_options.stream = static_cast<uint64_t>(options.stream);
        ac_options.base_records = base_records;
        ac_options.base_parse_failures = base_parse_failures;
        if (cold != nullptr) {
          // Durability barrier: every eviction that precedes this snapshot's
          // barrier must be in a cold segment before the snapshot exists, or
          // a restore could lose it (the replay window starts at the
          // snapshot's offset).
          ColdTier* cold_ptr = cold.get();
          ac_options.before_write = [cold_ptr] {
            return cold_ptr->FlushPending();
          };
        }
        async_ckpt = std::make_unique<AsyncCheckpointer>(
            ckpt.get(), pipeline.get(), store.get(), ac_options);
        async_ckpt->RegisterMetrics(metrics.get());
      }
      // Zero-copy live loop: recv bytes land in the source's arena, PollBlock
      // hands them over as views, and FeedBlock routes them shard-ward with
      // no per-line copies (docs/INGEST.md).
      LineBlock block;
      bool done = false;
      while (!done && g_stop == 0) {
        const auto poll = source.PollBlock(&block, /*timeout_ms=*/200);
        pipeline->FeedBlock(std::move(block));
        if (poll == SocketIngestSource::Poll::kEndOfStream) {
          done = true;
        } else if (poll == SocketIngestSource::Poll::kFailed) {
          transport_failed = true;
          done = true;
        } else {
          pipeline->Flush();
          if (async_ckpt != nullptr) {
            async_ckpt->MaybeCheckpoint(source.records_received());
          }
        }
      }
      // Drain the writer before any synchronous capture or Finish(): at most
      // one barrier may be in flight, and an uncollected ticket would leave
      // the shard workers paused forever. The object stays alive (idle) so
      // the degraded-mode gauges it registered keep sampling until exit.
      if (async_ckpt != nullptr) {
        async_ckpt->Drain();
      }
      if (ckpt != nullptr && !transport_failed) {
        // Final checkpoint before Finish(): Finish force-closes every open
        // fragment for the report, and those early closes must not leak into
        // the snapshot — a restart continues them as open fragments instead.
        pipeline->Flush();
        CheckpointState state = CaptureLiveCheckpoint(
            pipeline.get(), *store, source.records_received(),
            static_cast<uint64_t>(options.stream));
        state.records += base_records;
        state.parse_failures += base_parse_failures;
        if (cold != nullptr) {
          // Same barrier as the periodic snapshots — but the final one wants
          // eventual durability, not the prompt-abort contract: FlushPending
          // returns false on the FIRST spill write failure so a periodic
          // snapshot can be dropped, while the spill thread keeps retrying
          // behind it. Ride those retries out (bounded: each false return is
          // at least one consumed fault / shed batch, so a finite fault
          // window always drains).
          for (int i = 0; i < 100 && !cold->FlushPending(); ++i) {
          }
        }
        // The disk may still be inside a fault window at end of stream (the
        // periodic writer only ticks while records flow, so nothing after the
        // last record has proven it healthy). Retry with backoff rather than
        // silently leaving the directory empty.
        bool final_ok = ckpt->Write(state);
        for (int attempt = 0; !final_ok && attempt < 5; ++attempt) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(int64_t{100} << attempt));
          final_ok = ckpt->Write(state);
        }
        if (final_ok) {
          std::fprintf(stderr, "final checkpoint at offset %llu (%s)\n",
                       static_cast<unsigned long long>(state.resume_offset),
                       ckpt->dir().c_str());
        } else {
          std::fprintf(stderr, "final checkpoint FAILED (%s unwritable)\n",
                       ckpt->dir().c_str());
        }
      }
      pipeline->Finish();
      record_count = base_records + pipeline->records();
      parse_failures = base_parse_failures + pipeline->parse_failures();
      sessions_ready = true;
    } else {
      std::vector<std::string> lines;
      const bool graceful = source.ReadAll(&lines);
      for (const auto& l : lines) {
        if (l.empty()) {
          continue;  // Blank lines are framing artifacts, not parse failures.
        }
        auto parsed = ParseWireFormat(l);
        if (parsed) {
          records.push_back(std::move(*parsed));
        } else {
          ++parse_failures;
        }
      }
      transport_failed = !graceful;
    }
    std::fprintf(stderr, "transport: %s\n",
                 source.stats().Snapshot().Format().c_str());
    if (transport_failed) {
      std::fprintf(stderr,
                   "transport failed before end of stream (%llu records in)\n",
                   static_cast<unsigned long long>(source.records_received()));
      if (server != nullptr) {
        server->Stop();
        server_thread.join();
      }
      return 1;
    }
  } else {
    FILE* in = stdin;
    if (const char* path = FlagStr(argc, argv, "--in")) {
      in = std::fopen(path, "r");
      if (in == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
      }
    }
    char* line = nullptr;
    size_t capacity = 0;
    ssize_t len;
    while ((len = getline(&line, &capacity, in)) >= 0) {
      while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
        --len;
      }
      if (len == 0) {
        continue;  // Blank lines skipped, same as the socket paths.
      }
      auto parsed = ParseWireFormat(std::string_view(line, static_cast<size_t>(len)));
      if (parsed) {
        records.push_back(std::move(*parsed));
      } else {
        ++parse_failures;
      }
    }
    free(line);
    if (in != stdin) {
      std::fclose(in);
    }
  }

  if (!sessions_ready) {
    OfflineOptions options;
    options.inactivity_split_ns = inactivity_ns;
    record_count = records.size();
    auto sessions = OfflineSessionizer::Sessionize(std::move(records), options);
    for (auto& s : sessions) {
      report.Add(s);
      if (store != nullptr) {
        store->Insert(std::move(s));
      }
    }
  }

  report.Print(record_count, parse_failures, top);

  if (server != nullptr) {
    std::fflush(stdout);
    std::fprintf(stderr, "serving %zu sessions on port %u (SIGINT to exit)\n",
                 store->stats().sessions, server->port());
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server->Stop();
    server_thread.join();
  }
  return 0;
}
