// ts_sessionize: reads wire-format log records from a file, stdin, or a live
// ts_log_server TCP stream, reconstructs sessions and trace trees, and prints
// a summary report — the offline companion to the streaming system, handy for
// inspecting archived logs produced by ts_trace_gen or exported from a real
// pipeline.
//
// Usage:
//   ts_sessionize [--in=path | --connect=host:port] [--stream=0 --streams=1]
//                 [--inactivity_s=0] [--top=10] [--trees]
//
//   --connect=H:P     consume a live log-server stream instead of a file
//                     (reconnects with backoff and resumes if the server
//                     drops mid-stream)
//   --stream/--streams  which partition of the server's archive to consume
//   --inactivity_s=N  also split sessions at idle gaps > N seconds
//   --top=K           print the K most frequent tree signatures and
//                     communicating service pairs
//   --trees           dump every trace tree (verbose)
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/analytics/dependency_graph.h"
#include "src/core/trace_tree.h"
#include "src/log/wire_format.h"
#include "src/net/net_util.h"
#include "src/net/socket_ingest.h"
#include "src/offline/offline_sessionizer.h"

namespace {

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  std::vector<LogRecord> records;
  uint64_t parse_failures = 0;

  if (const char* spec = FlagStr(argc, argv, "--connect")) {
    SocketIngestOptions options;
    if (!ParseHostPort(spec, &options.host, &options.port)) {
      std::fprintf(stderr, "bad --connect spec %s (want host:port)\n", spec);
      return 1;
    }
    options.stream = static_cast<size_t>(Flag(argc, argv, "--stream", 0));
    options.num_streams = static_cast<size_t>(Flag(argc, argv, "--streams", 1));
    SocketIngestSource source(options);
    std::vector<std::string> lines;
    const bool graceful = source.ReadAll(&lines);
    for (const auto& l : lines) {
      auto parsed = ParseWireFormat(l);
      if (parsed) {
        records.push_back(std::move(*parsed));
      } else {
        ++parse_failures;
      }
    }
    std::fprintf(stderr, "transport: %s\n",
                 source.stats().Snapshot().Format().c_str());
    if (!graceful) {
      std::fprintf(stderr,
                   "transport failed before end of stream (%llu records in)\n",
                   static_cast<unsigned long long>(source.records_received()));
      return 1;
    }
  } else {
    FILE* in = stdin;
    if (const char* path = FlagStr(argc, argv, "--in")) {
      in = std::fopen(path, "r");
      if (in == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
      }
    }
    char* line = nullptr;
    size_t capacity = 0;
    ssize_t len;
    while ((len = getline(&line, &capacity, in)) >= 0) {
      while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
        --len;
      }
      auto parsed = ParseWireFormat(std::string_view(line, static_cast<size_t>(len)));
      if (parsed) {
        records.push_back(std::move(*parsed));
      } else if (len > 0) {
        ++parse_failures;
      }
    }
    free(line);
    if (in != stdin) {
      std::fclose(in);
    }
  }

  OfflineOptions options;
  options.inactivity_split_ns = static_cast<EventTime>(
      Flag(argc, argv, "--inactivity_s", 0) * kNanosPerSecond);
  const size_t record_count = records.size();
  auto sessions = OfflineSessionizer::Sessionize(std::move(records), options);

  uint64_t trees = 0;
  uint64_t spans = 0;
  uint64_t inferred = 0;
  std::map<std::string, uint64_t> signatures;
  DependencyGraph deps;
  const bool dump_trees = HasFlag(argc, argv, "--trees");
  for (const auto& s : sessions) {
    for (const auto& tree : TraceTree::FromSession(s)) {
      ++trees;
      spans += tree.num_spans();
      inferred += tree.num_inferred();
      ++signatures[tree.SignatureKey()];
      deps.AddTree(tree);
      if (dump_trees) {
        std::printf("%s root=%s spans=%zu records=%u duration=%.2fms sig=%s\n",
                    s.id.c_str(), tree.root().id.ToString().c_str(),
                    tree.num_spans(), tree.total_records(),
                    static_cast<double>(tree.Duration()) / 1e6,
                    tree.SignatureKey().c_str());
      }
    }
  }

  std::printf("records:        %zu (%llu unparseable lines skipped)\n",
              record_count, static_cast<unsigned long long>(parse_failures));
  std::printf("sessions:       %zu\n", sessions.size());
  std::printf("trace trees:    %llu\n", static_cast<unsigned long long>(trees));
  std::printf("spans:          %llu (%llu inferred from descendants)\n",
              static_cast<unsigned long long>(spans),
              static_cast<unsigned long long>(inferred));
  std::printf("service edges:  %zu (%llu calls)\n", deps.num_edges(),
              static_cast<unsigned long long>(deps.total_calls()));

  const size_t top = static_cast<size_t>(Flag(argc, argv, "--top", 10));
  if (top > 0 && !signatures.empty()) {
    std::vector<std::pair<uint64_t, std::string>> ranked;
    for (const auto& [sig, count] : signatures) {
      ranked.emplace_back(count, sig);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\ntop tree structures:\n");
    for (size_t i = 0; i < std::min(top, ranked.size()); ++i) {
      std::printf("  %8llu x %s\n",
                  static_cast<unsigned long long>(ranked[i].first),
                  ranked[i].second.c_str());
    }
    std::printf("\nhottest service pairs:\n");
    for (const auto& [edge, calls] : deps.HeaviestEdges(top)) {
      std::printf("  %8llu x svc-%u -> svc-%u\n",
                  static_cast<unsigned long long>(calls), edge.first, edge.second);
    }
  }
  return 0;
}
