// ts_sessionize: reads wire-format log records from a file, stdin, or a live
// ts_log_server TCP stream, reconstructs sessions and trace trees, and prints
// a summary report — the offline companion to the streaming system, handy for
// inspecting archived logs produced by ts_trace_gen or exported from a real
// pipeline. With --serve it additionally keeps the reconstructed sessions in
// a bounded SessionStore and answers the ts_query wire protocol, turning the
// tool into the middle process of the paper's Figure 2 pipeline:
//
//   ts_log_server --addr=:9000 | ts_sessionize --connect=:9000 --serve=9100
//                              | ts_query --connect=:9100
//
// Usage:
//   ts_sessionize [--in=path | --connect=host:port] [--stream=0 --streams=1]
//                 [--inactivity_s=0] [--top=10] [--trees]
//                 [--serve=port] [--store_mb=256]
//
//   --connect=H:P     consume a live log-server stream instead of a file
//                     (reconnects with backoff and resumes if the server
//                     drops mid-stream)
//   --stream/--streams  which partition of the server's archive to consume
//   --inactivity_s=N  also split sessions at idle gaps > N seconds
//   --top=K           print the K most frequent tree signatures and
//                     communicating service pairs
//   --trees           dump every trace tree (verbose)
//   --serve=PORT      run a ts_query QueryServer on 127.0.0.1:PORT attached
//                     to a live SessionStore; with --connect, sessions are
//                     closed incrementally by event-time watermark as the
//                     stream flows (subscribers live-tail them), and the
//                     process keeps serving after end of stream until
//                     SIGINT/SIGTERM
//   --store_mb=N      SessionStore eviction budget (default 256 MiB)
#include <csignal>
#include <cstdio>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/analytics/dependency_graph.h"
#include "src/analytics/session_store.h"
#include "src/core/trace_tree.h"
#include "src/log/wire_format.h"
#include "src/net/net_util.h"
#include "src/net/socket_ingest.h"
#include "src/offline/offline_sessionizer.h"
#include "src/query/metrics_registry.h"
#include "src/query/query_server.h"

namespace {

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

// Watermark-driven sessionization for the live --connect --serve path: a
// session closes once the stream's maximum event time has advanced
// `inactivity_ns` past the session's last record — the streaming analogue of
// OfflineSessionizer's gap splitting (identical output on an in-order
// stream). Epoch fields are derived exactly as the offline path derives them.
class LiveCloser {
 public:
  explicit LiveCloser(ts::EventTime inactivity_ns)
      : inactivity_ns_(inactivity_ns) {}

  void Feed(ts::LogRecord record) {
    watermark_ = std::max(watermark_, record.time);
    auto& open = open_[record.session_id];
    open.last_time = std::max(open.last_time, record.time);
    open.records.push_back(std::move(record));
  }

  // Moves every session idle past the watermark into *closed.
  void CloseExpired(std::vector<ts::Session>* closed) {
    for (auto it = open_.begin(); it != open_.end();) {
      if (it->second.last_time + inactivity_ns_ <= watermark_) {
        Emit(it->first, std::move(it->second), closed);
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void FlushAll(std::vector<ts::Session>* closed) {
    for (auto& [id, open] : open_) {
      Emit(id, std::move(open), closed);
    }
    open_.clear();
  }

  size_t open_sessions() const { return open_.size(); }
  ts::EventTime watermark() const { return watermark_; }

 private:
  struct Open {
    std::vector<ts::LogRecord> records;
    ts::EventTime last_time = 0;
  };

  void Emit(const std::string& id, Open open, std::vector<ts::Session>* closed) {
    std::stable_sort(open.records.begin(), open.records.end(),
                     [](const ts::LogRecord& a, const ts::LogRecord& b) {
                       return a.time < b.time;
                     });
    ts::Session s;
    s.id = id;
    s.fragment_index = next_fragment_[id]++;
    s.records = std::move(open.records);
    s.first_epoch =
        static_cast<ts::Epoch>(s.records.front().time / ts::kNanosPerSecond);
    s.last_epoch =
        static_cast<ts::Epoch>(s.records.back().time / ts::kNanosPerSecond);
    s.closed_at = s.last_epoch;
    closed->push_back(std::move(s));
  }

  ts::EventTime inactivity_ns_;
  ts::EventTime watermark_ = 0;
  std::unordered_map<std::string, Open> open_;
  std::unordered_map<std::string, uint32_t> next_fragment_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;

  // --serve: stand up the store and the query server before ingesting, so
  // subscribers attached early see every session close.
  const char* serve_spec = FlagStr(argc, argv, "--serve");
  std::shared_ptr<SessionStore> store;
  std::shared_ptr<MetricsRegistry> metrics;
  std::unique_ptr<QueryServer> server;
  std::thread server_thread;
  // Gauges shared with the ingest loop (which outlives nothing: the server
  // thread samples them at STATS time, so they must outlive the loop too).
  auto ingest_records = std::make_shared<std::atomic<int64_t>>(0);
  auto ingest_parse_failures = std::make_shared<std::atomic<int64_t>>(0);
  auto open_sessions = std::make_shared<std::atomic<int64_t>>(0);
  auto watermark_ms = std::make_shared<std::atomic<int64_t>>(0);
  if (serve_spec != nullptr) {
    SessionStore::Options store_options;
    store_options.max_bytes =
        static_cast<size_t>(Flag(argc, argv, "--store_mb", 256)) << 20;
    store = std::make_shared<SessionStore>(store_options);
    metrics = std::make_shared<MetricsRegistry>();
    metrics->Register("ingest_records",
                      [ingest_records] { return ingest_records->load(); });
    metrics->Register("ingest_parse_failures", [ingest_parse_failures] {
      return ingest_parse_failures->load();
    });
    metrics->Register("sessionize_open_sessions",
                      [open_sessions] { return open_sessions->load(); });
    metrics->Register("sessionize_watermark_ms",
                      [watermark_ms] { return watermark_ms->load(); });
    QueryServerOptions server_options;
    if (std::strchr(serve_spec, ':') != nullptr) {
      if (!ParseHostPort(serve_spec, &server_options.host,
                         &server_options.port)) {
        std::fprintf(stderr, "bad --serve spec %s\n", serve_spec);
        return 1;
      }
    } else {
      server_options.port = static_cast<uint16_t>(std::atoi(serve_spec));
    }
    server = std::make_unique<QueryServer>(server_options, store, metrics);
    if (!server->Start()) {
      std::fprintf(stderr, "cannot serve on %s\n", serve_spec);
      return 1;
    }
    std::fprintf(stderr, "query server listening on %s:%u\n",
                 server_options.host.c_str(), server->port());
    server_thread = std::thread([&server] { server->Run(); });
    std::signal(SIGINT, OnSignal);
    std::signal(SIGTERM, OnSignal);
  }

  const EventTime inactivity_ns = static_cast<EventTime>(
      Flag(argc, argv, "--inactivity_s", 0) * kNanosPerSecond);

  std::vector<LogRecord> records;
  std::vector<Session> sessions;
  size_t record_count = 0;
  uint64_t parse_failures = 0;
  bool transport_failed = false;
  bool sessions_ready = false;  // Live path fills `sessions` itself.

  if (const char* spec = FlagStr(argc, argv, "--connect")) {
    SocketIngestOptions options;
    if (!ParseHostPort(spec, &options.host, &options.port)) {
      std::fprintf(stderr, "bad --connect spec %s (want host:port)\n", spec);
      return 1;
    }
    options.stream = static_cast<size_t>(Flag(argc, argv, "--stream", 0));
    options.num_streams = static_cast<size_t>(Flag(argc, argv, "--streams", 1));
    SocketIngestSource source(options);
    if (server != nullptr) {
      // Live path: close sessions incrementally as the watermark advances,
      // inserting each into the store the moment it closes. Inactivity
      // defaults to 5s here — a watermark close needs a window.
      LiveCloser closer(inactivity_ns > 0 ? inactivity_ns
                                          : 5 * kNanosPerSecond);
      std::vector<std::string> lines;
      std::vector<Session> closed;
      bool done = false;
      while (!done && g_stop == 0) {
        lines.clear();
        const auto poll = source.PollLines(&lines, /*timeout_ms=*/200);
        for (const auto& l : lines) {
          auto parsed = ParseWireFormat(l);
          if (parsed) {
            closer.Feed(std::move(*parsed));
            ++record_count;
          } else {
            ++parse_failures;
          }
        }
        if (poll == SocketIngestSource::Poll::kEndOfStream) {
          closer.FlushAll(&closed);
          done = true;
        } else if (poll == SocketIngestSource::Poll::kFailed) {
          closer.FlushAll(&closed);
          transport_failed = true;
          done = true;
        } else {
          closer.CloseExpired(&closed);
        }
        for (auto& s : closed) {
          store->Insert(s);  // Copy: the report below still needs it.
          sessions.push_back(std::move(s));
        }
        closed.clear();
        ingest_records->store(static_cast<int64_t>(record_count));
        ingest_parse_failures->store(static_cast<int64_t>(parse_failures));
        open_sessions->store(static_cast<int64_t>(closer.open_sessions()));
        watermark_ms->store(
            static_cast<int64_t>(closer.watermark() / kNanosPerMilli));
      }
      sessions_ready = true;
    } else {
      std::vector<std::string> lines;
      const bool graceful = source.ReadAll(&lines);
      for (const auto& l : lines) {
        auto parsed = ParseWireFormat(l);
        if (parsed) {
          records.push_back(std::move(*parsed));
        } else {
          ++parse_failures;
        }
      }
      transport_failed = !graceful;
    }
    std::fprintf(stderr, "transport: %s\n",
                 source.stats().Snapshot().Format().c_str());
    if (transport_failed) {
      std::fprintf(stderr,
                   "transport failed before end of stream (%llu records in)\n",
                   static_cast<unsigned long long>(source.records_received()));
      if (server != nullptr) {
        server->Stop();
        server_thread.join();
      }
      return 1;
    }
  } else {
    FILE* in = stdin;
    if (const char* path = FlagStr(argc, argv, "--in")) {
      in = std::fopen(path, "r");
      if (in == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
      }
    }
    char* line = nullptr;
    size_t capacity = 0;
    ssize_t len;
    while ((len = getline(&line, &capacity, in)) >= 0) {
      while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
        --len;
      }
      auto parsed = ParseWireFormat(std::string_view(line, static_cast<size_t>(len)));
      if (parsed) {
        records.push_back(std::move(*parsed));
      } else if (len > 0) {
        ++parse_failures;
      }
    }
    free(line);
    if (in != stdin) {
      std::fclose(in);
    }
  }

  if (!sessions_ready) {
    OfflineOptions options;
    options.inactivity_split_ns = inactivity_ns;
    record_count = records.size();
    sessions = OfflineSessionizer::Sessionize(std::move(records), options);
    if (store != nullptr) {
      for (const auto& s : sessions) {
        store->Insert(s);
      }
    }
  }

  uint64_t trees = 0;
  uint64_t spans = 0;
  uint64_t inferred = 0;
  std::map<std::string, uint64_t> signatures;
  DependencyGraph deps;
  const bool dump_trees = HasFlag(argc, argv, "--trees");
  for (const auto& s : sessions) {
    for (const auto& tree : TraceTree::FromSession(s)) {
      ++trees;
      spans += tree.num_spans();
      inferred += tree.num_inferred();
      ++signatures[tree.SignatureKey()];
      deps.AddTree(tree);
      if (dump_trees) {
        std::printf("%s root=%s spans=%zu records=%u duration=%.2fms sig=%s\n",
                    s.id.c_str(), tree.root().id.ToString().c_str(),
                    tree.num_spans(), tree.total_records(),
                    static_cast<double>(tree.Duration()) / 1e6,
                    tree.SignatureKey().c_str());
      }
    }
  }

  std::printf("records:        %zu (%llu unparseable lines skipped)\n",
              record_count, static_cast<unsigned long long>(parse_failures));
  std::printf("sessions:       %zu\n", sessions.size());
  std::printf("trace trees:    %llu\n", static_cast<unsigned long long>(trees));
  std::printf("spans:          %llu (%llu inferred from descendants)\n",
              static_cast<unsigned long long>(spans),
              static_cast<unsigned long long>(inferred));
  std::printf("service edges:  %zu (%llu calls)\n", deps.num_edges(),
              static_cast<unsigned long long>(deps.total_calls()));

  const size_t top = static_cast<size_t>(Flag(argc, argv, "--top", 10));
  if (top > 0 && !signatures.empty()) {
    std::vector<std::pair<uint64_t, std::string>> ranked;
    for (const auto& [sig, count] : signatures) {
      ranked.emplace_back(count, sig);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\ntop tree structures:\n");
    for (size_t i = 0; i < std::min(top, ranked.size()); ++i) {
      std::printf("  %8llu x %s\n",
                  static_cast<unsigned long long>(ranked[i].first),
                  ranked[i].second.c_str());
    }
    std::printf("\nhottest service pairs:\n");
    for (const auto& [edge, calls] : deps.HeaviestEdges(top)) {
      std::printf("  %8llu x svc-%u -> svc-%u\n",
                  static_cast<unsigned long long>(calls), edge.first, edge.second);
    }
  }

  if (server != nullptr) {
    std::fflush(stdout);
    std::fprintf(stderr, "serving %zu sessions on port %u (SIGINT to exit)\n",
                 store->stats().sessions, server->port());
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server->Stop();
    server_thread.join();
  }
  return 0;
}
