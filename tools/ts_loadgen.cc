// ts_loadgen: open-loop skewed load generator for the TS1 ingest path.
//
// Acts as the TS1 *server* (the role ts_log_server plays), so the consumer is
// pointed at it unchanged:
//
//   ts_loadgen --rate=200000 --seconds=10 --subscribe-port-file=q.port
//   ts_sessionize --connect=127.0.0.1:<port> --serve=0 --inactivity_s=1
//                 --workers=2 [--shed-policy=oldest-open]
//
// Prints its bound port first, alone on a stdout line (ts_log_server
// convention), then generates synthetic sessions at the goal records/s on an
// open-loop Poisson or uniform schedule, subscribes to the consumer's query
// port, and reports coordinated-omission-safe close-latency percentiles
// measured from each session's *intended* last-record send time. See
// docs/LOADGEN.md for the methodology.
//
// Flags:
//   --listen=PORT       TS1 listen port (default 0 = ephemeral)
//   --rate=N            goal records/s (default 50000)
//   --seconds=S         main schedule duration (default 5)
//   --arrival=poisson|uniform   inter-arrival process (default poisson)
//   --sessions=N        concurrent session slots (default 256)
//   --records-per-session=N     records before a session retires (default 20)
//   --session-skew=Z    Zipf skew over session slots (default 1.1)
//   --services=N --service-skew=Z --hosts=N --payload=B --seed=N
//   --hot-fraction=F --shards=N --hot-shard=K
//                       pin fraction F of new sessions to SipHash partition K
//                       of N (match the consumer's --workers to target one
//                       shard worker)
//   --inactivity_s=S    consumer's inactivity window (default 1; must match —
//                       sizes the drain tail and the reaction offset)
//   --subscribe=H:P     consumer query port for close timestamps
//   --subscribe-port-file=PATH  poll PATH for the port instead (the e2e smoke
//                       writes it once the consumer prints it)
//   --subscribe-wait=S  how long to wait for the port/file (default 20)
//   --quick             run the in-process self-check and exit (other flags
//                       ignored); used by CI
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/time_util.h"
#include "src/loadgen/harness.h"
#include "src/loadgen/load_generator.h"
#include "src/net/net_util.h"

namespace ts {
namespace {

double Flag(int argc, char** argv, const char* name, double fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atof(argv[i] + len + 1);
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

void PrintReport(const LoadGenReport& report) {
  std::printf(
      "loadgen sent=%" PRIu64 " goal_rate=%.0f achieved_rate=%.0f wall=%.2fs"
      " backlog_peak=%zu retired=%" PRIu64 " observed=%" PRIu64
      " missing=%" PRIu64 " dropped=%" PRIu64 " unmatched=%" PRIu64
      " hot=%" PRIu64 "\n",
      report.records_sent, report.goal_rate, report.achieved_rate,
      report.wall_s, report.peak_backlog_bytes, report.sessions_retired,
      report.closes_observed, report.closes_missing,
      report.subscriber_dropped, report.closes_unmatched,
      report.hot_sessions);
  std::printf("lateness %s\n", report.send_lateness.Summary().c_str());
  if (report.close_latency.count() > 0) {
    std::printf("close    %s\n", report.close_latency.Summary().c_str());
    std::printf("reaction %s\n", report.close_reaction.Summary().c_str());
  }
  std::fflush(stdout);
}

void PrintAccounting(const ConsumerHarness::Accounting& a) {
  std::printf("accounting received=%" PRIu64 " parsed=%" PRIu64
              " failures=%" PRIu64 " blanks=%" PRIu64 " emitted=%" PRIu64
              " open=%" PRIu64 " shed_records=%" PRIu64
              " shed_fragments=%" PRIu64 " shed_lines=%" PRIu64 "\n",
              a.received, a.parsed, a.parse_failures, a.blank_lines,
              a.records_emitted, a.open_records, a.shed_records,
              a.shed_fragments, a.shed_lines);
}

// In-process self-check: generator + full consumer stack over loopback TCP.
// Phase 1 proves the measurement path (every retired session's close is
// observed or accounted as a subscriber drop; accounting reconciles to the
// record). Phase 2 overdrives a deliberately tiny one-worker pipeline with
// shedding enabled and proves the ingest side kept pacing (bounded stall)
// while `records_in == stored + shed` still reconciles exactly.
int RunQuickSelfCheck() {
  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
    if (!ok) {
      ++failures;
    }
  };

  {
    std::printf("-- phase 1: measurement path (no shedding) --\n");
    HarnessOptions hopts;
    hopts.workers = 2;
    hopts.inactivity_ns = 300 * kNanosPerMilli;
    ConsumerHarness harness(hopts);

    LoadGenOptions lopts;
    lopts.rate_per_s = 8000;
    lopts.duration_s = 2.0;
    lopts.inactivity_ns = hopts.inactivity_ns;
    lopts.synth.concurrent_sessions = 64;
    lopts.synth.records_per_session = 10;
    LoadGenerator gen(lopts);
    TS_CHECK(gen.Listen());
    TS_CHECK(harness.Start(gen.port()));
    gen.SetSubscriber("127.0.0.1", harness.query_port());
    const LoadGenReport report = gen.Run();
    harness.Join();
    const auto acct = harness.GetAccounting();
    PrintReport(report);
    PrintAccounting(acct);
    check(report.ok, "transport clean");
    check(report.records_sent > 8000, "schedule ran");
    check(report.closes_observed + report.closes_missing ==
              report.sessions_retired,
          "every retired session observed or accounted missing");
    check(report.closes_missing <= report.subscriber_dropped,
          "missing closes all explained by subscriber drops");
    check(report.close_latency.count() == report.closes_observed,
          "one latency sample per observed close");
    check(acct.parse_failures == 0 && acct.blank_lines == 0,
          "all generated lines parse");
    check(acct.shed_records == 0 && acct.shed_lines == 0,
          "nothing shed with policy off");
    check(acct.Reconciles(), "records_in == stored + shed reconciles");
    harness.Stop();
  }

  {
    std::printf("-- phase 2: overload with --shed-policy=oldest-open --\n");
    HarnessOptions hopts;
    hopts.workers = 1;
    hopts.inactivity_ns = 500 * kNanosPerMilli;
    hopts.queue_capacity = 2;
    hopts.max_records_per_poll = 512;
    hopts.shed_policy = ShedPolicy::kOldestOpen;
    hopts.shed_open_bytes = 256 << 10;
    hopts.shed_stall_limit_ms = 5;
    ConsumerHarness harness(hopts);

    LoadGenOptions lopts;
    lopts.rate_per_s = 600'000;  // Far past a 1-worker tiny-queue pipeline.
    lopts.duration_s = 1.5;
    lopts.inactivity_ns = hopts.inactivity_ns;
    lopts.synth.seed = 7;
    lopts.synth.concurrent_sessions = 512;
    lopts.synth.records_per_session = 40;
    LoadGenerator gen(lopts);
    TS_CHECK(gen.Listen());
    TS_CHECK(harness.Start(gen.port()));
    gen.SetSubscriber("127.0.0.1", harness.query_port());
    const int64_t start = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count();
    const LoadGenReport report = gen.Run();
    harness.Join();
    const int64_t elapsed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count() -
        start;
    const auto acct = harness.GetAccounting();
    PrintReport(report);
    PrintAccounting(acct);
    std::printf("stall_us=%lld elapsed=%.1fs\n",
                static_cast<long long>(
                    harness.pipeline()->backpressure_stall_ns() / 1000),
                elapsed_ns / 1e9);
    check(report.ok, "transport clean under overload");
    check(acct.Reconciles(),
          "records_in == stored + shed reconciles under overload");
    // Bounded producer window: the whole run (schedule + drain + flush) must
    // finish in a small multiple of the nominal duration, not hang on a
    // stalled pipeline. Generous bound — CI machines share cores.
    check(elapsed_ns < 30 * kNanosPerSecond, "producer stall bounded");
    check(harness.pipeline()->ingest_watermark() > 0, "watermark advanced");
    harness.Stop();
  }

  std::printf("self-check: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

uint16_t WaitSubscribePort(int argc, char** argv) {
  if (const char* spec = FlagStr(argc, argv, "--subscribe")) {
    std::string host;
    uint16_t port = 0;
    if (ParseHostPort(spec, &host, &port)) {
      return port;
    }
    std::fprintf(stderr, "bad --subscribe=%s\n", spec);
    return 0;
  }
  const char* path = FlagStr(argc, argv, "--subscribe-port-file");
  if (path == nullptr) {
    return 0;
  }
  const double wait_s = Flag(argc, argv, "--subscribe-wait", 20);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            static_cast<int64_t>(wait_s * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    if (FILE* f = std::fopen(path, "r")) {
      long port = 0;
      const int got = std::fscanf(f, "%ld", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port <= 65535) {
        return static_cast<uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "timed out waiting for %s\n", path);
  return 0;
}

int Main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--quick")) {
    return RunQuickSelfCheck();
  }

  LoadGenOptions options;
  options.port = static_cast<uint16_t>(Flag(argc, argv, "--listen", 0));
  options.rate_per_s = Flag(argc, argv, "--rate", 50'000);
  options.duration_s = Flag(argc, argv, "--seconds", 5);
  options.inactivity_ns = static_cast<int64_t>(
      Flag(argc, argv, "--inactivity_s", 1.0) * kNanosPerSecond);
  if (const char* arrival = FlagStr(argc, argv, "--arrival")) {
    if (std::strcmp(arrival, "uniform") == 0) {
      options.arrival = ArrivalProcess::kUniform;
    } else if (std::strcmp(arrival, "poisson") != 0) {
      std::fprintf(stderr, "unknown --arrival=%s (poisson|uniform)\n", arrival);
      return 2;
    }
  }
  options.synth.seed = static_cast<uint64_t>(Flag(argc, argv, "--seed", 1));
  options.synth.concurrent_sessions =
      static_cast<size_t>(Flag(argc, argv, "--sessions", 256));
  options.synth.records_per_session =
      static_cast<size_t>(Flag(argc, argv, "--records-per-session", 20));
  options.synth.session_skew = Flag(argc, argv, "--session-skew", 1.1);
  options.synth.num_services =
      static_cast<uint32_t>(Flag(argc, argv, "--services", 64));
  options.synth.service_skew = Flag(argc, argv, "--service-skew", 1.1);
  options.synth.num_hosts =
      static_cast<uint32_t>(Flag(argc, argv, "--hosts", 16));
  options.synth.payload_bytes =
      static_cast<size_t>(Flag(argc, argv, "--payload", 48));
  options.synth.hot_session_fraction =
      Flag(argc, argv, "--hot-fraction", 0.0);
  options.synth.shards = static_cast<size_t>(Flag(argc, argv, "--shards", 1));
  options.synth.hot_shard =
      static_cast<size_t>(Flag(argc, argv, "--hot-shard", 0));

  LoadGenerator gen(options);
  if (!gen.Listen()) {
    std::fprintf(stderr, "ts_loadgen: failed to listen\n");
    return 1;
  }
  // Bound port first, alone on a stdout line (ts_log_server convention), so
  // scripts can capture it before pointing the consumer here.
  std::printf("%u\n", gen.port());
  std::fflush(stdout);

  const uint16_t sub_port = WaitSubscribePort(argc, argv);
  if (sub_port != 0) {
    gen.SetSubscriber("127.0.0.1", sub_port);
  } else if (FlagStr(argc, argv, "--subscribe-port-file") != nullptr) {
    return 1;  // A port file was promised but never delivered a port.
  }

  const LoadGenReport report = gen.Run();
  PrintReport(report);
  if (!report.ok) {
    std::fprintf(stderr, "ts_loadgen: %s\n", report.error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ts

int main(int argc, char** argv) { return ts::Main(argc, argv); }
