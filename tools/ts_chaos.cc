// ts_chaos: a fault-injecting TCP proxy between a log server and its client.
//
//   ts_log_server  -->  ts_chaos  -->  ts_sessionize --connect
//
// Applies a FaultPlan (src/fault/fault_plan.h) to real traffic: downstream
// bytes pass through kills, stalls, partial writes, corruption, and silent
// truncation at exact byte offsets; accepts can be refused. The plan comes
// from a file (--plan=path, the text form ToText() emits) or is drawn from a
// seed (--seed + --profile), and either way the effective plan is printed to
// stderr so a failing run can be replayed byte-for-byte.
//
// Usage:
//   ts_chaos --upstream=host:port [--port=0] [--host=127.0.0.1]
//            [--plan=path | --seed=1 --profile=mild --stream_kb=1024]
//            [--quiet]
//
//   --upstream    the real log server to proxy for (required)
//   --port=0      bind an ephemeral port; the bound port is printed first,
//                 alone on a line, so scripts and tests can capture it
//   --profile     mild | aggressive | corrupting (see FaultProfile presets)
//   --stream_kb   expected downstream volume; seeded event offsets are drawn
//                 uniformly over this many KiB
//   --quiet       suppress the plan echo and the final stats report
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/fault/chaos_proxy.h"
#include "src/fault/fault_plan.h"

namespace {

ts::ChaosProxy* g_proxy = nullptr;

void HandleSignal(int) {
  if (g_proxy != nullptr) {
    g_proxy->Stop();
  }
}

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

// Reads a whole file into *out; returns false if it cannot be opened.
bool ReadFile(const char* path, std::string* out) {
  FILE* in = std::fopen(path, "r");
  if (in == nullptr) {
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    out->append(buf, n);
  }
  std::fclose(in);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const char* upstream = FlagStr(argc, argv, "--upstream");
  if (upstream == nullptr) {
    std::fprintf(stderr, "ts_chaos: --upstream=host:port is required\n");
    return 1;
  }
  const std::string up = upstream;
  const size_t colon = up.rfind(':');
  if (colon == std::string::npos || colon + 1 >= up.size()) {
    std::fprintf(stderr, "ts_chaos: malformed --upstream=%s\n", upstream);
    return 1;
  }

  ChaosProxyOptions options;
  options.upstream_host = up.substr(0, colon);
  options.upstream_port = static_cast<uint16_t>(std::stoul(up.substr(colon + 1)));
  if (const char* host = FlagStr(argc, argv, "--host")) {
    options.listen_host = host;
  }
  options.listen_port = static_cast<uint16_t>(Flag(argc, argv, "--port", 0));

  if (const char* plan_path = FlagStr(argc, argv, "--plan")) {
    std::string text;
    if (!ReadFile(plan_path, &text)) {
      std::fprintf(stderr, "ts_chaos: cannot open %s\n", plan_path);
      return 1;
    }
    std::string error;
    if (!FaultPlan::Parse(text, &options.plan, &error)) {
      std::fprintf(stderr, "ts_chaos: bad plan %s: %s\n", plan_path,
                   error.c_str());
      return 1;
    }
  } else {
    const uint64_t seed = static_cast<uint64_t>(Flag(argc, argv, "--seed", 1));
    const char* profile_name = FlagStr(argc, argv, "--profile");
    const std::string profile = profile_name != nullptr ? profile_name : "mild";
    const uint64_t stream_bytes =
        static_cast<uint64_t>(Flag(argc, argv, "--stream_kb", 1024)) << 10;
    FaultProfile resolved;
    if (!FaultPlan::ResolveProfile(profile, stream_bytes, &resolved)) {
      std::fprintf(stderr, "ts_chaos: unknown --profile=%s\n", profile.c_str());
      return 1;
    }
    options.plan = FaultPlan::FromSeed(seed, profile, resolved);
  }

  ChaosProxy proxy(options);
  if (!proxy.Start()) {
    std::fprintf(stderr, "ts_chaos: cannot listen on %s:%u\n",
                 options.listen_host.c_str(), options.listen_port);
    return 1;
  }
  // The bound port, first and alone on a line: `--port=0` callers parse this.
  std::printf("%u\n", proxy.port());
  std::fflush(stdout);

  const bool quiet = HasFlag(argc, argv, "--quiet");
  if (!quiet) {
    std::fprintf(stderr, "proxying %s:%u -> :%u with plan:\n%s",
                 options.upstream_host.c_str(), options.upstream_port,
                 proxy.port(), options.plan.ToText().c_str());
  }

  g_proxy = &proxy;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  proxy.Run();

  if (!quiet) {
    const ChaosProxyStats stats = proxy.stats();
    std::fprintf(stderr,
                 "chaos: conns=%llu refused=%llu kills=%llu stalls=%llu "
                 "up=%llu down=%llu dropped=%llu corrupted=%llu\n",
                 static_cast<unsigned long long>(stats.connections),
                 static_cast<unsigned long long>(stats.refused),
                 static_cast<unsigned long long>(stats.kills),
                 static_cast<unsigned long long>(stats.stalls),
                 static_cast<unsigned long long>(stats.bytes_up),
                 static_cast<unsigned long long>(stats.bytes_down),
                 static_cast<unsigned long long>(stats.bytes_dropped),
                 static_cast<unsigned long long>(stats.bytes_corrupted));
  }
  return 0;
}
