// ts_query: command-line client for a live QueryServer — the operator-facing
// end of the three-process pipeline:
//
//   ts_log_server --addr=:9000 &
//   ts_sessionize --connect=:9000 --serve=9100 &
//   ts_query --connect=:9100 STATS
//
// Usage:
//   ts_query --connect=host:port [--raw] [--timeout_ms=N] [REQUEST...]
//
//   REQUEST           one protocol request, e.g. `GET <id>`, `FRAGMENTS <id>`,
//                     `SERVICE <n> [limit]`, `RANGE <lo> <hi> [limit]`,
//                     `STATS`, `TOPK [k]`, `TEMPLATES [k]`, or
//                     `SUBSCRIBE [service=<n>|prefix=<id-prefix>]`.
//                     With no request, reads request lines from stdin.
//   --raw             print sessions as canonical wire blocks (re-parseable
//                     by ts_sessionize) instead of one-line summaries
//   --templates       shorthand for a `TEMPLATES` request: print the mined
//                     log-template dictionary (needs a server started with
//                     --mine-templates)
//   --timeout_ms=N    per-response wait (default 10000)
//
// SUBSCRIBE switches to tail mode: sessions stream until the server exits or
// the tool is interrupted; server-side drops surface as `#DROPPED <n>` lines.
// Exit status: 0 if every request got #OK, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/net_util.h"
#include "src/query/query_client.h"
#include "src/query/query_protocol.h"

namespace {

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

void PrintSession(const ts::Session& s, bool raw) {
  if (raw) {
    std::fputs(ts::EncodeSessionBlock(s).c_str(), stdout);
    return;
  }
  std::printf("%s frag=%u records=%zu span=[%.3fs..%.3fs] epochs=[%llu..%llu]\n",
              s.id.c_str(), s.fragment_index, s.records.size(),
              static_cast<double>(s.MinTime()) / 1e9,
              static_cast<double>(s.MaxTime()) / 1e9,
              static_cast<unsigned long long>(s.first_epoch),
              static_cast<unsigned long long>(s.last_epoch));
}

// Returns true if the response was #OK.
bool PrintResponse(const ts::QueryResponse& response, bool raw) {
  if (!response.ok) {
    std::fprintf(stderr, "error: %s\n",
                 response.error.empty() ? "unknown" : response.error.c_str());
    return false;
  }
  for (const auto& s : response.sessions) {
    PrintSession(s, raw);
  }
  for (const auto& [name, value] : response.stats) {
    std::printf("%s %lld\n", name.c_str(), static_cast<long long>(value));
  }
  for (const auto& [service, count] : response.top) {
    std::printf("svc-%u %llu\n", service,
                static_cast<unsigned long long>(count));
  }
  for (const auto& t : response.templates) {
    if (raw) {
      // Wire form, re-parseable by ParseTemplateLine (like --raw sessions).
      std::printf("%s\n", ts::FormatTemplateLine(t).c_str());
      continue;
    }
    std::printf("#%u hits=%llu ppm=%llu %s\n", t.id,
                static_cast<unsigned long long>(t.hits),
                static_cast<unsigned long long>(t.ppm), t.text.c_str());
  }
  if (response.truncated) {
    std::fprintf(stderr, "(response truncated by server output budget)\n");
  }
  return true;
}

int RunSubscribe(ts::QueryClient& client, const std::string& request, bool raw) {
  // Re-parse the request to recover the optional filter token.
  ts::QueryRequest parsed;
  std::string error;
  if (!ts::ParseQueryRequest(request, &parsed, &error) ||
      parsed.verb != ts::QueryRequest::Verb::kSubscribe) {
    std::fprintf(stderr, "bad subscribe request: %s\n", error.c_str());
    return 1;
  }
  std::string filter;
  if (parsed.filter_by_service) {
    filter = "service=" + std::to_string(parsed.filter_service);
  } else if (parsed.filter_by_prefix) {
    filter = "prefix=" + parsed.filter_prefix;
  }
  if (!client.SubscribeFiltered(filter)) {
    std::fprintf(stderr, "subscribe failed\n");
    return 1;
  }
  std::fprintf(stderr, "subscribed; tailing closed sessions...\n");
  while (true) {
    ts::Session session;
    uint64_t dropped = 0;
    switch (client.Next(&session, &dropped, /*timeout_ms=*/1000)) {
      case ts::QueryClient::Event::kSession:
        PrintSession(session, raw);
        std::fflush(stdout);
        break;
      case ts::QueryClient::Event::kDropped:
        std::printf("#DROPPED %llu\n", static_cast<unsigned long long>(dropped));
        std::fflush(stdout);
        break;
      case ts::QueryClient::Event::kTimeout:
        break;  // Keep tailing.
      case ts::QueryClient::Event::kClosed:
        std::fprintf(stderr, "server closed the stream (dropped total: %llu)\n",
                     static_cast<unsigned long long>(client.total_dropped()));
        return 0;
      case ts::QueryClient::Event::kError:
        std::fprintf(stderr, "protocol error in subscription stream\n");
        return 1;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const char* spec = FlagStr(argc, argv, "--connect");
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "usage: ts_query --connect=host:port [--raw] "
                 "[--timeout_ms=N] [REQUEST...]\n");
    return 1;
  }
  QueryClientOptions options;
  if (!ParseHostPort(spec, &options.host, &options.port)) {
    std::fprintf(stderr, "bad --connect spec %s (want host:port)\n", spec);
    return 1;
  }
  if (const char* t = FlagStr(argc, argv, "--timeout_ms")) {
    options.io_timeout_ms = std::atoi(t);
  }
  const bool raw = HasFlag(argc, argv, "--raw");

  // Everything after the flags forms one request line.
  std::string request;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      continue;
    }
    if (!request.empty()) {
      request += ' ';
    }
    request += argv[i];
  }
  if (request.empty() && HasFlag(argc, argv, "--templates")) {
    request = "TEMPLATES";
  }

  QueryClient client(options);
  if (!client.Connect()) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", options.host.c_str(),
                 options.port);
    return 1;
  }

  if (!request.empty()) {
    if (request.rfind("SUBSCRIBE", 0) == 0) {
      return RunSubscribe(client, request, raw);
    }
    QueryResponse response;
    if (!client.Execute(request, &response)) {
      std::fprintf(stderr, "transport error: %s\n", response.error.c_str());
      return 1;
    }
    return PrintResponse(response, raw) ? 0 : 1;
  }

  // REPL: one request per stdin line.
  int status = 0;
  char* line = nullptr;
  size_t capacity = 0;
  ssize_t len;
  while ((len = getline(&line, &capacity, stdin)) >= 0) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) {
      continue;
    }
    const std::string one(line, static_cast<size_t>(len));
    if (one.rfind("SUBSCRIBE", 0) == 0) {
      free(line);
      return RunSubscribe(client, one, raw);
    }
    QueryResponse response;
    if (!client.Execute(one, &response)) {
      std::fprintf(stderr, "transport error: %s\n", response.error.c_str());
      free(line);
      return 1;
    }
    if (!PrintResponse(response, raw)) {
      status = 1;
    }
    std::fflush(stdout);
  }
  free(line);
  return status;
}
