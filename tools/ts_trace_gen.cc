// ts_trace_gen: writes a calibrated synthetic datacenter trace to stdout (or a
// file) in the text wire format, one record per line, event-time ordered —
// the archived-log-file form the paper's replayer consumes.
//
// Usage:
//   ts_trace_gen [--rate=50000] [--seconds=10] [--seed=42] [--loss=0]
//                [--skew_ms=0] [--free_text] [--out=path]
//
//   --free_text   emit unstructured free-text payloads drawn from a seeded
//                 template pool (the ts_parse mining workload) instead of the
//                 calibrated fixed-size filler
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/time_util.h"
#include "src/log/wire_format.h"
#include "src/workload/generator.h"

namespace {

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  GeneratorConfig config;
  config.seed = static_cast<uint64_t>(Flag(argc, argv, "--seed", 42));
  config.duration_ns =
      static_cast<EventTime>(Flag(argc, argv, "--seconds", 10)) * kNanosPerSecond;
  config.target_records_per_sec = Flag(argc, argv, "--rate", 50'000);
  config.record_loss_rate = Flag(argc, argv, "--loss", 0);
  config.clock_skew_sigma_ns =
      static_cast<EventTime>(Flag(argc, argv, "--skew_ms", 0) * kNanosPerMilli);
  config.free_text_payloads = HasFlag(argc, argv, "--free_text");

  FILE* out = stdout;
  if (const char* path = FlagStr(argc, argv, "--out")) {
    out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
  }

  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  std::string line;
  uint64_t total = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      line.clear();
      AppendWireFormat(r, &line);
      line.push_back('\n');
      std::fwrite(line.data(), 1, line.size(), out);
      ++total;
    }
  }
  if (out != stdout) {
    std::fclose(out);
  }
  std::fprintf(stderr,
               "wrote %llu records (%llu sessions, %llu root spans, %llu spans)\n",
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(gen.stats().sessions),
               static_cast<unsigned long long>(gen.stats().root_spans),
               static_cast<unsigned long long>(gen.stats().spans));
  return 0;
}
