// ts_log_server: serves a wire-format log trace over real TCP — the log-server
// half of the paper's pipeline (§5: archived logs replayed "in their original
// text format over a TCP socket"). Pairs with `ts_sessionize --connect` or any
// SocketIngestSource client.
//
// The trace is either an archived file (--in=path, e.g. from ts_trace_gen) or
// generated in-process with the same knobs as ts_trace_gen. It is partitioned
// round-robin into --streams interleaved streams; each client's hello line
// picks a stream and a resume offset.
//
// Usage:
//   ts_log_server [--port=0] [--host=127.0.0.1] [--streams=1]
//                 [--in=path | --rate=50000 --seconds=10 --seed=42
//                  [--free_text]]
//                 [--buffer_kb=256] [--once] [--quiet]
//
//   --port=0      bind an ephemeral port; the bound port is printed first,
//                 alone on a line, so scripts and tests can capture it
//   --once        exit after every accepted connection has been served to EOS
//   --quiet       suppress the final transport-stats report
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/log/wire_format.h"
#include "src/net/log_server.h"
#include "src/workload/generator.h"

namespace {

ts::LogServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) {
    g_server->Stop();
  }
}

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

// Loads one wire line per element, newline stripped.
bool LoadArchive(const char* path, std::vector<std::string>* lines) {
  FILE* in = std::fopen(path, "r");
  if (in == nullptr) {
    return false;
  }
  char* line = nullptr;
  size_t capacity = 0;
  ssize_t len;
  while ((len = getline(&line, &capacity, in)) >= 0) {
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      --len;
    }
    if (len > 0) {
      lines->emplace_back(line, static_cast<size_t>(len));
    }
  }
  free(line);
  std::fclose(in);
  return true;
}

void GenerateArchive(int argc, char** argv, std::vector<std::string>* lines) {
  ts::GeneratorConfig config;
  config.seed = static_cast<uint64_t>(Flag(argc, argv, "--seed", 42));
  config.duration_ns = static_cast<ts::EventTime>(
      Flag(argc, argv, "--seconds", 10) * ts::kNanosPerSecond);
  config.target_records_per_sec = Flag(argc, argv, "--rate", 50'000);
  config.free_text_payloads = HasFlag(argc, argv, "--free_text");
  ts::TraceGenerator gen(config);
  ts::Epoch epoch = 0;
  std::vector<ts::LogRecord> records;
  while (gen.NextEpoch(&epoch, &records)) {
    for (const auto& r : records) {
      lines->push_back(ts::ToWireFormat(r));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  auto lines = std::make_shared<std::vector<std::string>>();
  if (const char* path = FlagStr(argc, argv, "--in")) {
    if (!LoadArchive(path, lines.get())) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
  } else {
    GenerateArchive(argc, argv, lines.get());
  }

  LogServerOptions options;
  if (const char* host = FlagStr(argc, argv, "--host")) {
    options.host = host;
  }
  options.port = static_cast<uint16_t>(Flag(argc, argv, "--port", 0));
  options.num_streams = static_cast<size_t>(Flag(argc, argv, "--streams", 1));
  options.max_conn_buffer_bytes =
      static_cast<size_t>(Flag(argc, argv, "--buffer_kb", 256)) << 10;
  options.exit_after_serving = HasFlag(argc, argv, "--once");

  LogServer server(options, lines);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot listen on %s:%u\n", options.host.c_str(),
                 options.port);
    return 1;
  }
  // The bound port, first and alone on a line: `--port=0` callers parse this.
  std::printf("%u\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr, "serving %zu records as %zu stream(s) on %s:%u\n",
               lines->size(), options.num_streams, options.host.c_str(),
               server.port());

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server.Run();

  if (!HasFlag(argc, argv, "--quiet")) {
    const auto stats = server.stats().Snapshot();
    std::fprintf(stderr, "transport: %s\n", stats.Format().c_str());
    std::fprintf(stderr, "connections completed: %llu\n",
                 static_cast<unsigned long long>(server.connections_completed()));
  }
  return 0;
}
