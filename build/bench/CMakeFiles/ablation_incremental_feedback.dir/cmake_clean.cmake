file(REMOVE_RECURSE
  "CMakeFiles/ablation_incremental_feedback.dir/ablation_incremental_feedback.cc.o"
  "CMakeFiles/ablation_incremental_feedback.dir/ablation_incremental_feedback.cc.o.d"
  "ablation_incremental_feedback"
  "ablation_incremental_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incremental_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
