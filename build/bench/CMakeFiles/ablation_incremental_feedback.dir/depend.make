# Empty dependencies file for ablation_incremental_feedback.
# This may be replaced when dependencies are built.
