
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_latency_timeline.cc" "bench/CMakeFiles/fig7_latency_timeline.dir/fig7_latency_timeline.cc.o" "gcc" "bench/CMakeFiles/fig7_latency_timeline.dir/fig7_latency_timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/ts_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/ts_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/ts_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/timely/CMakeFiles/ts_timely.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/ts_log.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
