file(REMOVE_RECURSE
  "CMakeFiles/fig7_latency_timeline.dir/fig7_latency_timeline.cc.o"
  "CMakeFiles/fig7_latency_timeline.dir/fig7_latency_timeline.cc.o.d"
  "fig7_latency_timeline"
  "fig7_latency_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_latency_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
