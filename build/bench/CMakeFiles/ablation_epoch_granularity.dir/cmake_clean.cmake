file(REMOVE_RECURSE
  "CMakeFiles/ablation_epoch_granularity.dir/ablation_epoch_granularity.cc.o"
  "CMakeFiles/ablation_epoch_granularity.dir/ablation_epoch_granularity.cc.o.d"
  "ablation_epoch_granularity"
  "ablation_epoch_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epoch_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
