# Empty dependencies file for ablation_epoch_granularity.
# This may be replaced when dependencies are built.
