# Empty compiler generated dependencies file for fig5_sessionization_scaling.
# This may be replaced when dependencies are built.
