file(REMOVE_RECURSE
  "CMakeFiles/fig4_service_invocations.dir/fig4_service_invocations.cc.o"
  "CMakeFiles/fig4_service_invocations.dir/fig4_service_invocations.cc.o.d"
  "fig4_service_invocations"
  "fig4_service_invocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_service_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
