# Empty dependencies file for fig4_service_invocations.
# This may be replaced when dependencies are built.
