# Empty compiler generated dependencies file for table1_trace_characteristics.
# This may be replaced when dependencies are built.
