file(REMOVE_RECURSE
  "CMakeFiles/table1_trace_characteristics.dir/table1_trace_characteristics.cc.o"
  "CMakeFiles/table1_trace_characteristics.dir/table1_trace_characteristics.cc.o.d"
  "table1_trace_characteristics"
  "table1_trace_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trace_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
