file(REMOVE_RECURSE
  "CMakeFiles/fig6_baseline_comparison.dir/fig6_baseline_comparison.cc.o"
  "CMakeFiles/fig6_baseline_comparison.dir/fig6_baseline_comparison.cc.o.d"
  "fig6_baseline_comparison"
  "fig6_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
