file(REMOVE_RECURSE
  "CMakeFiles/fig9_analytics_latency.dir/fig9_analytics_latency.cc.o"
  "CMakeFiles/fig9_analytics_latency.dir/fig9_analytics_latency.cc.o.d"
  "fig9_analytics_latency"
  "fig9_analytics_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_analytics_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
