# Empty dependencies file for fig9_analytics_latency.
# This may be replaced when dependencies are built.
