file(REMOVE_RECURSE
  "CMakeFiles/timely_progress_test.dir/timely_progress_test.cc.o"
  "CMakeFiles/timely_progress_test.dir/timely_progress_test.cc.o.d"
  "timely_progress_test"
  "timely_progress_test.pdb"
  "timely_progress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_progress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
