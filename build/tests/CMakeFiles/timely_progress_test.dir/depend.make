# Empty dependencies file for timely_progress_test.
# This may be replaced when dependencies are built.
