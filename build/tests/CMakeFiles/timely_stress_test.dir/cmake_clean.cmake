file(REMOVE_RECURSE
  "CMakeFiles/timely_stress_test.dir/timely_stress_test.cc.o"
  "CMakeFiles/timely_stress_test.dir/timely_stress_test.cc.o.d"
  "timely_stress_test"
  "timely_stress_test.pdb"
  "timely_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
