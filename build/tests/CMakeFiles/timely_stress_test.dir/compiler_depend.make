# Empty compiler generated dependencies file for timely_stress_test.
# This may be replaced when dependencies are built.
