# Empty dependencies file for wire_format_property_test.
# This may be replaced when dependencies are built.
