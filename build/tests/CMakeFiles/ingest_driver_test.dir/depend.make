# Empty dependencies file for ingest_driver_test.
# This may be replaced when dependencies are built.
