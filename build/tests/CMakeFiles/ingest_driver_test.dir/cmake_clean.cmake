file(REMOVE_RECURSE
  "CMakeFiles/ingest_driver_test.dir/ingest_driver_test.cc.o"
  "CMakeFiles/ingest_driver_test.dir/ingest_driver_test.cc.o.d"
  "ingest_driver_test"
  "ingest_driver_test.pdb"
  "ingest_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
