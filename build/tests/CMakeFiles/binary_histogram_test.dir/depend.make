# Empty dependencies file for binary_histogram_test.
# This may be replaced when dependencies are built.
