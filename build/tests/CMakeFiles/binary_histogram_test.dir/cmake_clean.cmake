file(REMOVE_RECURSE
  "CMakeFiles/binary_histogram_test.dir/binary_histogram_test.cc.o"
  "CMakeFiles/binary_histogram_test.dir/binary_histogram_test.cc.o.d"
  "binary_histogram_test"
  "binary_histogram_test.pdb"
  "binary_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
