# Empty compiler generated dependencies file for timely_edge_test.
# This may be replaced when dependencies are built.
