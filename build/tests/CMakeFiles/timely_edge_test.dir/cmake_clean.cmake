file(REMOVE_RECURSE
  "CMakeFiles/timely_edge_test.dir/timely_edge_test.cc.o"
  "CMakeFiles/timely_edge_test.dir/timely_edge_test.cc.o.d"
  "timely_edge_test"
  "timely_edge_test.pdb"
  "timely_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
