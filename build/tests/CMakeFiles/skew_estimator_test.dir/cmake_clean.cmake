file(REMOVE_RECURSE
  "CMakeFiles/skew_estimator_test.dir/skew_estimator_test.cc.o"
  "CMakeFiles/skew_estimator_test.dir/skew_estimator_test.cc.o.d"
  "skew_estimator_test"
  "skew_estimator_test.pdb"
  "skew_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
