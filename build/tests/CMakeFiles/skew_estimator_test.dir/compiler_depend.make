# Empty compiler generated dependencies file for skew_estimator_test.
# This may be replaced when dependencies are built.
