file(REMOVE_RECURSE
  "CMakeFiles/incremental_sessionize_test.dir/incremental_sessionize_test.cc.o"
  "CMakeFiles/incremental_sessionize_test.dir/incremental_sessionize_test.cc.o.d"
  "incremental_sessionize_test"
  "incremental_sessionize_test.pdb"
  "incremental_sessionize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_sessionize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
