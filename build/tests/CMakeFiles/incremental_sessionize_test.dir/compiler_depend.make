# Empty compiler generated dependencies file for incremental_sessionize_test.
# This may be replaced when dependencies are built.
