file(REMOVE_RECURSE
  "CMakeFiles/trace_tree_test.dir/trace_tree_test.cc.o"
  "CMakeFiles/trace_tree_test.dir/trace_tree_test.cc.o.d"
  "trace_tree_test"
  "trace_tree_test.pdb"
  "trace_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
