# Empty compiler generated dependencies file for trace_tree_test.
# This may be replaced when dependencies are built.
