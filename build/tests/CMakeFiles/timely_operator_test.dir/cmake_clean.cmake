file(REMOVE_RECURSE
  "CMakeFiles/timely_operator_test.dir/timely_operator_test.cc.o"
  "CMakeFiles/timely_operator_test.dir/timely_operator_test.cc.o.d"
  "timely_operator_test"
  "timely_operator_test.pdb"
  "timely_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
