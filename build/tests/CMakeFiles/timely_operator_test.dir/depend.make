# Empty dependencies file for timely_operator_test.
# This may be replaced when dependencies are built.
