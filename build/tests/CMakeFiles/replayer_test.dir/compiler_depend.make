# Empty compiler generated dependencies file for replayer_test.
# This may be replaced when dependencies are built.
