# Empty dependencies file for timely_smoke_test.
# This may be replaced when dependencies are built.
