file(REMOVE_RECURSE
  "CMakeFiles/timely_smoke_test.dir/timely_smoke_test.cc.o"
  "CMakeFiles/timely_smoke_test.dir/timely_smoke_test.cc.o.d"
  "timely_smoke_test"
  "timely_smoke_test.pdb"
  "timely_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timely_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
