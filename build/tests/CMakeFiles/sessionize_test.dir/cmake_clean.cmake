file(REMOVE_RECURSE
  "CMakeFiles/sessionize_test.dir/sessionize_test.cc.o"
  "CMakeFiles/sessionize_test.dir/sessionize_test.cc.o.d"
  "sessionize_test"
  "sessionize_test.pdb"
  "sessionize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessionize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
