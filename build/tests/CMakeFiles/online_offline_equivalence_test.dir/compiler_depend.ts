# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for online_offline_equivalence_test.
