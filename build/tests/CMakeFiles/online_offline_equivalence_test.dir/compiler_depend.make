# Empty compiler generated dependencies file for online_offline_equivalence_test.
# This may be replaced when dependencies are built.
