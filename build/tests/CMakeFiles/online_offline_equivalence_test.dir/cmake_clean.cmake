file(REMOVE_RECURSE
  "CMakeFiles/online_offline_equivalence_test.dir/online_offline_equivalence_test.cc.o"
  "CMakeFiles/online_offline_equivalence_test.dir/online_offline_equivalence_test.cc.o.d"
  "online_offline_equivalence_test"
  "online_offline_equivalence_test.pdb"
  "online_offline_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_offline_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
