# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/timely_progress_test[1]_include.cmake")
include("/root/repo/build/tests/timely_operator_test[1]_include.cmake")
include("/root/repo/build/tests/timely_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/reorder_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/trace_tree_test[1]_include.cmake")
include("/root/repo/build/tests/sessionize_test[1]_include.cmake")
include("/root/repo/build/tests/topk_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/replayer_test[1]_include.cmake")
include("/root/repo/build/tests/ingest_driver_test[1]_include.cmake")
include("/root/repo/build/tests/offline_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/timely_stress_test[1]_include.cmake")
include("/root/repo/build/tests/skew_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_sessionize_test[1]_include.cmake")
include("/root/repo/build/tests/critical_path_test[1]_include.cmake")
include("/root/repo/build/tests/session_store_test[1]_include.cmake")
include("/root/repo/build/tests/wire_format_property_test[1]_include.cmake")
include("/root/repo/build/tests/timely_edge_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_graph_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_engine_test[1]_include.cmake")
include("/root/repo/build/tests/binary_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/online_offline_equivalence_test[1]_include.cmake")
