file(REMOVE_RECURSE
  "libts_offline.a"
)
