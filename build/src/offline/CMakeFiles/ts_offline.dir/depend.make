# Empty dependencies file for ts_offline.
# This may be replaced when dependencies are built.
