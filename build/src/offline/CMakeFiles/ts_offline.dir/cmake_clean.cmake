file(REMOVE_RECURSE
  "CMakeFiles/ts_offline.dir/offline_sessionizer.cc.o"
  "CMakeFiles/ts_offline.dir/offline_sessionizer.cc.o.d"
  "libts_offline.a"
  "libts_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
