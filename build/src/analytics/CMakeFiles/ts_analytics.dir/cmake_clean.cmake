file(REMOVE_RECURSE
  "CMakeFiles/ts_analytics.dir/critical_path.cc.o"
  "CMakeFiles/ts_analytics.dir/critical_path.cc.o.d"
  "CMakeFiles/ts_analytics.dir/dependency_graph.cc.o"
  "CMakeFiles/ts_analytics.dir/dependency_graph.cc.o.d"
  "CMakeFiles/ts_analytics.dir/session_store.cc.o"
  "CMakeFiles/ts_analytics.dir/session_store.cc.o.d"
  "libts_analytics.a"
  "libts_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
