file(REMOVE_RECURSE
  "libts_analytics.a"
)
