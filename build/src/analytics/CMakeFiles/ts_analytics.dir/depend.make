# Empty dependencies file for ts_analytics.
# This may be replaced when dependencies are built.
