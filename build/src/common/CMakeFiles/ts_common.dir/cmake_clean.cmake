file(REMOVE_RECURSE
  "CMakeFiles/ts_common.dir/mem_probe.cc.o"
  "CMakeFiles/ts_common.dir/mem_probe.cc.o.d"
  "CMakeFiles/ts_common.dir/rng.cc.o"
  "CMakeFiles/ts_common.dir/rng.cc.o.d"
  "CMakeFiles/ts_common.dir/siphash.cc.o"
  "CMakeFiles/ts_common.dir/siphash.cc.o.d"
  "CMakeFiles/ts_common.dir/stats.cc.o"
  "CMakeFiles/ts_common.dir/stats.cc.o.d"
  "libts_common.a"
  "libts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
