
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/record.cc" "src/log/CMakeFiles/ts_log.dir/record.cc.o" "gcc" "src/log/CMakeFiles/ts_log.dir/record.cc.o.d"
  "/root/repo/src/log/txn_id.cc" "src/log/CMakeFiles/ts_log.dir/txn_id.cc.o" "gcc" "src/log/CMakeFiles/ts_log.dir/txn_id.cc.o.d"
  "/root/repo/src/log/wire_format.cc" "src/log/CMakeFiles/ts_log.dir/wire_format.cc.o" "gcc" "src/log/CMakeFiles/ts_log.dir/wire_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
