file(REMOVE_RECURSE
  "CMakeFiles/ts_log.dir/record.cc.o"
  "CMakeFiles/ts_log.dir/record.cc.o.d"
  "CMakeFiles/ts_log.dir/txn_id.cc.o"
  "CMakeFiles/ts_log.dir/txn_id.cc.o.d"
  "CMakeFiles/ts_log.dir/wire_format.cc.o"
  "CMakeFiles/ts_log.dir/wire_format.cc.o.d"
  "libts_log.a"
  "libts_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
