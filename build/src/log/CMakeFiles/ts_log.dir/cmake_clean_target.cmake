file(REMOVE_RECURSE
  "libts_log.a"
)
