# Empty dependencies file for ts_log.
# This may be replaced when dependencies are built.
