
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timely/computation.cc" "src/timely/CMakeFiles/ts_timely.dir/computation.cc.o" "gcc" "src/timely/CMakeFiles/ts_timely.dir/computation.cc.o.d"
  "/root/repo/src/timely/progress.cc" "src/timely/CMakeFiles/ts_timely.dir/progress.cc.o" "gcc" "src/timely/CMakeFiles/ts_timely.dir/progress.cc.o.d"
  "/root/repo/src/timely/topology.cc" "src/timely/CMakeFiles/ts_timely.dir/topology.cc.o" "gcc" "src/timely/CMakeFiles/ts_timely.dir/topology.cc.o.d"
  "/root/repo/src/timely/worker.cc" "src/timely/CMakeFiles/ts_timely.dir/worker.cc.o" "gcc" "src/timely/CMakeFiles/ts_timely.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
