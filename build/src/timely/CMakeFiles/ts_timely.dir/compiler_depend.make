# Empty compiler generated dependencies file for ts_timely.
# This may be replaced when dependencies are built.
