file(REMOVE_RECURSE
  "CMakeFiles/ts_timely.dir/computation.cc.o"
  "CMakeFiles/ts_timely.dir/computation.cc.o.d"
  "CMakeFiles/ts_timely.dir/progress.cc.o"
  "CMakeFiles/ts_timely.dir/progress.cc.o.d"
  "CMakeFiles/ts_timely.dir/topology.cc.o"
  "CMakeFiles/ts_timely.dir/topology.cc.o.d"
  "CMakeFiles/ts_timely.dir/worker.cc.o"
  "CMakeFiles/ts_timely.dir/worker.cc.o.d"
  "libts_timely.a"
  "libts_timely.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_timely.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
