file(REMOVE_RECURSE
  "libts_timely.a"
)
