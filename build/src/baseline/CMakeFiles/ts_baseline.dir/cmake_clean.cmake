file(REMOVE_RECURSE
  "CMakeFiles/ts_baseline.dir/engine.cc.o"
  "CMakeFiles/ts_baseline.dir/engine.cc.o.d"
  "CMakeFiles/ts_baseline.dir/row.cc.o"
  "CMakeFiles/ts_baseline.dir/row.cc.o.d"
  "CMakeFiles/ts_baseline.dir/session_window_job.cc.o"
  "CMakeFiles/ts_baseline.dir/session_window_job.cc.o.d"
  "CMakeFiles/ts_baseline.dir/window.cc.o"
  "CMakeFiles/ts_baseline.dir/window.cc.o.d"
  "libts_baseline.a"
  "libts_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
