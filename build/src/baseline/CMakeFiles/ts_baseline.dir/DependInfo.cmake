
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/engine.cc" "src/baseline/CMakeFiles/ts_baseline.dir/engine.cc.o" "gcc" "src/baseline/CMakeFiles/ts_baseline.dir/engine.cc.o.d"
  "/root/repo/src/baseline/row.cc" "src/baseline/CMakeFiles/ts_baseline.dir/row.cc.o" "gcc" "src/baseline/CMakeFiles/ts_baseline.dir/row.cc.o.d"
  "/root/repo/src/baseline/session_window_job.cc" "src/baseline/CMakeFiles/ts_baseline.dir/session_window_job.cc.o" "gcc" "src/baseline/CMakeFiles/ts_baseline.dir/session_window_job.cc.o.d"
  "/root/repo/src/baseline/window.cc" "src/baseline/CMakeFiles/ts_baseline.dir/window.cc.o" "gcc" "src/baseline/CMakeFiles/ts_baseline.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/log/CMakeFiles/ts_log.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
