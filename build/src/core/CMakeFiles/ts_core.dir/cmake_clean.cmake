file(REMOVE_RECURSE
  "CMakeFiles/ts_core.dir/reorder_buffer.cc.o"
  "CMakeFiles/ts_core.dir/reorder_buffer.cc.o.d"
  "CMakeFiles/ts_core.dir/skew_estimator.cc.o"
  "CMakeFiles/ts_core.dir/skew_estimator.cc.o.d"
  "CMakeFiles/ts_core.dir/trace_tree.cc.o"
  "CMakeFiles/ts_core.dir/trace_tree.cc.o.d"
  "libts_core.a"
  "libts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
