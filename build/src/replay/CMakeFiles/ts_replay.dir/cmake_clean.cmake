file(REMOVE_RECURSE
  "CMakeFiles/ts_replay.dir/ingest_driver.cc.o"
  "CMakeFiles/ts_replay.dir/ingest_driver.cc.o.d"
  "CMakeFiles/ts_replay.dir/replayer.cc.o"
  "CMakeFiles/ts_replay.dir/replayer.cc.o.d"
  "libts_replay.a"
  "libts_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
