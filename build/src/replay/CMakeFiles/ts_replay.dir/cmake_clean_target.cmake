file(REMOVE_RECURSE
  "libts_replay.a"
)
