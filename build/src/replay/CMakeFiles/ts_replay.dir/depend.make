# Empty dependencies file for ts_replay.
# This may be replaced when dependencies are built.
