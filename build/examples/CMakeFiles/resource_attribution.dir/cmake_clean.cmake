file(REMOVE_RECURSE
  "CMakeFiles/resource_attribution.dir/resource_attribution.cpp.o"
  "CMakeFiles/resource_attribution.dir/resource_attribution.cpp.o.d"
  "resource_attribution"
  "resource_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
