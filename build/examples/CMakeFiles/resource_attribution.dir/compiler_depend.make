# Empty compiler generated dependencies file for resource_attribution.
# This may be replaced when dependencies are built.
