# Empty dependencies file for incident_diagnosis.
# This may be replaced when dependencies are built.
