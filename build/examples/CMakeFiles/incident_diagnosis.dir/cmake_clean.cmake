file(REMOVE_RECURSE
  "CMakeFiles/incident_diagnosis.dir/incident_diagnosis.cpp.o"
  "CMakeFiles/incident_diagnosis.dir/incident_diagnosis.cpp.o.d"
  "incident_diagnosis"
  "incident_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
