# Empty dependencies file for session_query.
# This may be replaced when dependencies are built.
