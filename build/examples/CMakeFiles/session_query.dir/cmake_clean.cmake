file(REMOVE_RECURSE
  "CMakeFiles/session_query.dir/session_query.cpp.o"
  "CMakeFiles/session_query.dir/session_query.cpp.o.d"
  "session_query"
  "session_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
