file(REMOVE_RECURSE
  "CMakeFiles/ts_trace_gen.dir/ts_trace_gen.cc.o"
  "CMakeFiles/ts_trace_gen.dir/ts_trace_gen.cc.o.d"
  "ts_trace_gen"
  "ts_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
