# Empty compiler generated dependencies file for ts_trace_gen.
# This may be replaced when dependencies are built.
