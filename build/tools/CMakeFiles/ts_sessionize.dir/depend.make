# Empty dependencies file for ts_sessionize.
# This may be replaced when dependencies are built.
