file(REMOVE_RECURSE
  "CMakeFiles/ts_sessionize.dir/ts_sessionize.cc.o"
  "CMakeFiles/ts_sessionize.dir/ts_sessionize.cc.o.d"
  "ts_sessionize"
  "ts_sessionize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_sessionize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
