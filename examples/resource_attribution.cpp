// Resource attribution: "relate all pieces of work done in individual
// components back to their originating request or tenant" (§2.1).
//
// Attributes per-span busy time and invocation counts to services using the
// reconstructed trace trees, online, and prints the per-service account at the
// end — the foundation for chargeback, capacity planning, and placement
// decisions (e.g. the replica-placement use the paper suggests for hot
// communicating pairs).
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

namespace {

struct ServiceAccount {
  uint64_t invocations = 0;
  int64_t busy_ns = 0;       // Sum of span wall time attributed to the service.
  uint64_t records = 0;      // Log records emitted (logging overhead proxy).
  uint64_t as_root = 0;      // Times the service fronted a request.
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const double rate = argc > 1 ? std::atof(argv[1]) : 20'000;

  GeneratorConfig gen;
  gen.seed = 7;
  gen.duration_ns = 8 * kNanosPerSecond;
  gen.target_records_per_sec = rate;

  ReplayerConfig replay;
  replay.num_servers = 42;
  replay.num_processes = 1263;
  replay.num_workers = 2;
  auto replayer = std::make_shared<Replayer>(replay, gen);

  std::mutex mu;
  std::map<uint32_t, ServiceAccount> accounts;

  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, records] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = 5;
    auto [sessions, metrics] = Sessionize(scope, records, sess);
    auto trees = ConstructTraceTrees(scope, sessions);

    scope.Sink<TraceTree>(trees, "attribute", [&](Epoch, std::vector<TraceTree>& out) {
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& tree : out) {
        for (const auto& node : tree.nodes()) {
          if (node.inferred) {
            continue;
          }
          ServiceAccount& account = accounts[node.service];
          ++account.invocations;
          account.busy_ns += node.end - node.start;
          account.records += node.num_records;
          if (node.parent == -1) {
            ++account.as_root;
          }
        }
      }
    });

    auto probe = scope.Probe(
        scope.Map<TraceTree, Unit>(trees, "tail", [](TraceTree) { return Unit{}; }),
        "probe");
    IngestDriver::Options ingest;
    ingest.slack_ns = 2 * kNanosPerSecond;
    auto driver = std::make_shared<IngestDriver>(replayer.get(),
                                                 scope.worker_index(), input, ingest);
    driver->SetGate(probe);
    scope.AddDriver([driver] { return driver->Step(); });
  });

  // Rank by attributed busy time.
  std::vector<std::pair<uint32_t, ServiceAccount>> ranked(accounts.begin(),
                                                          accounts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.busy_ns > b.second.busy_ns;
  });

  std::printf("=== Per-service resource attribution (top 15 by busy time) ===\n");
  std::printf("%-10s %12s %14s %12s %10s\n", "service", "invocations",
              "busy time", "log records", "as root");
  int64_t total_busy = 0;
  for (const auto& [svc, account] : ranked) {
    total_busy += account.busy_ns;
  }
  for (size_t i = 0; i < std::min<size_t>(15, ranked.size()); ++i) {
    const auto& [svc, account] = ranked[i];
    std::printf("svc-%-6u %12llu %14s %12llu %10llu\n", svc,
                static_cast<unsigned long long>(account.invocations),
                FormatNanos(static_cast<double>(account.busy_ns)).c_str(),
                static_cast<unsigned long long>(account.records),
                static_cast<unsigned long long>(account.as_root));
  }
  std::printf("\n%zu services active; total attributed busy time %s.\n",
              ranked.size(), FormatNanos(static_cast<double>(total_busy)).c_str());
  std::printf("Attribution follows the hierarchical transaction IDs, so work "
              "is charged to the\nrequest that caused it even across "
              "service boundaries (§2.1).\n");
  return 0;
}
