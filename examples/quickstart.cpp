// Quickstart: the smallest complete TS program.
//
// Builds a two-worker dataflow that sessionizes a hand-written log stream and
// prints the reconstructed sessions and trace trees. Demonstrates the public
// API end to end: Computation -> Scope -> NewInput -> Sessionize ->
// ConstructTraceTrees -> Sink.
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/timely/timely.h"

namespace {

ts::LogRecord Make(ts::EventTime ms, const char* session, const char* txn,
                   uint32_t service, ts::EventKind kind) {
  ts::LogRecord r;
  r.time = ms * ts::kNanosPerMilli;
  r.session_id = session;
  r.txn_id = *ts::TxnId::Parse(txn);
  r.service = service;
  r.host = service % 4;
  r.kind = kind;
  return r;
}

void PrintTree(const ts::TraceTree& tree) {
  std::printf("  trace tree (session %s, root txn %s, %zu spans, %u records, "
              "%.2f ms)\n",
              tree.session_id().c_str(), tree.root().id.ToString().c_str(),
              tree.num_spans(), tree.total_records(),
              static_cast<double>(tree.Duration()) / 1e6);
  // Depth-first ASCII rendering.
  struct Item {
    int node;
    int depth;
  };
  std::vector<Item> stack = {{0, 0}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const auto& n = tree.nodes()[item.node];
    std::printf("    %*s%s", item.depth * 2, "", n.id.ToString().c_str());
    if (n.inferred) {
      std::printf("  [inferred: records lost]");
    } else {
      std::printf("  svc-%u  [%0.2f..%0.2f ms]", n.service,
                  static_cast<double>(n.start) / 1e6,
                  static_cast<double>(n.end) / 1e6);
    }
    std::printf("\n");
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  std::printf("    signature: %s\n", tree.SignatureKey().c_str());
}

}  // namespace

int main() {
  using namespace ts;

  // A tiny trace: two user sessions; session "alice" makes a nested request
  // (frontend -> auth, inventory -> db), session "bob" a flat one. One of
  // alice's records ("1-2" itself) is missing — TS infers the span.
  const std::vector<LogRecord> log = {
      Make(0, "alice", "1", 1, EventKind::kSpanStart),
      Make(10, "alice", "1-1", 2, EventKind::kSpanStart),
      Make(25, "alice", "1-1", 2, EventKind::kSpanEnd),
      Make(30, "alice", "1-2-1", 4, EventKind::kSpanStart),  // Parent 1-2 lost!
      Make(55, "alice", "1-2-1", 4, EventKind::kSpanEnd),
      Make(70, "alice", "1", 1, EventKind::kSpanEnd),
      Make(100, "bob", "1", 1, EventKind::kSpanStart),
      Make(130, "bob", "1", 1, EventKind::kSpanEnd),
      // Bob comes back 8 seconds later: with a 5s inactivity window this is a
      // *new* session fragment (online sessionization, §2.2).
      Make(8'200, "bob", "2", 1, EventKind::kSpanStart),
      Make(8'240, "bob", "2", 1, EventKind::kSpanEnd),
  };

  std::mutex print_mu;
  Computation::Options options;
  options.workers = 2;  // Sessions are partitioned by SipHash(session id).
  Computation::Run(options, [&](Scope& scope) {
    auto [input, records] = scope.NewInput<LogRecord>("logs");

    SessionizeOptions sess;
    sess.inactivity_epochs = 5;  // Close after 5 quiet seconds.
    sess.track_fragments = true;
    auto [sessions, metrics] = Sessionize(scope, records, sess);
    auto trees = ConstructTraceTrees(scope, sessions);

    scope.Sink<TraceTree>(trees, "print", [&](Epoch epoch, std::vector<TraceTree>& out) {
      std::lock_guard<std::mutex> lock(print_mu);
      for (const auto& tree : out) {
        std::printf("[epoch %llu closed]\n", static_cast<unsigned long long>(epoch));
        PrintTree(tree);
      }
    });

    // Drive the input: worker 0 feeds the log epoch by epoch (1s of event
    // time each); worker 1 participates in the exchange only.
    auto in = std::make_shared<InputSession<LogRecord>>(input);
    if (scope.worker_index() == 0) {
      auto cursor = std::make_shared<size_t>(0);
      scope.AddDriver([in, cursor, &log]() -> DriverStatus {
        if (*cursor == log.size()) {
          in->Close();
          return DriverStatus::kFinished;
        }
        const Epoch epoch =
            static_cast<Epoch>(log[*cursor].time / kNanosPerSecond);
        if (epoch > in->current_epoch()) {
          in->AdvanceTo(epoch);
        }
        while (*cursor < log.size() &&
               static_cast<Epoch>(log[*cursor].time / kNanosPerSecond) == epoch) {
          in->Give(log[(*cursor)++]);
        }
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([in]() -> DriverStatus {
        in->Close();
        return DriverStatus::kFinished;
      });
    }
  });

  std::printf("\nDone. Note bob's two fragments (online horizon) and alice's "
              "inferred span 1-2.\n");
  return 0;
}
