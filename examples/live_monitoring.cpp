// Live monitoring: the §5.2 dashboard — per-epoch top-10 trace-tree
// signatures (structure clustering) and top-10 communicating service pairs,
// computed online on top of sessionization over the simulated log pipeline.
//
// This is the "show_each_epoch()" composition from the paper's §4.3 listing.
#include <cstdio>
#include <memory>
#include <mutex>

#include "src/analytics/topk.h"
#include "src/common/siphash.h"
#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

int main(int argc, char** argv) {
  using namespace ts;
  const double rate = argc > 1 ? std::atof(argv[1]) : 20'000;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 10;

  GeneratorConfig gen;
  gen.seed = 42;
  gen.duration_ns = static_cast<EventTime>(seconds) * kNanosPerSecond;
  gen.target_records_per_sec = rate;

  ReplayerConfig replay;
  replay.num_servers = 42;
  replay.num_processes = 1263;
  replay.num_workers = 2;
  replay.as_text = true;
  auto replayer = std::make_shared<Replayer>(replay, gen);

  std::printf("Live monitoring: %d s of logs at %.0f records/s, 2 workers\n\n",
              seconds, rate);

  std::mutex print_mu;
  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, records] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = 5;
    auto [sessions, metrics] = Sessionize(scope, records, sess);
    auto trees = ConstructTraceTrees(scope, sessions);

    // Task 1: classify trace trees by structure (top-10 signatures).
    auto signatures = scope.Map<TraceTree, std::string>(
        trees, "signature", [](TraceTree t) { return t.SignatureKey(); });
    auto sig_topk = TopKPerEpoch<std::string, std::string>(
        scope, signatures, 10, [](const std::string& s) { return s; },
        [](const std::string& s) { return SipHash24(s); }, "sig");

    // Task 2: identify pairs of communicating services (top-10 pairs).
    auto pairs = scope.FlatMap<TraceTree, uint64_t>(
        trees, "pairs", [](TraceTree t, std::vector<uint64_t>& out) {
          for (const auto& [a, b] : t.ServiceCallPairs()) {
            out.push_back((static_cast<uint64_t>(a) << 32) | b);
          }
        });
    auto pair_topk = TopKPerEpoch<uint64_t, uint64_t>(
        scope, pairs, 10, [](const uint64_t& p) { return p; },
        [](const uint64_t& p) { return SipHash24(p); }, "pair");

    scope.Sink<TopKResult<std::string>>(
        sig_topk, "show_sigs",
        [&print_mu](Epoch, std::vector<TopKResult<std::string>>& results) {
          std::lock_guard<std::mutex> lock(print_mu);
          for (const auto& r : results) {
            std::printf("[epoch %llu] top tree structures: ",
                        static_cast<unsigned long long>(r.epoch));
            for (size_t i = 0; i < std::min<size_t>(5, r.entries.size()); ++i) {
              std::printf("%s(x%llu) ", r.entries[i].first.c_str(),
                          static_cast<unsigned long long>(r.entries[i].second));
            }
            std::printf("...\n");
          }
        });
    scope.Sink<TopKResult<uint64_t>>(
        pair_topk, "show_pairs",
        [&print_mu](Epoch, std::vector<TopKResult<uint64_t>>& results) {
          std::lock_guard<std::mutex> lock(print_mu);
          for (const auto& r : results) {
            std::printf("[epoch %llu] hot service pairs:   ",
                        static_cast<unsigned long long>(r.epoch));
            for (size_t i = 0; i < std::min<size_t>(5, r.entries.size()); ++i) {
              const uint32_t parent = static_cast<uint32_t>(r.entries[i].first >> 32);
              const uint32_t child = static_cast<uint32_t>(r.entries[i].first);
              std::printf("svc%u->svc%u(x%llu) ", parent, child,
                          static_cast<unsigned long long>(r.entries[i].second));
            }
            std::printf("...\n");
          }
        });

    auto probe = scope.Probe(
        scope.Map<TopKResult<uint64_t>, Unit>(pair_topk, "tail",
                                              [](TopKResult<uint64_t>) {
                                                return Unit{};
                                              }),
        "probe");
    IngestDriver::Options ingest;
    ingest.slack_ns = 2 * kNanosPerSecond;
    auto driver = std::make_shared<IngestDriver>(replayer.get(),
                                                 scope.worker_index(), input, ingest);
    driver->SetGate(probe);
    scope.AddDriver([driver] { return driver->Step(); });
  });

  std::printf("\nDashboards updated once per epoch, in real time (paper Fig. 9).\n");
  return 0;
}
