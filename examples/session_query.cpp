// Session query: streams sessionization output into the bounded SessionStore
// (the substrate behind Figure 2's "UI: Query interface") and then answers the
// kinds of interactive questions an operator asks during diagnosis:
//
//   * "show me this session"            -> GetById / GetAllFragments
//   * "recent sessions touching svc X"  -> QueryByService
//   * "what ran between t1 and t2"      -> QueryByTimeRange
//   * "why was this request slow"       -> critical path over its trace trees
//
// Each query then runs a second time over the ts_query wire protocol — the
// same store served by a QueryServer on loopback, queried through
// QueryClient — and the example checks the wire answer is byte-equivalent
// to the in-process one. This is the embedded version of the three-process
// pipeline (ts_log_server | ts_sessionize --serve | ts_query).
#include <cstdio>
#include <memory>
#include <thread>

#include "src/analytics/critical_path.h"
#include "src/analytics/session_store.h"
#include "src/core/sessionize.h"
#include "src/core/trace_tree.h"
#include "src/query/query_client.h"
#include "src/query/query_protocol.h"
#include "src/query/query_server.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

namespace {

// True iff the sessions a wire query returned re-encode to the same bytes as
// the sessions the in-process call returned.
bool WireMatches(const std::vector<ts::Session>& local,
                 const ts::QueryResponse& response) {
  if (!response.ok || response.sessions.size() != local.size()) {
    return false;
  }
  for (size_t i = 0; i < local.size(); ++i) {
    if (ts::EncodeSessionBlock(local[i]) !=
        ts::EncodeSessionBlock(response.sessions[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const double rate = argc > 1 ? std::atof(argv[1]) : 15'000;

  GeneratorConfig gen;
  gen.seed = 21;
  gen.duration_ns = 6 * kNanosPerSecond;
  gen.target_records_per_sec = rate;

  ReplayerConfig replay;
  replay.num_servers = 42;
  replay.num_processes = 1263;
  replay.num_workers = 2;
  auto replayer = std::make_shared<Replayer>(replay, gen);

  SessionStore::Options store_options;
  store_options.max_bytes = 128ull << 20;
  auto store = std::make_shared<SessionStore>(store_options);

  // Ingest + sessionize + store. The store fills while the stream runs; in a
  // deployment, queries run concurrently (the store is thread-safe).
  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, records] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = 5;
    auto [sessions, metrics] = Sessionize(scope, records, sess);
    StoreSessions(scope, sessions, store);
    auto probe = scope.Probe(
        scope.Map<Session, Unit>(sessions, "tail", [](Session) { return Unit{}; }),
        "probe");
    IngestDriver::Options ingest;
    ingest.slack_ns = 2 * kNanosPerSecond;
    auto driver = std::make_shared<IngestDriver>(replayer.get(),
                                                 scope.worker_index(), input, ingest);
    driver->SetGate(probe);
    scope.AddDriver([driver] { return driver->Step(); });
  });

  const auto stats = store.get()->stats();
  std::printf("Store: %zu sessions, %.1f MiB (inserted %llu, evicted %llu)\n\n",
              stats.sessions, static_cast<double>(stats.bytes) / (1 << 20),
              static_cast<unsigned long long>(stats.inserted),
              static_cast<unsigned long long>(stats.evicted));

  // Serve the same store over loopback TCP and query it through the wire
  // client as well — every answer below is checked against the in-process
  // call byte-for-byte.
  QueryServerOptions server_options;
  QueryServer server(server_options, store);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start query server\n");
    return 1;
  }
  std::thread server_thread([&server] { server.Run(); });
  QueryClientOptions client_options;
  client_options.port = server.port();
  QueryClient client(client_options);
  if (!client.Connect()) {
    std::fprintf(stderr, "cannot connect to query server\n");
    return 1;
  }
  std::printf("Query server on 127.0.0.1:%u, wire client connected\n\n",
              server.port());

  // Query 1: time range — the second second of the trace.
  auto in_window =
      store->QueryByTimeRange(1 * kNanosPerSecond, 2 * kNanosPerSecond, 5);
  std::printf("Q1: sessions active in [1s, 2s): %zu shown\n", in_window.size());
  for (const auto& s : in_window) {
    std::printf("    %s  %zu records  [%0.2fs..%0.2fs]\n", s.id.c_str(),
                s.records.size(), static_cast<double>(s.MinTime()) / 1e9,
                static_cast<double>(s.MaxTime()) / 1e9);
  }
  if (in_window.empty()) {
    std::printf("    (none)\n");
  }
  std::printf("    wire RANGE matches in-process: %s\n",
              WireMatches(in_window,
                          client.ByRange(1 * kNanosPerSecond,
                                         2 * kNanosPerSecond, 5))
                  ? "yes"
                  : "NO");

  // Query 2: drill into the largest of those sessions.
  const Session* biggest = nullptr;
  for (const auto& s : in_window) {
    if (biggest == nullptr || s.records.size() > biggest->records.size()) {
      biggest = &s;
    }
  }
  if (biggest != nullptr) {
    auto fetched = store->GetById(biggest->id, biggest->fragment_index);
    std::printf("\nQ2: GetById(%s) -> %s\n", biggest->id.c_str(),
                fetched ? "hit" : "miss");
    if (fetched) {
      std::printf("    wire GET matches in-process: %s\n",
                  WireMatches({*fetched},
                              client.Get(biggest->id, biggest->fragment_index))
                      ? "yes"
                      : "NO");
      auto trees = TraceTree::FromSession(*fetched);
      std::printf("    %zu trace tree(s)\n", trees.size());
      // Query 4 rolled in: why slow? Critical path of the slowest tree.
      const TraceTree* slowest = nullptr;
      for (const auto& t : trees) {
        if (slowest == nullptr || t.Duration() > slowest->Duration()) {
          slowest = &t;
        }
      }
      if (slowest != nullptr && slowest->total_records() >= 2) {
        auto path = ComputeCriticalPath(*slowest);
        std::printf("    slowest tree: %0.2f ms; critical path (%zu spans):\n",
                    static_cast<double>(path.total_ns) / 1e6, path.steps.size());
        for (const auto& step : path.steps) {
          std::printf("      svc-%-6u exclusive %0.2f ms (%.0f%%)\n", step.service,
                      static_cast<double>(step.exclusive_ns) / 1e6,
                      100.0 * static_cast<double>(step.exclusive_ns) /
                          static_cast<double>(std::max<EventTime>(1, path.total_ns)));
        }
      }
    }
    // Query 3: other recent sessions touching the same entry service.
    if (!biggest->records.empty()) {
      const uint32_t svc = biggest->records.front().service;
      auto peers = store->QueryByService(svc, 3);
      std::printf("\nQ3: recent sessions touching svc-%u: %zu\n", svc, peers.size());
      for (const auto& p : peers) {
        std::printf("    %s (%zu records)\n", p.id.c_str(), p.records.size());
      }
      std::printf("    wire SERVICE matches in-process: %s\n",
                  WireMatches(peers, client.ByService(svc, 3)) ? "yes" : "NO");
    }
  }

  // The server also exports store + serving gauges over the wire.
  auto wire_stats = client.Stats();
  std::printf("\nWire STATS: %zu gauges (store_sessions, store_bytes, ...)\n",
              wire_stats.stats.size());

  server.Stop();
  server_thread.join();
  return 0;
}
