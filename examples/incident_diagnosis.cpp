// Incident diagnosis: runs the pipeline against a degraded logging
// infrastructure — record loss, clock skew, and straggling log servers — and
// produces the data-quality report an operator would use (§2.3: incomplete
// logs, clock desynchronization, reordered logs).
//
// Shows how reconstruction degrades gracefully: sessions still close, trees
// are still built, and the damage (inferred spans, implied-missing siblings,
// causality anomalies, dropped stragglers) is quantified rather than silently
// wrong.
#include <atomic>
#include <cstdio>
#include <memory>

#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

int main(int argc, char** argv) {
  using namespace ts;
  const double loss = argc > 1 ? std::atof(argv[1]) : 0.05;

  GeneratorConfig gen;
  gen.seed = 99;
  gen.duration_ns = 8 * kNanosPerSecond;
  gen.target_records_per_sec = 15'000;
  gen.record_loss_rate = loss;                    // Lost log records (§2.3).
  gen.clock_skew_sigma_ns = 2 * kNanosPerMilli;   // Desynchronized producers.

  ReplayerConfig replay;
  replay.num_servers = 42;
  replay.num_processes = 1263;
  replay.num_workers = 2;
  replay.as_text = true;
  replay.straggler_prob = 5e-4;                   // Overloaded log servers.
  replay.straggler_max_ns = 60 * kNanosPerSecond;
  auto replayer = std::make_shared<Replayer>(replay, gen);

  std::printf("Incident drill: %.0f%% record loss, 2ms clock skew, straggling "
              "log servers\n\n",
              100 * loss);

  std::atomic<uint64_t> trees{0};
  std::atomic<uint64_t> damaged_trees{0};
  std::atomic<uint64_t> inferred_spans{0};
  std::atomic<uint64_t> implied_missing{0};
  std::atomic<uint64_t> causality_anomalies{0};
  std::atomic<uint64_t> sessions{0};
  std::atomic<uint64_t> dropped{0};

  Computation::Options options;
  options.workers = 2;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, records] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = 5;
    auto [session_stream, metrics] = Sessionize(scope, records, sess);
    auto counted = scope.Inspect<Session>(session_stream, "count",
                                          [&sessions](Epoch, const Session&) {
                                            sessions.fetch_add(1);
                                          });
    auto tree_stream = ConstructTraceTrees(scope, counted);
    auto analyzed = scope.Inspect<TraceTree>(
        tree_stream, "analyze", [&](Epoch, const TraceTree& t) {
          trees.fetch_add(1);
          bool damaged = false;
          if (t.num_inferred() > 0) {
            inferred_spans.fetch_add(t.num_inferred());
            damaged = true;
          }
          const size_t missing = t.ImpliedMissingChildren();
          if (missing > 0) {
            implied_missing.fetch_add(missing);
            damaged = true;
          }
          // Causality check: a child span observed to start before its parent
          // (clock skew, §2.3 "messages may appear to be received before they
          // were originally sent").
          for (const auto& n : t.nodes()) {
            if (n.parent >= 0 && !n.inferred && !t.nodes()[n.parent].inferred &&
                n.start < t.nodes()[n.parent].start) {
              causality_anomalies.fetch_add(1);
              damaged = true;
              break;
            }
          }
          if (damaged) {
            damaged_trees.fetch_add(1);
          }
        });
    auto probe = scope.Probe(analyzed, "probe");

    IngestDriver::Options ingest;
    ingest.slack_ns = 2 * kNanosPerSecond;  // Stragglers beyond this are cut.
    auto driver = std::make_shared<IngestDriver>(replayer.get(),
                                                 scope.worker_index(), input, ingest);
    driver->SetGate(probe);
    scope.AddDriver([driver, &dropped]() {
      const DriverStatus status = driver->Step();
      if (status == DriverStatus::kFinished) {
        dropped.fetch_add(driver->reorder_stats().discarded_late);
      }
      return status;
    });
  });

  std::printf("=== Data-quality report ===\n");
  std::printf("  sessions reconstructed:        %llu\n",
              static_cast<unsigned long long>(sessions.load()));
  std::printf("  trace trees:                   %llu\n",
              static_cast<unsigned long long>(trees.load()));
  std::printf("  trees with detectable damage:  %llu (%.1f%%)\n",
              static_cast<unsigned long long>(damaged_trees.load()),
              100.0 * static_cast<double>(damaged_trees.load()) /
                  static_cast<double>(std::max<uint64_t>(1, trees.load())));
  std::printf("  spans inferred from children:  %llu\n",
              static_cast<unsigned long long>(inferred_spans.load()));
  std::printf("  siblings implied but missing:  %llu\n",
              static_cast<unsigned long long>(implied_missing.load()));
  std::printf("  causality anomalies (skew):    %llu\n",
              static_cast<unsigned long long>(causality_anomalies.load()));
  std::printf("  straggler records discarded:   %llu (re-order slack 2s)\n",
              static_cast<unsigned long long>(dropped.load()));
  std::printf("\nReconstruction continues under degradation; the damage is "
              "quantified per tree\nso downstream analyses can filter or "
              "reweight (paper §2.3, §5.2).\n");
  return 0;
}
