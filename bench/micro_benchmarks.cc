// Engine micro-benchmarks (google-benchmark): the per-record costs that
// compose into TS's epoch latency — hashing, wire parsing, re-ordering, tree
// construction, signatures, and exchange-hub transfers.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "src/common/rng.h"
#include "src/common/siphash.h"
#include "src/core/reorder_buffer.h"
#include "src/core/trace_tree.h"
#include "src/log/wire_format.h"
#include "src/net/frame_reader.h"
#include "src/net/log_server.h"
#include "src/net/socket_ingest.h"
#include "src/offline/offline_sessionizer.h"
#include "src/timely/runtime.h"
#include "src/workload/generator.h"

namespace ts {
namespace {

void BM_SipHashSessionId(benchmark::State& state) {
  const std::string id = "XKSHSKCBA53U088FXGE7LD8";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SipHash24(id));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * id.size()));
}
BENCHMARK(BM_SipHashSessionId);

std::vector<LogRecord> SampleRecords(size_t n) {
  GeneratorConfig config;
  config.seed = 5;
  config.duration_ns = 30 * kNanosPerSecond;
  config.target_records_per_sec = static_cast<double>(n) / 20.0;
  TraceGenerator gen(config);
  std::vector<LogRecord> all;
  Epoch e;
  std::vector<LogRecord> batch;
  while (all.size() < n && gen.NextEpoch(&e, &batch)) {
    for (auto& r : batch) {
      all.push_back(std::move(r));
      if (all.size() == n) {
        break;
      }
    }
  }
  return all;
}

void BM_WireFormatSerialize(benchmark::State& state) {
  const auto records = SampleRecords(1024);
  size_t i = 0;
  std::string line;
  int64_t bytes = 0;
  for (auto _ : state) {
    line.clear();
    AppendWireFormat(records[i++ & 1023], &line);
    bytes += static_cast<int64_t>(line.size());
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_WireFormatSerialize);

void BM_WireFormatParse(benchmark::State& state) {
  const auto records = SampleRecords(1024);
  std::vector<std::string> lines;
  int64_t total = 0;
  for (const auto& r : records) {
    lines.push_back(ToWireFormat(r));
    total += static_cast<int64_t>(lines.back().size());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto parsed = ParseWireFormat(lines[i++ & 1023]);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() * (total / 1024));
}
BENCHMARK(BM_WireFormatParse);

void BM_ReorderBufferPush(benchmark::State& state) {
  const auto records = SampleRecords(4096);
  // Shuffle arrival order within a bounded delay.
  std::vector<LogRecord> shuffled = records;
  Rng rng(3);
  for (size_t i = 0; i + 1 < shuffled.size(); ++i) {
    const size_t j = i + rng.NextBelow(std::min<size_t>(16, shuffled.size() - i));
    std::swap(shuffled[i], shuffled[j]);
  }
  for (auto _ : state) {
    state.PauseTiming();
    ReorderBuffer buf({.slack_ns = 2 * kNanosPerSecond,
                       .slot_width_ns = 10 * kNanosPerMilli});
    std::vector<LogRecord> out;
    out.reserve(shuffled.size());
    state.ResumeTiming();
    for (const auto& r : shuffled) {
      buf.Push(r, &out);
    }
    buf.FlushAll(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(shuffled.size()));
}
BENCHMARK(BM_ReorderBufferPush);

void BM_TraceTreeBuild(benchmark::State& state) {
  const auto records = SampleRecords(20'000);
  auto sessions = OfflineSessionizer::Sessionize(records);
  // Pick a reasonably sized session.
  const Session* big = &sessions[0];
  for (const auto& s : sessions) {
    if (s.records.size() > big->records.size()) {
      big = &s;
    }
  }
  int64_t trees = 0;
  for (auto _ : state) {
    auto built = TraceTree::FromSession(*big);
    trees += static_cast<int64_t>(built.size());
    benchmark::DoNotOptimize(built);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(big->records.size()));
  state.counters["records/session"] =
      static_cast<double>(big->records.size());
}
BENCHMARK(BM_TraceTreeBuild);

void BM_TreeSignature(benchmark::State& state) {
  const auto records = SampleRecords(20'000);
  auto sessions = OfflineSessionizer::Sessionize(records);
  std::vector<TraceTree> trees;
  for (const auto& s : sessions) {
    for (auto& t : TraceTree::FromSession(s)) {
      trees.push_back(std::move(t));
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees[i++ % trees.size()].SignatureKey());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeSignature);

void BM_ExchangeHubRoundTrip(benchmark::State& state) {
  ExchangeHub<uint64_t> hub(4);
  std::vector<Batch<uint64_t>> drained;
  for (auto _ : state) {
    std::vector<uint64_t> batch(256, 7);
    hub.Send(2, 0, std::move(batch));
    drained.clear();
    hub.Drain(2, drained);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ExchangeHubRoundTrip);

void BM_GeneratorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    GeneratorConfig config;
    config.seed = 11;
    config.duration_ns = 2 * kNanosPerSecond;
    config.target_records_per_sec = 50'000;
    TraceGenerator gen(config);
    Epoch e;
    std::vector<LogRecord> batch;
    uint64_t n = 0;
    while (gen.NextEpoch(&e, &batch)) {
      n += batch.size();
    }
    state.counters["records"] = static_cast<double>(n);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_GeneratorThroughput)->Unit(benchmark::kMillisecond);

// --- Socket ingest path (ts_net): transport + framing + parse vs the
// in-memory arrival path over the same wire lines. The gap between these
// benches is the cost the paper pays for replaying "in their original text
// format over a TCP socket" rather than handing batches through memory.

std::shared_ptr<const std::vector<std::string>> SampleArchive(size_t n) {
  const auto records = SampleRecords(n);
  auto lines = std::make_shared<std::vector<std::string>>();
  for (const auto& r : records) {
    lines->push_back(ToWireFormat(r));
  }
  return lines;
}

// Baseline: parse wire lines already resident in memory (what the replayer's
// as_text mode hands to the driver).
void BM_InMemoryArrivalParse(benchmark::State& state) {
  const auto archive = SampleArchive(8192);
  int64_t bytes = 0;
  for (auto _ : state) {
    uint64_t parsed_count = 0;
    for (const auto& line : *archive) {
      auto parsed = ParseWireFormat(line);
      parsed_count += parsed.has_value();
      bytes += static_cast<int64_t>(line.size());
      benchmark::DoNotOptimize(parsed);
    }
    benchmark::DoNotOptimize(parsed_count);
  }
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(archive->size()));
}
BENCHMARK(BM_InMemoryArrivalParse)->Unit(benchmark::kMillisecond);

// Full loopback hop: LogServer -> TCP -> newline framing -> parse.
void BM_SocketIngestLoopback(benchmark::State& state) {
  const auto archive = SampleArchive(8192);
  int64_t bytes = 0;
  uint64_t stalls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    LogServerOptions options;
    LogServer server(options, archive);
    if (!server.Start()) {
      state.SkipWithError("cannot start loopback server");
      return;
    }
    std::thread thread([&server] { server.Run(); });
    SocketIngestOptions copts;
    copts.port = server.port();
    SocketIngestSource client(copts);
    std::vector<std::string> lines;
    lines.reserve(archive->size());
    state.ResumeTiming();

    client.ReadAll(&lines);
    uint64_t parsed_count = 0;
    for (const auto& line : lines) {
      auto parsed = ParseWireFormat(line);
      parsed_count += parsed.has_value();
      benchmark::DoNotOptimize(parsed);
    }

    state.PauseTiming();
    bytes += static_cast<int64_t>(client.stats().Snapshot().bytes_in);
    stalls += server.stats().Snapshot().backpressure_stalls;
    server.Stop();
    thread.join();
    if (parsed_count != archive->size()) {
      state.SkipWithError("socket ingest lost records");
      return;
    }
    state.ResumeTiming();
  }
  state.SetBytesProcessed(bytes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(archive->size()));
  state.counters["backpressure_stalls"] = static_cast<double>(stalls);
}
BENCHMARK(BM_SocketIngestLoopback)->Unit(benchmark::kMillisecond);

// Framing alone: split a large wire buffer into TCP-sized chunks.
void BM_LineFramerThroughput(benchmark::State& state) {
  const auto archive = SampleArchive(8192);
  std::string wire;
  for (const auto& line : *archive) {
    wire += line;
    wire += '\n';
  }
  const size_t kChunk = 16 << 10;
  for (auto _ : state) {
    LineFramer framer;
    std::vector<std::string> lines;
    lines.reserve(archive->size());
    for (size_t off = 0; off < wire.size(); off += kChunk) {
      framer.Feed(std::string_view(wire).substr(off, kChunk), &lines);
    }
    benchmark::DoNotOptimize(lines);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(wire.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(archive->size()));
}
BENCHMARK(BM_LineFramerThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ts

BENCHMARK_MAIN();
