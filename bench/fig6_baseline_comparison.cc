// Figure 6: comparison of TS against a state-of-the-art general-purpose
// streaming engine on the reduced trace (the paper replayed 37 of 1263
// streams — one log server — because Flink could not keep up with the full
// rate and ran out of memory).
//
// Both systems run identical sessionization semantics. The baseline is this
// repo's ts_baseline: a faithful Flink-architecture engine (heap rows,
// per-record virtual dispatch, merging session windows, watermarks, bounded
// backpressuring queues). Per-epoch latency is measured identically for both:
// first record of the epoch fed -> punctuation/watermark for the epoch fully
// processed.
//
// Also reproduced: the full-rate capacity gap (sustained per-core throughput -
// on this single-core container, wall-clock drain time of the whole pipeline -
// decides who can keep up with the full log rate) and the sessionization-state
// comparison (TS ~203MB RSS vs Flink >7.5GB heap in the paper). Note the
// paper's 71x latency factor includes JVM/GC overheads; this native-C++
// baseline isolates the architectural gap (per-record heap rows, exchange
// serialization, per-key merging windows vs TS's batched, worker-local state).
#include <cstdio>
#include <mutex>

#include "bench/bench_common.h"
#include "src/baseline/session_window_job.h"
#include "src/log/wire_format.h"

namespace {

using namespace ts;
using namespace ts::bench;

// Runs the baseline epoch-gated over the replayer's arrival stream; returns
// per-epoch latencies plus stats.
struct BaselineRun {
  SampleSet latency_ms;
  BaselineJobStats stats;
  uint64_t peak_rss = 0;
};

BaselineRun RunBaseline(size_t parallelism, const GeneratorConfig& gen,
                        EventTime gap_ns) {
  ReplayerConfig replay;
  replay.num_servers = 1;
  replay.num_processes = 37;  // The paper's reduced setup.
  replay.num_workers = 1;
  replay.as_text = true;
  Replayer replayer(replay, gen);

  BaselineJobConfig config;
  config.parallelism = parallelism;
  config.session_gap_ns = gap_ns;
  BaselineSessionJob job(config, nullptr);
  job.Start();

  BaselineRun run;
  std::vector<Arrival> arrivals;
  for (Epoch e = 0;; ++e) {
    if (replayer.ArrivalsFor(0, e, &arrivals) == Replayer::Fetch::kEndOfStream) {
      break;
    }
    const int64_t start = SteadyNowNanos();
    bool any = false;
    for (const auto& a : arrivals) {
      job.FeedLine(a.line);
      any = true;
    }
    const EventTime watermark =
        static_cast<EventTime>(e + 1) * kNanosPerSecond - 2 * kNanosPerSecond;
    job.BroadcastWatermark(watermark);
    const int64_t done = job.AwaitWatermark(watermark);
    job.PollStateBytes();
    if (any) {
      run.latency_ms.Add(static_cast<double>(done - start) / 1e6);
    }
  }
  job.FinishAndJoin();
  run.stats = job.stats();
  run.peak_rss = PeakRssBytes();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const double rate = FlagDouble(argc, argv, "--rate", 10'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 12);
  const double full_rate = FlagDouble(argc, argv, "--full_rate", 250'000);

  GeneratorConfig gen;
  gen.seed = 42;
  gen.duration_ns = seconds * kNanosPerSecond;
  gen.target_records_per_sec = rate;

  std::printf("=== Figure 6: TS vs generic stream engine (reduced rate) ===\n");
  std::printf("Reduced trace: 37 streams, %.0f records/s for %llds (paper: "
              "6.9 MB/s, 37 of 1263 streams)\n\n",
              rate, static_cast<long long>(seconds));

  // --- (a) Baseline engine, varying parallelism --------------------------
  std::printf("--- Baseline (Flink-like architecture): per-epoch latency ---\n");
  PrintBoxHeader("parallelism");
  double baseline_best_median = 1e18;
  size_t baseline_peak_state = 0;
  for (size_t p : {1u, 2u, 4u}) {
    auto run = RunBaseline(p, gen, 5 * kNanosPerSecond);
    PrintBoxRow("baseline p=" + std::to_string(p), run.latency_ms);
    if (!run.latency_ms.empty()) {
      baseline_best_median = std::min(baseline_best_median, run.latency_ms.Median());
    }
    baseline_peak_state = std::max(baseline_peak_state, run.stats.peak_state_bytes);
  }

  // --- (b) TS, varying workers -------------------------------------------
  std::printf("\n--- TS: per-epoch latency (same input, same semantics) ---\n");
  PrintBoxHeader("workers");
  double ts_best_median = 1e18;
  size_t ts_peak_state = 0;
  for (size_t w : {1u, 2u, 4u}) {
    PipelineOptions options;
    options.workers = w;
    options.gen = gen;
    options.num_servers = 1;
    options.num_processes = 37;
    options.inactivity_epochs = 5;
    auto result = RunPipeline(options);
    SampleSet wall = result.WallLatenciesMs();
    SampleSet critical = result.CriticalPathMs();
    PrintBoxRow("TS w=" + std::to_string(w) + " wall", wall);
    PrintBoxRow("TS w=" + std::to_string(w) + " critical", critical);
    if (!wall.empty()) {
      ts_best_median = std::min(ts_best_median, wall.Median());
    }
    ts_peak_state =
        std::max(ts_peak_state,
                 result.peak_session_state_bytes + result.peak_reorder_bytes);
  }

  std::printf("\n--- Headline: per-epoch latency ---\n");
  std::printf("  best median epoch latency:  baseline %.1f ms vs TS %.1f ms\n",
              baseline_best_median, ts_best_median);
  std::printf("  (paper: Flink 2.1 s vs TS 26 ms, 71x; our baseline is native "
              "C++ without JVM/GC\n   overhead, so the absolute gap here "
              "isolates the architectural component only)\n");
  std::printf("  peak sessionization state:  baseline %s vs TS %s\n",
              FormatBytes(static_cast<double>(baseline_peak_state)).c_str(),
              FormatBytes(static_cast<double>(ts_peak_state)).c_str());
  std::printf("  (paper: Flink heap >7.5 GB vs TS RSS 203 MB)\n");

  // --- (c) Full log rate: sustained per-core throughput -------------------
  // On a single-core container every thread shares one core, so wall-clock
  // drain time measures the total per-record processing cost of the whole
  // pipeline — the quantity that decides who can keep up with the full rate.
  std::printf("\n--- Full log rate: sustained per-core throughput ---\n");
  GeneratorConfig full = gen;
  full.target_records_per_sec = full_rate;
  full.duration_ns = std::min<EventTime>(full.duration_ns, 6 * kNanosPerSecond);

  double baseline_rate = 0;
  {
    ReplayerConfig replay;
    replay.num_servers = 42;
    replay.num_processes = 1263;
    replay.num_workers = 1;
    replay.as_text = true;
    Replayer replayer(replay, full);
    // Pre-drain arrivals so generation cost is excluded for both systems.
    std::vector<std::string> lines;
    std::vector<Arrival> arrivals;
    for (Epoch e = 0;; ++e) {
      if (replayer.ArrivalsFor(0, e, &arrivals) == Replayer::Fetch::kEndOfStream) {
        break;
      }
      for (auto& a : arrivals) {
        lines.push_back(std::move(a.line));
      }
    }
    BaselineJobConfig config;
    config.parallelism = 2;
    config.session_gap_ns = 5 * kNanosPerSecond;
    BaselineSessionJob job(config, nullptr);
    job.Start();
    const int64_t start = SteadyNowNanos();
    for (const auto& line : lines) {
      job.FeedLine(line);
    }
    job.FinishAndJoin();
    const double secs = static_cast<double>(SteadyNowNanos() - start) / 1e9;
    baseline_rate = static_cast<double>(lines.size()) / secs;
    std::printf("  baseline: %zu records drained in %.2f s -> %.0f records/s "
                "per core\n",
                lines.size(), secs, baseline_rate);
  }

  double ts_rate = 0;
  {
    // The TS pipeline generates + serializes its trace lazily inside the run
    // (the baseline's was pre-drained above), so time that part alone and
    // subtract it for a like-for-like engine cost.
    Stopwatch gen_watch;
    uint64_t generated = 0;
    {
      TraceGenerator g(full);
      Epoch e;
      std::vector<LogRecord> batch;
      std::string line;
      while (g.NextEpoch(&e, &batch)) {
        for (const auto& r : batch) {
          line.clear();
          AppendWireFormat(r, &line);
          generated += line.size() > 0 ? 1 : 0;
        }
      }
    }
    const double gen_secs = gen_watch.ElapsedMillis() / 1e3;

    PipelineOptions options;
    options.workers = 1;
    options.gen = full;
    options.num_servers = 42;
    options.num_processes = 1263;
    options.inactivity_epochs = 5;
    Stopwatch watch;
    auto result = RunPipeline(options);
    const double secs = std::max(0.01, watch.ElapsedMillis() / 1e3 - gen_secs);
    ts_rate = static_cast<double>(result.records_fed) / secs;
    std::printf("  TS:       %llu records drained in %.2f s (after deducting "
                "%.2f s of trace\n            generation) -> %.0f records/s "
                "per core\n",
                static_cast<unsigned long long>(result.records_fed), secs,
                gen_secs, ts_rate);
  }

  std::printf("\n  offered full rate: %.0f records/s (scaled; paper: 1.3M/s)\n",
              full_rate);
  std::printf("  baseline %s keep up; TS %s keep up. Per-core throughput "
              "ratio: %.1fx in favour of TS.\n",
              baseline_rate >= full_rate ? "CAN" : "CANNOT",
              ts_rate >= full_rate ? "CAN" : "CANNOT", ts_rate / baseline_rate);
  std::printf("  When the source outpaces the engine, bounded queues back-"
              "pressure it and unbounded\n  buffering grows until memory is "
              "exhausted — the paper's Flink failure at full rate.\n");
  return 0;
}
