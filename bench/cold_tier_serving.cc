// Tiered-store serving benchmark: what the cold tier costs and what it buys.
//
// Builds one tiered deployment (small hot SessionStore + on-disk ColdTier)
// and one unbounded reference holding the same sessions, then measures:
//
//   spill     sustained eviction->segment throughput (sessions/s) while the
//             hot window turns over, including the final FlushPending fsync
//   get_hot   GET round-trip over loopback TCP for ids still hot
//   get_cold  the same GET when the answer needs a cold index probe + one
//             pread + CRC check — the latency price of a spilled session
//
// Every lane double-checks correctness: a sample of GET/RANGE/TOPK responses
// from the tiered server must be byte-identical to the unbounded reference
// (the "identical" verdict scripts/check_bench_regression.py gates on).
//
// Usage: cold_tier_serving [--sessions=30000] [--queries=3000]
//                          [--hot_kb=256] [--json=PATH]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/analytics/session_store.h"
#include "src/query/query_client.h"
#include "src/query/query_protocol.h"
#include "src/query/query_server.h"
#include "src/store/cold_tier.h"

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

ts::Session MakeSession(uint64_t n, size_t records) {
  ts::Session s;
  s.id = "BENCH" + std::to_string(n);
  const ts::EventTime base = static_cast<ts::EventTime>(n) * 1000;
  for (size_t i = 0; i < records; ++i) {
    ts::LogRecord r;
    r.time = base + static_cast<ts::EventTime>(i);
    r.session_id = s.id;
    r.txn_id = *ts::TxnId::Parse("1-2");
    r.service = static_cast<uint32_t>((n + i) % 64);
    r.host = r.service;
    r.payload = "k=v&step=" + std::to_string(i);
    s.records.push_back(std::move(r));
  }
  s.first_epoch = base / ts::kNanosPerSecond;
  s.last_epoch = s.first_epoch;
  s.closed_at = s.last_epoch;
  return s;
}

struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
};

LatencySummary Summarize(std::vector<int64_t>& latencies_ns,
                         int64_t elapsed_ns) {
  std::sort(latencies_ns.begin(), latencies_ns.end());
  LatencySummary s;
  if (latencies_ns.empty()) {
    return s;
  }
  s.p50_us = static_cast<double>(latencies_ns[latencies_ns.size() / 2]) / 1e3;
  s.p99_us =
      static_cast<double>(latencies_ns[latencies_ns.size() * 99 / 100]) / 1e3;
  s.qps = static_cast<double>(latencies_ns.size()) * 1e9 /
          static_cast<double>(elapsed_ns);
  return s;
}

// Canonical bytes of one response, for tiered-vs-reference comparison.
std::string ResponseBytes(const ts::QueryResponse& response) {
  std::string bytes;
  for (const auto& s : response.sessions) {
    ts::AppendSessionBlock(s, &bytes);
  }
  for (const auto& [service, count] : response.top) {
    bytes += "TOP " + std::to_string(service) + " " + std::to_string(count) +
             "\n";
  }
  if (response.truncated) {
    bytes += "#TRUNCATED\n";
  }
  bytes += ts::FormatOk(response.count) + "\n";
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const size_t num_sessions =
      static_cast<size_t>(Flag(argc, argv, "--sessions", 30'000));
  const size_t num_queries =
      static_cast<size_t>(Flag(argc, argv, "--queries", 3'000));
  const size_t hot_kb = static_cast<size_t>(Flag(argc, argv, "--hot_kb", 256));

  const std::string cold_dir =
      "/tmp/ts_cold_bench_" + std::to_string(::getpid());
  const std::string cleanup = "rm -rf '" + cold_dir + "'";
  std::system(cleanup.c_str());

  ColdTierOptions cold_options;
  cold_options.dir = cold_dir;
  auto cold = std::make_shared<ColdTier>(cold_options);
  if (!cold->Start()) {
    std::fprintf(stderr, "cannot start cold tier at %s\n", cold_dir.c_str());
    return 1;
  }

  SessionStore::Options hot_options;
  hot_options.max_bytes = hot_kb << 10;
  auto store = std::make_shared<SessionStore>(hot_options);
  store->SetEvictionSink([cold](Session&& s) { cold->Append(std::move(s)); },
                         [cold] { cold->WaitForSpace(); });
  auto reference = std::make_shared<SessionStore>();  // Unbounded.

  // (a) spill throughput: run the hot window over by ~num_sessions and time
  // insert -> evict -> segment write, fsyncs included.
  const int64_t spill_t0 = NowNs();
  for (size_t n = 0; n < num_sessions; ++n) {
    store->Insert(MakeSession(n, /*records=*/8));
  }
  if (!cold->FlushPending()) {
    std::fprintf(stderr, "spill failed\n");
    return 1;
  }
  const double spill_elapsed_s =
      static_cast<double>(NowNs() - spill_t0) / 1e9;
  for (size_t n = 0; n < num_sessions; ++n) {
    reference->Insert(MakeSession(n, /*records=*/8));
  }
  const ColdTier::Stats cold_stats = cold->stats();
  const double spill_per_s =
      static_cast<double>(cold_stats.sessions) / spill_elapsed_s;
  std::printf(
      "tiered store: %zu hot + %llu cold sessions, %llu segment(s), "
      "%.1f MiB on disk\n",
      store->stats().sessions,
      static_cast<unsigned long long>(cold_stats.sessions),
      static_cast<unsigned long long>(cold_stats.segments),
      static_cast<double>(cold_stats.bytes) / (1 << 20));
  std::printf("spill          : %9.0f sessions/s (%.2fs incl. flush)\n",
              spill_per_s, spill_elapsed_s);
  if (cold_stats.sessions == 0 || store->stats().sessions == 0) {
    std::fprintf(stderr, "degenerate tiering: need both hot and cold ids\n");
    return 1;
  }

  QueryServer tiered_server({}, store);
  tiered_server.SetColdTier(cold);
  QueryServer reference_server({}, reference);
  if (!tiered_server.Start() || !reference_server.Start()) {
    std::fprintf(stderr, "cannot start servers\n");
    return 1;
  }
  std::thread tiered_thread([&] { tiered_server.Run(); });
  std::thread reference_thread([&] { reference_server.Run(); });

  QueryClientOptions tiered_client_options;
  tiered_client_options.port = tiered_server.port();
  QueryClient client(tiered_client_options);
  QueryClientOptions reference_client_options;
  reference_client_options.port = reference_server.port();
  QueryClient reference_client(reference_client_options);
  if (!client.Connect() || !reference_client.Connect()) {
    std::fprintf(stderr, "cannot connect\n");
    return 1;
  }

  // Eviction is oldest-first: low ids are cold, the newest tail is hot.
  const size_t hot_count = store->stats().sessions;
  const size_t first_hot = num_sessions - hot_count;

  // (b) hot-hit GETs over the wire.
  LatencySummary hot_summary;
  {
    std::vector<int64_t> lat;
    lat.reserve(num_queries);
    const int64_t t0 = NowNs();
    for (size_t q = 0; q < num_queries; ++q) {
      const std::string id =
          "BENCH" + std::to_string(first_hot + (q * 13) % hot_count);
      const int64_t s = NowNs();
      auto response = client.Get(id);
      lat.push_back(NowNs() - s);
      if (!response.ok || response.sessions.size() != 1) {
        std::fprintf(stderr, "hot miss on %s\n", id.c_str());
        return 1;
      }
    }
    hot_summary = Summarize(lat, NowNs() - t0);
    std::printf("GET hot (wire) : %9.0f ops/s  p50 %6.1fus  p99 %6.1fus\n",
                hot_summary.qps, hot_summary.p50_us, hot_summary.p99_us);
  }

  // (c) cold-hit GETs: every lookup resolves through the segment index and
  // pays one pread + CRC.
  LatencySummary cold_summary;
  {
    std::vector<int64_t> lat;
    lat.reserve(num_queries);
    const int64_t t0 = NowNs();
    for (size_t q = 0; q < num_queries; ++q) {
      const std::string id = "BENCH" + std::to_string((q * 13) % first_hot);
      const int64_t s = NowNs();
      auto response = client.Get(id);
      lat.push_back(NowNs() - s);
      if (!response.ok || response.sessions.size() != 1) {
        std::fprintf(stderr, "cold miss on %s\n", id.c_str());
        return 1;
      }
    }
    cold_summary = Summarize(lat, NowNs() - t0);
    std::printf("GET cold (wire): %9.0f ops/s  p50 %6.1fus  p99 %6.1fus\n",
                cold_summary.qps, cold_summary.p50_us, cold_summary.p99_us);
  }

  // Identity: a sample of responses must match the unbounded reference byte
  // for byte — hot, cold, a RANGE spanning both tiers, and the TOPK merge.
  bool identical = true;
  std::vector<std::string> probes = {
      "TOPK 16",
      "RANGE 0 4000000 200",              // Entirely cold.
      "RANGE 0 999999999999 10000",       // Spans cold into hot; budget-cut.
  };
  for (size_t i = 0; i < 64; ++i) {
    probes.push_back("GET BENCH" + std::to_string((i * 977) % num_sessions));
  }
  for (const auto& probe : probes) {
    QueryResponse tiered_response, reference_response;
    if (!client.Execute(probe, &tiered_response) ||
        !reference_client.Execute(probe, &reference_response) ||
        ResponseBytes(tiered_response) != ResponseBytes(reference_response)) {
      std::fprintf(stderr, "IDENTITY MISMATCH on '%s'\n", probe.c_str());
      identical = false;
    }
  }
  std::printf("identity check : %s (%zu probes)\n",
              identical ? "ok" : "FAIL", probes.size());

  if (const char* json_path = FlagStr(argc, argv, "--json")) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"cold_tier_serving\",\n");
    std::fprintf(f, "  \"sessions\": %zu,\n", num_sessions);
    std::fprintf(f, "  \"cold_sessions\": %llu,\n",
                 static_cast<unsigned long long>(cold_stats.sessions));
    std::fprintf(f, "  \"cold_segments\": %llu,\n",
                 static_cast<unsigned long long>(cold_stats.segments));
    std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f,
                 "  \"identity_check\": \"tiered GET/RANGE/TOPK responses "
                 "must be byte-identical to an unbounded reference store\",\n");
    std::fprintf(f, "  \"rows\": [\n");
    std::fprintf(f,
                 "    {\"lane\": \"spill\", \"sessions_per_s\": %.0f, "
                 "\"elapsed_s\": %.3f},\n",
                 spill_per_s, spill_elapsed_s);
    std::fprintf(f,
                 "    {\"lane\": \"get_hot\", \"qps\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f},\n",
                 hot_summary.qps, hot_summary.p50_us, hot_summary.p99_us);
    std::fprintf(f,
                 "    {\"lane\": \"get_cold\", \"qps\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f}\n",
                 cold_summary.qps, cold_summary.p50_us, cold_summary.p99_us);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  client.Close();
  reference_client.Close();
  tiered_server.Stop();
  reference_server.Stop();
  tiered_thread.join();
  reference_thread.join();
  std::system(cleanup.c_str());
  return identical ? 0 : 1;
}
