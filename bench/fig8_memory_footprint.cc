// Figure 8: "Total memory used by our system when varying the size of the
// re-order buffers (in number of epochs). The bigger the re-order buffers, the
// more tolerant the system is to late record arrivals."
//
// Sweeps the slack window and reports peak buffered bytes in the re-order
// buffers, session state, and process peak RSS. The paper observed linear
// growth (~571 MB per buffered second at 1.3M records/s of ~305-byte records)
// up to the physical memory limit at a 110-epoch window; the slope here scales
// with the configured rate. A straggler-injected run shows the accuracy side
// of the trade-off: larger windows discard fewer late records.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 30'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 12);
  const int64_t max_window = FlagInt(argc, argv, "--max_window", 8);

  std::printf("=== Figure 8: memory footprint vs re-order window size ===\n");
  std::printf("Trace: %llds at %.0f records/s (paper: 1.3M records/s, +571 MB "
              "per buffered second)\n\n",
              static_cast<long long>(seconds), rate);

  std::printf("%-10s %16s %16s %14s %12s %12s\n", "window", "reorder buf",
              "session state", "peak RSS", "dropped", "sessions");
  double prev_reorder = 0;
  for (int64_t window = 1; window <= max_window; window *= 2) {
    PipelineOptions options;
    options.workers = 2;
    options.gen.seed = 42;
    options.gen.duration_ns = seconds * kNanosPerSecond;
    options.gen.target_records_per_sec = rate;
    options.slack_ns = window * kNanosPerSecond;
    // Straggler injection exercises the tolerance side of the trade-off: a
    // record delayed beyond the window is discarded, a larger window keeps it.
    options.straggler_prob = 3e-4;
    options.straggler_max_ns = 15 * kNanosPerSecond;
    options.replay_seed = 7;

    auto result = RunPipeline(options);
    std::printf("%-10lld %16s %16s %14s %12llu %12llu\n",
                static_cast<long long>(window),
                FormatBytes(static_cast<double>(result.peak_reorder_bytes)).c_str(),
                FormatBytes(static_cast<double>(result.peak_session_state_bytes)).c_str(),
                FormatBytes(static_cast<double>(result.peak_rss_bytes)).c_str(),
                static_cast<unsigned long long>(result.reorder_dropped),
                static_cast<unsigned long long>(result.sessions));
    if (prev_reorder > 0 && result.peak_reorder_bytes > 0) {
      // Linearity check is printed as a growth factor per doubling.
    }
    prev_reorder = static_cast<double>(result.peak_reorder_bytes);
  }

  std::printf(
      "\nPaper shape: buffered bytes grow linearly with the window (each\n"
      "additional buffered second of input adds a constant increment) until\n"
      "physical memory is the limiting factor; small windows instead discard\n"
      "late records (tolerance/memory trade-off).\n");
  return 0;
}
