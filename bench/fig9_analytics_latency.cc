// Figure 9: "Measured latency per epoch (1 sec) of log data to conduct two
// different analytic tasks on the output of sessionization, including the
// latency of sessionization. The top-10 trace tree signatures and pairs of
// communicating services are updated in real time (<1 sec)."
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 30'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 15);
  const int64_t workers = FlagInt(argc, argv, "--workers", 2);

  std::printf("=== Figure 9: per-epoch latency of composed analytics ===\n");
  std::printf("Trace: %llds at %.0f records/s, %lld workers; tasks include "
              "sessionization latency\n\n",
              static_cast<long long>(seconds), rate,
              static_cast<long long>(workers));

  struct Task {
    const char* label;
    AnalyticsSelection analytics;
  };
  const Task tasks[] = {
      {"sessionize only", {}},
      {"trace trees", {.trace_trees = true}},
      {"tree clustering", {.trace_trees = true, .signature_topk = true}},
      {"comm patterns", {.trace_trees = true, .pair_topk = true}},
      {"both tasks", {.trace_trees = true, .signature_topk = true, .pair_topk = true}},
  };

  PrintBoxHeader("task (critical ms)");
  struct Row {
    const char* label;
    double cpu_per_epoch_ms;
    uint64_t trees;
  };
  std::vector<Row> rows;
  for (const auto& task : tasks) {
    PipelineOptions options;
    options.workers = static_cast<size_t>(workers);
    options.gen.seed = 42;
    options.gen.duration_ns = seconds * kNanosPerSecond;
    options.gen.target_records_per_sec = rate;
    options.analytics = task.analytics;
    auto result = RunPipeline(options);
    SampleSet critical = result.CriticalPathMs();
    PrintBoxRow(task.label, critical);
    rows.push_back(Row{task.label,
                       static_cast<double>(result.run.TotalWorkerCpuNanos()) /
                           1e6 / static_cast<double>(result.epochs.size()),
                       result.trees});
  }

  // Per-epoch attribution is noisy on a timeshared core; total CPU per epoch
  // is the stable measure of what each analytic adds.
  std::printf("\n%-22s %22s %12s\n", "task", "total CPU / epoch (ms)", "trees");
  for (const auto& r : rows) {
    std::printf("%-22s %22.1f %12llu\n", r.label, r.cpu_per_epoch_ms,
                static_cast<unsigned long long>(r.trees));
  }
  std::printf(
      "\nPaper shape: both analytics complete each epoch in under a second\n"
      "(top-10 signatures and service pairs update in real time), adding a\n"
      "modest increment over plain sessionization.\n");
  return 0;
}
