// Figure 5, live-path edition: ingest throughput of the *serving* pipeline
// (LivePipeline: tag/route -> shard parse -> LiveCloser -> SessionStore) at
// 1/2/4/8 shard workers, on the same simulated 42-server/1263-process arrival
// stream the offline fig5 bench replays. This is the bench the CI bench-smoke
// lane tracks: it writes a machine-readable JSON row per worker count and
// fails (exit 1) unless the closed-session output and the store's query
// answers are byte-identical across every worker count.
//
// This container has one CPU core, so wall-clock throughput cannot show
// scaling; threads timeshare the core. As with every scaling bench in this
// repo (bench_common.h, DESIGN.md §3) we therefore report critical-path
// throughput: records / max over threads of attributed thread-CPU time —
// the throughput the run would achieve with one core per thread, which is
// what the paper's Fig. 5 measures on real multicore hosts. Both series are
// printed and emitted in the JSON ("records_per_s" = critical-path,
// "records_per_s_wall" = wall clock).
//
// Flags: --rate (records/s), --seconds (trace length), --max_workers,
//        --quick (small CI preset), --json=PATH (write BENCH JSON).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/core/live_pipeline.h"
#include "src/log/wire_format.h"
#include "src/replay/replayer.h"

namespace {

using namespace ts;
using namespace ts::bench;

struct RunStats {
  size_t workers = 0;
  uint64_t records = 0;
  uint64_t sessions = 0;
  uint64_t parse_failures = 0;
  uint64_t backpressure_stalls = 0;
  double wall_s = 0;
  double critical_path_s = 0;
  double ingest_cpu_s = 0;
  double max_shard_cpu_s = 0;
  double p50_close_ms = 0;
  double p99_close_ms = 0;
  uint64_t session_digest = 0;  // XOR of per-session digests.
  uint64_t store_digest = 0;    // Digest of canonical store query answers.

  double RecordsPerSecCp() const {
    return critical_path_s > 0 ? static_cast<double>(records) / critical_path_s
                               : 0;
  }
  double RecordsPerSecWall() const {
    return wall_s > 0 ? static_cast<double>(records) / wall_s : 0;
  }
};

RunStats RunOnce(const std::vector<std::string>& lines, size_t workers) {
  RunStats stats;
  stats.workers = workers;

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;  // No eviction: digests need all.
  auto store = std::make_shared<SessionStore>(store_options);
  std::mutex digest_mu;
  uint64_t session_digest = 0;
  std::set<std::string> ids;

  LivePipelineOptions options;
  options.workers = workers;
  options.inactivity_ns = 5 * kNanosPerSecond;
  options.record_close_latency = true;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(digest_mu);
      session_digest ^= d;
      ids.insert(s.id);
    }
    store->Insert(std::move(s));
  });

  const int64_t ingest_cpu_start = ThreadCpuNanos();
  Stopwatch wall;
  size_t fed = 0;
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
    if (++fed % 4096 == 0) {
      pipeline.Flush();  // Poll-loop cadence of the real tool.
    }
  }
  pipeline.Finish();
  stats.wall_s = static_cast<double>(wall.ElapsedNanos()) / 1e9;
  stats.ingest_cpu_s =
      static_cast<double>(ThreadCpuNanos() - ingest_cpu_start) / 1e9;

  stats.records = pipeline.records();
  stats.sessions = pipeline.sessions_closed();
  stats.parse_failures = pipeline.parse_failures();
  stats.backpressure_stalls = pipeline.backpressure_stalls();
  for (size_t i = 0; i < pipeline.workers(); ++i) {
    stats.max_shard_cpu_s =
        std::max(stats.max_shard_cpu_s,
                 static_cast<double>(pipeline.shard(i).cpu_ns) / 1e9);
  }
  stats.critical_path_s = std::max(stats.ingest_cpu_s, stats.max_shard_cpu_s);
  stats.session_digest = session_digest;

  SampleSet latencies;
  for (double ms : pipeline.CloseLatenciesMs()) {
    latencies.Add(ms);
  }
  if (!latencies.empty()) {
    stats.p50_close_ms = latencies.Quantile(0.5);
    stats.p99_close_ms = latencies.Quantile(0.99);
  }

  // Store-query byte-equality: the bytes a ts_query client would receive
  // must not depend on worker count.
  stats.store_digest = ChainedStoreDigest(*store, ids);
  return stats;
}

double Speedup(const std::vector<RunStats>& rows, size_t workers) {
  double base = 0, at = 0;
  for (const auto& r : rows) {
    if (r.workers == 1) {
      base = r.RecordsPerSecCp();
    }
    if (r.workers == workers) {
      at = r.RecordsPerSecCp();
    }
  }
  return base > 0 ? at / base : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        return true;
      }
    }
    return false;
  }();
  const double rate = FlagDouble(argc, argv, "--rate", quick ? 15'000 : 40'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", quick ? 6 : 12);
  const int64_t max_workers = FlagInt(argc, argv, "--max_workers", 8);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("=== Fig 5 (live path): sharded serving-pipeline ingest scaling ===\n");
  std::printf("trace: %llds at %.0f records/s, 1263 streams / 42 servers\n\n",
              static_cast<long long>(seconds), rate);

  // Materialize the arrival stream once, in arrival order, exactly as a
  // single log-server connection would deliver it.
  std::vector<std::string> lines;
  {
    ReplayerConfig replay_config;
    replay_config.num_workers = 1;
    replay_config.as_text = true;
    replay_config.seed = 7;
    GeneratorConfig gen;
    gen.seed = 42;
    gen.duration_ns = seconds * kNanosPerSecond;
    gen.target_records_per_sec = rate;
    Replayer replayer(replay_config, gen);
    std::vector<Arrival> arrivals;
    for (Epoch e = 0;; ++e) {
      if (replayer.ArrivalsFor(0, e, &arrivals) ==
          ArrivalSource::Fetch::kEndOfStream) {
        break;
      }
      for (auto& a : arrivals) {
        lines.push_back(std::move(a.line));
      }
    }
  }
  std::printf("arrival stream: %zu records\n\n", lines.size());

  std::vector<RunStats> rows;
  for (size_t w = 1; w <= static_cast<size_t>(max_workers); w *= 2) {
    rows.push_back(RunOnce(lines, w));
    const RunStats& r = rows.back();
    std::printf(
        "workers=%zu: %10.0f rec/s critical-path (%8.0f wall), "
        "%llu sessions, close p50=%.1fms p99=%.1fms, stalls=%llu\n",
        r.workers, r.RecordsPerSecCp(), r.RecordsPerSecWall(),
        static_cast<unsigned long long>(r.sessions), r.p50_close_ms,
        r.p99_close_ms, static_cast<unsigned long long>(r.backpressure_stalls));
  }

  bool identical = true;
  for (const auto& r : rows) {
    if (r.session_digest != rows[0].session_digest ||
        r.store_digest != rows[0].store_digest ||
        r.sessions != rows[0].sessions || r.records != rows[0].records) {
      identical = false;
      std::printf("MISMATCH at workers=%zu: sessions=%llu digest=%016llx "
                  "store=%016llx (baseline %llu/%016llx/%016llx)\n",
                  r.workers, static_cast<unsigned long long>(r.sessions),
                  static_cast<unsigned long long>(r.session_digest),
                  static_cast<unsigned long long>(r.store_digest),
                  static_cast<unsigned long long>(rows[0].sessions),
                  static_cast<unsigned long long>(rows[0].session_digest),
                  static_cast<unsigned long long>(rows[0].store_digest));
    }
  }
  std::printf("\nresults across worker counts: %s\n",
              identical ? "byte-identical" : "MISMATCH");
  std::printf("speedup vs 1 worker (critical-path): 2w=%.2fx 4w=%.2fx\n",
              Speedup(rows, 2), Speedup(rows, 4));

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"live_scaling\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"rate\": %.0f,\n  \"seconds\": %lld,\n", rate,
                 static_cast<long long>(seconds));
    std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "  \"speedup_4w\": %.3f,\n", Speedup(rows, 4));
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const RunStats& r = rows[i];
      std::fprintf(
          f,
          "    {\"workers\": %zu, \"records_per_s\": %.0f, "
          "\"records_per_s_wall\": %.0f, \"p50_close_ms\": %.3f, "
          "\"p99_close_ms\": %.3f, \"sessions\": %llu, "
          "\"backpressure_stalls\": %llu}%s\n",
          r.workers, r.RecordsPerSecCp(), r.RecordsPerSecWall(),
          r.p50_close_ms, r.p99_close_ms,
          static_cast<unsigned long long>(r.sessions),
          static_cast<unsigned long long>(r.backpressure_stalls),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
