// Figure 5, live-path edition: ingest throughput of the *serving* pipeline
// (LivePipeline: tag/route -> shard parse -> LiveCloser -> SessionStore) at
// 1/2/4/8 shard workers, on the same simulated 42-server/1263-process arrival
// stream the offline fig5 bench replays. This is the bench the CI bench-smoke
// and perf-gate lanes track: it writes a machine-readable JSON row per worker
// count and fails (exit 1) unless the closed-session output and the store's
// query answers are byte-identical across every worker count AND across the
// two ingest paths:
//
//   zero-copy (measured): lines live in an ingest arena, FeedBlock routes
//     pre-scanned RecordViews, shard workers materialize lazily — the
//     SWAR/arena path the real tool runs (docs/INGEST.md);
//   scalar reference (checked): every line through ParseWireFormat — the
//     reference parser — then FeedRecord. Run at 1/2/4 workers purely for
//     the digest cross-check; its throughput is not reported.
//
// This container has one CPU core, so wall-clock throughput cannot show
// scaling; threads timeshare the core. As with every scaling bench in this
// repo (bench_common.h, DESIGN.md §3) we therefore report critical-path
// throughput: records / max over threads of attributed thread-CPU time —
// the throughput the run would achieve with one core per thread, which is
// what the paper's Fig. 5 measures on real multicore hosts. Both series are
// printed and emitted in the JSON ("records_per_s" = critical-path,
// "records_per_s_wall" = wall clock). Single-run CPU drifts ±20-40% on a
// timesharing core and the noise is one-sided (interference only slows a
// run), so every reported row is the BEST of kReps interleaved runs — the
// standard min-time-of-N estimator — with digests asserted equal across reps.
//
// After the worker sweep, one more shape repeats the widest practical worker
// count with ts_ckpt checkpointing enabled (AsyncCheckpointer, one snapshot
// requested mid-stream into a scratch directory — relative to the trace
// length that is still ~60x the tool's default 2-second cadence, so the
// measured overhead is a conservative upper bound on production). Its output
// must stay byte-identical — snapshot barriers may not perturb the
// deterministic closed-session stream — and the JSON row carries
// "ckpt_overhead" (relative critical-path throughput loss), which the
// regression gate bounds via the baseline's max_ckpt_overhead.
//
// Flags: --rate (records/s), --seconds (trace length), --max_workers,
//        --quick (small CI preset), --json=PATH (write BENCH JSON).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/ckpt/async_checkpointer.h"
#include "src/ckpt/checkpointer.h"
#include "src/ckpt/live_checkpoint.h"
#include "src/common/arena.h"
#include "src/core/live_pipeline.h"
#include "src/log/record_batch.h"
#include "src/log/wire_format.h"
#include "src/replay/replayer.h"

namespace {

using namespace ts;
using namespace ts::bench;

// Lines per LineBlock / Flush tick: the poll-loop cadence of the real tool.
constexpr size_t kBlockLines = 4096;

// Interleaved repetitions per reported row (min-time-of-N).
constexpr int kReps = 3;

// The arrival stream, materialized once: owned text for the scalar-reference
// path, and the same bytes in an ingest arena as views for the zero-copy
// path (what recv-into-arena would have produced).
struct ArrivalStream {
  std::vector<std::string> lines;
  ArenaRef arena;
  std::vector<std::string_view> views;

  void BuildViews() {
    arena = std::make_shared<Arena>(256 << 10);
    views.reserve(lines.size());
    for (const auto& l : lines) {
      views.push_back(arena->Copy(l));
    }
  }
};

enum class FeedMode {
  kZeroCopyBlocks,   // FeedBlock over arena-backed views (measured path).
  kScalarReference,  // ParseWireFormat + FeedRecord (digest cross-check).
};

struct RunStats {
  size_t workers = 0;
  uint64_t records = 0;
  uint64_t sessions = 0;
  uint64_t parse_failures = 0;
  uint64_t backpressure_stalls = 0;
  double wall_s = 0;
  double critical_path_s = 0;
  double ingest_cpu_s = 0;
  double max_shard_cpu_s = 0;
  double p50_close_ms = 0;
  double p99_close_ms = 0;
  uint64_t session_digest = 0;  // XOR of per-session digests.
  uint64_t store_digest = 0;    // Digest of canonical store query answers.
  uint64_t ckpt_snapshots = 0;
  uint64_t ckpt_last_bytes = 0;
  uint64_t ckpt_skipped_busy = 0;

  double RecordsPerSecCp() const {
    return critical_path_s > 0 ? static_cast<double>(records) / critical_path_s
                               : 0;
  }
  double RecordsPerSecWall() const {
    return wall_s > 0 ? static_cast<double>(records) / wall_s : 0;
  }
};

RunStats RunOnce(const ArrivalStream& stream, size_t workers, FeedMode mode,
                 const char* ckpt_dir = nullptr) {
  RunStats stats;
  stats.workers = workers;
  std::unique_ptr<Checkpointer> ckpt;
  if (ckpt_dir != nullptr) {
    CheckpointerOptions ckpt_options;
    ckpt_options.dir = ckpt_dir;
    ckpt_options.interval_ms = 0;  // Record-count cadence in the feed loop.
    ckpt = std::make_unique<Checkpointer>(ckpt_options);
  }

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;  // No eviction: digests need all.
  auto store = std::make_shared<SessionStore>(store_options);
  std::mutex digest_mu;
  uint64_t session_digest = 0;
  std::set<std::string> ids;

  LivePipelineOptions options;
  options.workers = workers;
  options.inactivity_ns = 5 * kNanosPerSecond;
  options.record_close_latency = true;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(digest_mu);
      session_digest ^= d;
      ids.insert(s.id);
    }
    store->Insert(std::move(s));
  });

  std::unique_ptr<AsyncCheckpointer> async_ckpt;
  if (ckpt != nullptr) {
    async_ckpt = std::make_unique<AsyncCheckpointer>(
        ckpt.get(), &pipeline, store.get(), AsyncCheckpointer::Options{});
  }

  // One snapshot at the midpoint of the stream (rounded to a poll boundary):
  // the open set is near its peak there, and a single snapshot per run keeps
  // the writer's memory traffic from swamping the measured threads' caches on
  // a one-core host while still being far more frequent, relative to the
  // trace, than the tool's steady-time cadence.
  const size_t ckpt_at =
      (stream.lines.size() / 2) & ~static_cast<size_t>(kBlockLines - 1);
  const int64_t ingest_cpu_start = ThreadCpuNanos();
  Stopwatch wall;
  if (mode == FeedMode::kZeroCopyBlocks) {
    for (size_t begin = 0; begin < stream.views.size(); begin += kBlockLines) {
      const size_t end =
          std::min(begin + kBlockLines, stream.views.size());
      LineBlock block;
      block.arena = stream.arena;
      block.lines.assign(stream.views.begin() + begin,
                         stream.views.begin() + end);
      pipeline.FeedBlock(std::move(block));
      pipeline.Flush();  // Poll-loop cadence of the real tool.
      if (async_ckpt != nullptr && end == ckpt_at) {
        async_ckpt->RequestCheckpoint(end);
      }
    }
  } else {
    size_t fed = 0;
    for (const auto& l : stream.lines) {
      auto parsed = ParseWireFormat(l);
      if (parsed.has_value()) {
        pipeline.FeedRecord(std::move(*parsed));
      }
      if (++fed % kBlockLines == 0) {
        pipeline.Flush();
        if (async_ckpt != nullptr && fed == ckpt_at) {
          async_ckpt->RequestCheckpoint(fed);
        }
      }
    }
  }
  if (async_ckpt != nullptr) {
    stats.ckpt_skipped_busy = async_ckpt->snapshots_skipped_busy();
    async_ckpt.reset();  // Drain + join before Finish (barrier discipline).
  }
  pipeline.Finish();
  stats.wall_s = static_cast<double>(wall.ElapsedNanos()) / 1e9;
  stats.ingest_cpu_s =
      static_cast<double>(ThreadCpuNanos() - ingest_cpu_start) / 1e9;

  stats.records = pipeline.records();
  stats.sessions = pipeline.sessions_closed();
  stats.parse_failures = pipeline.parse_failures();
  stats.backpressure_stalls = pipeline.backpressure_stalls();
  for (size_t i = 0; i < pipeline.workers(); ++i) {
    stats.max_shard_cpu_s =
        std::max(stats.max_shard_cpu_s,
                 static_cast<double>(pipeline.shard(i).cpu_ns) / 1e9);
  }
  stats.critical_path_s = std::max(stats.ingest_cpu_s, stats.max_shard_cpu_s);
  stats.session_digest = session_digest;

  SampleSet latencies;
  for (double ms : pipeline.CloseLatenciesMs()) {
    latencies.Add(ms);
  }
  if (!latencies.empty()) {
    stats.p50_close_ms = latencies.Quantile(0.5);
    stats.p99_close_ms = latencies.Quantile(0.99);
  }

  // Store-query byte-equality: the bytes a ts_query client would receive
  // must not depend on worker count.
  stats.store_digest = ChainedStoreDigest(*store, ids);
  if (ckpt != nullptr) {
    stats.ckpt_snapshots = ckpt->snapshots_taken();
    stats.ckpt_last_bytes = ckpt->last_snapshot_bytes();
  }
  return stats;
}

double Speedup(const std::vector<RunStats>& rows, size_t workers) {
  double base = 0, at = 0;
  for (const auto& r : rows) {
    if (r.workers == 1) {
      base = r.RecordsPerSecCp();
    }
    if (r.workers == workers) {
      at = r.RecordsPerSecCp();
    }
  }
  return base > 0 ? at / base : 0;
}

bool SameOutput(const RunStats& a, const RunStats& b) {
  return a.session_digest == b.session_digest &&
         a.store_digest == b.store_digest && a.sessions == b.sessions &&
         a.records == b.records;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        return true;
      }
    }
    return false;
  }();
  const double rate = FlagDouble(argc, argv, "--rate", quick ? 15'000 : 40'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", quick ? 6 : 12);
  const int64_t max_workers = FlagInt(argc, argv, "--max_workers", 8);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("=== Fig 5 (live path): sharded serving-pipeline ingest scaling ===\n");
  std::printf("trace: %llds at %.0f records/s, 1263 streams / 42 servers\n\n",
              static_cast<long long>(seconds), rate);

  // Materialize the arrival stream once, in arrival order, exactly as a
  // single log-server connection would deliver it.
  ArrivalStream stream;
  {
    ReplayerConfig replay_config;
    replay_config.num_workers = 1;
    replay_config.as_text = true;
    replay_config.seed = 7;
    GeneratorConfig gen;
    gen.seed = 42;
    gen.duration_ns = seconds * kNanosPerSecond;
    gen.target_records_per_sec = rate;
    Replayer replayer(replay_config, gen);
    std::vector<Arrival> arrivals;
    for (Epoch e = 0;; ++e) {
      if (replayer.ArrivalsFor(0, e, &arrivals) ==
          ArrivalSource::Fetch::kEndOfStream) {
        break;
      }
      for (auto& a : arrivals) {
        stream.lines.push_back(std::move(a.line));
      }
    }
  }
  stream.BuildViews();
  std::printf("arrival stream: %zu records\n\n", stream.lines.size());

  bool identical = true;
  std::vector<RunStats> rows;
  for (size_t w = 1; w <= static_cast<size_t>(max_workers); w *= 2) {
    RunStats best;
    for (int rep = 0; rep < kReps; ++rep) {
      RunStats run = RunOnce(stream, w, FeedMode::kZeroCopyBlocks);
      if (rep == 0) {
        best = run;
      } else if (!SameOutput(run, best)) {
        identical = false;
        std::printf("MISMATCH at workers=%zu: output varies across reps\n", w);
      } else if (run.RecordsPerSecCp() > best.RecordsPerSecCp()) {
        best = run;
      }
    }
    rows.push_back(best);
    const RunStats& r = rows.back();
    std::printf(
        "workers=%zu: %10.0f rec/s critical-path (%8.0f wall, best of %d), "
        "%llu sessions, close p50=%.1fms p99=%.1fms, stalls=%llu\n",
        r.workers, r.RecordsPerSecCp(), r.RecordsPerSecWall(), kReps,
        static_cast<unsigned long long>(r.sessions), r.p50_close_ms,
        r.p99_close_ms, static_cast<unsigned long long>(r.backpressure_stalls));
  }

  // Scalar-reference cross-check: the reference parser fed record-by-record
  // must reconstruct byte-identical sessions at every worker count. This is
  // the guard that the SWAR scanner + lazy materialization changed nothing.
  for (size_t w = 1; w <= 4 && w <= static_cast<size_t>(max_workers); w *= 2) {
    const RunStats scalar = RunOnce(stream, w, FeedMode::kScalarReference);
    const bool ok = SameOutput(scalar, rows[0]);
    if (!ok) {
      identical = false;
    }
    std::printf(
        "scalar-reference workers=%zu: digest=%016llx store=%016llx %s\n", w,
        static_cast<unsigned long long>(scalar.session_digest),
        static_cast<unsigned long long>(scalar.store_digest),
        ok ? "== zero-copy" : "MISMATCH vs zero-copy");
  }

  // Checkpoint-enabled runs at the widest measured worker count: identical
  // output required, throughput loss bounded by the regression gate. Both
  // variants run interleaved several times and the overhead compares the
  // BEST run of each (min-time-of-N, as above).
  const size_t ckpt_workers = rows.back().workers;
  char ckpt_template[] = "/tmp/ts_fig5_ckpt_XXXXXX";
  const char* ckpt_root = ::mkdtemp(ckpt_template);
  if (ckpt_root == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string ckpt_dir = std::string(ckpt_root) + "/snap";
  const std::string ckpt_cleanup = "rm -rf '" + ckpt_dir + "'";
  constexpr int kCkptPairs = 7;
  double plain_tput = 0;
  RunStats ckpt_row;
  for (int rep = 0; rep < kCkptPairs; ++rep) {
    const RunStats plain =
        RunOnce(stream, ckpt_workers, FeedMode::kZeroCopyBlocks);
    plain_tput = std::max(plain_tput, plain.RecordsPerSecCp());
    (void)std::system(ckpt_cleanup.c_str());
    const RunStats with_ckpt = RunOnce(
        stream, ckpt_workers, FeedMode::kZeroCopyBlocks, ckpt_dir.c_str());
    (void)std::system(ckpt_cleanup.c_str());
    if (rep == 0 ||
        with_ckpt.RecordsPerSecCp() > ckpt_row.RecordsPerSecCp()) {
      ckpt_row = with_ckpt;
    }
    std::printf("  ckpt pair %d: plain %.0f vs ckpt %.0f rec/s\n", rep + 1,
                plain.RecordsPerSecCp(), with_ckpt.RecordsPerSecCp());
  }
  (void)std::system(("rm -rf '" + std::string(ckpt_root) + "'").c_str());
  const double ckpt_overhead =
      plain_tput > 0
          ? std::max(0.0, 1.0 - ckpt_row.RecordsPerSecCp() / plain_tput)
          : 0.0;
  std::printf(
      "workers=%zu +ckpt: %7.0f rec/s critical-path (%.1f%% overhead), "
      "%llu snapshot(s) (%llu ticks skipped busy), last %llu bytes\n"
      "  (ckpt run: ingest %.3fs, max shard %.3fs)\n",
      ckpt_workers, ckpt_row.RecordsPerSecCp(), 100.0 * ckpt_overhead,
      static_cast<unsigned long long>(ckpt_row.ckpt_snapshots),
      static_cast<unsigned long long>(ckpt_row.ckpt_skipped_busy),
      static_cast<unsigned long long>(ckpt_row.ckpt_last_bytes),
      ckpt_row.ingest_cpu_s, ckpt_row.max_shard_cpu_s);

  if (!SameOutput(ckpt_row, rows[0])) {
    identical = false;
    std::printf("MISMATCH in checkpoint-enabled run: snapshot barriers "
                "perturbed the output\n");
  }
  if (ckpt_row.ckpt_snapshots == 0) {
    identical = false;
    std::printf("MISMATCH: checkpoint-enabled run wrote no snapshots — "
                "overhead measurement is vacuous\n");
  }
  for (const auto& r : rows) {
    if (!SameOutput(r, rows[0])) {
      identical = false;
      std::printf("MISMATCH at workers=%zu: sessions=%llu digest=%016llx "
                  "store=%016llx (baseline %llu/%016llx/%016llx)\n",
                  r.workers, static_cast<unsigned long long>(r.sessions),
                  static_cast<unsigned long long>(r.session_digest),
                  static_cast<unsigned long long>(r.store_digest),
                  static_cast<unsigned long long>(rows[0].sessions),
                  static_cast<unsigned long long>(rows[0].session_digest),
                  static_cast<unsigned long long>(rows[0].store_digest));
    }
  }
  std::printf("\nresults across worker counts + scalar reference: %s\n",
              identical ? "byte-identical" : "MISMATCH");
  std::printf("speedup vs 1 worker (critical-path): 2w=%.2fx 4w=%.2fx\n",
              Speedup(rows, 2), Speedup(rows, 4));

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"live_scaling\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"rate\": %.0f,\n  \"seconds\": %lld,\n", rate,
                 static_cast<long long>(seconds));
    std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "  \"speedup_4w\": %.3f,\n", Speedup(rows, 4));
    std::fprintf(f, "  \"ckpt_workers\": %zu,\n", ckpt_workers);
    std::fprintf(f, "  \"ckpt_records_per_s\": %.0f,\n",
                 ckpt_row.RecordsPerSecCp());
    std::fprintf(f, "  \"ckpt_overhead\": %.4f,\n", ckpt_overhead);
    std::fprintf(f, "  \"ckpt_snapshots\": %llu,\n",
                 static_cast<unsigned long long>(ckpt_row.ckpt_snapshots));
    std::fprintf(f, "  \"ckpt_skipped_busy\": %llu,\n",
                 static_cast<unsigned long long>(ckpt_row.ckpt_skipped_busy));
    std::fprintf(f, "  \"ckpt_last_bytes\": %llu,\n",
                 static_cast<unsigned long long>(ckpt_row.ckpt_last_bytes));
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const RunStats& r = rows[i];
      std::fprintf(
          f,
          "    {\"workers\": %zu, \"records_per_s\": %.0f, "
          "\"records_per_s_wall\": %.0f, \"p50_close_ms\": %.3f, "
          "\"p99_close_ms\": %.3f, \"sessions\": %llu, "
          "\"backpressure_stalls\": %llu}%s\n",
          r.workers, r.RecordsPerSecCp(), r.RecordsPerSecWall(),
          r.p50_close_ms, r.p99_close_ms,
          static_cast<unsigned long long>(r.sessions),
          static_cast<unsigned long long>(r.backpressure_stalls),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
