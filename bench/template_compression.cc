// Template-mining compression bench: how much SessionStore memory does
// ts_parse's online template mining save on an unstructured free-text
// workload, and does the mined live path stay deterministic?
//
// The workload is the generator's --free_text mode: payloads drawn from a
// seeded pool of message templates (constant words + variable slots), the
// kind of log line the paper's datacenter emits but TS stores verbatim. The
// bench feeds the same arrival stream through the live serving pipeline
// twice — once raw, once with --mine-templates (payloads rewritten to
// "#<template_id> <var>..." on ingest) — and reports store bytes/session for
// both, their ratio, and the mined dictionary size. The CI bench-smoke lane
// tracks the ratio via bench/baselines/template_compression.json
// (min_compression_ratio) and scripts/check_bench_regression.py.
//
// Mining happens on the single ingest thread before sharding, so the mined
// run must remain byte-identical across worker counts exactly like the plain
// live path; the bench re-runs the mined lane at 1/2/4 workers and fails
// (exit 1) on any session/store digest mismatch.
//
// Flags: --rate (records/s), --seconds (trace length), --quick (CI preset),
//        --json=PATH (write BENCH JSON).
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/analytics/session_digest.h"
#include "src/analytics/session_store.h"
#include "src/core/live_pipeline.h"
#include "src/log/wire_format.h"
#include "src/workload/generator.h"

namespace {

using namespace ts;
using namespace ts::bench;

struct LaneStats {
  std::string lane;
  size_t workers = 0;
  uint64_t records = 0;
  uint64_t sessions = 0;
  uint64_t store_bytes = 0;
  uint64_t session_digest = 0;
  uint64_t store_digest = 0;
  uint64_t templates = 0;
  uint64_t nodes = 0;
  double wall_s = 0;

  double BytesPerSession() const {
    return sessions > 0 ? static_cast<double>(store_bytes) / sessions : 0;
  }
  double RecordsPerSecWall() const {
    return wall_s > 0 ? static_cast<double>(records) / wall_s : 0;
  }
};

LaneStats RunOnce(const std::vector<std::string>& lines, size_t workers,
                  bool mine) {
  LaneStats stats;
  stats.lane = mine ? "mined" : "raw";
  stats.workers = workers;

  SessionStore::Options store_options;
  store_options.max_bytes = 1ull << 30;  // No eviction: digests need all.
  auto store = std::make_shared<SessionStore>(store_options);
  std::mutex digest_mu;
  uint64_t session_digest = 0;
  std::set<std::string> ids;

  LivePipelineOptions options;
  options.workers = workers;
  options.inactivity_ns = 5 * kNanosPerSecond;
  options.mine_templates = mine;
  LivePipeline pipeline(options, [&](Session&& s) {
    thread_local std::string scratch;
    const uint64_t d = SessionDigest(s, &scratch);
    {
      std::lock_guard<std::mutex> lock(digest_mu);
      session_digest ^= d;
      ids.insert(s.id);
    }
    store->Insert(std::move(s));
  });

  Stopwatch wall;
  size_t fed = 0;
  for (const auto& l : lines) {
    pipeline.FeedLine(l);
    if (++fed % 4096 == 0) {
      pipeline.Flush();  // Poll-loop cadence of the real tool.
    }
  }
  pipeline.Finish();
  stats.wall_s = static_cast<double>(wall.ElapsedNanos()) / 1e9;

  stats.records = pipeline.records();
  stats.sessions = store->stats().sessions;
  stats.store_bytes = store->stats().bytes;
  stats.session_digest = session_digest;
  stats.store_digest = ChainedStoreDigest(*store, ids);
  stats.templates = pipeline.template_count();
  stats.nodes = pipeline.template_nodes();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        return true;
      }
    }
    return false;
  }();
  const double rate = FlagDouble(argc, argv, "--rate", quick ? 8'000 : 25'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", quick ? 6 : 12);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("=== template mining: store compression on free-text logs ===\n");
  std::printf("trace: %llds at %.0f records/s, free-text payloads\n\n",
              static_cast<long long>(seconds), rate);

  // Materialize the arrival stream once, exactly as one log-server
  // connection would deliver it (event-time order, wire text).
  std::vector<std::string> lines;
  {
    GeneratorConfig gen;
    gen.seed = 42;
    gen.duration_ns = seconds * kNanosPerSecond;
    gen.target_records_per_sec = rate;
    gen.free_text_payloads = true;
    TraceGenerator generator(gen);
    Epoch epoch = 0;
    std::vector<LogRecord> records;
    std::string line;
    while (generator.NextEpoch(&epoch, &records)) {
      for (const auto& r : records) {
        line.clear();
        AppendWireFormat(r, &line);
        lines.push_back(line);
      }
    }
  }
  std::printf("arrival stream: %zu records\n\n", lines.size());

  const LaneStats raw = RunOnce(lines, /*workers=*/2, /*mine=*/false);
  std::printf("raw:   %8.0f bytes/session (%llu sessions, %.0f rec/s wall)\n",
              raw.BytesPerSession(),
              static_cast<unsigned long long>(raw.sessions),
              raw.RecordsPerSecWall());

  std::vector<LaneStats> mined;
  for (size_t w = 1; w <= 4; w *= 2) {
    mined.push_back(RunOnce(lines, w, /*mine=*/true));
  }
  const LaneStats& m = mined[1];  // workers=2, same shape as the raw lane.
  std::printf("mined: %8.0f bytes/session (%llu sessions, %.0f rec/s wall), "
              "%llu templates in %llu tree nodes\n",
              m.BytesPerSession(), static_cast<unsigned long long>(m.sessions),
              m.RecordsPerSecWall(), static_cast<unsigned long long>(m.templates),
              static_cast<unsigned long long>(m.nodes));

  const double ratio = m.BytesPerSession() > 0
                           ? raw.BytesPerSession() / m.BytesPerSession()
                           : 0;
  std::printf("\nstore compression: %.2fx\n", ratio);

  // Determinism: the mined closed-session stream and store answers must not
  // depend on worker count (mining happens before the shard exchange).
  bool identical = true;
  for (const auto& r : mined) {
    if (r.session_digest != mined[0].session_digest ||
        r.store_digest != mined[0].store_digest ||
        r.sessions != mined[0].sessions || r.records != mined[0].records ||
        r.templates != mined[0].templates || r.nodes != mined[0].nodes) {
      identical = false;
      std::printf("MISMATCH at workers=%zu: sessions=%llu digest=%016llx "
                  "store=%016llx templates=%llu\n",
                  r.workers, static_cast<unsigned long long>(r.sessions),
                  static_cast<unsigned long long>(r.session_digest),
                  static_cast<unsigned long long>(r.store_digest),
                  static_cast<unsigned long long>(r.templates));
    }
  }
  if (raw.sessions != mined[0].sessions || raw.records != mined[0].records) {
    identical = false;
    std::printf("MISMATCH: mined run closed %llu sessions vs %llu raw — "
                "mining must not change sessionization\n",
                static_cast<unsigned long long>(mined[0].sessions),
                static_cast<unsigned long long>(raw.sessions));
  }
  std::printf("mined output across 1/2/4 workers: %s\n",
              identical ? "byte-identical" : "MISMATCH");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"template_compression\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "  \"rate\": %.0f,\n  \"seconds\": %lld,\n", rate,
                 static_cast<long long>(seconds));
    std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
    std::fprintf(f, "  \"compression_ratio\": %.3f,\n", ratio);
    std::fprintf(f, "  \"templates\": %llu,\n",
                 static_cast<unsigned long long>(m.templates));
    std::fprintf(f, "  \"template_nodes\": %llu,\n",
                 static_cast<unsigned long long>(m.nodes));
    std::fprintf(f, "  \"rows\": [\n");
    const LaneStats* rows[] = {&raw, &m};
    for (size_t i = 0; i < 2; ++i) {
      const LaneStats& r = *rows[i];
      std::fprintf(f,
                   "    {\"lane\": \"%s\", \"bytes_per_session\": %.0f, "
                   "\"records_per_s_wall\": %.0f, \"sessions\": %llu}%s\n",
                   r.lane.c_str(), r.BytesPerSession(), r.RecordsPerSecWall(),
                   static_cast<unsigned long long>(r.sessions),
                   i + 1 < 2 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical ? 0 : 1;
}
