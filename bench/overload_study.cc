// Overload study: close latency vs offered load around measured capacity.
//
// Methodology (docs/LOADGEN.md):
//
//  1. Calibrate capacity. Run the open-loop generator at a rate far beyond
//     what one core can sustain. The generator never slows its schedule, so
//     records pile into its local backlog and the *wire acceptance rate* —
//     report.achieved_rate, records flushed per second of pacing wall time —
//     degenerates to the consumer's drain rate: the system's capacity with
//     both processes sharing this machine, which is exactly how the lanes run.
//
//  2. Lanes at 0.8x / 0.95x / 1.1x capacity. The two subcritical lanes run
//     with shedding off and must reconcile with nothing shed. The 1.1x lane
//     runs with --shed-policy=oldest-open and must (a) keep the watermark
//     advancing, (b) finish in bounded time (the open-loop schedule is never
//     allowed to stall on the consumer), and (c) reconcile exactly:
//       received == parsed + shed_lines
//       parsed   == emitted + shed_records          (open == 0 after Finish)
//
// All latency percentiles are coordinated-omission-safe: close latency is
// measured from the session's *intended* last-record send time on the fixed
// schedule, not from when the socket finally accepted the bytes.
//
// Output: one human table row per lane; --json=PATH writes BENCH JSON for
// scripts/check_bench_regression.py (rows keyed by "lane"; the baseline caps
// p99_close_ms per lane via max_p99_close_ms). The JSON's "identical" field
// carries the correctness verdict — reconciliation + watermark + transport —
// so the existing gate fails the build when overload accounting breaks.
//
// Flags: --quick (short lanes, CI), --seconds=S, --calib-seconds=S,
//        --workers=N, --json=PATH.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/latency_recorder.h"
#include "src/common/time_util.h"
#include "src/loadgen/harness.h"
#include "src/loadgen/load_generator.h"

namespace ts {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Flag(int argc, char** argv, const char* name, double fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atof(argv[i] + len + 1);
    }
  }
  return fallback;
}

const char* FlagStr(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

struct StudyConfig {
  bool quick = false;
  size_t workers = 2;
  double lane_seconds = 5.0;
  double calib_seconds = 3.0;
  int64_t inactivity_ns = kNanosPerSecond;
};

struct LaneResult {
  std::string lane;
  double factor = 0;
  bool shed = false;
  double goal_rate = 0;
  double achieved_rate = 0;
  double p50_close_ms = 0;
  double p99_close_ms = 0;
  double p999_close_ms = 0;
  double p99_lateness_ms = 0;
  uint64_t closes_observed = 0;
  uint64_t closes_missing = 0;
  uint64_t shed_records = 0;
  uint64_t shed_lines = 0;
  uint64_t stall_us = 0;
  double elapsed_s = 0;
  bool reconciled = false;
  bool watermark_ok = false;
  bool transport_ok = false;
  bool Ok() const { return reconciled && watermark_ok && transport_ok; }
};

double QuantMs(const LatencyRecorder& r, double q) {
  return r.count() == 0 ? 0.0 : static_cast<double>(r.ValueAtQuantile(q)) / 1e6;
}

// One capacity probe: offer `rate` under exactly the lane conditions —
// subscriber attached, same inactivity window — and return the achieved wire
// rate (records flushed per second of pacing wall time).
double ProbeRate(const StudyConfig& config, double rate, bool* ok) {
  HarnessOptions hopts;
  hopts.workers = config.workers;
  hopts.inactivity_ns = config.inactivity_ns;
  ConsumerHarness harness(hopts);

  LoadGenOptions lopts;
  lopts.rate_per_s = rate;
  lopts.duration_s = config.calib_seconds;
  lopts.inactivity_ns = config.inactivity_ns;
  lopts.quiet = true;
  lopts.synth.concurrent_sessions = 512;
  lopts.synth.records_per_session = 20;
  LoadGenerator gen(lopts);
  if (!gen.Listen() || !harness.Start(gen.port())) {
    *ok = false;
    return 0;
  }
  gen.SetSubscriber("127.0.0.1", harness.query_port());
  const LoadGenReport report = gen.Run();
  harness.Join();
  harness.Stop();
  if (!report.ok || report.achieved_rate <= 0) {
    std::fprintf(stderr, "calibration probe failed: %s\n",
                 report.error.c_str());
    *ok = false;
    return 0;
  }
  *ok = true;
  return report.achieved_rate;
}

// Capacity = the highest sustainable offered rate, found by raising the goal
// until the wire falls behind the schedule. Probing (rather than one
// saturating blast) keeps the generator's own CPU share comparable to how the
// lanes run, so "1.1x capacity" really is supercritical on this machine.
double CalibrateCapacity(const StudyConfig& config) {
  double rate = 60'000;
  double capacity = 0;
  for (int probe = 0; probe < 8; ++probe) {
    bool ok = false;
    const double achieved = ProbeRate(config, rate, &ok);
    if (!ok) {
      return 0;
    }
    capacity = achieved;
    std::printf("  probe %d: offered %.0f r/s, achieved %.0f r/s%s\n",
                probe, rate, achieved,
                achieved < 0.97 * rate ? " (wire-limited)" : "");
    if (achieved < 0.97 * rate) {
      break;  // Unattainable: the wire rate is the drain rate.
    }
    rate *= 1.7;
  }
  return capacity;
}

LaneResult RunLane(const StudyConfig& config, double capacity, double factor,
                   bool shed) {
  LaneResult r;
  char name[32];
  std::snprintf(name, sizeof(name), "%.2fx", factor);
  r.lane = name;
  r.factor = factor;
  r.shed = shed;
  r.goal_rate = capacity * factor;

  HarnessOptions hopts;
  hopts.workers = config.workers;
  hopts.inactivity_ns = config.inactivity_ns;
  if (shed) {
    hopts.shed_policy = ShedPolicy::kOldestOpen;
    hopts.shed_open_bytes = 8ull << 20;
    hopts.shed_stall_limit_ms = 20;
  }
  ConsumerHarness harness(hopts);

  LoadGenOptions lopts;
  lopts.rate_per_s = r.goal_rate;
  lopts.duration_s = config.lane_seconds;
  lopts.inactivity_ns = config.inactivity_ns;
  lopts.synth.seed = 11;
  lopts.synth.concurrent_sessions = 512;
  lopts.synth.records_per_session = 20;
  LoadGenerator gen(lopts);
  if (!gen.Listen() || !harness.Start(gen.port())) {
    return r;
  }
  gen.SetSubscriber("127.0.0.1", harness.query_port());

  const int64_t start = SteadyNowNanos();
  const LoadGenReport report = gen.Run();
  harness.Join();
  r.elapsed_s = static_cast<double>(SteadyNowNanos() - start) / 1e9;
  const auto acct = harness.GetAccounting();

  r.achieved_rate = report.achieved_rate;
  r.p50_close_ms = QuantMs(report.close_latency, 0.50);
  r.p99_close_ms = QuantMs(report.close_latency, 0.99);
  r.p999_close_ms = QuantMs(report.close_latency, 0.999);
  r.p99_lateness_ms = QuantMs(report.send_lateness, 0.99);
  r.closes_observed = report.closes_observed;
  r.closes_missing = report.closes_missing;
  r.shed_records = acct.shed_records;
  r.shed_lines = acct.shed_lines;
  r.stall_us = static_cast<uint64_t>(
      harness.pipeline()->backpressure_stall_ns() / 1000);
  r.transport_ok = report.ok && !harness.transport_failed() &&
                   acct.parse_failures == 0;
  r.reconciled = acct.Reconciles() &&
                 (shed || (acct.shed_records == 0 && acct.shed_lines == 0));
  r.watermark_ok = harness.pipeline()->ingest_watermark() > 0;
  // An overloaded lane must still finish promptly: schedule + inactivity
  // drain + backlog flush, with margin for shared-core scheduling jitter.
  if (shed && r.elapsed_s > 8 * config.lane_seconds + 30) {
    r.transport_ok = false;
  }
  harness.Stop();
  return r;
}

int Run(int argc, char** argv) {
  StudyConfig config;
  config.quick = HasFlag(argc, argv, "--quick");
  if (config.quick) {
    config.lane_seconds = 2.0;
    config.calib_seconds = 1.5;
    config.inactivity_ns = 500 * kNanosPerMilli;
  }
  config.workers = static_cast<size_t>(Flag(argc, argv, "--workers", 2));
  config.lane_seconds =
      Flag(argc, argv, "--seconds", config.lane_seconds);
  config.calib_seconds =
      Flag(argc, argv, "--calib-seconds", config.calib_seconds);

  std::printf("calibrating capacity (%.1fs probes, rising offered rate)...\n",
              config.calib_seconds);
  const double capacity = CalibrateCapacity(config);
  if (capacity <= 0) {
    std::fprintf(stderr, "overload_study: calibration produced no capacity\n");
    return 1;
  }
  std::printf("measured capacity: %.0f records/s\n\n", capacity);

  std::vector<LaneResult> lanes;
  lanes.push_back(RunLane(config, capacity, 0.80, /*shed=*/false));
  lanes.push_back(RunLane(config, capacity, 0.95, /*shed=*/false));
  lanes.push_back(RunLane(config, capacity, 1.10, /*shed=*/true));

  std::printf("%-7s %12s %12s %10s %10s %10s %10s %10s %10s %6s\n", "lane",
              "goal r/s", "achieved", "p50close", "p99close", "p999close",
              "p99late", "shed_rec", "stall_us", "ok");
  bool all_ok = true;
  for (const auto& lane : lanes) {
    all_ok = all_ok && lane.Ok();
    std::printf(
        "%-7s %12.0f %12.0f %8.1fms %8.1fms %8.1fms %8.1fms %10" PRIu64
        " %10" PRIu64 " %6s\n",
        lane.lane.c_str(), lane.goal_rate, lane.achieved_rate,
        lane.p50_close_ms, lane.p99_close_ms, lane.p999_close_ms,
        lane.p99_lateness_ms, lane.shed_records, lane.stall_us,
        lane.Ok() ? "ok" : "FAIL");
  }

  if (const char* json_path = FlagStr(argc, argv, "--json")) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"overload_study\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", config.quick ? "true" : "false");
    std::fprintf(f, "  \"capacity_rec_s\": %.0f,\n", capacity);
    std::fprintf(f, "  \"identical\": %s,\n", all_ok ? "true" : "false");
    std::fprintf(f,
                 "  \"identity_check\": \"overload lanes must reconcile "
                 "(records_in == stored + shed), keep the watermark advancing, "
                 "and finish with a clean transport\",\n");
    std::fprintf(f, "  \"rows\": [\n");
    for (size_t i = 0; i < lanes.size(); ++i) {
      const auto& lane = lanes[i];
      std::fprintf(
          f,
          "    {\"lane\": \"%s\", \"shed\": %s, \"goal_rate\": %.0f, "
          "\"achieved_rate\": %.0f, \"p50_close_ms\": %.3f, "
          "\"p99_close_ms\": %.3f, \"p999_close_ms\": %.3f, "
          "\"p99_lateness_ms\": %.3f, \"closes_observed\": %" PRIu64 ", "
          "\"closes_missing\": %" PRIu64 ", \"shed_records\": %" PRIu64 ", "
          "\"shed_lines\": %" PRIu64 ", \"stall_us\": %" PRIu64 ", "
          "\"reconciled\": %s}%s\n",
          lane.lane.c_str(), lane.shed ? "true" : "false", lane.goal_rate,
          lane.achieved_rate, lane.p50_close_ms, lane.p99_close_ms,
          lane.p999_close_ms, lane.p99_lateness_ms, lane.closes_observed,
          lane.closes_missing, lane.shed_records, lane.shed_lines,
          lane.stall_us, lane.Ok() ? "true" : "false",
          i + 1 < lanes.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (!all_ok) {
    std::fprintf(stderr, "overload_study: FAIL (see lane table)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ts

int main(int argc, char** argv) { return ts::Run(argc, argv); }
