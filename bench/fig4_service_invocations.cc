// Figure 4: "Histogram reflecting the number of service invocations in trace
// trees."
//
// Builds trace trees offline from a generated slice and histograms the number
// of distinct services each tree touches. The paper's shape: the mass sits at
// one or a few services per tree, with a thin tail — typical of an enterprise
// SOA whose decomposition is broad rather than micro-service-fine.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "src/offline/offline_sessionizer.h"
#include "src/core/trace_tree.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace ts;
  const double rate = bench::FlagDouble(argc, argv, "--rate", 30'000);
  const int64_t seconds = bench::FlagInt(argc, argv, "--seconds", 15);

  GeneratorConfig config;
  config.seed = 42;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = rate;

  TraceGenerator gen(config);
  std::vector<LogRecord> all;
  Epoch epoch = 0;
  std::vector<LogRecord> batch;
  while (gen.NextEpoch(&epoch, &batch)) {
    for (auto& r : batch) {
      all.push_back(std::move(r));
    }
  }

  auto sessions = OfflineSessionizer::Sessionize(std::move(all));
  std::map<size_t, uint64_t> histogram;  // services -> tree count.
  uint64_t trees = 0;
  for (const auto& s : sessions) {
    for (const auto& tree : TraceTree::FromSession(s)) {
      ++histogram[tree.DistinctServices()];
      ++trees;
    }
  }

  std::printf("=== Figure 4: service invocations per trace tree ===\n");
  std::printf("%llu trace trees from %zu sessions\n\n",
              static_cast<unsigned long long>(trees), sessions.size());
  std::printf("%-14s %12s %8s  %s\n", "services/tree", "trees", "share", "");
  // Bucket: 1, 2, 3, 4, 5-8, 9-16, 17-32, 33+ (log-style buckets like the
  // paper's axis).
  struct Bucket {
    const char* label;
    size_t lo, hi;
  };
  const Bucket buckets[] = {{"1", 1, 1},     {"2", 2, 2},     {"3", 3, 3},
                            {"4", 4, 4},     {"5-8", 5, 8},   {"9-16", 9, 16},
                            {"17-32", 17, 32}, {"33+", 33, SIZE_MAX}};
  for (const auto& b : buckets) {
    uint64_t count = 0;
    for (const auto& [services, n] : histogram) {
      if (services >= b.lo && services <= b.hi) {
        count += n;
      }
    }
    const double share = 100.0 * static_cast<double>(count) /
                         static_cast<double>(trees);
    std::printf("%-14s %12llu %7.2f%%  ", b.label,
                static_cast<unsigned long long>(count), share);
    const int bars = static_cast<int>(share / 2.0 + 0.5);
    for (int i = 0; i < bars; ++i) {
      std::printf("#");
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: most trees include only a single or a few services;\n"
              "counts drop off steeply with the number of services.\n");
  return 0;
}
