// Serving-path micro-benchmark: what the ts_query subsystem adds on top of
// the in-process SessionStore. Measures (a) point-lookup round-trip latency
// and throughput over loopback TCP versus the in-process call, (b) scan
// (SERVICE limit) throughput, and (c) SUBSCRIBE fan-out: sustained
// sessions/sec delivered to N concurrent live-tail subscribers — the
// "millions of users" serving direction of the ROADMAP north star, sized
// down to a laptop.
//
// Usage: query_serving [--sessions=20000] [--queries=5000] [--subscribers=4]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/analytics/session_store.h"
#include "src/query/query_client.h"
#include "src/query/query_server.h"

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return fallback;
}

ts::Session MakeSession(uint64_t n, size_t records) {
  ts::Session s;
  s.id = "BENCH" + std::to_string(n);
  const ts::EventTime base = static_cast<ts::EventTime>(n) * 1000;
  for (size_t i = 0; i < records; ++i) {
    ts::LogRecord r;
    r.time = base + static_cast<ts::EventTime>(i);
    r.session_id = s.id;
    r.txn_id = *ts::TxnId::Parse("1-2");
    r.service = static_cast<uint32_t>((n + i) % 64);
    r.host = r.service;
    r.payload = "k=v&step=" + std::to_string(i);
    s.records.push_back(std::move(r));
  }
  s.first_epoch = base / ts::kNanosPerSecond;
  s.last_epoch = s.first_epoch;
  s.closed_at = s.last_epoch;
  return s;
}

struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
};

LatencySummary Summarize(std::vector<int64_t>& latencies_ns,
                         int64_t elapsed_ns) {
  std::sort(latencies_ns.begin(), latencies_ns.end());
  LatencySummary s;
  if (latencies_ns.empty()) {
    return s;
  }
  s.p50_us =
      static_cast<double>(latencies_ns[latencies_ns.size() / 2]) / 1e3;
  s.p99_us =
      static_cast<double>(latencies_ns[latencies_ns.size() * 99 / 100]) / 1e3;
  s.qps = static_cast<double>(latencies_ns.size()) * 1e9 /
          static_cast<double>(elapsed_ns);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const size_t num_sessions =
      static_cast<size_t>(Flag(argc, argv, "--sessions", 20'000));
  const size_t num_queries =
      static_cast<size_t>(Flag(argc, argv, "--queries", 5'000));
  const size_t num_subscribers =
      static_cast<size_t>(Flag(argc, argv, "--subscribers", 4));

  auto store = std::make_shared<SessionStore>();
  for (size_t n = 0; n < num_sessions; ++n) {
    store->Insert(MakeSession(n, /*records=*/8));
  }

  QueryServerOptions options;
  QueryServer server(options, store);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }
  std::thread server_thread([&server] { server.Run(); });

  QueryClientOptions client_options;
  client_options.port = server.port();
  QueryClient client(client_options);
  if (!client.Connect()) {
    std::fprintf(stderr, "cannot connect\n");
    return 1;
  }

  std::printf("store: %zu sessions, %.1f MiB\n", store->stats().sessions,
              static_cast<double>(store->stats().bytes) / (1 << 20));

  // (a) in-process baseline vs wire round trip, point lookups.
  {
    std::vector<int64_t> lat;
    lat.reserve(num_queries);
    const int64_t t0 = NowNs();
    for (size_t q = 0; q < num_queries; ++q) {
      const int64_t s = NowNs();
      auto hit = store->GetById("BENCH" + std::to_string(q % num_sessions));
      lat.push_back(NowNs() - s);
      if (!hit.has_value()) {
        std::fprintf(stderr, "miss!\n");
        return 1;
      }
    }
    const auto sum = Summarize(lat, NowNs() - t0);
    std::printf("GET in-process : %9.0f ops/s  p50 %6.1fus  p99 %6.1fus\n",
                sum.qps, sum.p50_us, sum.p99_us);
  }
  {
    std::vector<int64_t> lat;
    lat.reserve(num_queries);
    const int64_t t0 = NowNs();
    for (size_t q = 0; q < num_queries; ++q) {
      const int64_t s = NowNs();
      auto response = client.Get("BENCH" + std::to_string(q % num_sessions));
      lat.push_back(NowNs() - s);
      if (!response.ok || response.sessions.size() != 1) {
        std::fprintf(stderr, "wire miss!\n");
        return 1;
      }
    }
    const auto sum = Summarize(lat, NowNs() - t0);
    std::printf("GET over wire  : %9.0f ops/s  p50 %6.1fus  p99 %6.1fus\n",
                sum.qps, sum.p50_us, sum.p99_us);
  }

  // (b) bounded scans.
  {
    std::vector<int64_t> lat;
    const size_t scans = std::max<size_t>(1, num_queries / 10);
    lat.reserve(scans);
    const int64_t t0 = NowNs();
    uint64_t fetched = 0;
    for (size_t q = 0; q < scans; ++q) {
      const int64_t s = NowNs();
      auto response = client.ByService(static_cast<uint32_t>(q % 64), 20);
      lat.push_back(NowNs() - s);
      fetched += response.count;
    }
    const auto sum = Summarize(lat, NowNs() - t0);
    std::printf(
        "SERVICE scan 20: %9.0f ops/s  p50 %6.1fus  p99 %6.1fus  "
        "(%.1f sessions/scan)\n",
        sum.qps, sum.p50_us, sum.p99_us,
        static_cast<double>(fetched) / static_cast<double>(scans));
  }

  // (c) subscription fan-out: N tailing subscribers, one inserter.
  {
    std::atomic<uint64_t> delivered{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> tails;
    for (size_t i = 0; i < num_subscribers; ++i) {
      tails.emplace_back([&, i] {
        QueryClient sub(client_options);
        if (!sub.Connect() || !sub.Subscribe()) {
          std::fprintf(stderr, "subscriber %zu failed\n", i);
          return;
        }
        Session session;
        while (!stop.load(std::memory_order_acquire)) {
          if (sub.Next(&session, nullptr, 50) ==
              QueryClient::Event::kSession) {
            delivered.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // Give subscribers time to attach before measuring.
    while (server.subscriber_count() < num_subscribers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const size_t inserts = num_sessions / 4;
    const int64_t t0 = NowNs();
    for (size_t n = 0; n < inserts; ++n) {
      store->Insert(MakeSession(num_sessions + n, /*records=*/8));
    }
    const uint64_t expected =
        static_cast<uint64_t>(inserts) * num_subscribers;
    const int64_t deadline = NowNs() + 20ll * 1000 * 1000 * 1000;
    const auto counters_settled = [&] {
      const auto c = server.counters();
      return c.sessions_streamed + c.sessions_dropped >= expected;
    };
    while (delivered.load() + server.counters().sessions_dropped < expected &&
           NowNs() < deadline && !counters_settled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Let tails drain whatever is still buffered.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const int64_t elapsed = NowNs() - t0;
    stop.store(true, std::memory_order_release);
    for (auto& t : tails) {
      t.join();
    }
    const auto counters = server.counters();
    std::printf(
        "SUBSCRIBE x%zu  : %9.0f sessions/s delivered  "
        "(%llu delivered, %llu dropped on slow tails)\n",
        num_subscribers,
        static_cast<double>(delivered.load()) * 1e9 /
            static_cast<double>(elapsed),
        static_cast<unsigned long long>(counters.sessions_streamed),
        static_cast<unsigned long long>(counters.sessions_dropped));
  }

  server.Stop();
  server_thread.join();
  return 0;
}
