// Shared harness for the table/figure benchmarks: runs the full TS pipeline
// (replayer -> ingest -> sessionize [-> analytics]) and measures what the
// paper measures.
//
// Latency per epoch follows §5.1: "the interval between (i) the first time an
// epoch is observed, and (ii) the time a punctuation is delivered by the
// system, confirming that the epoch is over" — here, first Give() of a record
// of the epoch to the probe's frontier passing the epoch.
//
// The evaluation container has a single CPU core, so m worker threads
// timeshare it and wall-clock latency cannot show scaling. Alongside wall
// clock we therefore record each worker's per-epoch thread-CPU time and report
// the critical path max_w cpu_w(e) — the epoch latency the run would achieve
// with one core per worker (workers only synchronize through asynchronous
// progress exchange). See DESIGN.md §3 (substitutions).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/analytics/collectors.h"
#include "src/analytics/session_stats.h"
#include "src/analytics/topk.h"
#include "src/common/mem_probe.h"
#include "src/common/siphash.h"
#include "src/common/stats.h"
#include "src/common/thread_timer.h"
#include "src/core/sessionize.h"
#include "src/core/tree_ops.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

namespace ts {
namespace bench {

inline int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Which analytics stages to attach downstream of sessionization.
struct AnalyticsSelection {
  bool trace_trees = false;
  bool signature_topk = false;  // §5.2 online trace-tree clustering.
  bool pair_topk = false;       // §5.2 communication-pattern mining.
  size_t k = 10;
};

struct PipelineOptions {
  size_t workers = 2;
  GeneratorConfig gen;
  size_t num_servers = 42;
  size_t num_processes = 1263;
  bool as_text = true;
  double straggler_prob = 0.0;
  EventTime straggler_max_ns = 500 * kNanosPerSecond;
  EventTime slack_ns = 2 * kNanosPerSecond;
  size_t gate_lookahead = 2;
  Epoch inactivity_epochs = 5;
  EventTime epoch_width_ns = kDefaultEpochWidthNs;  // §4.1 granularity ablation.
  AnalyticsSelection analytics;
  uint64_t replay_seed = 7;
};

struct EpochStats {
  int64_t first_give_ns = std::numeric_limits<int64_t>::max();
  int64_t done_ns = 0;
  int64_t cpu_max_ns = 0;    // Max over workers of attributed CPU.
  int64_t cpu_total_ns = 0;  // Sum over workers.
  int64_t input_cpu_ns = 0;  // Ingest-driver CPU (subset of cpu_total).
  uint64_t records = 0;

  double WallLatencyMs() const {
    if (done_ns == 0 || first_give_ns == std::numeric_limits<int64_t>::max()) {
      return 0;
    }
    return static_cast<double>(done_ns - first_give_ns) / 1e6;
  }
  double CriticalPathMs() const { return static_cast<double>(cpu_max_ns) / 1e6; }
};

struct PipelineResult {
  std::map<Epoch, EpochStats> epochs;
  uint64_t records_fed = 0;
  uint64_t reorder_dropped = 0;
  uint64_t sessions = 0;
  uint64_t trees = 0;
  int64_t input_cpu_ns = 0;
  size_t peak_reorder_bytes = 0;
  size_t peak_session_state_bytes = 0;
  size_t peak_rss_bytes = 0;
  RunResult run;

  // Per-epoch sample sets over epochs that actually carried data.
  SampleSet WallLatenciesMs() const {
    SampleSet s;
    for (const auto& [e, stats] : epochs) {
      if (stats.records > 0 && stats.done_ns != 0) {
        s.Add(stats.WallLatencyMs());
      }
    }
    return s;
  }
  SampleSet CriticalPathMs() const {
    SampleSet s;
    for (const auto& [e, stats] : epochs) {
      if (stats.records > 0) {
        s.Add(stats.CriticalPathMs());
      }
    }
    return s;
  }
};

// Runs the pipeline to completion and aggregates per-epoch measurements.
inline PipelineResult RunPipeline(const PipelineOptions& options) {
  ReplayerConfig replay_config;
  replay_config.num_servers = options.num_servers;
  replay_config.num_processes = options.num_processes;
  replay_config.num_workers = options.workers;
  replay_config.as_text = options.as_text;
  replay_config.straggler_prob = options.straggler_prob;
  replay_config.straggler_max_ns = options.straggler_max_ns;
  replay_config.seed = options.replay_seed;
  auto replayer = std::make_shared<Replayer>(replay_config, options.gen);

  PipelineResult result;
  std::mutex registry_mu;
  struct WorkerMeasure {
    std::map<Epoch, int64_t> done_ns;
    std::map<Epoch, int64_t> cpu_ns;
    Epoch completed_cursor = 0;
    int64_t last_cpu = 0;
    int64_t final_done_ns = 0;
  };
  std::vector<std::shared_ptr<IngestDriver>> drivers;
  std::vector<std::shared_ptr<WorkerMeasure>> measures;
  std::vector<std::shared_ptr<SessionizeMetrics>> worker_metrics;
  std::atomic<uint64_t> sessions{0};
  std::atomic<uint64_t> trees{0};

  Computation::Options copts;
  copts.workers = options.workers;
  result.run = Computation::Run(copts, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess_options;
    sess_options.inactivity_epochs = options.inactivity_epochs;
    auto [session_stream, metrics] = Sessionize(scope, stream, sess_options);
    auto counted = scope.Inspect<Session>(
        session_stream, "count_sessions",
        [&sessions](Epoch, const Session&) {
          sessions.fetch_add(1, std::memory_order_relaxed);
        });

    // Optional analytics stages; the probe is attached after the last stage so
    // epoch latency includes them (as in Figure 9).
    ProbeHandle probe;
    if (options.analytics.trace_trees) {
      auto tree_stream = ConstructTraceTrees(scope, counted);
      auto tree_counted = scope.Inspect<TraceTree>(
          tree_stream, "count_trees", [&trees](Epoch, const TraceTree&) {
            trees.fetch_add(1, std::memory_order_relaxed);
          });
      std::vector<Stream<Unit>> tails;
      if (options.analytics.signature_topk) {
        auto sigs = scope.Map<TraceTree, std::string>(
            tree_counted, "signature",
            [](TraceTree t) { return t.SignatureKey(); });
        auto topk = TopKPerEpoch<std::string, std::string>(
            scope, sigs, options.analytics.k,
            [](const std::string& s) { return s; },
            [](const std::string& s) { return SipHash24(s); }, "sig_topk");
        tails.push_back(scope.Map<TopKResult<std::string>, Unit>(
            topk, "sig_done", [](TopKResult<std::string>) { return Unit{}; }));
      }
      if (options.analytics.pair_topk) {
        auto pairs = scope.FlatMap<TraceTree, uint64_t>(
            tree_counted, "service_pairs",
            [](TraceTree t, std::vector<uint64_t>& out) {
              for (const auto& [a, b] : t.ServiceCallPairs()) {
                out.push_back((static_cast<uint64_t>(a) << 32) | b);
              }
            });
        auto topk = TopKPerEpoch<uint64_t, uint64_t>(
            scope, pairs, options.analytics.k,
            [](const uint64_t& p) { return p; },
            [](const uint64_t& p) { return SipHash24(p); }, "pair_topk");
        tails.push_back(scope.Map<TopKResult<uint64_t>, Unit>(
            topk, "pair_done", [](TopKResult<uint64_t>) { return Unit{}; }));
      }
      if (tails.empty()) {
        probe = scope.Probe(tree_counted, "probe");
      } else if (tails.size() == 1) {
        probe = scope.Probe(tails[0], "probe");
      } else {
        probe = scope.Probe(scope.Concat(tails, "tails"), "probe");
      }
    } else {
      probe = scope.Probe(counted, "probe");
    }

    IngestDriver::Options ingest_options;
    ingest_options.slack_ns = options.slack_ns;
    ingest_options.gate_lookahead_epochs = options.gate_lookahead;
    ingest_options.epoch_width_ns = options.epoch_width_ns;
    auto driver = std::make_shared<IngestDriver>(
        replayer.get(), scope.worker_index(), input, ingest_options);
    driver->SetGate(probe);

    auto measure = std::make_shared<WorkerMeasure>();
    measure->last_cpu = ThreadCpuNanos();
    {
      std::lock_guard<std::mutex> lock(registry_mu);
      drivers.push_back(driver);
      measures.push_back(measure);
      worker_metrics.push_back(metrics);
    }

    scope.AddDriver([driver]() { return driver->Step(); });

    scope.AddStepCallback([measure, probe]() {
      // Attribute CPU consumed since the last step to the epoch currently
      // being completed (the min of the probe frontier).
      const int64_t now_cpu = ThreadCpuNanos();
      const Frontier f = probe.frontier();
      const Epoch active = f.done() ? measure->completed_cursor : f.min();
      measure->cpu_ns[active] += now_cpu - measure->last_cpu;
      measure->last_cpu = now_cpu;
      // Record completion wall time for every newly complete epoch.
      while (!probe.frontier().done() && probe.Beyond(measure->completed_cursor)) {
        measure->done_ns[measure->completed_cursor] = SteadyNowNanos();
        ++measure->completed_cursor;
      }
      if (probe.frontier().done()) {
        // Stream complete: stamp everything up to the last fed epoch lazily at
        // merge time (done below with the final timestamp).
        measure->final_done_ns = SteadyNowNanos();
      }
    });
  });

  // Merge per-worker measurements (the computation has joined).
  for (size_t w = 0; w < drivers.size(); ++w) {
    const auto& driver = drivers[w];
    const auto& measure = measures[w];
    result.reorder_dropped += driver->reorder_stats().discarded_late;
    result.input_cpu_ns += driver->total_input_cpu_ns();
    result.peak_reorder_bytes =
        std::max(result.peak_reorder_bytes, driver->peak_reorder_bytes());
    result.peak_session_state_bytes = std::max(
        result.peak_session_state_bytes, worker_metrics[w]->peak_state_bytes);
    for (const auto& [e, ingest] : driver->epochs()) {
      EpochStats& s = result.epochs[e];
      if (ingest.first_give_steady_ns >= 0) {
        s.first_give_ns = std::min(s.first_give_ns, ingest.first_give_steady_ns);
      }
      s.records += ingest.records;
      s.input_cpu_ns += ingest.input_cpu_ns;
      result.records_fed += ingest.records;
    }
    for (const auto& [e, ns] : measure->done_ns) {
      result.epochs[e].done_ns = std::max(result.epochs[e].done_ns, ns);
    }
    for (const auto& [e, cpu] : measure->cpu_ns) {
      EpochStats& s = result.epochs[e];
      s.cpu_max_ns = std::max(s.cpu_max_ns, cpu);
      s.cpu_total_ns += cpu;
    }
    // Epochs that completed only at stream end (no individual completion
    // observation): stamp with the final completion time.
    if (measure->final_done_ns > 0) {
      for (auto& [e, s] : result.epochs) {
        if (s.done_ns == 0 && s.records > 0) {
          s.done_ns = std::max(s.done_ns, measure->final_done_ns);
        }
      }
    }
  }

  result.sessions = sessions.load();
  result.trees = trees.load();
  result.peak_rss_bytes = PeakRssBytes();
  return result;
}

// Minimal command-line flag helpers so every bench runs with sensible
// defaults under `for b in build/bench/*; do $b; done` but remains tunable.
inline double FlagDouble(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stod(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

inline int64_t FlagInt(int argc, char** argv, const std::string& name,
                       int64_t fallback) {
  return static_cast<int64_t>(FlagDouble(argc, argv, name,
                                         static_cast<double>(fallback)));
}

// Prints one box-plot row (the paper's figures are box-and-whisker plots).
inline void PrintBoxHeader(const char* label) {
  std::printf("%-22s %10s %10s %10s %10s %10s %8s %6s\n", label, "p25", "median",
              "p75", "whisk_lo", "whisk_hi", "mean", "n");
}

inline void PrintBoxRow(const std::string& label, SampleSet& samples) {
  if (samples.empty()) {
    std::printf("%-22s %10s\n", label.c_str(), "(no data)");
    return;
  }
  BoxSummary box = Summarize(samples);
  std::printf("%-22s %10.2f %10.2f %10.2f %10.2f %10.2f %8.2f %6zu\n",
              label.c_str(), box.q1, box.median, box.q3, box.whisker_lo,
              box.whisker_hi, box.mean, box.count);
}

}  // namespace bench
}  // namespace ts

#endif  // BENCH_BENCH_COMMON_H_
