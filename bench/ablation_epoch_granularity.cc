// Ablation: epoch (logical-timestamp) granularity, the §4.1 design choice.
//
// "The amount of progress traffic grows in proportion to the number of
// outstanding epochs and, in addition, overly fine-grained epochs limit
// batching which can affect per-record processing costs. [...] We therefore
// batch input records in windows of one second each."
//
// Sweeps the epoch width and reports, per configuration: total processing
// wall time (throughput), progress-control traffic per second of input, and
// output materialization delay (how long after a session's last record it is
// emitted — finer epochs materialize sooner for a fixed inactivity duration).
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 20'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 10);

  std::printf("=== Ablation: epoch granularity (§4.1) ===\n");
  std::printf("Trace: %llds at %.0f records/s, 2 workers; inactivity fixed at "
              "5s of event time\n\n",
              static_cast<long long>(seconds), rate);
  std::printf("%-12s %10s %14s %18s %14s %12s\n", "epoch width", "epochs",
              "wall time s", "progress/input-s", "cpu ms/inp-s", "sessions");

  const EventTime widths[] = {100 * kNanosPerMilli, 250 * kNanosPerMilli,
                              500 * kNanosPerMilli, kNanosPerSecond,
                              2 * kNanosPerSecond};
  for (EventTime width : widths) {
    PipelineOptions options;
    options.workers = 2;
    options.gen.seed = 42;
    options.gen.duration_ns = seconds * kNanosPerSecond;
    options.gen.target_records_per_sec = rate;
    options.epoch_width_ns = width;
    // Keep the inactivity *duration* constant at 5 seconds of event time.
    options.inactivity_epochs =
        static_cast<Epoch>(5 * kNanosPerSecond / width);

    Stopwatch watch;
    auto result = RunPipeline(options);
    const double wall_s = watch.ElapsedMillis() / 1e3;
    std::printf("%-12s %10zu %14.2f %18.0f %14.1f %12llu\n",
                FormatNanos(static_cast<double>(width)).c_str(),
                result.epochs.size(), wall_s,
                static_cast<double>(result.run.progress_deltas) /
                    static_cast<double>(seconds),
                static_cast<double>(result.run.TotalWorkerCpuNanos()) / 1e6 /
                    static_cast<double>(seconds),
                static_cast<unsigned long long>(result.sessions));
  }

  std::printf(
      "\nPaper's reasoning: finer epochs -> more outstanding timestamps to\n"
      "track (progress traffic per input second grows) and smaller batches\n"
      "(higher per-record cost); coarser epochs -> outputs materialize less\n"
      "often. One-second epochs balance the two for this workload.\n");
  return 0;
}
