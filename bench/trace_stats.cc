// §5.1 text statistics: out-of-order arrival-delay percentiles as observed at
// TS's ingest (the paper: median 0.69 ms; p90 4.5 ms; p99 17 ms; p99.9
// 32.5 ms; p99.99 1.2 s; max 485 s), plus the session-activity distributions
// that motivate the inactivity-timeout choice.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/replay/replayer.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 20'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 15);

  GeneratorConfig gen;
  gen.seed = 42;
  gen.duration_ns = seconds * kNanosPerSecond;
  gen.target_records_per_sec = rate;
  gen.collect_distributions = true;

  ReplayerConfig replay;
  replay.num_servers = 42;
  replay.num_processes = 1263;
  replay.num_workers = 1;
  replay.as_text = false;
  replay.straggler_prob = 3e-5;  // Rare multi-second stragglers (max 485s in paper).
  Replayer replayer(replay, gen);

  // Drain the arrival stream, measuring out-of-orderness the way the paper
  // does: the timestamp difference between consecutive records that arrive
  // out of (event-time) order.
  SampleSet ooo_diff_ms;
  EventTime prev_event = -1;
  std::vector<Arrival> arrivals;
  uint64_t total = 0;
  uint64_t out_of_order = 0;
  for (Epoch e = 0;; ++e) {
    if (replayer.ArrivalsFor(0, e, &arrivals) == Replayer::Fetch::kEndOfStream) {
      break;
    }
    for (const auto& a : arrivals) {
      ++total;
      if (prev_event >= 0 && a.record.time < prev_event) {
        ++out_of_order;
        ooo_diff_ms.Add(static_cast<double>(prev_event - a.record.time) / 1e6);
      }
      prev_event = a.record.time;
    }
  }

  std::printf("=== Trace statistics (§5.1 text) ===\n\n");
  std::printf("--- Out-of-order record timestamp differences ---\n");
  std::printf("%llu records, %.2f%% out of order\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(out_of_order) /
                  static_cast<double>(std::max<uint64_t>(1, total)));
  if (!ooo_diff_ms.empty()) {
    std::printf("  median: %8.2f ms   (paper:  0.69 ms)\n", ooo_diff_ms.Median());
    std::printf("  p90:    %8.2f ms   (paper:  4.5 ms)\n", ooo_diff_ms.Quantile(0.9));
    std::printf("  p99:    %8.2f ms   (paper:   17 ms)\n", ooo_diff_ms.Quantile(0.99));
    std::printf("  p99.9:  %8.2f ms   (paper: 32.5 ms)\n", ooo_diff_ms.Quantile(0.999));
    std::printf("  p99.99: %8.2f ms   (paper: 1.2 s)\n", ooo_diff_ms.Quantile(0.9999));
    std::printf("  max:    %8.2f ms   (paper: 485 s)\n", ooo_diff_ms.Max());
  }

  // Session-activity distributions from the generator's sampled stats.
  // (Regenerate with the same seed to read them back.)
  TraceGenerator direct(gen);
  Epoch epoch;
  std::vector<LogRecord> batch;
  while (direct.NextEpoch(&epoch, &batch)) {
  }
  auto& stats = const_cast<GeneratorStats&>(direct.stats());
  std::printf("\n--- Root-span lifetime (drives memory requirements) ---\n");
  if (!stats.root_span_durations_ms.empty()) {
    std::printf("  p50: %.1f ms   p95: %.1f ms (paper: 95%% < 2 s)   p99.76+: up "
                "to minutes\n",
                stats.root_span_durations_ms.Median(),
                stats.root_span_durations_ms.Quantile(0.95));
  }
  std::printf("\n--- Max inter-message gap per root span (drives the "
              "inactivity timeout) ---\n");
  if (!stats.max_gap_per_root_ms.empty()) {
    std::printf("  p50: %.2f ms   p99.5: %.2f ms (paper: 12.3 ms)   max: %.0f ms\n",
                stats.max_gap_per_root_ms.Median(),
                stats.max_gap_per_root_ms.Quantile(0.995),
                stats.max_gap_per_root_ms.Max());
  }
  std::printf("\n--- Arrival delay at TS ingest (replayer pipeline) ---\n");
  auto& delays = const_cast<SampleSet&>(replayer.stats().arrival_delays_ms);
  if (!delays.empty()) {
    std::printf("  p50: %.1f ms   p99: %.1f ms   max: %.0f ms  (flush batching + "
                "jitter + stragglers)\n",
                delays.Median(), delays.Quantile(0.99), delays.Max());
  }
  return 0;
}
