// Figure 5: "Latency per epoch (1 sec) of log data for sessionization on our
// system using x workers", full log rate, 1263 input streams from 42 simulated
// log servers, configurations (1,1)..(1,16),(2,16),(3,16),(4,16).
//
// This container has one CPU core, so the scaling series reports per-epoch
// critical-path latency (max over workers of attributed thread-CPU time) next
// to raw wall clock; see bench_common.h and DESIGN.md §3. "Hosts" beyond one
// are modelled as additional workers (the engine's exchange and progress
// planes are identical in structure; a real deployment adds network transfer
// cost, which the paper found small next to compute until >16 workers).
//
// Flags: --rate (records/s), --seconds (trace length), --max_workers.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 30'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 12);
  const int64_t max_workers = FlagInt(argc, argv, "--max_workers", 16);
  const int64_t max_hosts = FlagInt(argc, argv, "--max_hosts", 2);

  std::printf("=== Figure 5: per-epoch sessionization latency vs workers ===\n");
  std::printf("Full simulated log pipeline: 1263 streams / 42 servers; trace %llds "
              "at %.0f records/s\n(paper: 1 hour at 1.3M records/s on 4x16-core "
              "hosts)\n\n",
              static_cast<long long>(seconds), rate);

  struct Config {
    int hosts;
    int workers;
  };
  std::vector<Config> configs;
  for (int w = 1; w <= max_workers; w *= 2) {
    configs.push_back({1, w});
  }
  // Multi-host rows (modelled as worker groups; raise --max_hosts to 4 for the
  // paper's full sweep — 48/64 threads are slow on a single-core container).
  for (int h = 2; h <= max_hosts; ++h) {
    configs.push_back({h, static_cast<int>(max_workers)});
  }

  PrintBoxHeader("(hosts,workers)");
  struct Row {
    std::string label;
    double median_cp;
    double progress_deltas_per_epoch;
    double wall_median;
    uint64_t sessions;
  };
  std::vector<Row> rows;
  for (const auto& c : configs) {
    PipelineOptions options;
    options.workers = static_cast<size_t>(c.hosts * c.workers);
    options.gen.seed = 42;
    options.gen.duration_ns = seconds * kNanosPerSecond;
    options.gen.target_records_per_sec = rate;
    options.inactivity_epochs = 5;

    auto result = RunPipeline(options);
    SampleSet critical = result.CriticalPathMs();
    SampleSet wall = result.WallLatenciesMs();
    char label[32];
    std::snprintf(label, sizeof(label), "(%d,%d)", c.hosts, c.workers);
    PrintBoxRow(std::string(label) + " critical", critical);
    rows.push_back(Row{label, critical.empty() ? 0 : critical.Median(),
                       static_cast<double>(result.run.progress_deltas) /
                           static_cast<double>(std::max<size_t>(1, result.epochs.size())),
                       wall.empty() ? 0 : wall.Median(), result.sessions});
  }

  std::printf("\n--- Summary: median critical-path latency and coordination ---\n");
  std::printf("%-16s %14s %14s %16s %10s\n", "(hosts,workers)", "critical ms",
              "wall ms", "progress/epoch", "sessions");
  for (const auto& r : rows) {
    std::printf("%-16s %14.2f %14.2f %16.0f %10llu\n", r.label.c_str(), r.median_cp,
                r.wall_median, r.progress_deltas_per_epoch,
                static_cast<unsigned long long>(r.sessions));
  }
  std::printf(
      "\nPaper shape: latency drops with added workers until parallelism is\n"
      "exhausted (~8-16); beyond that, per-epoch coordination (progress traffic,\n"
      "which grows with workers above) and load imbalance erase further gains.\n");
  return 0;
}
