// Table 1: "Characteristics of the real-world event trace we use."
//
// Regenerates the table from the synthetic trace. Absolute counts scale with
// the configured duration/rate (the evaluation container cannot hold an hour
// at 1.3M records/s); the calibrated *ratios* — spans per tree, annotations
// per span, root spans per session, bytes per record — are what must match the
// paper. Flags: --rate=<records/s> --seconds=<trace length>.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/generator.h"

namespace {

void PrintRow(const char* label, const std::string& ours, const char* paper) {
  std::printf("  %-28s %20s   paper: %s\n", label, ours.c_str(), paper);
}

std::string WithCommas(uint64_t v) {
  std::string s = std::to_string(v);
  for (int i = static_cast<int>(s.size()) - 3; i > 0; i -= 3) {
    s.insert(static_cast<size_t>(i), ",");
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ts;
  const double rate = bench::FlagDouble(argc, argv, "--rate", 50'000);
  const int64_t seconds = bench::FlagInt(argc, argv, "--seconds", 30);

  GeneratorConfig config;
  config.seed = 42;
  config.duration_ns = seconds * kNanosPerSecond;
  config.target_records_per_sec = rate;
  config.collect_distributions = true;

  std::printf("=== Table 1: trace characteristics (synthetic, calibrated) ===\n");
  std::printf("Scale: %llds at %.0f records/s (paper: 3601s at 1.3M records/s)\n\n",
              static_cast<long long>(seconds), rate);

  Stopwatch watch;
  TraceGenerator gen(config);
  Epoch epoch = 0;
  std::vector<LogRecord> records;
  uint64_t emitted = 0;
  uint64_t wire_bytes = 0;
  while (gen.NextEpoch(&epoch, &records)) {
    emitted += records.size();
    (void)wire_bytes;
  }
  const double gen_secs = watch.ElapsedMillis() / 1e3;
  const GeneratorStats& s = gen.stats();

  PrintRow("Trace duration", std::to_string(seconds) + " s", "3601 s (1 hour)");
  PrintRow("Mean input rate",
           std::to_string(static_cast<uint64_t>(
               static_cast<double>(emitted) / static_cast<double>(seconds))) +
               " events/s",
           "1.3M events/s");
  PrintRow("Mean record size",
           std::to_string(s.wire_bytes / std::max<uint64_t>(1, s.records_emitted)) +
               " bytes",
           "305 bytes");
  PrintRow("Annotations (records)", WithCommas(s.annotations), "4,876,273,293");
  PrintRow("Spans", WithCommas(s.spans), "747,242,389");
  PrintRow("Root spans", WithCommas(s.root_spans), "103,382,086");
  PrintRow("Trace trees (sessions)", WithCommas(s.sessions), "99,508,175");

  std::printf("\n--- Calibration ratios (must match the paper) ---\n");
  PrintRow("Spans per trace tree",
           std::to_string(static_cast<double>(s.spans) /
                          static_cast<double>(s.root_spans))
               .substr(0, 5),
           "~7.5");
  PrintRow("Annotations per span",
           std::to_string(static_cast<double>(s.annotations) /
                          static_cast<double>(s.spans))
               .substr(0, 5),
           "~6.5");
  PrintRow("Annotations per tree",
           std::to_string(static_cast<double>(s.annotations) /
                          static_cast<double>(s.root_spans))
               .substr(0, 5),
           "~49");
  PrintRow("Root spans per session",
           std::to_string(static_cast<double>(s.root_spans) /
                          static_cast<double>(s.sessions))
               .substr(0, 5),
           "~1.04");

  auto& stats = const_cast<GeneratorStats&>(gen.stats());
  if (stats.root_span_durations_ms.count() > 0) {
    std::printf("\n--- Session-activity properties (§5) ---\n");
    std::printf("  root spans < 2s: %.1f%%   (paper: ~95%%)\n",
                100.0 * [&] {
                  const auto& samples = stats.root_span_durations_ms.samples();
                  size_t below = 0;
                  for (double v : samples) {
                    if (v < 2000.0) {
                      ++below;
                    }
                  }
                  return static_cast<double>(below) /
                         static_cast<double>(samples.size());
                }());
    std::printf("  max inter-message gap p99.5: %.2f ms (paper: 12.3 ms)\n",
                stats.max_gap_per_root_ms.Quantile(0.995));
  }
  std::printf("\nGeneration: %.1fs wall (%.0f records/s)\n", gen_secs,
              static_cast<double>(emitted) / gen_secs);
  return 0;
}
