// Ablation: flush-on-inactivity vs multi-versioned sessions (§3).
//
// The paper's TS closes sessions only after the inactivity timeout, which
// "imposes a fixed latency penalty on all session reconstructions"; the
// sketched alternative propagates changes downstream immediately at the cost
// of requiring incremental downstream consumers. This bench quantifies the
// trade-off on the same trace: per-record feedback delay (event epoch ->
// epoch at which the record is visible downstream) and operator state size.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/analytics/collectors.h"
#include "src/core/incremental_sessionize.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 15'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 10);
  const Epoch inactivity = static_cast<Epoch>(FlagInt(argc, argv, "--inactivity", 5));

  GeneratorConfig gen;
  gen.seed = 42;
  gen.duration_ns = seconds * kNanosPerSecond;
  gen.target_records_per_sec = rate;

  std::printf("=== Ablation: batch sessionization vs multi-versioned updates ===\n");
  std::printf("Trace: %llds at %.0f records/s; inactivity %llu epochs\n\n",
              static_cast<long long>(seconds), rate,
              static_cast<unsigned long long>(inactivity));

  // Pre-bucket the trace once; both pipelines consume identical input.
  std::map<Epoch, std::vector<LogRecord>> by_epoch;
  {
    TraceGenerator g(gen);
    Epoch e;
    std::vector<LogRecord> batch;
    while (g.NextEpoch(&e, &batch)) {
      auto& bucket = by_epoch[e];
      for (auto& r : batch) {
        bucket.push_back(std::move(r));
      }
    }
  }

  auto drive = [&](Scope& scope, InputSession<LogRecord> input) {
    auto in = std::make_shared<InputSession<LogRecord>>(input);
    if (scope.worker_index() == 0) {
      auto it = std::make_shared<std::map<Epoch, std::vector<LogRecord>>::const_iterator>(
          by_epoch.begin());
      scope.AddDriver([in, it, &by_epoch]() mutable -> DriverStatus {
        if (*it == by_epoch.end()) {
          in->Close();
          return DriverStatus::kFinished;
        }
        if ((*it)->first > in->current_epoch()) {
          in->AdvanceTo((*it)->first);
        }
        in->GiveBatch((*it)->second);
        ++*it;
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([in]() -> DriverStatus {
        in->Close();
        return DriverStatus::kFinished;
      });
    }
  };

  // --- Batch (flush-on-inactivity) ---------------------------------------
  SampleSet batch_delay;
  size_t batch_state = 0;
  {
    auto delays = std::make_shared<ConcurrentSamples>();
    auto peak = std::make_shared<std::atomic<size_t>>(0);
    Computation::Options copts;
    copts.workers = 2;
    Computation::Run(copts, [&](Scope& scope) {
      auto [input, stream] = scope.NewInput<LogRecord>("logs");
      SessionizeOptions sess;
      sess.inactivity_epochs = inactivity;
      auto [sessions, metrics] = Sessionize(scope, stream, sess);
      scope.Sink<Session>(sessions, "measure",
                          [delays](Epoch, std::vector<Session>& data) {
                            for (const auto& s : data) {
                              for (const auto& r : s.records) {
                                const Epoch re = static_cast<Epoch>(
                                    r.time / kNanosPerSecond);
                                delays->Add(static_cast<double>(s.closed_at - re));
                              }
                            }
                          });
      scope.AddStepCallback([metrics = metrics, peak] {
        size_t prev = peak->load();
        while (prev < metrics->peak_state_bytes &&
               !peak->compare_exchange_weak(prev, metrics->peak_state_bytes)) {
        }
      });
      drive(scope, input);
    });
    batch_delay = std::move(delays->samples());
    batch_state = peak->load();
  }

  // --- Incremental (multi-versioned) --------------------------------------
  SampleSet incr_delay;
  uint64_t incr_updates = 0;
  {
    auto delays = std::make_shared<ConcurrentSamples>();
    auto updates_count = std::make_shared<std::atomic<uint64_t>>(0);
    Computation::Options copts;
    copts.workers = 2;
    Computation::Run(copts, [&](Scope& scope) {
      auto [input, stream] = scope.NewInput<LogRecord>("logs");
      SessionizeOptions sess;
      sess.inactivity_epochs = inactivity;
      auto [updates, metrics] = SessionizeIncremental(scope, stream, sess);
      scope.Sink<SessionUpdate>(
          updates, "measure", [delays, updates_count](Epoch, std::vector<SessionUpdate>& data) {
            for (const auto& u : data) {
              updates_count->fetch_add(1, std::memory_order_relaxed);
              for (const auto& r : u.new_records) {
                const Epoch re = static_cast<Epoch>(r.time / kNanosPerSecond);
                delays->Add(static_cast<double>(u.epoch - re));
              }
            }
          });
      drive(scope, input);
    });
    incr_delay = std::move(delays->samples());
    incr_updates = updates_count->load();
  }

  std::printf("%-28s %14s %14s\n", "", "batch", "incremental");
  std::printf("%-28s %14.2f %14.2f\n", "mean feedback delay (epochs)",
              batch_delay.Mean(), incr_delay.Mean());
  std::printf("%-28s %14.2f %14.2f\n", "p95 feedback delay (epochs)",
              batch_delay.empty() ? 0 : batch_delay.Quantile(0.95),
              incr_delay.empty() ? 0 : incr_delay.Quantile(0.95));
  std::printf("%-28s %14s %14s\n", "records buffered in operator",
              FormatBytes(static_cast<double>(batch_state)).c_str(), "metadata only");
  std::printf("%-28s %14s %14llu\n", "update stream volume", "1/session",
              static_cast<unsigned long long>(incr_updates));
  std::printf(
      "\nThe inactivity timeout is a floor under batch feedback delay (every\n"
      "record waits at least the timeout); multi-versioned output reaches\n"
      "subscribers within its own epoch, at the cost of incremental downstream\n"
      "consumers and %llu partial updates instead of one session each.\n",
      static_cast<unsigned long long>(incr_updates));
  return 0;
}
