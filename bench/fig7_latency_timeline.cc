// Figure 7: (a) per-epoch latency over event time for worker counts 1..32 on a
// single host; (b) fraction of each epoch spent reading input vs computing
// (the paper measured 41.1% input on average with 16 workers).
//
// Flags: --rate, --seconds, --workers_list is fixed {1,2,4,8,16,32} capped by
// --max_workers.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ts;
  using namespace ts::bench;
  const double rate = FlagDouble(argc, argv, "--rate", 30'000);
  const int64_t seconds = FlagInt(argc, argv, "--seconds", 15);
  const int64_t max_workers = FlagInt(argc, argv, "--max_workers", 16);
  const int64_t breakdown_workers = FlagInt(argc, argv, "--breakdown_workers", 4);

  std::printf("=== Figure 7a: per-epoch latency timeline (single host) ===\n");
  std::printf("Trace: %llds at %.0f records/s, 1263 streams / 42 servers\n\n",
              static_cast<long long>(seconds), rate);

  std::vector<size_t> worker_counts;
  for (int64_t w = 1; w <= max_workers; w *= 2) {
    worker_counts.push_back(static_cast<size_t>(w));
  }

  // Collect per-epoch critical-path latencies for each worker count.
  std::map<size_t, std::map<Epoch, double>> timelines;
  std::map<Epoch, double> input_ms;  // Per-epoch ingest CPU (breakdown run).
  double breakdown_input_cpu = 0;
  double breakdown_total_cpu = 0;
  for (size_t w : worker_counts) {
    PipelineOptions options;
    options.workers = w;
    options.gen.seed = 42;
    options.gen.duration_ns = seconds * kNanosPerSecond;
    options.gen.target_records_per_sec = rate;
    auto result = RunPipeline(options);
    for (const auto& [e, stats] : result.epochs) {
      if (stats.records > 0) {
        timelines[w][e] = stats.CriticalPathMs();
        if (static_cast<int64_t>(w) == breakdown_workers) {
          input_ms[e] = static_cast<double>(stats.input_cpu_ns) / 1e6;
        }
      }
    }
    if (static_cast<int64_t>(w) == breakdown_workers) {
      breakdown_input_cpu = static_cast<double>(result.input_cpu_ns);
      breakdown_total_cpu = static_cast<double>(result.run.TotalWorkerCpuNanos());
    }
  }

  std::printf("%-8s", "epoch");
  for (size_t w : worker_counts) {
    std::printf(" w%-9zu", w);
  }
  std::printf("   (critical-path ms per epoch)\n");
  // Print every epoch (short traces) or every Nth.
  const Epoch max_epoch = timelines[worker_counts[0]].empty()
                              ? 0
                              : timelines[worker_counts[0]].rbegin()->first;
  const Epoch step = max_epoch > 40 ? max_epoch / 40 : 1;
  for (Epoch e = 0; e <= max_epoch; e += step) {
    std::printf("%-8llu", static_cast<unsigned long long>(e));
    for (size_t w : worker_counts) {
      auto it = timelines[w].find(e);
      if (it == timelines[w].end()) {
        std::printf(" %-9s", "-");
      } else {
        std::printf(" %-9.1f", it->second);
      }
    }
    std::printf("\n");
  }
  std::printf("\nDotted line analogue: epochs are 1s of event time; real-time "
              "processing requires each value < 1000 ms.\n");

  std::printf("\n=== Figure 7b: input vs computation breakdown (w=%lld) ===\n",
              static_cast<long long>(breakdown_workers));
  std::printf("%-8s %16s\n", "epoch", "input CPU (ms)");
  for (const auto& [e, ms] : input_ms) {
    if (e % step == 0) {
      std::printf("%-8llu %16.1f\n", static_cast<unsigned long long>(e), ms);
    }
  }
  std::printf("\nMean input fraction of total worker CPU: %.1f%% (paper: "
              "41.1%% — reading and\nparsing the text log stream is a sizeable "
              "share of epoch processing)\n",
              breakdown_total_cpu > 0
                  ? 100.0 * breakdown_input_cpu / breakdown_total_cpu
                  : 0.0);
  return 0;
}
