// Unit tests for the progress-tracking machinery: topology reachability,
// pointstamp accounting, frontier computation, and safety under out-of-order
// delta application.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/timely/frontier.h"
#include "src/timely/progress.h"
#include "src/timely/topology.h"

namespace ts {
namespace {

TEST(Frontier, BeyondAndMin) {
  const Frontier at5 = Frontier::At(5);
  EXPECT_FALSE(at5.done());
  EXPECT_TRUE(at5.Beyond(4));
  EXPECT_FALSE(at5.Beyond(5));
  EXPECT_FALSE(at5.Beyond(6));

  const Frontier done = Frontier::Done();
  EXPECT_TRUE(done.done());
  EXPECT_TRUE(done.Beyond(0));
  EXPECT_TRUE(done.Beyond(1'000'000));

  EXPECT_EQ(Frontier::Min(at5, Frontier::At(3)), Frontier::At(3));
  EXPECT_EQ(Frontier::Min(at5, done), at5);
  EXPECT_EQ(Frontier::Min(done, done), done);
}

// Builds the linear graph input(0) -> op(1) -> sink(2).
struct LinearGraph {
  Topology topo;
  int input, op, sink;
  int e01, e12;

  LinearGraph() {
    input = topo.AddNode("input", /*is_input=*/true);
    op = topo.AddNode("op", false);
    sink = topo.AddNode("sink", false);
    e01 = topo.AddEdge(input, op, /*exchanged=*/true);
    e12 = topo.AddEdge(op, sink, false);
    topo.Finalize();
  }
};

TEST(Topology, ReachabilityIncludesUpstreamCapsAndMessages) {
  LinearGraph g;
  const auto& nodes = g.topo.nodes();
  const auto& edges = g.topo.edges();

  // Everything upstream of e12 can still produce messages on it:
  // input cap, e01 messages, op cap, and e12 itself.
  const auto& reach12 = g.topo.ReachingEdge(g.e12);
  auto contains = [&](int loc) {
    return std::find(reach12.begin(), reach12.end(), loc) != reach12.end();
  };
  EXPECT_TRUE(contains(nodes[g.input].cap_loc));
  EXPECT_TRUE(contains(edges[g.e01].msg_loc));
  EXPECT_TRUE(contains(nodes[g.op].cap_loc));
  EXPECT_TRUE(contains(edges[g.e12].msg_loc));
  // The sink's own capability cannot reach its input (acyclic).
  EXPECT_FALSE(contains(nodes[g.sink].cap_loc));

  // e01 is not reachable from op's capability (downstream of it).
  const auto& reach01 = g.topo.ReachingEdge(g.e01);
  EXPECT_EQ(std::count(reach01.begin(), reach01.end(), nodes[g.op].cap_loc), 0);
  EXPECT_EQ(std::count(reach01.begin(), reach01.end(), nodes[g.input].cap_loc), 1);
}

TEST(Topology, RejectsBackEdges) {
  Topology topo;
  const int a = topo.AddNode("a", true);
  const int b = topo.AddNode("b", false);
  topo.AddEdge(a, b, false);
  EXPECT_DEATH(topo.AddEdge(b, a, false), "acyclic");
}

TEST(Progress, InputCapabilityHoldsFrontier) {
  LinearGraph g;
  ProgressTracker tracker(&g.topo);
  tracker.InitializeCapability(g.topo.nodes()[g.input].cap_loc, 2);

  // Both downstream edges see epoch 0 as pending.
  EXPECT_EQ(tracker.EdgeFrontier(g.e01), Frontier::At(0));
  EXPECT_EQ(tracker.EdgeFrontier(g.e12), Frontier::At(0));
  EXPECT_FALSE(tracker.AllZero());

  // One worker advances its input to epoch 3; the other still holds 0.
  ProgressBatch batch;
  batch.Add(g.topo.nodes()[g.input].cap_loc, 0, -1);
  batch.Add(g.topo.nodes()[g.input].cap_loc, 3, +1);
  tracker.Apply(batch);
  EXPECT_EQ(tracker.EdgeFrontier(g.e12), Frontier::At(0));

  // Second worker advances too: frontier moves to 3.
  tracker.Apply(batch);
  EXPECT_EQ(tracker.EdgeFrontier(g.e12), Frontier::At(3));

  // Both close: all clear.
  ProgressBatch close;
  close.Add(g.topo.nodes()[g.input].cap_loc, 3, -2);
  tracker.Apply(close);
  EXPECT_TRUE(tracker.AllZero());
  EXPECT_EQ(tracker.EdgeFrontier(g.e12), Frontier::Done());
}

TEST(Progress, MessagesHoldDownstreamFrontier) {
  LinearGraph g;
  ProgressTracker tracker(&g.topo);
  tracker.InitializeCapability(g.topo.nodes()[g.input].cap_loc, 1);

  // Input sends a batch at epoch 0 and advances to epoch 5.
  ProgressBatch batch;
  batch.Add(g.topo.edges()[g.e01].msg_loc, 0, +1);
  batch.Add(g.topo.nodes()[g.input].cap_loc, 0, -1);
  batch.Add(g.topo.nodes()[g.input].cap_loc, 5, +1);
  tracker.Apply(batch);

  // The unconsumed message keeps both edges at epoch 0.
  EXPECT_EQ(tracker.EdgeFrontier(g.e01), Frontier::At(0));
  EXPECT_EQ(tracker.EdgeFrontier(g.e12), Frontier::At(0));
  EXPECT_EQ(tracker.NodeInputFrontier(g.op), Frontier::At(0));

  // op consumes it and produces a result batch downstream.
  ProgressBatch consume;
  consume.Add(g.topo.edges()[g.e01].msg_loc, 0, -1);
  consume.Add(g.topo.edges()[g.e12].msg_loc, 0, +1);
  tracker.Apply(consume);
  EXPECT_EQ(tracker.NodeInputFrontier(g.op), Frontier::At(5));
  EXPECT_EQ(tracker.NodeInputFrontier(g.sink), Frontier::At(0));

  // Sink consumes; only the input capability at 5 remains.
  ProgressBatch sink_consume;
  sink_consume.Add(g.topo.edges()[g.e12].msg_loc, 0, -1);
  tracker.Apply(sink_consume);
  EXPECT_EQ(tracker.NodeInputFrontier(g.sink), Frontier::At(5));
}

TEST(Progress, NotificationCapabilityHoldsDownstreamOnly) {
  LinearGraph g;
  ProgressTracker tracker(&g.topo);
  // op retains a capability at epoch 2 (a pending notification).
  ProgressBatch batch;
  batch.Add(g.topo.nodes()[g.op].cap_loc, 2, +1);
  tracker.Apply(batch);

  // The sink must wait for it...
  EXPECT_EQ(tracker.NodeInputFrontier(g.sink), Frontier::At(2));
  // ...but op's own input frontier is unaffected (no self-blocking).
  EXPECT_EQ(tracker.NodeInputFrontier(g.op), Frontier::Done());
}

TEST(Progress, NegativeTransientDoesNotUnderflowFrontier) {
  // A consumption delta can be applied before the matching send when the two
  // originate from different workers; the count dips negative and must be
  // treated as "no outstanding work" at that (loc, epoch).
  LinearGraph g;
  ProgressTracker tracker(&g.topo);
  tracker.InitializeCapability(g.topo.nodes()[g.input].cap_loc, 2);

  ProgressBatch consume_first;
  consume_first.Add(g.topo.edges()[g.e12].msg_loc, 0, -1);
  tracker.Apply(consume_first);
  // The negative entry alone contributes nothing; the input caps still hold 0.
  EXPECT_EQ(tracker.NodeInputFrontier(g.sink), Frontier::At(0));
  EXPECT_FALSE(tracker.AllZero());

  ProgressBatch send_later;
  send_later.Add(g.topo.edges()[g.e12].msg_loc, 0, +1);
  tracker.Apply(send_later);  // Cancels out.
  ProgressBatch close;
  close.Add(g.topo.nodes()[g.input].cap_loc, 0, -2);
  tracker.Apply(close);
  EXPECT_TRUE(tracker.AllZero());
}

TEST(Progress, FrontierSkipsDrainedEpochs) {
  LinearGraph g;
  ProgressTracker tracker(&g.topo);
  ProgressBatch batch;
  batch.Add(g.topo.edges()[g.e01].msg_loc, 3, +1);
  batch.Add(g.topo.edges()[g.e01].msg_loc, 7, +1);
  tracker.Apply(batch);
  EXPECT_EQ(tracker.NodeInputFrontier(g.op), Frontier::At(3));

  ProgressBatch drain3;
  drain3.Add(g.topo.edges()[g.e01].msg_loc, 3, -1);
  tracker.Apply(drain3);
  EXPECT_EQ(tracker.NodeInputFrontier(g.op), Frontier::At(7));
}

// Diamond: input -> a, input -> b, a -> join, b -> join. The join's frontier is
// the min over both branches.
TEST(Progress, DiamondJoinWaitsForBothBranches) {
  Topology topo;
  const int input = topo.AddNode("input", true);
  const int a = topo.AddNode("a", false);
  const int b = topo.AddNode("b", false);
  const int join = topo.AddNode("join", false);
  topo.AddEdge(input, a, false);
  topo.AddEdge(input, b, false);
  const int ea = topo.AddEdge(a, join, false);
  const int eb = topo.AddEdge(b, join, false);
  topo.Finalize();

  ProgressTracker tracker(&topo);
  ProgressBatch batch;
  batch.Add(topo.edges()[ea].msg_loc, 4, +1);
  batch.Add(topo.edges()[eb].msg_loc, 9, +1);
  tracker.Apply(batch);
  EXPECT_EQ(tracker.NodeInputFrontier(join), Frontier::At(4));

  ProgressBatch drain;
  drain.Add(topo.edges()[ea].msg_loc, 4, -1);
  tracker.Apply(drain);
  EXPECT_EQ(tracker.NodeInputFrontier(join), Frontier::At(9));
}

}  // namespace
}  // namespace ts
