// Tests for the two-stage per-epoch Top-K operator: exactness against a brute
// force count, determinism on ties, multi-worker equivalence.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/analytics/topk.h"
#include "src/common/rng.h"
#include "src/common/siphash.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

using Result = TopKResult<std::string>;

// Runs TopK over scripted (epoch -> items) input on `workers` workers; items
// are spread round-robin across workers' inputs.
std::map<Epoch, std::vector<std::pair<std::string, uint64_t>>> RunTopK(
    size_t workers, size_t k,
    const std::map<Epoch, std::vector<std::string>>& by_epoch) {
  auto collector = std::make_shared<ConcurrentCollector<Result>>();
  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&](Scope& scope) {
    auto [input, stream] = scope.NewInput<std::string>("items");
    auto topk = TopKPerEpoch<std::string, std::string>(
        scope, stream, k, [](const std::string& s) { return s; },
        [](const std::string& s) { return SipHash24(s); }, "topk");
    CollectInto<Result>(scope, topk, collector, "collect");

    auto session = std::make_shared<InputSession<std::string>>(input);
    const size_t w = scope.worker_index();
    auto it = std::make_shared<std::map<Epoch, std::vector<std::string>>::const_iterator>(
        by_epoch.begin());
    scope.AddDriver([session, it, &by_epoch, w, workers]() mutable -> DriverStatus {
      if (*it == by_epoch.end()) {
        session->Close();
        return DriverStatus::kFinished;
      }
      const Epoch target = (*it)->first;
      if (target > session->current_epoch()) {
        session->AdvanceTo(target);
      }
      const auto& items = (*it)->second;
      for (size_t i = w; i < items.size(); i += workers) {
        session->Give(items[i]);
      }
      ++*it;
      return DriverStatus::kWorked;
    });
  });

  std::map<Epoch, std::vector<std::pair<std::string, uint64_t>>> results;
  for (auto& r : collector->items()) {
    EXPECT_TRUE(results.emplace(r.epoch, r.entries).second)
        << "duplicate result for epoch " << r.epoch;
  }
  return results;
}

// Brute-force reference.
std::vector<std::pair<std::string, uint64_t>> BruteForce(
    const std::vector<std::string>& items, size_t k) {
  std::map<std::string, uint64_t> counts;
  for (const auto& s : items) {
    ++counts[s];
  }
  std::vector<std::pair<std::string, uint64_t>> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  if (sorted.size() > k) {
    sorted.resize(k);
  }
  return sorted;
}

TEST(TopK, MatchesBruteForceSingleWorker) {
  std::map<Epoch, std::vector<std::string>> input;
  input[0] = {"a", "b", "a", "c", "a", "b"};
  input[1] = {"x", "x", "y"};
  auto results = RunTopK(1, 2, input);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], BruteForce(input[0], 2));
  EXPECT_EQ(results[1], BruteForce(input[1], 2));
  EXPECT_EQ(results[0][0], (std::pair<std::string, uint64_t>{"a", 3}));
}

TEST(TopK, TieBreaksByKeyDeterministically) {
  std::map<Epoch, std::vector<std::string>> input;
  input[0] = {"z", "m", "a"};  // All count 1: lexicographically smallest win.
  auto results = RunTopK(1, 2, input);
  ASSERT_EQ(results[0].size(), 2u);
  EXPECT_EQ(results[0][0].first, "a");
  EXPECT_EQ(results[0][1].first, "m");
}

TEST(TopK, KLargerThanKeyCountReturnsAll) {
  std::map<Epoch, std::vector<std::string>> input;
  input[0] = {"a", "b"};
  auto results = RunTopK(1, 10, input);
  EXPECT_EQ(results[0].size(), 2u);
}

class TopKWorkers : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKWorkers, ExactAcrossWorkerCounts) {
  const size_t workers = GetParam();
  // Zipf-ish synthetic stream over 50 keys, 3 epochs.
  Rng rng(99);
  ZipfSampler zipf(50, 1.1);
  std::map<Epoch, std::vector<std::string>> input;
  for (Epoch e = 0; e < 3; ++e) {
    for (int i = 0; i < 2000; ++i) {
      input[e].push_back("key" + std::to_string(zipf.Sample(rng)));
    }
  }
  auto results = RunTopK(workers, 10, input);
  ASSERT_EQ(results.size(), 3u);
  for (Epoch e = 0; e < 3; ++e) {
    EXPECT_EQ(results[e], BruteForce(input[e], 10)) << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TopKWorkers, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace ts
