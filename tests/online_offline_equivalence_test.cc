// Seed-parameterized equivalence property: the online pipeline (replayer ->
// re-order buffer -> exchange -> sessionize) must reconstruct, record for
// record, the sessions an offline epoch-granularity splitter derives from the
// same trace — across random seeds, worker counts, and inactivity windows,
// provided the re-order slack covers the replay delays.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/core/sessionize.h"
#include "src/offline/offline_sessionizer.h"
#include "src/replay/ingest_driver.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

// (seed, workers, inactivity_epochs)
class OnlineOffline
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, Epoch>> {};

TEST_P(OnlineOffline, SessionsMatchGroundTruth) {
  const auto [seed, workers, inactivity] = GetParam();

  GeneratorConfig gen;
  gen.seed = seed;
  gen.duration_ns = 7 * kNanosPerSecond;
  gen.target_records_per_sec = 4'000;

  // Ground truth from the raw trace.
  std::map<std::string, std::multiset<size_t>> expected;
  size_t expected_records = 0;
  {
    TraceGenerator g(gen);
    std::vector<LogRecord> all;
    Epoch e;
    std::vector<LogRecord> batch;
    while (g.NextEpoch(&e, &batch)) {
      for (auto& r : batch) {
        all.push_back(std::move(r));
      }
    }
    expected_records = all.size();
    for (const auto& s : OfflineSessionizer::Sessionize(std::move(all))) {
      // Epoch-granularity splitter matching the online semantics.
      size_t count = 1;
      for (size_t i = 1; i < s.records.size(); ++i) {
        const Epoch prev = static_cast<Epoch>(s.records[i - 1].time / kNanosPerSecond);
        const Epoch cur = static_cast<Epoch>(s.records[i].time / kNanosPerSecond);
        if (cur > prev + inactivity) {
          expected[s.id].insert(count);
          count = 0;
        }
        ++count;
      }
      expected[s.id].insert(count);
    }
  }

  // Online pipeline through the full replay simulation.
  ReplayerConfig replay;
  replay.num_servers = 8;
  replay.num_processes = 96;
  replay.num_workers = workers;
  replay.as_text = true;
  replay.seed = seed + 1;
  auto replayer = std::make_shared<Replayer>(replay, gen);

  auto collector = std::make_shared<ConcurrentCollector<Session>>();
  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&, inactivity = inactivity](Scope& scope) {
    auto [input, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = inactivity;
    auto [sessions, metrics] = Sessionize(scope, stream, sess);
    CollectInto<Session>(scope, sessions, collector, "collect");
    auto probe = scope.Probe(
        scope.Map<Session, Unit>(sessions, "tail", [](Session) { return Unit{}; }),
        "probe");
    IngestDriver::Options ingest;
    ingest.slack_ns = 2 * kNanosPerSecond;  // Covers all replay delays.
    auto driver = std::make_shared<IngestDriver>(replayer.get(),
                                                 scope.worker_index(), input, ingest);
    driver->SetGate(probe);
    scope.AddDriver([driver] { return driver->Step(); });
  });

  std::map<std::string, std::multiset<size_t>> got;
  size_t got_records = 0;
  for (const auto& s : collector->items()) {
    got[s.id].insert(s.records.size());
    got_records += s.records.size();
  }
  EXPECT_EQ(got_records, expected_records);
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OnlineOffline,
    ::testing::Values(std::make_tuple(101, 1, 3), std::make_tuple(101, 2, 3),
                      std::make_tuple(202, 3, 2), std::make_tuple(303, 2, 5),
                      std::make_tuple(404, 4, 1), std::make_tuple(505, 2, 8)));

}  // namespace
}  // namespace ts
