// Tests for multi-versioned (incremental) sessionization: per-epoch updates,
// version numbering, finalization, and agreement with the batch operator.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/collectors.h"
#include "src/core/incremental_sessionize.h"
#include "src/timely/timely.h"

namespace ts {
namespace {

LogRecord Rec(const std::string& session, Epoch epoch, EventTime offset = 0) {
  LogRecord r;
  r.time = static_cast<EventTime>(epoch) * kNanosPerSecond + offset;
  r.session_id = session;
  r.txn_id = *TxnId::Parse("1");
  return r;
}

std::vector<SessionUpdate> RunIncremental(size_t workers, Epoch inactivity,
                               const std::map<Epoch, std::vector<LogRecord>>& input) {
  auto collector = std::make_shared<ConcurrentCollector<SessionUpdate>>();
  Computation::Options options;
  options.workers = workers;
  Computation::Run(options, [&](Scope& scope) {
    auto [in, stream] = scope.NewInput<LogRecord>("logs");
    SessionizeOptions sess;
    sess.inactivity_epochs = inactivity;
    auto [updates, metrics] = SessionizeIncremental(scope, stream, sess);
    CollectInto<SessionUpdate>(scope, updates, collector, "collect");

    auto session = std::make_shared<InputSession<LogRecord>>(in);
    if (scope.worker_index() == 0) {
      auto it = std::make_shared<std::map<Epoch, std::vector<LogRecord>>::const_iterator>(
          input.begin());
      scope.AddDriver([session, it, &input]() mutable -> DriverStatus {
        if (*it == input.end()) {
          session->Close();
          return DriverStatus::kFinished;
        }
        if ((*it)->first > session->current_epoch()) {
          session->AdvanceTo((*it)->first);
        }
        session->GiveBatch((*it)->second);
        ++*it;
        return DriverStatus::kWorked;
      });
    } else {
      scope.AddDriver([session]() -> DriverStatus {
        session->Close();
        return DriverStatus::kFinished;
      });
    }
  });
  auto updates = std::move(collector->items());
  std::sort(updates.begin(), updates.end(),
            [](const SessionUpdate& a, const SessionUpdate& b) {
              return std::tie(a.id, a.epoch, a.version) <
                     std::tie(b.id, b.epoch, b.version);
            });
  return updates;
}

TEST(IncrementalSessionize, EmitsUpdatePerActiveEpochThenFinal) {
  auto updates = RunIncremental(1, 2,
                     {{0, {Rec("A", 0), Rec("A", 0, 100)}},
                      {1, {Rec("A", 1)}}});
  // A touched epochs 0 and 1 -> updates v0 (2 records), v1 (1 record), final v2.
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0].version, 0u);
  EXPECT_EQ(updates[0].new_records.size(), 2u);
  EXPECT_EQ(updates[0].epoch, 0u);
  EXPECT_FALSE(updates[0].is_final);
  EXPECT_EQ(updates[1].version, 1u);
  EXPECT_EQ(updates[1].new_records.size(), 1u);
  EXPECT_EQ(updates[2].version, 2u);
  EXPECT_TRUE(updates[2].is_final);
  EXPECT_TRUE(updates[2].new_records.empty());
  EXPECT_EQ(updates[2].epoch, 3u);  // last activity (1) + inactivity (2).
}

TEST(IncrementalSessionize, UpdatesAvailableBeforeSessionCloses) {
  // The whole point of the multi-versioned design (§3): the first update is
  // emitted at epoch 0, long before the session closes at epoch 12.
  auto updates = RunIncremental(1, 2, {{0, {Rec("A", 0)}}, {10, {Rec("A", 10)}}});
  // A goes idle for more than 2 epochs: two windows, each with one activity
  // update and one final, versions restarting per window.
  ASSERT_EQ(updates.size(), 4u);
  EXPECT_EQ(updates[0].epoch, 0u);
  EXPECT_EQ(updates[0].version, 0u);
  EXPECT_TRUE(updates[1].is_final);
  EXPECT_EQ(updates[1].epoch, 2u);
  EXPECT_EQ(updates[1].version, 1u);
  EXPECT_EQ(updates[2].epoch, 10u);
  EXPECT_EQ(updates[2].version, 0u);
  EXPECT_TRUE(updates[3].is_final);
  EXPECT_EQ(updates[3].epoch, 12u);
  EXPECT_EQ(updates[3].version, 1u);
}

TEST(IncrementalSessionize, VersionsResetPerWindow) {
  auto updates = RunIncremental(1, 1, {{0, {Rec("A", 0)}}, {5, {Rec("A", 5)}}});
  ASSERT_EQ(updates.size(), 4u);
  EXPECT_EQ(updates[0].version, 0u);
  EXPECT_EQ(updates[1].version, 1u);  // Final of window 1.
  EXPECT_EQ(updates[2].version, 0u);  // New window restarts versioning.
  EXPECT_EQ(updates[3].version, 1u);
}

class IncrementalWorkers : public ::testing::TestWithParam<size_t> {};

TEST_P(IncrementalWorkers, ConcatenatedUpdatesEqualFullSessions) {
  const size_t workers = GetParam();
  std::map<Epoch, std::vector<LogRecord>> input;
  for (int s = 0; s < 30; ++s) {
    const std::string id = "S" + std::to_string(s);
    for (Epoch e = static_cast<Epoch>(s % 3); e < 6; ++e) {
      input[e].push_back(Rec(id, e, s));
      input[e].push_back(Rec(id, e, 1000 + s));
    }
  }
  auto updates = RunIncremental(workers, 3, input);

  std::map<std::string, size_t> record_counts;
  std::map<std::string, size_t> finals;
  std::map<std::string, uint32_t> max_version;
  for (const auto& u : updates) {
    record_counts[u.id] += u.new_records.size();
    if (u.is_final) {
      ++finals[u.id];
    }
    max_version[u.id] = std::max(max_version[u.id], u.version);
  }
  ASSERT_EQ(record_counts.size(), 30u);
  for (const auto& [id, count] : record_counts) {
    // Every record delivered exactly once across updates.
    const int start = std::stoi(id.substr(1)) % 3;
    EXPECT_EQ(count, 2u * (6 - static_cast<size_t>(start))) << id;
    EXPECT_EQ(finals[id], 1u) << id;
    // Versions dense: activity epochs + 1 final.
    EXPECT_EQ(max_version[id], 6 - static_cast<uint32_t>(start)) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, IncrementalWorkers,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace ts
